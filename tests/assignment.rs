//! End-to-end coverage of the `Assignment` block (data-truncation's dual)
//! and its `ExceptSegment` I/O mapping.

use frodo::prelude::*;

/// base(32) -> gain -> assignment(patch at [8,20)) -> selector -> out
/// patch path: patch(12) -> bias -> assignment
fn model(select: (usize, usize)) -> Model {
    let mut m = Model::new("patch");
    let base = m.add(Block::new(
        "base",
        BlockKind::Inport {
            index: 0,
            shape: Shape::Vector(32),
        },
    ));
    let patch = m.add(Block::new(
        "patch",
        BlockKind::Inport {
            index: 1,
            shape: Shape::Vector(12),
        },
    ));
    let g = m.add(Block::new("g", BlockKind::Gain { gain: 2.0 }));
    let b = m.add(Block::new("b", BlockKind::Bias { bias: 10.0 }));
    let asg = m.add(Block::new("asg", BlockKind::Assignment { start: 8 }));
    let sel = m.add(Block::new(
        "sel",
        BlockKind::Selector {
            mode: SelectorMode::StartEnd {
                start: select.0,
                end: select.1,
            },
        },
    ));
    let o = m.add(Block::new("o", BlockKind::Outport { index: 0 }));
    m.connect(base, 0, g, 0).unwrap();
    m.connect(patch, 0, b, 0).unwrap();
    m.connect(g, 0, asg, 0).unwrap();
    m.connect(b, 0, asg, 1).unwrap();
    m.connect(asg, 0, sel, 0).unwrap();
    m.connect(sel, 0, o, 0).unwrap();
    m
}

#[test]
fn assignment_semantics() {
    let analysis = Analysis::run(model((0, 32))).unwrap();
    let mut sim = ReferenceSimulator::new(analysis.dfg().clone());
    let base: Vec<f64> = (0..32).map(|i| i as f64).collect();
    let patch: Vec<f64> = (0..12).map(|i| -(i as f64)).collect();
    let out = sim
        .step(&[Tensor::vector(base), Tensor::vector(patch)])
        .unwrap();
    // outside the patch: 2*i; inside [8,20): -i_rel + 10
    assert_eq!(out[0].get(0), 0.0);
    assert_eq!(out[0].get(7), 14.0);
    assert_eq!(out[0].get(8), 10.0);
    assert_eq!(out[0].get(19), -1.0);
    assert_eq!(out[0].get(20), 40.0);
}

#[test]
fn selecting_inside_the_patch_kills_the_base_path() {
    // selector keeps [10, 18), entirely inside the patched zone [8, 20):
    // the base-side gain becomes dead, the patch-side bias shrinks
    let analysis = Analysis::run(model((10, 18))).unwrap();
    let g = analysis.dfg().model().find("g").unwrap();
    let b = analysis.dfg().model().find("b").unwrap();
    assert!(analysis.range(g, 0).is_empty(), "base path should be dead");
    assert_eq!(analysis.range(b, 0), &IndexSet::from_range(2, 10));
}

#[test]
fn selecting_outside_the_patch_kills_the_patch_path() {
    // selector keeps [0, 8), entirely before the patch
    let analysis = Analysis::run(model((0, 8))).unwrap();
    let g = analysis.dfg().model().find("g").unwrap();
    let b = analysis.dfg().model().find("b").unwrap();
    assert_eq!(analysis.range(g, 0), &IndexSet::from_range(0, 8));
    assert!(analysis.range(b, 0).is_empty(), "patch path should be dead");
}

#[test]
fn all_styles_agree_and_formats_roundtrip() {
    for select in [(0usize, 32usize), (10, 18), (4, 24)] {
        let m = model(select);
        assert_eq!(
            frodo::slx::read_slx(
                &frodo::slx::write_slx(&m).unwrap(),
                &frodo_obs::Trace::noop()
            )
            .unwrap(),
            m
        );
        let analysis = Analysis::run(m).unwrap();
        let base: Vec<f64> = (0..32).map(|i| (i as f64 * 0.7).sin()).collect();
        let patch: Vec<f64> = (0..12).map(|i| (i as f64 * 1.3).cos()).collect();
        let mut sim = ReferenceSimulator::new(analysis.dfg().clone());
        let expected = sim
            .step(&[Tensor::vector(base.clone()), Tensor::vector(patch.clone())])
            .unwrap();
        for style in GeneratorStyle::ALL {
            let p = generate(&analysis, style, &frodo_obs::Trace::noop());
            let got = Vm::new(&p).step(&p, &[base.clone(), patch.clone()]);
            assert_eq!(got[0], expected[0].data(), "{select:?} {style}");
        }
    }
}
