//! A model containing **every** supported block kind, pushed through the
//! entire toolchain: analysis, all four generator styles, VM-vs-simulation
//! agreement, format roundtrips, and (when gcc is present) native
//! compile-and-run of the emitted C. If a block's lowering, semantics, or
//! serialization drifts, this test is the tripwire.

use frodo::prelude::*;
use frodo::sim::workload;
use frodo_sim::native;

/// Builds a model that routes data through every block kind at least once.
fn kitchen_sink() -> Model {
    let mut m = Model::new("kitchen_sink");
    let n = 24usize;

    // sources
    let inp = m.add(Block::new(
        "inp",
        BlockKind::Inport {
            index: 0,
            shape: Shape::Vector(n),
        },
    ));
    let inm = m.add(Block::new(
        "inm",
        BlockKind::Inport {
            index: 1,
            shape: Shape::Matrix(4, 6),
        },
    ));
    let kvec = m.add(Block::new(
        "kvec",
        BlockKind::Constant {
            value: Tensor::vector((0..n).map(|i| 0.1 + i as f64 * 0.01).collect()),
        },
    ));
    let kscl = m.add(Block::new(
        "kscl",
        BlockKind::Constant {
            value: Tensor::scalar(0.75),
        },
    ));

    // unary elementwise chain
    let abs = m.add(Block::new("abs", BlockKind::Abs));
    let bias = m.add(Block::new("bias", BlockKind::Bias { bias: 1.25 }));
    let sqrt = m.add(Block::new("sqrt", BlockKind::Sqrt));
    let square = m.add(Block::new("square", BlockKind::Square));
    let exp = m.add(Block::new("exp", BlockKind::Exp));
    let log = m.add(Block::new("log", BlockKind::Log));
    let sin = m.add(Block::new("sin", BlockKind::Sin));
    let cos = m.add(Block::new("cos", BlockKind::Cos));
    let tanh = m.add(Block::new("tanh", BlockKind::Tanh));
    let neg = m.add(Block::new("neg", BlockKind::Negate));
    let recip = m.add(Block::new("recip", BlockKind::Reciprocal));
    let sat = m.add(Block::new(
        "sat",
        BlockKind::Saturation {
            lower: -2.0,
            upper: 2.0,
        },
    ));
    let floor = m.add(Block::new(
        "floor",
        BlockKind::Rounding {
            mode: RoundMode::Floor,
        },
    ));
    let gain = m.add(Block::new("gain", BlockKind::Gain { gain: 0.5 }));
    m.connect(inp, 0, abs, 0).unwrap();
    m.connect(abs, 0, bias, 0).unwrap();
    m.connect(bias, 0, sqrt, 0).unwrap();
    m.connect(sqrt, 0, square, 0).unwrap();
    m.connect(square, 0, exp, 0).unwrap();
    m.connect(exp, 0, log, 0).unwrap();
    m.connect(log, 0, sin, 0).unwrap();
    m.connect(sin, 0, cos, 0).unwrap();
    m.connect(cos, 0, tanh, 0).unwrap();
    m.connect(tanh, 0, neg, 0).unwrap();
    m.connect(neg, 0, recip, 0).unwrap();
    m.connect(recip, 0, sat, 0).unwrap();
    m.connect(sat, 0, floor, 0).unwrap();
    m.connect(floor, 0, gain, 0).unwrap();

    // binary elementwise, with a scalar broadcast
    let add = m.add(Block::new("add", BlockKind::Add));
    let sub = m.add(Block::new("sub", BlockKind::Subtract));
    let mul = m.add(Block::new("mul", BlockKind::Multiply));
    let div = m.add(Block::new("div", BlockKind::Divide));
    let minb = m.add(Block::new("minb", BlockKind::Min));
    let maxb = m.add(Block::new("maxb", BlockKind::Max));
    let modb = m.add(Block::new("modb", BlockKind::Mod));
    m.connect(gain, 0, add, 0).unwrap();
    m.connect(kvec, 0, add, 1).unwrap();
    m.connect(add, 0, sub, 0).unwrap();
    m.connect(kscl, 0, sub, 1).unwrap(); // broadcast
    m.connect(sub, 0, mul, 0).unwrap();
    m.connect(kvec, 0, mul, 1).unwrap();
    m.connect(mul, 0, div, 0).unwrap();
    m.connect(kvec, 0, div, 1).unwrap();
    m.connect(div, 0, minb, 0).unwrap();
    m.connect(kvec, 0, minb, 1).unwrap();
    m.connect(minb, 0, maxb, 0).unwrap();
    m.connect(kvec, 0, maxb, 1).unwrap();
    m.connect(maxb, 0, modb, 0).unwrap();
    m.connect(kscl, 0, modb, 1).unwrap(); // broadcast

    // logic + switch
    let relop = m.add(Block::new("relop", BlockKind::Relational { op: RelOp::Gt }));
    let lnot = m.add(Block::new(
        "lnot",
        BlockKind::Logical {
            op: frodo::model::LogicOp::Not,
        },
    ));
    let land = m.add(Block::new(
        "land",
        BlockKind::Logical {
            op: frodo::model::LogicOp::And,
        },
    ));
    let sw = m.add(Block::new("sw", BlockKind::Switch { threshold: 0.5 }));
    m.connect(modb, 0, relop, 0).unwrap();
    m.connect(kscl, 0, relop, 1).unwrap();
    m.connect(relop, 0, lnot, 0).unwrap();
    m.connect(relop, 0, land, 0).unwrap();
    m.connect(lnot, 0, land, 1).unwrap();
    m.connect(modb, 0, sw, 0).unwrap();
    m.connect(land, 0, sw, 1).unwrap();
    m.connect(kvec, 0, sw, 2).unwrap();

    // DSP / routing / truncation
    let kern = m.add(Block::new(
        "kern",
        BlockKind::Constant {
            value: Tensor::vector(vec![0.25, 0.5, 0.25]),
        },
    ));
    let conv = m.add(Block::new("conv", BlockKind::Convolution));
    let same = m.add(Block::new(
        "same",
        BlockKind::Selector {
            mode: SelectorMode::StartEnd {
                start: 1,
                end: 1 + n,
            },
        },
    ));
    let fir = m.add(Block::new(
        "fir",
        BlockKind::FirFilter {
            coeffs: vec![0.4, 0.3, 0.2, 0.1],
        },
    ));
    let ma = m.add(Block::new("ma", BlockKind::MovingAverage { window: 3 }));
    let cum = m.add(Block::new("cum", BlockKind::CumulativeSum));
    let diff = m.add(Block::new("diff", BlockKind::Difference));
    let ds = m.add(Block::new(
        "ds",
        BlockKind::Downsample {
            factor: 2,
            phase: 0,
        },
    ));
    let pad = m.add(Block::new(
        "pad",
        BlockKind::Pad {
            left: 2,
            right: 2,
            value: 0.5,
        },
    ));
    let patch_src = m.add(Block::new(
        "patch_src",
        BlockKind::Constant {
            value: Tensor::vector(vec![0.1, 0.2, 0.3, 0.4]),
        },
    ));
    let asg = m.add(Block::new("asg", BlockKind::Assignment { start: 6 }));
    let pick = m.add(Block::new(
        "pick",
        BlockKind::Selector {
            mode: SelectorMode::IndexVector(vec![0, 3, 5, 7, 9, 11]),
        },
    ));
    m.connect(sw, 0, conv, 0).unwrap();
    m.connect(kern, 0, conv, 1).unwrap();
    m.connect(conv, 0, same, 0).unwrap();
    m.connect(same, 0, fir, 0).unwrap();
    m.connect(fir, 0, ma, 0).unwrap();
    m.connect(ma, 0, cum, 0).unwrap();
    m.connect(cum, 0, diff, 0).unwrap();
    m.connect(diff, 0, ds, 0).unwrap(); // 24 -> 12
    m.connect(ds, 0, pad, 0).unwrap(); // 12 -> 16
    m.connect(pad, 0, asg, 0).unwrap(); // patch [6,10) of 16
    m.connect(patch_src, 0, asg, 1).unwrap();
    m.connect(asg, 0, pick, 0).unwrap(); // 16 -> 6

    // index-port selector driven by runtime data
    let idxsrc = m.add(Block::new(
        "idxsrc",
        BlockKind::Constant {
            value: Tensor::vector(vec![5.0, 1.0, 3.0]),
        },
    ));
    let dynsel = m.add(Block::new(
        "dynsel",
        BlockKind::Selector {
            mode: SelectorMode::IndexPort { output_len: 3 },
        },
    ));
    m.connect(pick, 0, dynsel, 0).unwrap();
    m.connect(idxsrc, 0, dynsel, 1).unwrap();

    // mux / demux / concatenate
    let mux = m.add(Block::new("mux", BlockKind::Mux { inputs: 2 }));
    m.connect(pick, 0, mux, 0).unwrap();
    m.connect(dynsel, 0, mux, 1).unwrap(); // 6 + 3 = 9
    let demux = m.add(Block::new("demux", BlockKind::Demux { sizes: vec![4, 5] }));
    m.connect(mux, 0, demux, 0).unwrap();
    let cat = m.add(Block::new("cat", BlockKind::Concatenate { inputs: 2 }));
    m.connect(demux, 1, cat, 0).unwrap();
    m.connect(demux, 0, cat, 1).unwrap();

    // matrix path
    let tr = m.add(Block::new("tr", BlockKind::Transpose));
    let mm = m.add(Block::new("mm", BlockKind::MatrixMultiply));
    let subm = m.add(Block::new(
        "subm",
        BlockKind::Submatrix {
            row_start: 0,
            row_end: 2,
            col_start: 1,
            col_end: 4,
        },
    ));
    let rs = m.add(Block::new(
        "rs",
        BlockKind::Reshape {
            shape: Shape::Vector(6),
        },
    ));
    m.connect(inm, 0, tr, 0).unwrap(); // 4x6 -> 6x4
    m.connect(tr, 0, mm, 0).unwrap();
    m.connect(inm, 0, mm, 1).unwrap(); // (6x4)(4x6) = 6x6
    m.connect(mm, 0, subm, 0).unwrap(); // 2x3
    m.connect(subm, 0, rs, 0).unwrap(); // [6]

    // reductions + dot
    let sum = m.add(Block::new("sum", BlockKind::SumOfElements));
    let mean = m.add(Block::new("mean", BlockKind::MeanOfElements));
    let minr = m.add(Block::new("minr", BlockKind::MinOfElements));
    let maxr = m.add(Block::new("maxr", BlockKind::MaxOfElements));
    let dot = m.add(Block::new("dot", BlockKind::DotProduct));
    m.connect(cat, 0, sum, 0).unwrap();
    m.connect(cat, 0, mean, 0).unwrap();
    m.connect(cat, 0, minr, 0).unwrap();
    m.connect(cat, 0, maxr, 0).unwrap();
    m.connect(rs, 0, dot, 0).unwrap();
    m.connect(pick, 0, dot, 1).unwrap();

    // state + subsystem + terminator
    let delay = m.add(Block::new(
        "delay",
        BlockKind::UnitDelay {
            initial: Tensor::scalar(0.5),
        },
    ));
    m.connect(sum, 0, delay, 0).unwrap();

    let mut inner = Model::new("inner");
    let ii = inner.add(Block::new(
        "ii",
        BlockKind::Inport {
            index: 0,
            shape: Shape::Scalar,
        },
    ));
    let ig = inner.add(Block::new("ig", BlockKind::Gain { gain: -1.0 }));
    let io = inner.add(Block::new("io", BlockKind::Outport { index: 0 }));
    inner.connect(ii, 0, ig, 0).unwrap();
    inner.connect(ig, 0, io, 0).unwrap();
    let sub_blk = m.add(Block::new("subsys", BlockKind::Subsystem(Box::new(inner))));
    m.connect(delay, 0, sub_blk, 0).unwrap();

    let term = m.add(Block::new("term", BlockKind::Terminator));
    m.connect(mean, 0, term, 0).unwrap();

    // outputs
    let pairs: [(frodo::model::BlockId, &str); 6] = [
        (cat, "o_cat"),
        (dot, "o_dot"),
        (minr, "o_min"),
        (maxr, "o_max"),
        (sub_blk, "o_state"),
        (rs, "o_mat"),
    ];
    for (i, (src, name)) in pairs.into_iter().enumerate() {
        let o = m.add(Block::new(name, BlockKind::Outport { index: i }));
        m.connect(src, 0, o, 0).unwrap();
    }
    m
}

fn nonzero_inputs(dfg: &frodo::graph::Dfg, seed: u64) -> Vec<Tensor> {
    // keep values away from 0 so Reciprocal/Divide/Log stay finite
    workload::random_inputs(dfg, seed)
        .into_iter()
        .map(|t| {
            let shape = t.shape();
            let data = t
                .into_data()
                .into_iter()
                .map(|v| if v.abs() < 0.05 { 0.5 } else { v })
                .collect();
            Tensor::new(shape, data)
        })
        .collect()
}

#[test]
fn every_block_kind_is_present() {
    let m = kitchen_sink();
    let mut kinds: Vec<&str> = m
        .flattened(&frodo_obs::Trace::noop())
        .unwrap()
        .blocks()
        .iter()
        .map(|b| b.kind.type_name())
        .collect();
    kinds.push("subsystem"); // flattening removes it by design
    for required in [
        "inport",
        "constant",
        "outport",
        "terminator",
        "gain",
        "bias",
        "abs",
        "sqrt",
        "square",
        "exp",
        "log",
        "sin",
        "cos",
        "tanh",
        "negate",
        "reciprocal",
        "saturation",
        "rounding",
        "add",
        "subtract",
        "multiply",
        "divide",
        "min",
        "max",
        "mod",
        "relational",
        "logical",
        "switch",
        "sum_of_elements",
        "mean_of_elements",
        "min_of_elements",
        "max_of_elements",
        "dot_product",
        "matrix_multiply",
        "transpose",
        "reshape",
        "selector",
        "pad",
        "submatrix",
        "mux",
        "demux",
        "concatenate",
        "convolution",
        "fir_filter",
        "moving_average",
        "downsample",
        "cumulative_sum",
        "difference",
        "unit_delay",
        "subsystem",
        "assignment",
    ] {
        assert!(kinds.contains(&required), "missing block kind '{required}'");
    }
}

#[test]
fn all_styles_match_simulation_on_every_block_kind() {
    let analysis = Analysis::run(kitchen_sink()).expect("analyzes");
    let dfg = analysis.dfg().clone();
    for seed in [11u64, 22, 33] {
        let mut oracle = ReferenceSimulator::new(dfg.clone());
        let mut vms: Vec<_> = GeneratorStyle::ALL
            .iter()
            .map(|&s| {
                let p = generate(&analysis, s, &frodo_obs::Trace::noop());
                let vm = Vm::new(&p);
                (s, p, vm)
            })
            .collect();
        for step in 0..3 {
            let inputs = nonzero_inputs(&dfg, seed + step);
            let expected = oracle.step(&inputs).expect("oracle accepts");
            let raw: Vec<Vec<f64>> = inputs.iter().map(|t| t.data().to_vec()).collect();
            for (style, p, vm) in vms.iter_mut() {
                let got = vm.step(p, &raw);
                for (o, (g, e)) in got.iter().zip(&expected).enumerate() {
                    let worst = g
                        .iter()
                        .zip(e.data())
                        .map(|(a, b)| (a - b).abs())
                        .fold(0.0, f64::max);
                    assert!(
                        worst < 1e-9,
                        "{style} seed {seed} step {step} out {o}: off by {worst}"
                    );
                }
            }
        }
    }
}

#[test]
fn kitchen_sink_roundtrips_both_formats() {
    let m = kitchen_sink();
    assert_eq!(
        frodo::slx::read_slx(
            &frodo::slx::write_slx(&m).unwrap(),
            &frodo_obs::Trace::noop()
        )
        .unwrap(),
        m
    );
    assert_eq!(
        frodo::slx::read_mdl(&frodo::slx::write_mdl(&m), &frodo_obs::Trace::noop()).unwrap(),
        m
    );
}

#[test]
fn kitchen_sink_compiles_and_runs_natively() {
    if !native::gcc_available() {
        eprintln!("skipping: no gcc");
        return;
    }
    let analysis = Analysis::run(kitchen_sink()).expect("analyzes");
    let mut checksums = Vec::new();
    for style in GeneratorStyle::ALL {
        let p = generate(&analysis, style, &frodo_obs::Trace::noop());
        let r = native::compile_and_run(&p, style, 2).unwrap_or_else(|e| panic!("{style}: {e}"));
        assert!(r.checksum.is_finite(), "{style}: non-finite checksum");
        checksums.push(r.checksum);
    }
    for w in checksums.windows(2) {
        let scale = w[0].abs().max(1.0);
        assert!(
            (w[0] - w[1]).abs() / scale < 1e-9,
            "style checksum divergence: {checksums:?}"
        );
    }
}
