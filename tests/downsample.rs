//! End-to-end coverage of the `Downsample` block and its `Stride` I/O
//! mapping: reference semantics, range propagation, all generator styles.

use frodo::prelude::*;

fn model() -> Model {
    // in(64) -> gain -> downsample(4, phase 1) -> selector [2, 10) -> out
    let mut m = Model::new("decimate");
    let i = m.add(Block::new(
        "in",
        BlockKind::Inport {
            index: 0,
            shape: Shape::Vector(64),
        },
    ));
    let g = m.add(Block::new("g", BlockKind::Gain { gain: 3.0 }));
    let d = m.add(Block::new(
        "ds",
        BlockKind::Downsample {
            factor: 4,
            phase: 1,
        },
    ));
    let s = m.add(Block::new(
        "sel",
        BlockKind::Selector {
            mode: SelectorMode::StartEnd { start: 2, end: 10 },
        },
    ));
    let o = m.add(Block::new("out", BlockKind::Outport { index: 0 }));
    m.connect(i, 0, g, 0).unwrap();
    m.connect(g, 0, d, 0).unwrap();
    m.connect(d, 0, s, 0).unwrap();
    m.connect(s, 0, o, 0).unwrap();
    m
}

#[test]
fn downsample_shape_and_semantics() {
    let analysis = Analysis::run(model()).unwrap();
    let ds = analysis.dfg().model().find("ds").unwrap();
    // (64 - 1).div_ceil(4) = 16
    assert_eq!(analysis.dfg().shapes().output(ds, 0), Shape::Vector(16));

    let input: Vec<f64> = (0..64).map(|i| i as f64).collect();
    let mut sim = ReferenceSimulator::new(analysis.dfg().clone());
    let out = sim.step(&[Tensor::vector(input)]).unwrap();
    // selector keeps downsample outputs 2..10 = inputs {9,13,...,37} * 3
    let expected: Vec<f64> = (2..10).map(|k| (4 * k + 1) as f64 * 3.0).collect();
    assert_eq!(out[0].data(), expected.as_slice());
}

#[test]
fn stride_mapping_restricts_upstream_range() {
    let analysis = Analysis::run(model()).unwrap();
    let g = analysis.dfg().model().find("g").unwrap();
    // downsample outputs 2..10 read gain elements {9, 13, ..., 37}
    let range = analysis.range(g, 0);
    assert_eq!(range.count(), 8);
    assert_eq!(range.min(), Some(9));
    assert_eq!(range.max(), Some(37));
    assert!(analysis.is_optimizable(g));
}

#[test]
fn all_styles_agree_on_downsample() {
    let analysis = Analysis::run(model()).unwrap();
    let input: Vec<f64> = (0..64).map(|i| (i as f64 * 0.31).cos()).collect();
    let mut sim = ReferenceSimulator::new(analysis.dfg().clone());
    let expected = sim.step(&[Tensor::vector(input.clone())]).unwrap();
    for style in GeneratorStyle::ALL {
        let p = generate(&analysis, style, &frodo_obs::Trace::noop());
        let got = Vm::new(&p).step(&p, std::slice::from_ref(&input));
        assert_eq!(got[0], expected[0].data(), "style {style}");
    }
}

#[test]
fn downsample_roundtrips_through_formats() {
    let m = model();
    assert_eq!(
        frodo::slx::read_slx(
            &frodo::slx::write_slx(&m).unwrap(),
            &frodo_obs::Trace::noop()
        )
        .unwrap(),
        m
    );
    assert_eq!(
        frodo::slx::read_mdl(&frodo::slx::write_mdl(&m), &frodo_obs::Trace::noop()).unwrap(),
        m
    );
}
