//! Acceptance suite for the `analyze` dataflow stage: the race checker
//! proves every bundled benchmark race-free under every engine and
//! lowering mode, the residual-redundancy detector is zero on FRODO
//! output and nonzero on the Simulink-style baseline, injected defects
//! are caught, and the combined diagnostic stream is byte-identical
//! across engines and thread counts.

use frodo::codegen::access::stmt_access;
use frodo::codegen::lir::{BufId, Buffer, BufferRole, ConvStyle, Program, Slice, Stmt};
use frodo::codegen::{generate_with, LowerOptions};
use frodo::prelude::*;
use frodo::verify::{
    analyze_compile, analyze_program, check_schedule, conflict_pairs, level_schedule,
    AnalyzeOptions, Schedule, Task, Unit,
};

fn engines() -> [(&'static str, RangeEngine); 3] {
    [
        ("recursive", RangeEngine::Recursive),
        ("iterative", RangeEngine::Iterative),
        ("parallel", RangeEngine::Parallel),
    ]
}

/// The headline gate: every bundled benchmark, under every range engine,
/// with and without window-reuse lowering, produces a program the
/// analyzer proves race-free with zero residual redundancy, zero numeric
/// findings, and zero dead stores. (SIMD vector modes shape emission,
/// not the statement IR the analyses run over, so lowering modes are the
/// axis that matters here.)
#[test]
fn all_benchmarks_are_clean_under_every_engine_and_lowering_mode() {
    for bench in frodo::benchmodels::all() {
        for (ename, engine) in engines() {
            for window_reuse in [false, true] {
                let analysis = Analysis::run_with(
                    bench.model.clone(),
                    RangeOptions {
                        engine,
                        ..Default::default()
                    },
                )
                .unwrap();
                let program = generate_with(
                    &analysis,
                    GeneratorStyle::Frodo,
                    LowerOptions {
                        window_reuse,
                        ..Default::default()
                    },
                    &frodo::obs::Trace::noop(),
                );
                for threads in 1..=4 {
                    let report = analyze_compile(
                        &analysis,
                        &program,
                        &AnalyzeOptions {
                            emit_threads: threads,
                            ..Default::default()
                        },
                    );
                    assert!(
                        report.is_clean(),
                        "{}/{ename}/window_reuse={window_reuse}/threads={threads}: {:?}",
                        bench.name,
                        report.diagnostics
                    );
                    assert!(report.race_free(), "{}/{ename}: not race-free", bench.name);
                    assert_eq!(
                        report.residual_elements, 0,
                        "{}/{ename}: residual redundancy in FRODO output",
                        bench.name
                    );
                    assert_eq!(report.lifetime.dead_store_elements, 0);
                    assert!(report.schedule_units > 0);
                }
            }
        }
    }
}

/// The Simulink-style baseline over-computes by design (full-range
/// statements regardless of demand), and the residual detector sees it:
/// every bundled benchmark shows nonzero residual elements.
#[test]
fn simulink_style_baseline_shows_residual_redundancy_on_every_benchmark() {
    for bench in frodo::benchmodels::all() {
        let analysis = Analysis::run(bench.model).unwrap();
        let program = generate_with(
            &analysis,
            GeneratorStyle::SimulinkCoder,
            LowerOptions::default(),
            &frodo::obs::Trace::noop(),
        );
        let report = analyze_compile(&analysis, &program, &AnalyzeOptions::default());
        assert!(
            report.residual_elements > 0,
            "{}: baseline should over-compute",
            bench.name
        );
        assert!(
            report.diagnostics.iter().any(|d| d.code == "F204"),
            "{}: residual must surface as F204",
            bench.name
        );
        // over-computation is waste, not a race
        assert!(report.race_free(), "{}: baseline races?", bench.name);
    }
}

fn racy_program() -> Program {
    Program {
        name: "racy".into(),
        style: GeneratorStyle::Frodo,
        buffers: vec![Buffer {
            name: "out0".into(),
            len: 8,
            role: BufferRole::Output(0),
        }],
        stmts: vec![
            Stmt::Fill {
                dst: Slice::new(BufId(0), 0),
                value: 1.0,
                len: 6,
            },
            Stmt::Fill {
                dst: Slice::new(BufId(0), 4),
                value: 2.0,
                len: 4,
            },
        ],
    }
}

/// Injected defect: overlapping writes claimed concurrent must be refuted
/// with F301 naming the buffer, while the derived level schedule for the
/// same program verifies race-free.
#[test]
fn injected_overlapping_writes_are_refuted_f301() {
    let p = racy_program();
    let accs: Vec<_> = p.stmts.iter().map(|s| stmt_access(&p, s)).collect();
    let pairs = conflict_pairs(&accs);
    let claimed = Schedule {
        units: vec![Unit {
            tasks: vec![Task { stmts: vec![0] }, Task { stmts: vec![1] }],
        }],
    };
    let (diags, _) = check_schedule(&p, &claimed, &accs, &pairs);
    let race = diags
        .iter()
        .find(|d| d.code == "F301")
        .expect("overlap refuted");
    assert!(race.message.contains("out0"), "{}", race.message);

    let derived = level_schedule(&pairs, p.stmts.len());
    let (diags, _) = check_schedule(&p, &derived, &accs, &pairs);
    assert!(diags.is_empty(), "derived schedule must verify: {diags:?}");
    assert_eq!(derived.units.len(), 2, "conflict forces two units");
}

/// Injected defect: a Figure-1-style full-range Conv feeding a Selector
/// window leaves exactly the trimmed elements residual.
#[test]
fn injected_overcomputing_conv_is_residual_f204() {
    let p = Program {
        name: "fig1".into(),
        style: GeneratorStyle::SimulinkCoder,
        buffers: vec![
            Buffer {
                name: "u".into(),
                len: 50,
                role: BufferRole::Input(0),
            },
            Buffer {
                name: "v".into(),
                len: 11,
                role: BufferRole::Const(vec![0.1; 11]),
            },
            Buffer {
                name: "conv".into(),
                len: 60,
                role: BufferRole::Temp,
            },
            Buffer {
                name: "out0".into(),
                len: 50,
                role: BufferRole::Output(0),
            },
        ],
        stmts: vec![
            Stmt::Conv {
                dst: BufId(2),
                u: BufId(0),
                u_len: 50,
                v: BufId(1),
                v_len: 11,
                k0: 0,
                k1: 60,
                style: ConvStyle::Branchy,
            },
            Stmt::Copy {
                dst: Slice::new(BufId(3), 0),
                src: Slice::new(BufId(2), 5),
                len: 50,
            },
        ],
    };
    let report = analyze_program(&p, &[], &AnalyzeOptions::default());
    assert_eq!(report.residual_elements, 10);
    assert!(report.diagnostics.iter().any(|d| d.code == "F204"));
}

/// Determinism satellite: the complete diagnostic stream — model lint,
/// range soundness, and the analyze stage — rendered as JSON must be
/// byte-identical across range engines and analyzer thread counts.
#[test]
fn diagnostic_streams_are_byte_identical_across_engines_and_threads() {
    for bench in frodo::benchmodels::all() {
        let mut golden: Option<String> = None;
        for (ename, engine) in engines() {
            for threads in 1..=4 {
                let lint = frodo::verify::render_json(&frodo::verify::lint(&bench.model));
                let analysis = Analysis::run_with(
                    bench.model.clone(),
                    RangeOptions {
                        engine,
                        ..Default::default()
                    },
                )
                .unwrap();
                let program = generate_with(
                    &analysis,
                    GeneratorStyle::Frodo,
                    LowerOptions::default(),
                    &frodo::obs::Trace::noop(),
                );
                let sound = frodo::verify::check_compile(&analysis, &program);
                let report = analyze_compile(
                    &analysis,
                    &program,
                    &AnalyzeOptions {
                        emit_threads: threads,
                        ..Default::default()
                    },
                );
                let stream = format!(
                    "{lint}{}{}",
                    frodo::verify::render_json(&sound.diagnostics),
                    frodo::verify::render_json(&report.diagnostics)
                );
                match &golden {
                    None => golden = Some(stream),
                    Some(g) => assert_eq!(
                        g, &stream,
                        "{}: diagnostics diverge at {ename}/threads={threads}",
                        bench.name
                    ),
                }
            }
        }
    }
}

/// SARIF golden extended to the new rule families: an F2xx numeric
/// finding and an F3xx race finding render with the minimal schema every
/// SARIF consumer greps for.
#[test]
fn sarif_golden_covers_f2xx_and_f3xx() {
    // F201: divisor straddles zero
    let div = Program {
        name: "divz".into(),
        style: GeneratorStyle::Frodo,
        buffers: vec![
            Buffer {
                name: "a".into(),
                len: 4,
                role: BufferRole::Input(0),
            },
            Buffer {
                name: "b".into(),
                len: 4,
                role: BufferRole::Input(1),
            },
            Buffer {
                name: "out0".into(),
                len: 4,
                role: BufferRole::Output(0),
            },
        ],
        stmts: vec![Stmt::Binary {
            op: frodo::codegen::lir::BinOp::Div,
            dst: Slice::new(BufId(2), 0),
            a: frodo::codegen::lir::Src::Run(Slice::new(BufId(0), 0)),
            b: frodo::codegen::lir::Src::Run(Slice::new(BufId(1), 0)),
            len: 4,
        }],
    };
    let numeric = analyze_program(&div, &[], &AnalyzeOptions::default());
    let sarif = frodo::verify::render_sarif(&numeric.diagnostics);
    assert!(sarif.contains("\"ruleId\":\"F201\""), "{sarif}");
    assert!(sarif.contains("\"fullyQualifiedName\""));
    assert!(sarif.contains("\"version\":\"2.1.0\""));

    // F301: the racy fixture's claimed-concurrent schedule
    let p = racy_program();
    let accs: Vec<_> = p.stmts.iter().map(|s| stmt_access(&p, s)).collect();
    let pairs = conflict_pairs(&accs);
    let claimed = Schedule {
        units: vec![Unit {
            tasks: vec![Task { stmts: vec![0] }, Task { stmts: vec![1] }],
        }],
    };
    let (diags, _) = check_schedule(&p, &claimed, &accs, &pairs);
    let sarif = frodo::verify::render_sarif(&diags);
    assert!(sarif.contains("\"ruleId\":\"F301\""), "{sarif}");
    assert!(sarif.contains("\"level\":\"error\""));
}

/// Cross-check against the analysis-level redundancy counters: the
/// residual elements the detector finds in the lowered baseline can never
/// exceed what Algorithm 1 says was eliminable (`OptimizationReport::
/// total_eliminated`) — lowering materializes at most the waste the range
/// analysis identified, and coalescing/fusion may shrink it further. On
/// FRODO output the residual is zero while the counters still report
/// nonzero elimination: the waste was removed, not merely unobserved.
#[test]
fn residual_detector_is_bounded_by_the_elimination_counters() {
    for bench in frodo::benchmodels::all() {
        let analysis = Analysis::run(bench.model).unwrap();
        let eliminated = analysis.report().total_eliminated();
        assert!(eliminated > 0, "{}: suite models all shrink", bench.name);
        for (style, expect_residual) in [
            (GeneratorStyle::SimulinkCoder, true),
            (GeneratorStyle::Frodo, false),
        ] {
            let program = generate_with(
                &analysis,
                style,
                LowerOptions::default(),
                &frodo::obs::Trace::noop(),
            );
            let report = analyze_compile(&analysis, &program, &AnalyzeOptions::default());
            assert!(
                report.residual_elements <= eliminated,
                "{}/{style:?}: residual {} exceeds eliminable {eliminated}",
                bench.name,
                report.residual_elements
            );
            assert_eq!(
                report.residual_elements > 0,
                expect_residual,
                "{}/{style:?}: residual {}",
                bench.name,
                report.residual_elements
            );
        }
    }
}

/// Every `F2xx`/`F3xx` rule is registered with a severity, summary, and a
/// minimal triggering example (the `lint --explain` surface).
#[test]
fn analyze_rules_are_registered_with_examples() {
    for code in ["F201", "F202", "F203", "F204", "F301", "F302"] {
        let r = frodo::verify::rule(code).unwrap_or_else(|| panic!("{code} registered"));
        assert!(!r.summary.is_empty());
        assert!(!r.example.is_empty(), "{code} needs a minimal trigger");
    }
}
