//! Golden tests of the observability layer's export schema. The stage
//! names and NDJSON field names are a stable interface — external tooling
//! greps them — so renaming any of them must fail a test here first.

use frodo::obs::ndjson;
use frodo::prelude::*;

/// Compiles one Table-1 model through the driver with a trace attached.
fn traced_compile() -> Trace {
    let trace = Trace::new();
    let bench = frodo::benchmodels::by_name("Kalman").expect("bundled benchmark");
    let service = CompileService::with_defaults();
    service
        .compile(
            JobSpec::from_model(bench.name, bench.model, GeneratorStyle::Frodo)
                .with_trace(&trace),
        )
        .expect("benchmark compiles");
    trace
}

#[test]
fn stage_names_are_the_canonical_ten() {
    assert_eq!(
        frodo::obs::STAGE_NAMES,
        ["parse", "flatten", "hash", "cache", "dfg", "iomap", "ranges", "classify", "lower",
            "emit"]
    );
}

#[test]
fn ndjson_export_validates_and_covers_every_stage() {
    let trace = traced_compile();
    let text = trace.to_ndjson();
    let stats = ndjson::validate(&text).expect("every line parses with required fields");
    assert!(stats.spans >= 11, "job root + 10 stages, got {}", stats.spans);
    assert!(stats.counters > 0);

    for stage in frodo::obs::STAGE_NAMES {
        assert!(
            text.contains(&format!("\"name\":\"{stage}\"")),
            "missing stage span {stage}"
        );
    }
}

#[test]
fn span_lines_keep_their_field_names() {
    let trace = traced_compile();
    let text = trace.to_ndjson();
    let span_line = text
        .lines()
        .find(|l| l.contains("\"type\":\"span\""))
        .expect("at least one span line");
    for field in ["\"id\":", "\"parent\":", "\"name\":", "\"start_ns\":", "\"dur_ns\":"] {
        assert!(span_line.contains(field), "span line lost {field}: {span_line}");
    }
    let counter_line = text
        .lines()
        .find(|l| l.contains("\"type\":\"counter\""))
        .expect("at least one counter line");
    for field in ["\"span\":", "\"name\":", "\"value\":"] {
        assert!(
            counter_line.contains(field),
            "counter line lost {field}: {counter_line}"
        );
    }
}

#[test]
fn timings_derived_from_the_trace_cover_the_compile() {
    let trace = traced_compile();
    let timings = StageTimings::from_trace(&trace);
    for (name, d) in timings.rows() {
        assert!(!d.is_zero(), "stage {name} recorded no time");
    }
    assert!(timings.algorithm1() > std::time::Duration::ZERO);
    assert!(timings.total() >= timings.algorithm1());
}

#[test]
fn noop_trace_stays_silent_through_the_whole_pipeline() {
    let trace = Trace::noop();
    let bench = frodo::benchmodels::by_name("Kalman").expect("bundled benchmark");
    let analysis =
        Analysis::run_traced(bench.model, RangeOptions::default(), &trace).expect("analyzes");
    assert!(!analysis.report().stats().is_empty());
    assert!(!trace.is_enabled());
    assert_eq!(trace.span_count(), 0);
    assert!(trace.to_ndjson().is_empty());
}
