//! Golden tests of the observability layer's export schema. The stage
//! names and NDJSON field names are a stable interface — external tooling
//! greps them — so renaming any of them must fail a test here first.

use frodo::obs::ndjson;
use frodo::prelude::*;

/// Compiles one Table-1 model through the driver with a trace attached.
/// Verification and analysis are on so the opt-in `verify` and `analyze`
/// stages record spans too.
fn traced_compile() -> Trace {
    let trace = Trace::new();
    let bench = frodo::benchmodels::by_name("Kalman").expect("bundled benchmark");
    let service = CompileService::with_defaults();
    service
        .compile(
            JobSpec::from_model(bench.name, bench.model, GeneratorStyle::Frodo)
                .with_options(CompileOptions::builder().verify(true).analyze(true).build())
                .with_trace(&trace),
        )
        .expect("benchmark compiles");
    trace
}

#[test]
fn stage_names_are_the_canonical_twelve() {
    assert_eq!(
        frodo::obs::STAGE_NAMES,
        [
            "parse", "flatten", "hash", "cache", "dfg", "iomap", "ranges", "classify", "lower",
            "verify", "analyze", "emit"
        ]
    );
}

#[test]
fn ndjson_export_validates_and_covers_every_stage() {
    let trace = traced_compile();
    let text = trace.to_ndjson();
    let stats = ndjson::validate(&text).expect("every line parses with required fields");
    assert!(
        stats.spans >= 12,
        "job root + 11 stages, got {}",
        stats.spans
    );
    assert!(stats.counters > 0);

    for stage in frodo::obs::STAGE_NAMES {
        assert!(
            text.contains(&format!("\"name\":\"{stage}\"")),
            "missing stage span {stage}"
        );
    }
}

#[test]
fn span_lines_keep_their_field_names() {
    let trace = traced_compile();
    let text = trace.to_ndjson();
    let span_line = text
        .lines()
        .find(|l| l.contains("\"type\":\"span\""))
        .expect("at least one span line");
    for field in [
        "\"id\":",
        "\"parent\":",
        "\"name\":",
        "\"start_ns\":",
        "\"dur_ns\":",
    ] {
        assert!(
            span_line.contains(field),
            "span line lost {field}: {span_line}"
        );
    }
    let counter_line = text
        .lines()
        .find(|l| l.contains("\"type\":\"counter\""))
        .expect("at least one counter line");
    for field in ["\"span\":", "\"name\":", "\"value\":"] {
        assert!(
            counter_line.contains(field),
            "counter line lost {field}: {counter_line}"
        );
    }
}

#[test]
fn timings_derived_from_the_trace_cover_the_compile() {
    let trace = traced_compile();
    let timings = StageTimings::from_trace(&trace);
    for (name, d) in timings.rows() {
        assert!(!d.is_zero(), "stage {name} recorded no time");
    }
    assert!(timings.algorithm1() > std::time::Duration::ZERO);
    assert!(timings.total() >= timings.algorithm1());
}

#[test]
fn noop_trace_stays_silent_through_the_whole_pipeline() {
    let trace = Trace::noop();
    let bench = frodo::benchmodels::by_name("Kalman").expect("bundled benchmark");
    let analysis =
        Analysis::run_traced(bench.model, RangeOptions::default(), &trace).expect("analyzes");
    assert!(!analysis.report().stats().is_empty());
    assert!(!trace.is_enabled());
    assert_eq!(trace.span_count(), 0);
    assert!(trace.to_ndjson().is_empty());
}

/// The overhead guard the satellite asks for: compiling with a real trace
/// and with the disabled recorder must produce byte-identical C, and the
/// disabled recorder must show exactly zero span-record drift.
#[test]
fn traced_and_noop_compiles_are_byte_identical() {
    let compile_with = |trace: &Trace| {
        let bench = frodo::benchmodels::by_name("Kalman").expect("bundled benchmark");
        let service = CompileService::with_defaults();
        service
            .compile(
                JobSpec::from_model(bench.name, bench.model, GeneratorStyle::Frodo)
                    .with_trace(trace),
            )
            .expect("benchmark compiles")
    };
    let noop = Trace::noop();
    let off = compile_with(&noop);
    let traced = Trace::new();
    let on = compile_with(&traced);
    assert_eq!(off.code.as_bytes(), on.code.as_bytes());
    assert_eq!(off.report.metrics, on.report.metrics);
    assert_eq!(noop.span_count(), 0, "disabled recorder drifted");
    assert!(traced.span_count() >= 11, "job root + 10 stages");
}

#[test]
fn chrome_trace_export_is_valid_trace_event_json() {
    let trace = traced_compile();
    let doc = trace.to_chrome_trace();
    // schema-validate with the crate's own parser: the whole document is
    // one JSON object whose traceEvents array holds complete events
    let fields = ndjson::parse_line(&doc).expect("chrome trace parses as JSON");
    let events = fields
        .iter()
        .find(|(k, _)| k == "traceEvents")
        .and_then(|(_, v)| v.as_arr())
        .expect("traceEvents array");
    assert_eq!(events.len(), trace.span_count());
    let mut stage_events = 0;
    for ev in events {
        assert_eq!(
            ev.field("ph").and_then(|v| v.as_str()),
            Some("X"),
            "complete events only"
        );
        assert_eq!(ev.field("pid").and_then(|v| v.as_num()), Some(1.0));
        assert!(ev.field("name").and_then(|v| v.as_str()).is_some());
        assert!(ev.field("ts").and_then(|v| v.as_num()).is_some());
        assert!(ev.field("dur").and_then(|v| v.as_num()).is_some());
        assert!(ev.field("tid").and_then(|v| v.as_num()).is_some());
        if ev.field("cat").and_then(|v| v.as_str()) == Some("stage") {
            stage_events += 1;
        }
    }
    assert!(
        stage_events >= frodo::obs::STAGE_NAMES.len(),
        "every pipeline stage appears as a cat=stage event"
    );
}

#[test]
fn collapsed_export_covers_algorithm1() {
    let text = traced_compile().to_collapsed();
    // Algorithm 1's stages appear as frames under the job root
    assert!(
        text.contains("job:Kalman;ranges "),
        "missing ranges frame:\n{text}"
    );
    assert!(
        text.contains("job:Kalman;iomap"),
        "missing iomap frame:\n{text}"
    );
    for line in text.lines() {
        let (_stack, value) = line.rsplit_once(' ').expect("stack + self time");
        value.parse::<u64>().expect("integer self nanoseconds");
    }
}

/// Round-trips a trace whose span/counter names are deliberately hostile:
/// quotes, backslashes, separators, and raw control characters.
#[test]
fn pathological_names_roundtrip_through_ndjson() {
    let trace = Trace::new();
    let names = [
        "job:evil \"model\"",
        "semi;colons and spaces",
        "back\\slash\tand\ttabs",
        "ctrl\u{1}\u{1f}bytes",
        "unicode→模型",
    ];
    {
        let root = trace.span(names[0]);
        for name in &names[1..] {
            let child = root.child(name);
            child.count(name, 7);
        }
    }
    let text = trace.to_ndjson();
    let snap = ndjson::snapshot(&text).expect("pathological export re-parses");
    assert_eq!(snap.spans.len(), names.len());
    for name in names {
        assert!(
            snap.spans.iter().any(|s| s.name == name),
            "span name mangled in round-trip: {name:?}"
        );
    }
    assert!(snap.counters.iter().all(|c| c.value == 7));
    // the aggregate of the re-parsed snapshot matches the original's
    assert_eq!(
        frodo::obs::aggregate(&snap),
        frodo::obs::aggregate(&trace.snapshot())
    );
    // the chrome export of the same trace is still valid JSON
    ndjson::parse_line(&trace.to_chrome_trace()).expect("chrome trace parses");
}
