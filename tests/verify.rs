//! Golden-diagnostics suite for `frodo-verify`: the lint codes and the
//! range-soundness checker's verdicts are a stable interface, so the
//! exact code / block / buffer / interval named by each diagnostic is
//! pinned here. Also proves the headline acceptance criterion: every
//! bundled benchmark model, under every range engine, compiles to a
//! program the checker proves sound.

use frodo::codegen::lir::{BufId, Buffer, BufferRole, Program, Slice, Src, Stmt, UnOp};
use frodo::prelude::*;
use frodo::verify::{check_compile, check_program, lint, OutputDemand};

fn buffer(name: &str, len: usize, role: BufferRole) -> Buffer {
    Buffer {
        name: name.into(),
        len,
        role,
    }
}

/// in(8) -> gain -> out(8), computed in full: the smallest sound program.
fn straight_program() -> Program {
    Program {
        name: "t".into(),
        style: GeneratorStyle::Frodo,
        buffers: vec![
            buffer("in0", 8, BufferRole::Input(0)),
            buffer("g", 8, BufferRole::Temp),
            buffer("out0", 8, BufferRole::Output(0)),
        ],
        stmts: vec![
            Stmt::Unary {
                op: UnOp::Gain(2.0),
                dst: Slice::new(BufId(1), 0),
                src: Src::Run(Slice::new(BufId(0), 0)),
                len: 8,
            },
            Stmt::Copy {
                dst: Slice::new(BufId(2), 0),
                src: Slice::new(BufId(1), 0),
                len: 8,
            },
        ],
    }
}

fn full_demand() -> Vec<OutputDemand> {
    vec![OutputDemand {
        index: 0,
        range: IndexSet::full(8),
        block: Some("out".into()),
    }]
}

#[test]
fn dangling_input_port_is_f001() {
    let mut m = Model::new("dangling");
    let g = m.add(Block::new("gain", BlockKind::Gain { gain: 2.0 }));
    let o = m.add(Block::new("out", BlockKind::Outport { index: 0 }));
    m.connect(g, 0, o, 0).unwrap();
    let diags = lint(&m);
    let d = diags
        .iter()
        .find(|d| d.code == "F001")
        .expect("dangling input diagnosed");
    assert_eq!(d.severity, Severity::Error);
    assert_eq!(d.block.as_deref(), Some("gain"));
}

#[test]
fn selector_past_the_input_extent_is_f004() {
    let mut m = Model::new("oob-selector");
    let i = m.add(Block::new(
        "in",
        BlockKind::Inport {
            index: 0,
            shape: Shape::Vector(8),
        },
    ));
    let s = m.add(Block::new(
        "sel",
        BlockKind::Selector {
            mode: SelectorMode::StartEnd { start: 4, end: 20 },
        },
    ));
    let o = m.add(Block::new("out", BlockKind::Outport { index: 0 }));
    m.connect(i, 0, s, 0).unwrap();
    m.connect(s, 0, o, 0).unwrap();
    let diags = lint(&m);
    let d = diags
        .iter()
        .find(|d| d.code == "F004")
        .expect("out-of-range selector diagnosed");
    assert_eq!(d.severity, Severity::Error);
    assert_eq!(d.block.as_deref(), Some("sel"));
}

/// A deliberately corrupted calculation range — the gain's run shrunk from
/// [0, 8) to [0, 5) — must be rejected, and the diagnostic must name the
/// buffer and the exact offending interval.
#[test]
fn corrupted_range_is_rejected_as_uninitialized_read() {
    let mut p = straight_program();
    if let Stmt::Unary { len, .. } = &mut p.stmts[0] {
        *len = 5;
    }
    let report = check_program(&p, &full_demand());
    assert!(!report.is_sound());
    let d = report
        .diagnostics
        .iter()
        .find(|d| d.code == "F101")
        .expect("uninitialized read diagnosed");
    assert_eq!(d.block.as_deref(), Some("g"), "names the buffer read early");
    assert!(
        d.message.contains("[5, 8)"),
        "names the interval: {}",
        d.message
    );
}

#[test]
fn under_covered_output_is_f103_naming_block_buffer_interval() {
    let mut p = straight_program();
    if let Stmt::Copy { len, .. } = &mut p.stmts[1] {
        *len = 6;
    }
    let report = check_program(&p, &full_demand());
    assert!(!report.is_sound());
    let d = report
        .diagnostics
        .iter()
        .find(|d| d.code == "F103")
        .expect("under-computation diagnosed");
    assert_eq!(d.block.as_deref(), Some("out"));
    assert!(d.message.contains("buffer `out0`"), "{}", d.message);
    assert!(d.message.contains("[6, 8)"), "{}", d.message);
}

/// The headline guarantee: for every committed benchmark model, under all
/// three range engines, the lowered program has no uninitialized reads,
/// no out-of-bounds accesses, and writes exactly Algorithm 1's demanded
/// output ranges.
#[test]
fn every_benchmark_is_sound_under_every_engine() {
    let engines = [
        RangeEngine::Recursive,
        RangeEngine::Iterative,
        RangeEngine::Parallel,
    ];
    for bench in frodo::benchmodels::all() {
        for engine in engines {
            let options = RangeOptions {
                engine,
                ..Default::default()
            };
            let analysis = Analysis::run_with(bench.model.clone(), options)
                .unwrap_or_else(|e| panic!("{} analyzes under {engine:?}: {e}", bench.name));
            let program = generate(&analysis, GeneratorStyle::Frodo, &frodo_obs::Trace::noop());
            let report = check_compile(&analysis, &program);
            assert!(
                report.is_sound(),
                "{} under {engine:?} is unsound:\n{}",
                bench.name,
                frodo::verify::render_human(&report.diagnostics)
            );
            assert!(report.stmts_checked > 0);
            assert!(report.outputs_checked > 0);
        }
    }
}

/// Lint never reports an error on a shipped benchmark model (warnings —
/// e.g. dead data-logger taps — are allowed and expected).
#[test]
fn benchmark_models_lint_clean_of_errors() {
    for bench in frodo::benchmodels::all() {
        let diags = lint(&bench.model);
        let errors: Vec<_> = diags
            .iter()
            .filter(|d| d.severity == Severity::Error)
            .collect();
        assert!(
            errors.is_empty(),
            "{} has lint errors: {errors:?}",
            bench.name
        );
    }
}

/// The SARIF rendering of real diagnostics carries the minimal schema
/// external viewers require.
#[test]
fn sarif_export_of_real_findings_keeps_the_minimal_schema() {
    let mut m = Model::new("dangling");
    let g = m.add(Block::new("gain", BlockKind::Gain { gain: 2.0 }));
    let o = m.add(Block::new("out", BlockKind::Outport { index: 0 }));
    m.connect(g, 0, o, 0).unwrap();
    let sarif = frodo::verify::render_sarif(&lint(&m));
    let doc = frodo::obs::ndjson::parse_line(&sarif).expect("SARIF parses as JSON");
    assert!(doc.iter().any(|(k, _)| k == "version"));
    assert!(doc.iter().any(|(k, _)| k == "$schema"));
    assert!(sarif.contains("\"ruleId\":\"F001\""));
    assert!(sarif.contains("\"fullyQualifiedName\""));
}
