//! Integration tests of the batch compilation service (`frodo-driver`)
//! over the real Table-1 suite: parallel batches must be byte-identical to
//! sequential compilation, resubmission must be served from the cache, and
//! a panicking job must not take its batch down.

use frodo::codegen::GeneratorStyle;
use frodo::prelude::*;

/// Every (benchmark, style) pair as a batch of jobs, in a stable order.
fn suite_specs() -> Vec<JobSpec> {
    frodo::benchmodels::all()
        .into_iter()
        .flat_map(|bench| {
            GeneratorStyle::ALL
                .into_iter()
                .map(move |style| JobSpec::from_model(bench.name, bench.model.clone(), style))
        })
        .collect()
}

#[test]
fn parallel_batch_is_byte_identical_to_sequential() {
    // sequential reference: one worker, no cache, one job at a time
    let sequential = CompileService::new(ServiceConfig {
        workers: 1,
        no_cache: true,
        ..ServiceConfig::default()
    });
    let reference: Vec<String> = suite_specs()
        .into_iter()
        .map(|spec| sequential.compile(spec).expect("suite compiles").code)
        .collect();
    assert_eq!(reference.len(), 40, "10 models x 4 styles");

    let parallel = CompileService::new(ServiceConfig {
        workers: 4,
        ..ServiceConfig::default()
    });
    let report = parallel.compile_batch(suite_specs());
    assert_eq!(report.workers, 4);
    assert_eq!(report.succeeded(), 40);
    for (expected, job) in reference.iter().zip(&report.jobs) {
        let out = job.as_ref().expect("suite compiles");
        assert_eq!(
            &out.code,
            expected,
            "{}/{} differs between parallel and sequential compilation",
            out.report.job,
            out.report.style.label()
        );
    }
}

#[test]
fn traced_parallel_batch_is_byte_identical_and_records_every_job() {
    let untraced = CompileService::new(ServiceConfig {
        workers: 1,
        no_cache: true,
        ..ServiceConfig::default()
    });
    let reference = untraced.compile_batch(suite_specs());

    let service = CompileService::new(ServiceConfig {
        workers: 4,
        no_cache: true,
        ..ServiceConfig::default()
    });
    let trace = Trace::new();
    let report = service.compile_batch_traced(suite_specs(), &trace);
    assert_eq!(report.succeeded(), 40);
    for (a, b) in reference.jobs.iter().zip(&report.jobs) {
        let (a, b) = (a.as_ref().unwrap(), b.as_ref().unwrap());
        assert_eq!(
            a.code,
            b.code,
            "{}/{} differs with tracing enabled",
            b.report.job,
            b.report.style.label()
        );
    }

    // the shared trace holds one job subtree per (model, style) pair,
    // and the report can render it
    let snap = trace.snapshot();
    let job_spans = snap
        .spans
        .iter()
        .filter(|s| s.name.starts_with("job:"))
        .count();
    assert_eq!(job_spans, 40);
    let tree = report
        .render_trace()
        .expect("traced batches carry their trace");
    assert!(tree.contains("batch"));
    assert!(tree.contains("job:Kalman"));
}

#[test]
fn resubmission_is_served_entirely_from_the_cache() {
    let service = CompileService::new(ServiceConfig {
        workers: 4,
        ..ServiceConfig::default()
    });
    let cold = service.compile_batch(suite_specs());
    assert_eq!(cold.cache_hits(), 0);
    assert_eq!(cold.cache_misses(), 40);

    let warm = service.compile_batch(suite_specs());
    assert_eq!(warm.cache_hits(), 40, "identical resubmission must all hit");
    assert_eq!(warm.cache_misses(), 0);
    for (a, b) in cold.jobs.iter().zip(&warm.jobs) {
        let (a, b) = (a.as_ref().unwrap(), b.as_ref().unwrap());
        assert_eq!(a.code, b.code);
        assert_eq!(a.report.digest, b.report.digest);
        // hits skip analysis and emission entirely
        assert_eq!(b.report.timings.algorithm1(), std::time::Duration::ZERO);
        assert_eq!(b.report.timings.emit, std::time::Duration::ZERO);
    }
    assert_eq!(service.cache_stats().hits, 40);
    assert_eq!(service.cache_stats().misses, 40);
}

#[test]
fn on_disk_cache_survives_service_restarts() {
    let dir = std::env::temp_dir().join(format!("frodo-driver-test-{}", std::process::id()));
    let config = ServiceConfig {
        cache_dir: Some(dir.clone()),
        ..ServiceConfig::default()
    };

    let first = CompileService::new(config.clone());
    let cold = first.compile_batch(suite_specs());
    assert_eq!(cold.cache_misses(), 40);

    // a fresh service (fresh process, in effect) finds the artifacts on disk
    let second = CompileService::new(config);
    let warm = second.compile_batch(suite_specs());
    assert_eq!(warm.cache_hits(), 40);
    for (a, b) in cold.jobs.iter().zip(&warm.jobs) {
        assert_eq!(a.as_ref().unwrap().code, b.as_ref().unwrap().code);
    }

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn panicking_job_fails_alone_while_the_batch_completes() {
    let service = CompileService::new(ServiceConfig {
        workers: 4,
        ..ServiceConfig::default()
    });
    let mut specs = suite_specs();
    specs.insert(
        7,
        JobSpec::from_builder("poisoned", GeneratorStyle::Frodo, || {
            panic!("deliberately poisoned job")
        }),
    );
    let report = service.compile_batch(specs);
    assert_eq!(report.jobs.len(), 41);
    assert_eq!(report.succeeded(), 40);
    assert_eq!(report.failed(), 1);
    match &report.jobs[7] {
        Err(frodo::driver::JobError::Panicked { job, message }) => {
            assert_eq!(job, "poisoned");
            assert!(message.contains("deliberately poisoned job"));
        }
        other => panic!("expected a contained panic, got {other:?}"),
    }
    // every other slot completed normally, in submission order
    for (i, job) in report.jobs.iter().enumerate() {
        if i != 7 {
            assert!(job.is_ok(), "job {i} should have completed");
        }
    }
}
