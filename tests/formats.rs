//! Format roundtrips over the whole benchmark suite: every Table-1 model
//! must survive `.slx` (ZIP+XML) and `.mdl` (text) serialization exactly,
//! and the re-read model must analyze to identical calculation ranges.

use frodo::prelude::*;
use frodo::slx::{read_mdl, read_slx, write_mdl, write_slx};

#[test]
fn all_benchmarks_roundtrip_through_slx() {
    for bench in frodo::benchmodels::all() {
        let bytes = write_slx(&bench.model).expect("serialize");
        let back = read_slx(&bytes, &frodo_obs::Trace::noop())
            .unwrap_or_else(|e| panic!("{}: {e}", bench.name));
        assert_eq!(
            back, bench.model,
            "{} differs after .slx roundtrip",
            bench.name
        );
    }
}

#[test]
fn all_benchmarks_roundtrip_through_mdl() {
    for bench in frodo::benchmodels::all() {
        let text = write_mdl(&bench.model);
        let back = read_mdl(&text, &frodo_obs::Trace::noop())
            .unwrap_or_else(|e| panic!("{}: {e}", bench.name));
        assert_eq!(
            back, bench.model,
            "{} differs after .mdl roundtrip",
            bench.name
        );
    }
}

#[test]
fn slx_reread_models_produce_identical_analyses() {
    // the paper's pipeline starts from .slx bytes; ranges derived from the
    // re-parsed model must match ranges from the in-memory original
    for bench in frodo::benchmodels::all() {
        let original = Analysis::run(bench.model.clone()).expect("analyze original");
        let reread = read_slx(
            &write_slx(&bench.model).expect("serialize"),
            &frodo_obs::Trace::noop(),
        )
        .expect("reparse");
        let reparsed = Analysis::run(reread).expect("analyze reparsed");
        assert_eq!(
            original.ranges(),
            reparsed.ranges(),
            "{}: ranges differ after container roundtrip",
            bench.name
        );
    }
}

#[test]
fn slx_and_mdl_agree_with_each_other() {
    for bench in frodo::benchmodels::all() {
        let via_slx = read_slx(
            &write_slx(&bench.model).expect("slx"),
            &frodo_obs::Trace::noop(),
        )
        .expect("slx back");
        let via_mdl =
            read_mdl(&write_mdl(&bench.model), &frodo_obs::Trace::noop()).expect("mdl back");
        assert_eq!(via_slx, via_mdl, "{}: formats disagree", bench.name);
    }
}

#[test]
fn generated_code_is_stable_across_container_roundtrip() {
    // C text generated from the re-read model is byte-identical
    let bench = frodo::benchmodels::manufacture();
    let original = Analysis::run(bench.clone()).expect("analyze");
    let reread =
        read_slx(&write_slx(&bench).expect("slx"), &frodo_obs::Trace::noop()).expect("back");
    let reparsed = Analysis::run(reread).expect("analyze");
    for style in GeneratorStyle::ALL {
        let a = emit_c(&generate(&original, style, &frodo_obs::Trace::noop()));
        let b = emit_c(&generate(&reparsed, style, &frodo_obs::Trace::noop()));
        assert_eq!(a, b, "style {style}");
    }
}
