//! Expression folding (optional LIR pass) preserves semantics on the whole
//! benchmark suite and only ever reduces statement count.

use frodo::codegen::optimize::fold_expressions;
use frodo::prelude::*;
use frodo::sim::workload;

#[test]
fn folding_is_semantics_preserving_on_the_suite() {
    for bench in frodo::benchmodels::all() {
        let analysis = Analysis::run(bench.model.clone()).unwrap();
        let inputs = workload::random_input_vecs(analysis.dfg(), 99);
        for style in GeneratorStyle::ALL {
            let p = generate(&analysis, style, &frodo_obs::Trace::noop());
            let folded = fold_expressions(&p);
            assert!(
                folded.stmts.len() <= p.stmts.len(),
                "{}/{style}: folding grew the program",
                bench.name
            );
            let a = Vm::new(&p).step(&p, &inputs);
            let b = Vm::new(&folded).step(&folded, &inputs);
            assert_eq!(a, b, "{}/{style}: folding changed results", bench.name);
        }
    }
}

#[test]
fn folding_shrinks_unary_heavy_models() {
    // Decryption's rounds are full of unary chains
    let analysis = Analysis::run(frodo::benchmodels::decryption()).unwrap();
    let p = generate(&analysis, GeneratorStyle::Frodo, &frodo_obs::Trace::noop());
    let folded = fold_expressions(&p);
    assert!(
        folded.stmts.len() < p.stmts.len(),
        "expected folding to fuse something: {} vs {}",
        folded.stmts.len(),
        p.stmts.len()
    );
}

#[test]
fn folded_programs_still_match_simulation() {
    let analysis = Analysis::run(frodo::benchmodels::high_pass()).unwrap();
    let dfg = analysis.dfg().clone();
    let inputs = workload::random_inputs(&dfg, 123);
    let raw: Vec<Vec<f64>> = inputs.iter().map(|t| t.data().to_vec()).collect();
    let mut oracle = ReferenceSimulator::new(dfg);
    let expected = oracle.step(&inputs).unwrap();
    let p = fold_expressions(&generate(
        &analysis,
        GeneratorStyle::Frodo,
        &frodo_obs::Trace::noop(),
    ));
    let got = Vm::new(&p).step(&p, &raw);
    for (g, e) in got.iter().zip(&expected) {
        let worst = g
            .iter()
            .zip(e.data())
            .map(|(a, b)| (a - b).abs())
            .fold(0.0, f64::max);
        assert!(worst < 1e-9, "off by {worst}");
    }
}
