//! The paper's correctness methodology (§4): generate "a large number of
//! random test cases" and compare every generator's output against model
//! simulation. Here the oracle is the reference simulator and the subject is
//! the VM executing each generated program — which shares its statement
//! semantics with the emitted C (natively cross-checked in `native.rs`).

use frodo::prelude::*;
use frodo_sim::workload;

const SEEDS: [u64; 8] = [1, 2, 3, 5, 8, 13, 21, 34];
const TOLERANCE: f64 = 1e-9;

/// Runs every style of one model against the oracle for several random
/// workloads and several consecutive steps (exercising delay state).
fn check_model(name: &str, model: Model) {
    let analysis = Analysis::run(model).unwrap_or_else(|e| panic!("{name}: {e}"));
    let dfg = analysis.dfg().clone();
    for seed in SEEDS {
        let mut oracle = ReferenceSimulator::new(dfg.clone());
        let mut vms: Vec<(GeneratorStyle, _, Vm)> = GeneratorStyle::ALL
            .iter()
            .map(|&style| {
                let p = generate(&analysis, style, &frodo_obs::Trace::noop());
                let vm = Vm::new(&p);
                (style, p, vm)
            })
            .collect();
        for step in 0..3 {
            let inputs = workload::random_inputs(&dfg, seed ^ (step as u64) << 32);
            let expected = oracle.step(&inputs).expect("oracle accepts workload");
            let raw: Vec<Vec<f64>> = inputs.iter().map(|t| t.data().to_vec()).collect();
            for (style, program, vm) in vms.iter_mut() {
                let got = vm.step(program, &raw);
                assert_eq!(got.len(), expected.len(), "{name}/{style}: output count");
                for (o, (g, e)) in got.iter().zip(&expected).enumerate() {
                    let worst = g
                        .iter()
                        .zip(e.data())
                        .map(|(a, b)| (a - b).abs())
                        .fold(0.0, f64::max);
                    assert!(
                        worst < TOLERANCE,
                        "{name}/{style} seed {seed} step {step} output {o}: deviates by {worst}"
                    );
                }
            }
        }
    }
}

#[test]
fn audio_process_all_styles_match_simulation() {
    check_model("AudioProcess", frodo::benchmodels::audio_process());
}

#[test]
fn decryption_all_styles_match_simulation() {
    check_model("Decryption", frodo::benchmodels::decryption());
}

#[test]
fn high_pass_all_styles_match_simulation() {
    check_model("HighPass", frodo::benchmodels::high_pass());
}

#[test]
fn hermitian_transpose_all_styles_match_simulation() {
    check_model("HT", frodo::benchmodels::hermitian_transpose());
}

#[test]
fn kalman_all_styles_match_simulation() {
    check_model("Kalman", frodo::benchmodels::kalman());
}

#[test]
fn back_all_styles_match_simulation() {
    check_model("Back", frodo::benchmodels::back());
}

#[test]
fn maintenance_all_styles_match_simulation() {
    check_model("Maintenance", frodo::benchmodels::maintenance());
}

#[test]
fn manufacture_all_styles_match_simulation() {
    check_model("Maunfacture", frodo::benchmodels::manufacture());
}

#[test]
fn running_diff_all_styles_match_simulation() {
    check_model("RunningDiff", frodo::benchmodels::running_diff());
}

#[test]
fn simpson_all_styles_match_simulation() {
    check_model("Simpson", frodo::benchmodels::simpson());
}
