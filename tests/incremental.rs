//! Integration tests of incremental recompilation (`CompileSession`):
//! an edit followed by a warm recompile must stitch C that is
//! byte-identical to a cold compile of the edited model, across the whole
//! Table-1 suite and all three range engines, and demand changes must
//! propagate past regions whose content did not change.

use frodo::codegen::GeneratorStyle;
use frodo::driver::CompileSession;
use frodo::prelude::*;

/// Cold-compiles `model` with caching off — the byte-identity reference.
fn cold_reference(name: &str, model: Model, style: GeneratorStyle) -> String {
    let service = CompileService::new(ServiceConfig {
        workers: 1,
        no_cache: true,
        ..ServiceConfig::default()
    });
    service
        .compile(JobSpec::from_model(name, model, style))
        .expect("cold reference compiles")
        .code
}

/// Perturbs the first Gain (else the first Constant) of a flattened model,
/// mirroring the `random:<seed>:<size>:edit:<k>` spec's edit. Returns
/// `false` when the model has nothing editable.
fn edit_one_block(m: &mut Model) -> bool {
    let ids: Vec<_> = m.ids().collect();
    for &id in &ids {
        if let BlockKind::Gain { gain } = &mut m.block_mut(id).kind {
            *gain = *gain * 1.5 + 0.25;
            return true;
        }
    }
    for &id in &ids {
        if let BlockKind::Constant { value } = &mut m.block_mut(id).kind {
            for v in value.data_mut() {
                *v = *v * 1.5 + 0.25;
            }
            return true;
        }
    }
    false
}

#[test]
fn edit_then_recompile_is_byte_identical_to_cold_across_suite_and_engines() {
    for engine in [
        RangeEngine::Recursive,
        RangeEngine::Iterative,
        RangeEngine::Parallel,
    ] {
        let options = CompileOptions::builder()
            .range(RangeOptions {
                engine,
                threads: 1,
                ..RangeOptions::default()
            })
            .intra_threads(1)
            .build();
        for bench in frodo::benchmodels::all() {
            let flat = bench
                .model
                .flattened(&Trace::noop())
                .expect("suite flattens");
            let mut edited = flat.clone();
            let changed = edit_one_block(&mut edited);

            let mut session = CompileSession::builder(GeneratorStyle::Frodo)
                .options(options)
                .region_max(8)
                .build();
            session
                .compile(bench.name, flat, &Trace::noop())
                .expect("cold session compile succeeds");
            let warm = session
                .compile(bench.name, edited.clone(), &Trace::noop())
                .expect("warm session compile succeeds");

            let reference = cold_reference(bench.name, edited, GeneratorStyle::Frodo);
            assert_eq!(
                warm.code, reference,
                "{}/{engine:?}: incremental recompile differs from cold",
                bench.name
            );

            let stats = session.stats();
            assert_eq!(stats.compiles, 2);
            assert!(
                stats.last_region_total > 0,
                "{}: model must partition into regions",
                bench.name
            );
            if changed && stats.last_region_total > 1 {
                assert!(
                    stats.last_dirty_blocks > 0,
                    "{}/{engine:?}: an edit must dirty at least one block",
                    bench.name
                );
            }
        }
    }
}

#[test]
fn demand_changes_propagate_past_unchanged_regions_end_to_end() {
    // in -> g0..g4 -> sel -> out. With region_max(1) every block is its
    // own region; narrowing the selector changes only the selector's
    // content, yet every upstream gain's demanded range shrinks. The warm
    // recompile must not replay stale fragments for those regions.
    let chain = |end: usize| {
        let mut m = Model::new("demand");
        let mut prev = m.add(Block::new(
            "in",
            BlockKind::Inport {
                index: 0,
                shape: Shape::Vector(32),
            },
        ));
        for k in 0..5 {
            let g = m.add(Block::new(format!("g{k}"), BlockKind::Gain { gain: 2.0 }));
            m.connect(prev, 0, g, 0).unwrap();
            prev = g;
        }
        let s = m.add(Block::new(
            "sel",
            BlockKind::Selector {
                mode: SelectorMode::StartEnd { start: 0, end },
            },
        ));
        m.connect(prev, 0, s, 0).unwrap();
        let o = m.add(Block::new("out", BlockKind::Outport { index: 0 }));
        m.connect(s, 0, o, 0).unwrap();
        m
    };

    let mut session = CompileSession::builder(GeneratorStyle::Frodo)
        .options(CompileOptions::builder().intra_threads(1).build())
        .region_max(1)
        .build();
    session
        .compile("demand", chain(20), &Trace::noop())
        .expect("cold compile succeeds");
    let warm = session
        .compile("demand", chain(8), &Trace::noop())
        .expect("warm compile succeeds");

    let reference = cold_reference("demand", chain(8), GeneratorStyle::Frodo);
    assert_eq!(
        warm.code, reference,
        "narrowed selector must recompile to the cold result"
    );

    let stats = session.stats();
    assert!(
        stats.last_region_total > 5,
        "one block per region expected, got {}",
        stats.last_region_total
    );
    assert!(
        stats.last_dirty_blocks > 1,
        "the selector edit must drag its demand-dependent upstream \
         regions into the dirty cone, got {} dirty blocks",
        stats.last_dirty_blocks
    );
    // the narrowed window must show up in the generated C: a cold compile
    // of the wide chain differs from the warm result
    let wide = cold_reference("demand", chain(20), GeneratorStyle::Frodo);
    assert_ne!(warm.code, wide, "demand change must reach the emitted C");
}
