//! Integration tests of the `frodo` command-line binary.

use std::path::PathBuf;
use std::process::Command;

fn frodo() -> Command {
    Command::new(env!("CARGO_BIN_EXE_frodo"))
}

fn temp_path(name: &str) -> PathBuf {
    std::env::temp_dir().join(format!("frodo-cli-test-{}-{name}", std::process::id()))
}

#[test]
fn list_prints_all_benchmarks() {
    let out = frodo().arg("list").output().expect("runs");
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    for name in ["AudioProcess", "Kalman", "RunningDiff", "Simpson"] {
        assert!(text.contains(name), "missing {name}");
    }
}

#[test]
fn demo_analyze_build_pipeline() {
    let slx = temp_path("ht.slx");
    let c_out = temp_path("ht.c");

    let out = frodo()
        .args(["demo", "HT", slx.to_str().unwrap()])
        .output()
        .expect("runs");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );

    let out = frodo()
        .args(["analyze", slx.to_str().unwrap()])
        .output()
        .expect("runs");
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("redundancy elimination"));
    assert!(text.contains("matrix_multiply"));

    let out = frodo()
        .args(["analyze", slx.to_str().unwrap(), "--trace"])
        .output()
        .expect("runs");
    assert!(out.status.success());
    assert!(String::from_utf8_lossy(&out.stdout).contains("REDUCED"));

    let out = frodo()
        .args([
            "build",
            slx.to_str().unwrap(),
            "-s",
            "frodo",
            "-o",
            c_out.to_str().unwrap(),
        ])
        .output()
        .expect("runs");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let c = std::fs::read_to_string(&c_out).expect("C file written");
    assert!(c.contains("void HT_step("));

    let _ = std::fs::remove_file(slx);
    let _ = std::fs::remove_file(c_out);
}

#[test]
fn convert_roundtrips_between_formats() {
    let slx = temp_path("rd.slx");
    let mdl = temp_path("rd.mdl");
    let slx2 = temp_path("rd2.slx");

    assert!(frodo()
        .args(["demo", "RunningDiff", slx.to_str().unwrap()])
        .status()
        .expect("runs")
        .success());
    assert!(frodo()
        .args(["convert", slx.to_str().unwrap(), mdl.to_str().unwrap()])
        .status()
        .expect("runs")
        .success());
    assert!(frodo()
        .args(["convert", mdl.to_str().unwrap(), slx2.to_str().unwrap()])
        .status()
        .expect("runs")
        .success());
    // both .slx files decode to the same model
    let a = frodo::slx::read_slx(&std::fs::read(&slx).unwrap(), &frodo_obs::Trace::noop()).unwrap();
    let b =
        frodo::slx::read_slx(&std::fs::read(&slx2).unwrap(), &frodo_obs::Trace::noop()).unwrap();
    assert_eq!(a, b);

    for p in [slx, mdl, slx2] {
        let _ = std::fs::remove_file(p);
    }
}

#[test]
fn verify_reports_consistency() {
    let mdl = temp_path("back.mdl");
    assert!(frodo()
        .args(["demo", "Back", mdl.to_str().unwrap()])
        .status()
        .expect("runs")
        .success());
    let out = frodo()
        .args([
            "verify",
            mdl.to_str().unwrap(),
            "--seeds",
            "4",
            "--steps",
            "2",
        ])
        .output()
        .expect("runs");
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("8 random cases"));
    assert!(text.contains("all generators are consistent"));
    let _ = std::fs::remove_file(mdl);
}

#[test]
fn compile_trace_writes_parseable_ndjson() {
    let ndjson = temp_path("kalman.ndjson");
    let c_out = temp_path("kalman.c");
    let out = frodo()
        .args([
            "compile",
            "--verify",
            "--analyze",
            "--trace",
            ndjson.to_str().unwrap(),
            "Kalman",
            "-o",
            c_out.to_str().unwrap(),
        ])
        .output()
        .expect("runs");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = std::fs::read_to_string(&ndjson).expect("trace file written");
    let stats = frodo::obs::ndjson::validate(&text).expect("NDJSON parses");
    assert!(
        stats.spans >= 13,
        "job root + 12 stages, got {}",
        stats.spans
    );
    for stage in frodo::obs::STAGE_NAMES {
        assert!(
            text.contains(&format!("\"name\":\"{stage}\"")),
            "missing stage {stage}"
        );
    }
    let _ = std::fs::remove_file(ndjson);
    let _ = std::fs::remove_file(c_out);
}

#[test]
fn batch_trace_prints_the_span_tree() {
    let out = frodo()
        .args(["batch", "Kalman", "HT", "--trace"])
        .output()
        .expect("runs");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("span tree:"));
    assert!(text.contains("job:Kalman"));
    assert!(text.contains("job:HT"));
}

#[test]
fn unknown_command_fails_with_message() {
    let out = frodo().arg("frobnicate").output().expect("runs");
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("unknown command"));
}

#[test]
fn bad_model_path_fails_cleanly() {
    let out = frodo()
        .args(["analyze", "/nonexistent/model.slx"])
        .output()
        .expect("runs");
    assert!(!out.status.success());
}

#[test]
fn simulate_prints_outputs() {
    let mdl = temp_path("simpson.mdl");
    assert!(frodo()
        .args(["demo", "Simpson", mdl.to_str().unwrap()])
        .status()
        .expect("runs")
        .success());
    let out = frodo()
        .args([
            "simulate",
            mdl.to_str().unwrap(),
            "--steps",
            "2",
            "--seed",
            "3",
        ])
        .output()
        .expect("runs");
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("step 0:"));
    assert!(text.contains("step 1:"));
    assert!(text.contains("out0 ="));
    let _ = std::fs::remove_file(mdl);
}

#[test]
fn obs_diff_proves_counter_determinism_of_two_compiles() {
    let a = temp_path("det-a.ndjson");
    let b = temp_path("det-b.ndjson");
    for path in [&a, &b] {
        let out = frodo()
            .args([
                "compile",
                "Kalman",
                "--threads",
                "1",
                "--trace",
                path.to_str().unwrap(),
                "-o",
                temp_path("det.c").to_str().unwrap(),
            ])
            .output()
            .expect("runs");
        assert!(
            out.status.success(),
            "{}",
            String::from_utf8_lossy(&out.stderr)
        );
    }
    let out = frodo()
        .args([
            "obs",
            "diff",
            a.to_str().unwrap(),
            b.to_str().unwrap(),
            "--fail-over",
            "0",
        ])
        .output()
        .expect("runs");
    assert!(
        out.status.success(),
        "deterministic counters drifted:\n{}{}",
        String::from_utf8_lossy(&out.stdout),
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(String::from_utf8_lossy(&out.stdout).contains("ok: no counter drift"));
    for p in [&a, &b] {
        let _ = std::fs::remove_file(p);
    }
    let _ = std::fs::remove_file(temp_path("det.c"));
}

#[test]
fn obs_diff_catches_injected_drift() {
    let a = temp_path("drift-a.ndjson");
    let b = temp_path("drift-b.ndjson");
    let out = frodo()
        .args([
            "compile",
            "HT",
            "--threads",
            "1",
            "--trace",
            a.to_str().unwrap(),
            "-o",
            temp_path("drift.c").to_str().unwrap(),
        ])
        .output()
        .expect("runs");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    // corrupt one deterministic counter in the second trace
    let text = std::fs::read_to_string(&a).expect("trace written");
    let corrupted = text.replacen(
        "\"name\":\"stmts\",\"value\":",
        "\"name\":\"stmts\",\"value\":9",
        1,
    );
    assert_ne!(text, corrupted, "expected a stmts counter to corrupt");
    std::fs::write(&b, corrupted).expect("write corrupted trace");
    let out = frodo()
        .args([
            "obs",
            "diff",
            a.to_str().unwrap(),
            b.to_str().unwrap(),
            "--fail-over",
            "0",
        ])
        .output()
        .expect("runs");
    assert!(!out.status.success(), "injected drift must fail the gate");
    assert!(String::from_utf8_lossy(&out.stdout).contains("drift"));
    for p in [&a, &b] {
        let _ = std::fs::remove_file(p);
    }
    let _ = std::fs::remove_file(temp_path("drift.c"));
}

#[test]
fn obs_export_renders_chrome_and_collapsed() {
    let trace = temp_path("export.ndjson");
    let chrome = temp_path("export.json");
    let out = frodo()
        .args([
            "compile",
            "Simpson",
            "--trace",
            trace.to_str().unwrap(),
            "-o",
            temp_path("export.c").to_str().unwrap(),
        ])
        .output()
        .expect("runs");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );

    let out = frodo()
        .args([
            "obs",
            "export",
            trace.to_str().unwrap(),
            "--format",
            "chrome",
            "-o",
            chrome.to_str().unwrap(),
        ])
        .output()
        .expect("runs");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let doc = std::fs::read_to_string(&chrome).expect("chrome export written");
    let fields = frodo::obs::ndjson::parse_line(&doc).expect("valid trace_event JSON");
    assert!(fields.iter().any(|(k, _)| k == "traceEvents"));

    let out = frodo()
        .args([
            "obs",
            "export",
            trace.to_str().unwrap(),
            "--format",
            "collapsed",
        ])
        .output()
        .expect("runs");
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.lines().any(|l| l.starts_with("job:Simpson;ranges ")));

    for p in [&trace, &chrome] {
        let _ = std::fs::remove_file(p);
    }
    let _ = std::fs::remove_file(temp_path("export.c"));
}

#[test]
fn batch_ledger_entries_diff_clean_across_runs() {
    let ledger = temp_path("suite-ledger.ndjson");
    let _ = std::fs::remove_file(&ledger);
    for _ in 0..2 {
        let out = frodo()
            .args([
                "batch",
                "Kalman",
                "HT",
                "Simpson",
                "--threads",
                "1",
                "--workers",
                "1",
                "--ledger-out",
                ledger.to_str().unwrap(),
            ])
            .output()
            .expect("runs");
        assert!(
            out.status.success(),
            "{}",
            String::from_utf8_lossy(&out.stderr)
        );
    }
    let text = std::fs::read_to_string(&ledger).expect("ledger written");
    let entries = frodo::obs::read_ledger(&text).expect("ledger parses");
    assert_eq!(entries.len(), 2);
    assert_eq!(entries[0].jobs, 3);
    assert!(
        entries[0].svc.is_some(),
        "batch entries carry service metrics"
    );

    // the two consecutive runs are counter-identical
    let first = temp_path("suite-l1.ndjson");
    let second = temp_path("suite-l2.ndjson");
    std::fs::write(&first, entries[0].to_line()).expect("split first entry");
    std::fs::write(&second, entries[1].to_line()).expect("split second entry");
    let out = frodo()
        .args([
            "obs",
            "diff",
            first.to_str().unwrap(),
            second.to_str().unwrap(),
            "--fail-over",
            "0",
        ])
        .output()
        .expect("runs");
    assert!(
        out.status.success(),
        "consecutive batch runs drifted:\n{}",
        String::from_utf8_lossy(&out.stdout)
    );

    // and the ledger renders as a report
    let out = frodo()
        .args(["obs", "report", ledger.to_str().unwrap()])
        .output()
        .expect("runs");
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("batch:3"));
    assert!(text.contains("2 entries"));

    for p in [&ledger, &first, &second] {
        let _ = std::fs::remove_file(p);
    }
}

#[test]
fn obs_report_warns_on_corrupt_lines_and_strict_exits_nonzero() {
    let ledger = temp_path("corrupt-ledger.ndjson");
    let _ = std::fs::remove_file(&ledger);
    let out = frodo()
        .args(["batch", "Kalman", "--ledger-out", ledger.to_str().unwrap()])
        .output()
        .expect("runs");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );

    // splice a corrupt line between two good entries
    let good = std::fs::read_to_string(&ledger).expect("ledger written");
    let good = good.trim_end();
    std::fs::write(
        &ledger,
        format!("{good}\nthis is not a ledger line\n{good}\n"),
    )
    .expect("rewrite ledger");

    // lenient mode: warn with the 1-based line index, report the rest
    let out = frodo()
        .args(["obs", "report", ledger.to_str().unwrap()])
        .output()
        .expect("runs");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        stderr.contains("line 2"),
        "warning names the bad line: {stderr}"
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(
        stdout.contains("2 entries"),
        "good entries still render: {stdout}"
    );

    // strict mode: same report, nonzero exit
    let out = frodo()
        .args(["obs", "report", ledger.to_str().unwrap(), "--strict"])
        .output()
        .expect("runs");
    assert!(
        !out.status.success(),
        "--strict exits nonzero on corrupt lines"
    );
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("unparseable"), "{stderr}");

    let _ = std::fs::remove_file(&ledger);
}

#[test]
fn analyze_gates_benchmarks_and_runs_the_selftest() {
    // benchmark names resolve directly; --gate exits zero on clean output
    let out = frodo()
        .args(["analyze", "HT", "--gate"])
        .output()
        .expect("runs");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("static analysis"), "{text}");
    assert!(text.contains("race-free: yes"), "{text}");
    assert!(text.contains("residual redundancy: 0 elements"), "{text}");

    // the Simulink-style baseline over-computes: --gate must fail with F204
    let out = frodo()
        .args(["analyze", "HT", "-s", "simulink", "--gate"])
        .output()
        .expect("runs");
    assert!(!out.status.success(), "baseline should trip the gate");
    assert!(String::from_utf8_lossy(&out.stdout).contains("F204"));

    // injected-defect selftest: all detectors must report PASS
    let out = frodo()
        .args(["analyze", "--selftest"])
        .output()
        .expect("runs");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("selftest residual: PASS"), "{text}");
    assert!(text.contains("selftest race: PASS"), "{text}");
    assert!(text.contains("selftest schedule: PASS"), "{text}");
}

#[test]
fn lint_explain_prints_rules_and_rejects_unknown_ids() {
    let out = frodo()
        .args(["lint", "--explain", "F103"])
        .output()
        .expect("runs");
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.starts_with("F103"), "{text}");
    assert!(text.contains("minimal trigger:"), "{text}");

    // lower-case ids are normalized
    let out = frodo()
        .args(["lint", "--explain", "f301"])
        .output()
        .expect("runs");
    assert!(out.status.success());
    assert!(String::from_utf8_lossy(&out.stdout).starts_with("F301"));

    let out = frodo()
        .args(["lint", "--explain", "F999"])
        .output()
        .expect("runs");
    assert!(!out.status.success());
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("unknown rule id 'F999'"), "{err}");
    assert!(err.contains("F001"), "error should list known rules: {err}");
}

#[test]
fn bad_vectorize_mode_error_enumerates_accepted_forms() {
    let out = frodo()
        .args(["compile", "HT", "--no-cache", "--vectorize", "wide"])
        .output()
        .expect("runs");
    assert!(!out.status.success());
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(
        err.contains(
            "unknown vectorize mode 'wide' (expected auto|off|hints|batch[:W], W in 2..=16)"
        ),
        "{err}"
    );

    let out = frodo()
        .args(["compile", "HT", "--no-cache", "--vectorize", "batch:64"])
        .output()
        .expect("runs");
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("batch width 64 out of range 2..=16"),);
}

#[test]
fn build_harness_emits_the_self_checking_driver() {
    let out = frodo()
        .args(["build", "HT", "--harness", "3", "--profile"])
        .output()
        .expect("runs");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let c = String::from_utf8_lossy(&out.stdout);
    assert!(c.contains("int main("), "{c}");
    assert!(c.contains("void HT_step("), "{c}");
}
