//! Integration tests of the `frodo` command-line binary.

use std::path::PathBuf;
use std::process::Command;

fn frodo() -> Command {
    Command::new(env!("CARGO_BIN_EXE_frodo"))
}

fn temp_path(name: &str) -> PathBuf {
    std::env::temp_dir().join(format!("frodo-cli-test-{}-{name}", std::process::id()))
}

#[test]
fn list_prints_all_benchmarks() {
    let out = frodo().arg("list").output().expect("runs");
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    for name in ["AudioProcess", "Kalman", "RunningDiff", "Simpson"] {
        assert!(text.contains(name), "missing {name}");
    }
}

#[test]
fn demo_analyze_build_pipeline() {
    let slx = temp_path("ht.slx");
    let c_out = temp_path("ht.c");

    let out = frodo()
        .args(["demo", "HT", slx.to_str().unwrap()])
        .output()
        .expect("runs");
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));

    let out = frodo()
        .args(["analyze", slx.to_str().unwrap()])
        .output()
        .expect("runs");
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("redundancy elimination"));
    assert!(text.contains("matrix_multiply"));

    let out = frodo()
        .args(["analyze", slx.to_str().unwrap(), "--trace"])
        .output()
        .expect("runs");
    assert!(out.status.success());
    assert!(String::from_utf8_lossy(&out.stdout).contains("REDUCED"));

    let out = frodo()
        .args([
            "build",
            slx.to_str().unwrap(),
            "-s",
            "frodo",
            "-o",
            c_out.to_str().unwrap(),
        ])
        .output()
        .expect("runs");
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    let c = std::fs::read_to_string(&c_out).expect("C file written");
    assert!(c.contains("void HT_step("));

    let _ = std::fs::remove_file(slx);
    let _ = std::fs::remove_file(c_out);
}

#[test]
fn convert_roundtrips_between_formats() {
    let slx = temp_path("rd.slx");
    let mdl = temp_path("rd.mdl");
    let slx2 = temp_path("rd2.slx");

    assert!(frodo()
        .args(["demo", "RunningDiff", slx.to_str().unwrap()])
        .status()
        .expect("runs")
        .success());
    assert!(frodo()
        .args(["convert", slx.to_str().unwrap(), mdl.to_str().unwrap()])
        .status()
        .expect("runs")
        .success());
    assert!(frodo()
        .args(["convert", mdl.to_str().unwrap(), slx2.to_str().unwrap()])
        .status()
        .expect("runs")
        .success());
    // both .slx files decode to the same model
    let a = frodo::slx::read_slx(&std::fs::read(&slx).unwrap()).unwrap();
    let b = frodo::slx::read_slx(&std::fs::read(&slx2).unwrap()).unwrap();
    assert_eq!(a, b);

    for p in [slx, mdl, slx2] {
        let _ = std::fs::remove_file(p);
    }
}

#[test]
fn verify_reports_consistency() {
    let mdl = temp_path("back.mdl");
    assert!(frodo()
        .args(["demo", "Back", mdl.to_str().unwrap()])
        .status()
        .expect("runs")
        .success());
    let out = frodo()
        .args(["verify", mdl.to_str().unwrap(), "--seeds", "4", "--steps", "2"])
        .output()
        .expect("runs");
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("8 random cases"));
    assert!(text.contains("all generators are consistent"));
    let _ = std::fs::remove_file(mdl);
}

#[test]
fn compile_trace_writes_parseable_ndjson() {
    let ndjson = temp_path("kalman.ndjson");
    let c_out = temp_path("kalman.c");
    let out = frodo()
        .args([
            "compile",
            "--trace",
            ndjson.to_str().unwrap(),
            "Kalman",
            "-o",
            c_out.to_str().unwrap(),
        ])
        .output()
        .expect("runs");
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    let text = std::fs::read_to_string(&ndjson).expect("trace file written");
    let stats = frodo::obs::ndjson::validate(&text).expect("NDJSON parses");
    assert!(stats.spans >= 11, "job root + 10 stages, got {}", stats.spans);
    for stage in frodo::obs::STAGE_NAMES {
        assert!(
            text.contains(&format!("\"name\":\"{stage}\"")),
            "missing stage {stage}"
        );
    }
    let _ = std::fs::remove_file(ndjson);
    let _ = std::fs::remove_file(c_out);
}

#[test]
fn batch_trace_prints_the_span_tree() {
    let out = frodo()
        .args(["batch", "Kalman", "HT", "--trace"])
        .output()
        .expect("runs");
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("span tree:"));
    assert!(text.contains("job:Kalman"));
    assert!(text.contains("job:HT"));
}

#[test]
fn unknown_command_fails_with_message() {
    let out = frodo().arg("frobnicate").output().expect("runs");
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("unknown command"));
}

#[test]
fn bad_model_path_fails_cleanly() {
    let out = frodo()
        .args(["analyze", "/nonexistent/model.slx"])
        .output()
        .expect("runs");
    assert!(!out.status.success());
}

#[test]
fn simulate_prints_outputs() {
    let mdl = temp_path("simpson.mdl");
    assert!(frodo()
        .args(["demo", "Simpson", mdl.to_str().unwrap()])
        .status()
        .expect("runs")
        .success());
    let out = frodo()
        .args(["simulate", mdl.to_str().unwrap(), "--steps", "2", "--seed", "3"])
        .output()
        .expect("runs");
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("step 0:"));
    assert!(text.contains("step 1:"));
    assert!(text.contains("out0 ="));
    let _ = std::fs::remove_file(mdl);
}
