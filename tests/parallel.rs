//! Determinism contract of the intra-model parallel hot path: every range
//! engine computes identical `Ranges`, and the threaded emitter produces
//! byte-identical C, on every bundled benchmark model and on large random
//! models — for any thread count.

use frodo::codegen::{emit_c_threaded, emit_c_with, generate, CEmitOptions, GeneratorStyle};
use frodo::core::{determine_ranges, IoMappings, RangeEngine, RangeOptions};
use frodo::graph::Dfg;
use frodo::model::Model;
use frodo::prelude::{Analysis, CompileOptions, CompileService, JobSpec, ServiceConfig};

fn subjects() -> Vec<(String, Model)> {
    let mut out: Vec<(String, Model)> = frodo::benchmodels::all()
        .into_iter()
        .map(|b| (b.name.to_string(), b.model))
        .collect();
    for (seed, size) in [(3, 60), (11, 500)] {
        out.push((
            format!("random_s{seed}_n{size}"),
            frodo::benchmodels::random::random_model(seed, size),
        ));
    }
    out
}

#[test]
fn all_three_engines_agree_on_every_benchmark_model() {
    for (name, model) in subjects() {
        let dfg = Dfg::new(
            model.flattened(&frodo_obs::Trace::noop()).unwrap(),
            &frodo_obs::Trace::noop(),
        )
        .unwrap();
        let maps = IoMappings::derive(&dfg);
        for dead_ends in [false, true] {
            let base = RangeOptions {
                engine: RangeEngine::Recursive,
                eliminate_dead_ends: dead_ends,
                threads: 0,
            };
            let reference = determine_ranges(&dfg, &maps, base);
            let iterative = determine_ranges(
                &dfg,
                &maps,
                RangeOptions {
                    engine: RangeEngine::Iterative,
                    ..base
                },
            );
            assert_eq!(reference, iterative, "{name}: iterative diverged");
            for threads in [1, 2, 4, 7] {
                let parallel = determine_ranges(
                    &dfg,
                    &maps,
                    RangeOptions {
                        engine: RangeEngine::Parallel,
                        threads,
                        ..base
                    },
                );
                assert_eq!(
                    reference, parallel,
                    "{name}: parallel engine diverged at {threads} threads \
                     (dead_ends = {dead_ends})"
                );
            }
        }
    }
}

#[test]
fn threaded_emission_is_byte_identical_on_every_benchmark_model() {
    for (name, model) in subjects() {
        let analysis = Analysis::run(model).unwrap();
        for style in GeneratorStyle::ALL {
            let program = generate(&analysis, style, &frodo_obs::Trace::noop());
            for opts in [
                CEmitOptions::default(),
                CEmitOptions {
                    shared_conv_helper: true,
                    ..Default::default()
                },
                CEmitOptions {
                    vectorize: frodo::codegen::VectorMode::Batch(8),
                    ..Default::default()
                },
            ] {
                let sequential = emit_c_with(&program, opts);
                for threads in [1, 2, 4, 7] {
                    let threaded = emit_c_threaded(&program, opts, threads);
                    assert_eq!(
                        threaded,
                        sequential,
                        "{name}/{}: emission diverged at {threads} threads",
                        style.label()
                    );
                }
            }
        }
    }
}

#[test]
fn compile_service_output_is_invariant_under_intra_threads() {
    let service = CompileService::new(ServiceConfig {
        no_cache: true,
        ..Default::default()
    });
    for (name, model) in subjects().into_iter().take(4) {
        let mut outputs = Vec::new();
        for intra_threads in [1, 4] {
            let spec = JobSpec::from_model(&name, model.clone(), GeneratorStyle::Frodo)
                .with_options(
                    CompileOptions::builder()
                        .intra_threads(intra_threads)
                        .build(),
                );
            outputs.push(service.compile(spec).unwrap());
        }
        assert_eq!(
            outputs[0].code, outputs[1].code,
            "{name}: driver output changed with intra_threads"
        );
        // the thread budget must not split the artifact cache
        assert_eq!(outputs[0].report.digest, outputs[1].report.digest);
    }
}
