//! Structure-level random testing: arbitrary valid models from the fuzzer
//! in `frodo_benchmodels::random`, checked for cross-generator agreement,
//! Algorithm-1 engine agreement, and format-roundtrip stability.

use frodo::benchmodels::random::random_model;
use frodo::prelude::*;
use frodo::sim::workload;

const MODEL_SEEDS: std::ops::Range<u64> = 0..40;

#[test]
fn all_styles_match_simulation_on_random_models() {
    for seed in MODEL_SEEDS {
        let model = random_model(seed, 30);
        let analysis = Analysis::run(model).unwrap_or_else(|e| panic!("seed {seed}: {e}"));
        let dfg = analysis.dfg().clone();
        let mut oracle = ReferenceSimulator::new(dfg.clone());
        let mut vms: Vec<_> = GeneratorStyle::ALL
            .iter()
            .map(|&s| {
                let p = generate(&analysis, s, &frodo_obs::Trace::noop());
                let vm = Vm::new(&p);
                (s, p, vm)
            })
            .collect();
        for step in 0..2 {
            let inputs = workload::random_inputs(&dfg, seed * 1000 + step);
            let expected = oracle.step(&inputs).expect("oracle accepts");
            let raw: Vec<Vec<f64>> = inputs.iter().map(|t| t.data().to_vec()).collect();
            for (style, p, vm) in vms.iter_mut() {
                let got = vm.step(p, &raw);
                for (o, (g, e)) in got.iter().zip(&expected).enumerate() {
                    let worst = g
                        .iter()
                        .zip(e.data())
                        .map(|(a, b)| (a - b).abs())
                        .fold(0.0, f64::max);
                    assert!(
                        worst < 1e-9,
                        "seed {seed} {style} step {step} out {o}: off by {worst}"
                    );
                }
            }
        }
    }
}

#[test]
fn engines_agree_on_random_models() {
    for seed in MODEL_SEEDS {
        let model = random_model(seed, 30);
        let rec = Analysis::run_with(
            model.clone(),
            RangeOptions {
                engine: RangeEngine::Recursive,
                ..Default::default()
            },
        )
        .unwrap_or_else(|e| panic!("seed {seed}: {e}"));
        let it = Analysis::run_with(
            model,
            RangeOptions {
                engine: RangeEngine::Iterative,
                ..Default::default()
            },
        )
        .unwrap_or_else(|e| panic!("seed {seed}: {e}"));
        assert_eq!(rec.ranges(), it.ranges(), "seed {seed}: engines disagree");
    }
}

#[test]
fn random_models_roundtrip_both_formats() {
    for seed in MODEL_SEEDS {
        let model = random_model(seed, 30);
        let via_slx = frodo::slx::read_slx(
            &frodo::slx::write_slx(&model).unwrap(),
            &frodo_obs::Trace::noop(),
        )
        .unwrap_or_else(|e| panic!("seed {seed} slx: {e}"));
        assert_eq!(via_slx, model, "seed {seed}: slx roundtrip");
        let via_mdl =
            frodo::slx::read_mdl(&frodo::slx::write_mdl(&model), &frodo_obs::Trace::noop())
                .unwrap_or_else(|e| panic!("seed {seed} mdl: {e}"));
        assert_eq!(via_mdl, model, "seed {seed}: mdl roundtrip");
    }
}

#[test]
fn frodo_never_computes_more_than_baselines() {
    // redundancy elimination may only remove element computations
    for seed in MODEL_SEEDS {
        let model = random_model(seed, 30);
        let analysis = Analysis::run(model).unwrap();
        let frodo = generate(&analysis, GeneratorStyle::Frodo, &frodo_obs::Trace::noop())
            .computed_elements();
        let base = generate(
            &analysis,
            GeneratorStyle::DfSynth,
            &frodo_obs::Trace::noop(),
        )
        .computed_elements();
        assert!(
            frodo <= base,
            "seed {seed}: FRODO computes {frodo} > baseline {base}"
        );
    }
}

#[test]
fn memory_parity_holds_on_random_models() {
    for seed in MODEL_SEEDS {
        let model = random_model(seed, 30);
        let analysis = Analysis::run(model).unwrap();
        let reports: Vec<MemoryReport> = GeneratorStyle::ALL
            .iter()
            .map(|&s| MemoryReport::of(&generate(&analysis, s, &frodo_obs::Trace::noop())))
            .collect();
        assert!(
            reports.windows(2).all(|w| w[0] == w[1]),
            "seed {seed}: {reports:?}"
        );
    }
}
