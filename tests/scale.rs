//! Scalability smoke tests: the pipeline must handle models far larger than
//! the 165-block Table-1 maximum without blowing up.

use frodo::benchmodels::random::random_model;
use frodo::prelude::*;
use std::time::Instant;

#[test]
fn thousand_block_random_model_flows_through_the_pipeline() {
    let model = random_model(4242, 900);
    assert!(
        model.len() > 900,
        "generator produced {} blocks",
        model.len()
    );
    let t0 = Instant::now();
    let analysis = Analysis::run(model).expect("large model analyzes");
    let program = generate(&analysis, GeneratorStyle::Frodo, &frodo_obs::Trace::noop());
    let c = emit_c(&program);
    eprintln!(
        "1k-block pipeline: {} stmts, {} bytes of C, {:?}",
        program.stmts.len(),
        c.len(),
        t0.elapsed()
    );
    // sanity, not a timing assertion (CI variance): it must simply finish
    // and produce a runnable program
    let inputs = frodo::sim::workload::random_input_vecs(analysis.dfg(), 1);
    let out = Vm::new(&program).step(&program, &inputs);
    assert!(!out.is_empty());
    assert!(out.iter().flatten().all(|v| v.is_finite()));
}

#[test]
fn deep_chain_does_not_overflow_the_recursive_engine() {
    // a 3000-deep elementwise chain stresses Algorithm 1's recursion
    let depth = 3000;
    let mut m = Model::new("deep");
    let mut prev = m.add(Block::new(
        "in",
        BlockKind::Inport {
            index: 0,
            shape: Shape::Vector(8),
        },
    ));
    for i in 0..depth {
        let b = m.add(Block::new(format!("g{i}"), BlockKind::Bias { bias: 0.001 }));
        m.connect(prev, 0, b, 0).unwrap();
        prev = b;
    }
    let sel = m.add(Block::new(
        "sel",
        BlockKind::Selector {
            mode: SelectorMode::StartEnd { start: 2, end: 6 },
        },
    ));
    let o = m.add(Block::new("o", BlockKind::Outport { index: 0 }));
    m.connect(prev, 0, sel, 0).unwrap();
    m.connect(sel, 0, o, 0).unwrap();

    for engine in [RangeEngine::Recursive, RangeEngine::Iterative] {
        let analysis = Analysis::run_with(
            m.clone(),
            RangeOptions {
                engine,
                ..Default::default()
            },
        )
        .expect("deep chain analyzes");
        // the selector's [2, 6) propagates all the way to the input
        let inp = analysis.dfg().model().find("in").unwrap();
        assert_eq!(
            analysis.range(inp, 0),
            &IndexSet::from_range(2, 6),
            "{engine:?}"
        );
    }
}
