//! End-to-end native validation: the emitted C, compiled with the real
//! `gcc -O3` and executed, must agree with the VM running the same program
//! on the same deterministic workload (the LCG built into the harness).
//!
//! Skipped silently when no C compiler is on the host.

use frodo::prelude::*;
use frodo_sim::native;

/// Reproduces the C harness's LCG input fill in Rust.
fn lcg_inputs(program: &frodo::codegen::lir::Program) -> Vec<Vec<f64>> {
    let mut lcg: u64 = 0x243F_6A88_85A3_08D3;
    program
        .inputs()
        .iter()
        .map(|&(_, id)| {
            let len = program.buffer(id).len;
            (0..len)
                .map(|_| {
                    lcg = lcg
                        .wrapping_mul(6364136223846793005)
                        .wrapping_add(1442695040888963407);
                    (lcg >> 40) as f64 / 16777216.0 - 0.5
                })
                .collect()
        })
        .collect()
}

#[test]
fn native_gcc_matches_vm_on_manufacture() {
    if !native::gcc_available() {
        eprintln!("skipping: no gcc on host");
        return;
    }
    let analysis = Analysis::run(frodo::benchmodels::manufacture()).expect("analyze");
    for style in GeneratorStyle::ALL {
        let program = generate(&analysis, style, &frodo_obs::Trace::noop());
        // VM checksum after 3 iterations of the same workload
        let inputs = lcg_inputs(&program);
        let mut vm = Vm::new(&program);
        let mut outs = Vec::new();
        for _ in 0..3 {
            outs = vm.step(&program, &inputs);
        }
        let vm_checksum: f64 = outs.iter().flatten().sum();
        // native checksum with the identical harness protocol
        let native =
            native::compile_and_run(&program, style, 3).unwrap_or_else(|e| panic!("{style}: {e}"));
        let diff = (native.checksum - vm_checksum).abs();
        let scale = vm_checksum.abs().max(1.0);
        assert!(
            diff / scale < 1e-9,
            "{style}: native checksum {} vs VM {}",
            native.checksum,
            vm_checksum
        );
    }
}

/// The vectorization modes reshape loops and the window-reuse pass
/// reorders window summation, but neither may change what the program
/// computes: every variant's native checksum must agree with the scalar
/// FRODO emission on the same workload.
#[test]
fn native_gcc_vector_modes_and_window_reuse_match_scalar() {
    use frodo::codegen::{optimize, CEmitOptions, VectorMode};
    if !native::gcc_available() {
        eprintln!("skipping: no gcc on host");
        return;
    }
    let analysis = Analysis::run(frodo::benchmodels::manufacture()).expect("analyze");
    let program = generate(&analysis, GeneratorStyle::Frodo, &frodo_obs::Trace::noop());
    let scalar = native::compile_and_run_with(
        &program,
        GeneratorStyle::Frodo,
        3,
        CEmitOptions {
            vectorize: VectorMode::Off,
            ..Default::default()
        },
    )
    .expect("scalar emission runs");
    let close = |checksum: f64, what: &str| {
        let scale = scalar.checksum.abs().max(1.0);
        assert!(
            (checksum - scalar.checksum).abs() / scale < 1e-9,
            "{what}: native checksum {checksum} vs scalar {}",
            scalar.checksum
        );
    };
    for mode in [
        VectorMode::Hints,
        VectorMode::Batch(8),
        VectorMode::Batch(2),
    ] {
        let r = native::compile_and_run_with(
            &program,
            GeneratorStyle::Frodo,
            3,
            CEmitOptions {
                vectorize: mode,
                ..Default::default()
            },
        )
        .unwrap_or_else(|e| panic!("{mode:?}: {e}"));
        close(r.checksum, &format!("{mode:?}"));
    }
    let reused = optimize::window_reuse(&program);
    assert_ne!(
        reused.stmts, program.stmts,
        "manufacture should have a uniform-kernel window to rewrite"
    );
    let r = native::compile_and_run(&reused, GeneratorStyle::Frodo, 3)
        .expect("window-reuse emission runs");
    close(r.checksum, "window_reuse");
}

#[test]
fn native_gcc_all_styles_agree_on_every_small_model() {
    if !native::gcc_available() {
        eprintln!("skipping: no gcc on host");
        return;
    }
    // the three fastest-to-compile models keep this test snappy
    for model in [
        frodo::benchmodels::back(),
        frodo::benchmodels::hermitian_transpose(),
        frodo::benchmodels::simpson(),
    ] {
        let name = model.name().to_string();
        let analysis = Analysis::run(model).expect("analyze");
        let mut checksums = Vec::new();
        for style in GeneratorStyle::ALL {
            let program = generate(&analysis, style, &frodo_obs::Trace::noop());
            let r = native::compile_and_run(&program, style, 2)
                .unwrap_or_else(|e| panic!("{name}/{style}: {e}"));
            checksums.push(r.checksum);
        }
        for w in checksums.windows(2) {
            let scale = w[0].abs().max(1.0);
            assert!(
                (w[0] - w[1]).abs() / scale < 1e-9,
                "{name}: checksum divergence across styles: {checksums:?}"
            );
        }
    }
}
