//! Integration tests of the compile daemon (`frodo-serve`): several
//! concurrent clients over one unix socket must get artifacts
//! byte-identical to one-shot compiles, a saturated admission queue must
//! answer with backpressure instead of blocking or dropping, round-robin
//! admission must keep a small client from starving behind a big batch,
//! and shutdown must drain the backlog before the listener goes away.

use frodo::obs::ndjson;
use frodo::prelude::*;
use frodo::serve::{Client, Endpoint, RequestOptions, Server, ServerConfig};
use std::sync::{Arc, Mutex};
use std::time::Instant;

fn socket_path(name: &str) -> std::path::PathBuf {
    std::env::temp_dir().join(format!("frodo-serve-{}-{name}.sock", std::process::id()))
}

fn start_server(name: &str, workers: usize, queue_cap: usize) -> Server {
    Server::start(ServerConfig {
        endpoint: Endpoint::Unix(socket_path(name)),
        workers,
        queue_cap,
        cache_dir: None,
        cache_cap_bytes: 0,
        ledger_out: None,
    })
    .expect("daemon binds the socket")
}

fn str_field(line: &str, key: &str) -> String {
    let fields = ndjson::parse_line(line).expect("response parses");
    ndjson::get_str(&fields, key)
        .unwrap_or_else(|| panic!("response has no \"{key}\": {line}"))
        .to_string()
}

fn num_field(line: &str, key: &str) -> f64 {
    let fields = ndjson::parse_line(line).expect("response parses");
    ndjson::get_num(&fields, key).unwrap_or_else(|| panic!("response has no \"{key}\": {line}"))
}

#[test]
fn concurrent_clients_get_byte_identical_artifacts() {
    // one-shot reference: a fresh uncached service per (model, style)
    let benches: Vec<_> = frodo::benchmodels::all().into_iter().take(4).collect();
    let styles = [GeneratorStyle::Frodo, GeneratorStyle::Hcg];
    let one_shot = CompileService::new(ServiceConfig {
        workers: 1,
        no_cache: true,
        ..ServiceConfig::default()
    });
    let mut reference = std::collections::HashMap::new();
    for bench in &benches {
        for style in styles {
            let out = one_shot
                .compile(JobSpec::from_model(bench.name, bench.model.clone(), style))
                .expect("suite compiles");
            reference.insert(
                (bench.name.to_string(), style.label().to_string()),
                out.code,
            );
        }
    }

    let server = start_server("ident", 2, 0);
    let endpoint = server.endpoint().clone();
    let handles: Vec<_> = benches
        .iter()
        .map(|bench| {
            let endpoint = endpoint.clone();
            let model = bench.name.to_string();
            std::thread::spawn(move || {
                let mut client = Client::connect(&endpoint).expect("daemon is up");

                // mixed traffic: lint and status interleave with compiles
                let lint = client
                    .request_one(&frodo::serve::client::simple_request("lint", Some(&model)))
                    .unwrap();
                assert_eq!(str_field(&lint, "type"), "lint-result");

                let status = client
                    .request_one(&frodo::serve::client::simple_request("status", None))
                    .unwrap();
                assert_eq!(str_field(&status, "type"), "status");
                assert_eq!(num_field(&status, "ok"), 1.0);

                let mut got = Vec::new();
                for style in ["frodo", "hcg"] {
                    let line = client
                        .request_one(&frodo::serve::client::compile_request(
                            &model,
                            Some(style),
                            &RequestOptions::default(),
                            None,
                        ))
                        .unwrap();
                    assert_eq!(str_field(&line, "type"), "result");
                    assert_eq!(num_field(&line, "ok"), 1.0, "compile failed: {line}");
                    got.push((
                        model.clone(),
                        str_field(&line, "style"),
                        str_field(&line, "code"),
                    ));
                }
                got
            })
        })
        .collect();

    let mut compiled = 0;
    for handle in handles {
        for (model, style, code) in handle.join().expect("client thread") {
            let expected = reference
                .get(&(model.clone(), style.clone()))
                .expect("reference covers the pair");
            assert_eq!(
                &code, expected,
                "{model}/{style} differs between the daemon and a one-shot compile"
            );
            compiled += 1;
        }
    }
    assert_eq!(compiled, 8, "4 clients x 2 styles");

    let mut client = Client::connect(&endpoint).expect("daemon is up");
    let ack = client
        .request_one(&frodo::serve::client::simple_request("shutdown", None))
        .unwrap();
    assert_eq!(str_field(&ack, "type"), "shutdown");
    server.wait();
}

#[test]
fn recompile_sessions_reuse_regions_and_match_one_shot_compiles() {
    let server = start_server("recompile", 1, 0);
    let endpoint = server.endpoint().clone();
    let mut client = Client::connect(&endpoint).expect("daemon is up");

    // every response states the protocol version it speaks
    let status = client
        .request_one(&frodo::serve::client::simple_request("status", None))
        .unwrap();
    assert_eq!(
        num_field(&status, "proto_version"),
        frodo::serve::PROTO_VERSION as f64
    );

    // a request from the future gets a structured refusal, not a misparse
    let refused = client
        .request_one(r#"{"type":"status","proto_version":99}"#)
        .unwrap();
    assert_eq!(str_field(&refused, "type"), "error");
    assert!(
        str_field(&refused, "message").contains("unsupported proto_version 99"),
        "{refused}"
    );

    // cold compile through a named session
    let cold = client
        .request_one(&frodo::serve::client::recompile_request(
            "edit-loop",
            "random:42:120",
            None,
            &RequestOptions::default(),
            8,
        ))
        .unwrap();
    assert_eq!(num_field(&cold, "ok"), 1.0, "cold recompile failed: {cold}");
    assert_eq!(num_field(&cold, "region_hits"), 0.0);
    assert!(num_field(&cold, "regions") > 0.0);

    // resubmit with one gain edited: most regions must be reused, and the
    // code must be byte-identical to a one-shot compile of the edited model
    let warm = client
        .request_one(&frodo::serve::client::recompile_request(
            "edit-loop",
            "random:42:120:edit:1",
            None,
            &RequestOptions::default(),
            8,
        ))
        .unwrap();
    assert_eq!(num_field(&warm, "ok"), 1.0, "warm recompile failed: {warm}");
    let regions = num_field(&warm, "regions");
    let hits = num_field(&warm, "region_hits");
    assert!(
        hits >= regions - 1.0 && hits < regions,
        "a one-block edit should dirty exactly one region: {warm}"
    );
    let one_shot = CompileService::new(ServiceConfig {
        workers: 1,
        no_cache: true,
        ..ServiceConfig::default()
    });
    let expected = one_shot
        .compile(JobSpec::from_model(
            "edited",
            frodo::benchmodels::by_spec("random:42:120:edit:1").unwrap(),
            GeneratorStyle::Frodo,
        ))
        .expect("one-shot compiles");
    assert_eq!(
        str_field(&warm, "code"),
        expected.code,
        "incremental recompile must be byte-identical to a cold compile"
    );

    // the session pins its style; asking for another is refused cleanly
    let clash = client
        .request_one(&frodo::serve::client::recompile_request(
            "edit-loop",
            "random:42:120",
            Some("hcg"),
            &RequestOptions::default(),
            0,
        ))
        .unwrap();
    assert_eq!(str_field(&clash, "type"), "error");
    assert!(str_field(&clash, "message").contains("pinned"), "{clash}");

    client
        .request_one(&frodo::serve::client::simple_request("shutdown", None))
        .unwrap();
    server.wait();
}

#[test]
fn saturated_queue_answers_busy_instead_of_blocking_or_dropping() {
    // one worker, a one-slot queue: an overstuffed batch must see
    // rejections (the submission loop outruns any compile), and the
    // daemon must keep answering — nothing blocks, nothing vanishes.
    let server = start_server("busy", 1, 1);
    let endpoint = server.endpoint().clone();

    let models: Vec<&str> = ["Kalman", "Kalman", "Kalman"].to_vec();
    let mut client = Client::connect(&endpoint).expect("daemon is up");
    let lines = client
        .request_batch(&frodo::serve::client::batch_request(
            &models,
            Some("all"),
            &RequestOptions::default(),
            Some(1),
        ))
        .unwrap();
    let done = lines.last().expect("batch terminates");
    assert_eq!(str_field(done, "type"), "batch-done");
    let total = num_field(done, "jobs") as usize;
    let ok = num_field(done, "ok") as usize;
    let rejected = num_field(done, "rejected") as usize;
    assert_eq!(total, 12, "3 models x 4 styles");
    assert!(
        rejected >= 1,
        "a 12-job burst through a 1-slot queue must hit admission control: {done}"
    );
    assert_eq!(
        ok + rejected,
        total,
        "every job is answered or rejected, never dropped"
    );
    // one streamed result line per accepted job, plus the terminator
    assert_eq!(lines.len(), ok + 1);

    // the rejected jobs are retryable: backpressure is advisory, not fatal
    for _ in 0..rejected {
        let line = client
            .request_with_retry(
                &frodo::serve::client::compile_request(
                    "Kalman",
                    Some("frodo"),
                    &RequestOptions::default(),
                    Some(1),
                ),
                200,
            )
            .unwrap();
        assert_eq!(
            num_field(&line, "ok"),
            1.0,
            "retried compile failed: {line}"
        );
    }

    // a busy line, when one is surfaced, must carry a usable retry hint
    let probe = frodo::serve::client::compile_request(
        "Kalman",
        Some("frodo"),
        &RequestOptions::default(),
        Some(2),
    );
    let response = client.request_one(&probe).unwrap();
    match str_field(&response, "type").as_str() {
        "busy" => assert!(num_field(&response, "retry_after_ms") >= 1.0),
        "result" => assert_eq!(num_field(&response, "ok"), 1.0),
        other => panic!("unexpected response type '{other}': {response}"),
    }

    let ack = client
        .request_one(&frodo::serve::client::simple_request("shutdown", None))
        .unwrap();
    assert_eq!(str_field(&ack, "type"), "shutdown");
    server.wait();
}

#[test]
fn round_robin_admission_keeps_a_small_client_ahead_of_a_big_batch() {
    // client 1 floods the daemon with the whole suite; client 2 asks for
    // one compile right after. Round-robin admission must interleave
    // client 2's job into the backlog, so it finishes well before the
    // flood's terminator — under FIFO it would queue behind all 40 jobs.
    let server = start_server("fair", 1, 0);
    let endpoint = server.endpoint().clone();
    let finished = Arc::new(Mutex::new(Vec::<(String, Instant)>::new()));

    let flood = {
        let endpoint = endpoint.clone();
        let finished = Arc::clone(&finished);
        std::thread::spawn(move || {
            let mut client = Client::connect(&endpoint).expect("daemon is up");
            let models: Vec<String> = frodo::benchmodels::all()
                .into_iter()
                .map(|b| b.name.to_string())
                .collect();
            let refs: Vec<&str> = models.iter().map(String::as_str).collect();
            let lines = client
                .request_batch(&frodo::serve::client::batch_request(
                    &refs,
                    Some("all"),
                    &RequestOptions::default(),
                    Some(1),
                ))
                .unwrap();
            let done = lines.last().unwrap().clone();
            assert_eq!(str_field(&done, "type"), "batch-done");
            assert_eq!(
                num_field(&done, "ok"),
                40.0,
                "10 models x 4 styles all compile"
            );
            finished
                .lock()
                .unwrap()
                .push(("flood".into(), Instant::now()));
        })
    };
    let small = {
        let endpoint = endpoint.clone();
        let finished = Arc::clone(&finished);
        std::thread::spawn(move || {
            let mut client = Client::connect(&endpoint).expect("daemon is up");
            let line = client
                .request_with_retry(
                    &frodo::serve::client::compile_request(
                        "Kalman",
                        Some("frodo"),
                        &RequestOptions::default(),
                        Some(2),
                    ),
                    200,
                )
                .unwrap();
            assert_eq!(
                num_field(&line, "ok"),
                1.0,
                "small client's compile failed: {line}"
            );
            finished
                .lock()
                .unwrap()
                .push(("small".into(), Instant::now()));
        })
    };
    flood.join().expect("flood client");
    small.join().expect("small client");

    let order = finished.lock().unwrap();
    let at = |who: &str| order.iter().find(|(n, _)| n == who).unwrap().1;
    assert!(
        at("small") < at("flood"),
        "round-robin admission should finish the single job before the 40-job flood"
    );

    let mut client = Client::connect(&endpoint).expect("daemon is up");
    client
        .request_one(&frodo::serve::client::simple_request("shutdown", None))
        .unwrap();
    server.wait();
}

#[test]
fn metrics_reports_rolling_windows_and_request_ids_correlate() {
    let server = start_server("metrics", 1, 0);
    let endpoint = server.endpoint().clone();
    let mut client = Client::connect(&endpoint).expect("daemon is up");

    // a protocol-v2 client's requests still work against the v3 daemon
    let status = client
        .request_one(r#"{"type":"status","proto_version":2}"#)
        .unwrap();
    assert_eq!(str_field(&status, "type"), "status");
    assert_eq!(num_field(&status, "ok"), 1.0);

    // every response carries a request_id; a client-supplied one is
    // echoed back verbatim
    let echoed = client
        .request_one(r#"{"type":"status","request_id":424242}"#)
        .unwrap();
    assert_eq!(num_field(&echoed, "request_id"), 424242.0);
    // server-assigned ids exist and are distinct across requests
    let a = num_field(&status, "request_id");
    let b = num_field(
        &client
            .request_one(&frodo::serve::client::simple_request("status", None))
            .unwrap(),
        "request_id",
    );
    assert_ne!(a, b, "server-assigned request ids must not repeat");

    // a batch's whole response stream shares one request_id
    let lines = client
        .request_batch(r#"{"type":"batch","models":["Kalman"],"request_id":77}"#)
        .unwrap();
    assert!(lines.len() >= 2, "result stream plus terminator");
    for line in &lines {
        assert_eq!(num_field(line, "request_id"), 77.0, "{line}");
    }

    // three compiles, then the metrics verb must see them in its window
    for _ in 0..3 {
        let line = client
            .request_one(&frodo::serve::client::compile_request(
                "Kalman",
                Some("frodo"),
                &RequestOptions::default(),
                None,
            ))
            .unwrap();
        assert_eq!(num_field(&line, "ok"), 1.0, "compile failed: {line}");
    }
    let metrics = client
        .request_one(&frodo::serve::client::simple_request("metrics", None))
        .unwrap();
    assert_eq!(str_field(&metrics, "type"), "metrics");
    assert_eq!(num_field(&metrics, "ok"), 1.0);
    assert!(num_field(&metrics, "window_secs") >= 1.0);
    let fields = ndjson::parse_line(&metrics).unwrap();
    let verbs = ndjson::get(&fields, "verbs")
        .and_then(ndjson::Value::as_arr)
        .expect("metrics carries a verbs array");
    let compile = verbs
        .iter()
        .find(|v| v.field("verb").and_then(ndjson::Value::as_str) == Some("compile"))
        .expect("compile verb is reported");
    let vnum = |key: &str| compile.field(key).and_then(ndjson::Value::as_num).unwrap();
    assert!(vnum("window_count") >= 3.0, "{metrics}");
    assert!(vnum("total") >= 3.0);
    assert!(vnum("p50_ns") > 0.0, "compiles take measurable time");
    assert!(vnum("max_ns") >= vnum("p50_ns"));
    // the latency histogram is parseable and consistent: bucket counts
    // sum to the window count
    let buckets = |key: &str| -> Vec<u64> {
        compile
            .field(key)
            .and_then(ndjson::Value::as_arr)
            .unwrap()
            .iter()
            .map(|v| v.as_num().unwrap() as u64)
            .collect()
    };
    let uppers = buckets("bucket_upper");
    let counts = buckets("bucket_count");
    assert_eq!(uppers.len(), counts.len());
    assert_eq!(counts.iter().sum::<u64>(), vnum("window_count") as u64);
    for w in uppers.windows(2) {
        assert!(w[0] < w[1], "bucket bounds ascend");
    }

    let ack = client
        .request_one(&frodo::serve::client::simple_request("shutdown", None))
        .unwrap();
    assert_eq!(str_field(&ack, "type"), "shutdown");
    server.wait();
}

#[test]
fn shutdown_drains_the_backlog_and_removes_the_socket() {
    let socket = socket_path("drain");
    let ledger = std::env::temp_dir().join(format!(
        "frodo-serve-{}-drain-ledger.ndjson",
        std::process::id()
    ));
    let _ = std::fs::remove_file(&ledger);
    let server = Server::start(ServerConfig {
        endpoint: Endpoint::Unix(socket.clone()),
        workers: 1,
        queue_cap: 0,
        cache_dir: None,
        cache_cap_bytes: 0,
        ledger_out: Some(ledger.clone()),
    })
    .expect("daemon binds the socket");
    let endpoint = server.endpoint().clone();

    // a batch holds the backlog open while the shutdown lands
    let batch = {
        let endpoint = endpoint.clone();
        std::thread::spawn(move || {
            let mut client = Client::connect(&endpoint).expect("daemon is up");
            let lines = client
                .request_batch(&frodo::serve::client::batch_request(
                    &["Kalman", "HighPass"],
                    Some("all"),
                    &RequestOptions::default(),
                    Some(1),
                ))
                .unwrap();
            let done = lines.last().unwrap().clone();
            (
                num_field(&done, "ok") as usize,
                num_field(&done, "rejected") as usize,
            )
        })
    };

    // wait until the whole batch is admitted, then pull the plug
    let mut control = Client::connect(&endpoint).expect("daemon is up");
    loop {
        let status = control
            .request_one(&frodo::serve::client::simple_request("status", None))
            .unwrap();
        if num_field(&status, "submitted") as usize >= 8 {
            break;
        }
        std::thread::sleep(std::time::Duration::from_millis(1));
    }
    let ack = control
        .request_one(&frodo::serve::client::simple_request("shutdown", None))
        .unwrap();
    assert_eq!(str_field(&ack, "type"), "shutdown");
    assert_eq!(
        num_field(&ack, "completed"),
        8.0,
        "the drain finishes every admitted job before the ack: {ack}"
    );
    assert_eq!(str_field(&ack, "ledger"), ledger.display().to_string());

    // the in-flight batch still got every result — drained, not dropped
    let (ok, rejected) = batch.join().expect("batch client");
    assert_eq!(
        (ok, rejected),
        (8, 0),
        "2 models x 4 styles, none shed by the drain"
    );

    server.wait();
    assert!(
        !socket.exists(),
        "the daemon removes its socket file on exit"
    );
    assert!(
        Client::connect(&endpoint).is_err(),
        "no listener after shutdown"
    );

    // the final ledger entry is a well-formed schema line with the
    // service metrics the drain left behind
    let text = std::fs::read_to_string(&ledger).expect("ledger flushed");
    let lines: Vec<&str> = text.lines().collect();
    assert_eq!(lines.len(), 1, "one entry per daemon lifetime");
    let entry = frodo::obs::LedgerEntry::from_line(lines[0]).expect("ledger line parses");
    assert_eq!(entry.label, "serve");
    let svc = entry.svc.expect("serve entries carry service metrics");
    assert_eq!(
        svc.cache_hits + svc.cache_misses,
        8,
        "every job consulted the cache"
    );
    // the request-level rollup covers at least the status polls (the
    // batch and shutdown requests are still in flight when the ledger
    // flushes, so they may not be counted yet)
    assert!(svc.requests_total >= 1, "{svc:?}");
    assert!(svc.request_max_ns >= svc.request_p50_ns);
    assert!(svc.request_max_ns > 0);
    let _ = std::fs::remove_file(&ledger);
}

/// Protocol version 4: the `analyze` flag rides a compile request through
/// the daemon. A FRODO-style compile with the dataflow analyses on must
/// succeed with an artifact byte-identical to one compiled without them
/// (the stage observes, it does not transform), and a Simulink-style
/// compile must also succeed — its F204 residual-redundancy findings are
/// warnings, not the fail-closed F3xx class.
#[test]
fn analyze_option_rides_the_wire_and_warnings_do_not_fail_jobs() {
    let server = start_server("analyze", 1, 0);
    let endpoint = server.endpoint().clone();
    let mut client = Client::connect(&endpoint).expect("daemon is up");

    let analyzed = RequestOptions {
        analyze: true,
        ..RequestOptions::default()
    };
    // analyzed first, so the fresh (uncached) compile is the one that
    // actually runs the stage and would fail closed on an F3xx finding
    let mut codes = Vec::new();
    for opts in [&analyzed, &RequestOptions::default()] {
        let line = client
            .request_one(&frodo::serve::client::compile_request(
                "HT",
                Some("frodo"),
                opts,
                None,
            ))
            .unwrap();
        assert_eq!(str_field(&line, "type"), "result");
        assert_eq!(num_field(&line, "ok"), 1.0, "compile failed: {line}");
        codes.push(str_field(&line, "code"));
    }
    assert_eq!(
        codes[0], codes[1],
        "analyze stage must not change the artifact"
    );

    let line = client
        .request_one(&frodo::serve::client::compile_request(
            "HT",
            Some("simulink"),
            &analyzed,
            None,
        ))
        .unwrap();
    assert_eq!(
        num_field(&line, "ok"),
        1.0,
        "residual-redundancy warnings must not fail the job: {line}"
    );

    let ack = client
        .request_one(&frodo::serve::client::simple_request("shutdown", None))
        .unwrap();
    assert_eq!(str_field(&ack, "type"), "shutdown");
    server.wait();
}
