//! `frodo` — the command-line front end of the code generator.
//!
//! ```text
//! frodo analyze  <model.{slx,mdl}>                 redundancy-elimination report
//! frodo lint     <model> [--format human|json|sarif]  static model diagnostics
//! frodo build    <model> [-s STYLE] [--shared-helper] [--vectorize M] [-o out.c]
//! frodo compile  <model> [-s STYLE] [--threads N] [--engine E] [--verify] [--cache-dir D]
//!                [--vectorize M] [--window-reuse]
//!                [--trace out.ndjson] [--ledger | --ledger-out F] [-o out.c]
//! frodo batch    <models...> [--workers N] [--threads N] [--verify] [--cache-dir D]
//!                [-s STYLES] [-o DIR] [--vectorize M] [--window-reuse]
//!                [--trace] [--trace-out out.ndjson]
//!                [--ledger | --ledger-out F] [--incremental [--region-max N]]
//! frodo serve    [--socket PATH|--tcp ADDR] [--workers N] [--queue-cap N]
//!                [--cache-cap BYTES] [--cache-dir D] [--ledger | --ledger-out F]
//! frodo client   [--socket PATH|--tcp ADDR] compile|recompile|lint|batch|status|metrics|shutdown ...
//! frodo obs      export|diff|report               trace exports, cross-run perf diffs
//! frodo simulate <model> [--seed N] [--steps N]    reference simulation
//! frodo bench    <model> [--native]                compare the four generators
//! frodo calibrate [--steps N] [--native [--iters N] [--sanitize]] [--check BANDS]
//!                [--ledger | --ledger-out F]       cost-model calibration
//! frodo convert  <in.{slx,mdl}> <out.{slx,mdl}>    format conversion
//! frodo demo     <name> <out.{slx,mdl}>            export a Table-1 benchmark
//! frodo list                                       list bundled benchmarks
//! ```
//!
//! `compile` and `batch` go through the [`frodo::driver`] service: jobs run
//! on a worker pool, artifacts are content-addressed (optionally persisted
//! under `--cache-dir`), and every job reports per-stage timings and
//! redundancy counters. `batch --incremental` instead feeds the jobs
//! sequentially through a [`frodo::driver::CompileSession`] per style, so a
//! resubmitted model recompiles only the regions its edit dirtied. Models
//! may be `.slx`/`.mdl` paths, bundled Table-1 benchmark names
//! (`frodo list`), or `random:<seed>:<size>[:edit:<k>]` synthetic specs.

use frodo::prelude::*;
use frodo::sim::{native, workload};
use frodo::slx::{read_mdl, read_slx, write_mdl, write_slx};
use std::path::Path;
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let result = match args.first().map(String::as_str) {
        Some("analyze") => cmd_analyze(&args[1..]),
        Some("lint") => cmd_lint(&args[1..]),
        Some("build") => cmd_build(&args[1..]),
        Some("compile") => cmd_compile(&args[1..]),
        Some("batch") => cmd_batch(&args[1..]),
        Some("serve") => frodo::serve::cli::cmd_serve(&args[1..]),
        Some("client") => frodo::serve::cli::cmd_client(&args[1..]),
        Some("simulate") => cmd_simulate(&args[1..]),
        Some("bench") => cmd_bench(&args[1..]),
        Some("calibrate") => cmd_calibrate(&args[1..]),
        Some("verify") => cmd_verify(&args[1..]),
        Some("convert") => cmd_convert(&args[1..]),
        Some("demo") => cmd_demo(&args[1..]),
        Some("obs") => cmd_obs(&args[1..]),
        Some("list") => cmd_list(),
        Some("--help") | Some("-h") | None => {
            print_usage();
            Ok(())
        }
        Some(other) => Err(format!("unknown command '{other}' (try --help)")),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("frodo: {e}");
            ExitCode::FAILURE
        }
    }
}

fn print_usage() {
    println!(
        "frodo — redundancy-eliminating code generation for Simulink models\n\
         \n\
         USAGE:\n\
         \x20 frodo analyze  <model> [-s STYLE] [--engine E] [--vectorize M] [--window-reuse] [--threads N]\n\
         \x20                [--format human|json|sarif] [-o out] [--gate] [--trace] | analyze --selftest\n\
         \x20 frodo lint     <model> [--format human|json|sarif] | lint --explain CODE\n\
         \x20 frodo build    <model> [-s simulink|dfsynth|hcg|frodo] [--shared-helper] [--vectorize M] [--profile]\n\
         \x20                [--harness ITERS] [-o out.c]\n\
         \x20 frodo compile  <model> [-s STYLE] [--threads N] [--engine recursive|iterative|parallel]\n\
         \x20                [--vectorize auto|off|hints|batch[:W]] [--window-reuse] [--profile]\n\
         \x20                [--verify] [--analyze] [--cache-dir DIR] [--no-cache] [--trace out.ndjson] [-o out.c]\n\
         \x20 frodo batch    <models...> [--workers N] [--threads N] [--verify] [--analyze] [--cache-dir DIR] [-s STYLES|all] [-o DIR] [--machine]\n\
         \x20                [--vectorize M] [--window-reuse] [--trace] [--trace-out out.ndjson] [--incremental [--region-max N]]\n\
         \x20 frodo serve    [--socket PATH|--tcp ADDR] [--workers N] [--queue-cap N] [--cache-cap BYTES]\n\
         \x20                [--cache-dir DIR] [--ledger | --ledger-out F]\n\
         \x20 frodo client   [--socket PATH|--tcp ADDR] compile <model> [-s STYLE] [--threads N] [--verify] [--timeout MS] [-o out.c]\n\
         \x20 frodo client   [--socket PATH|--tcp ADDR] batch <models...> [-s STYLES|all] [-o DIR]\n\
         \x20 frodo client   [--socket PATH|--tcp ADDR] lint <model> | status | metrics | shutdown\n\
         \x20 frodo simulate <model> [--seed N] [--steps N]\n\
         \x20 frodo bench    <model> [--native]\n\
         \x20 frodo calibrate [--steps N] [--native [--iters N] [--sanitize]] [--check BANDS.ndjson] [--ledger | --ledger-out F]\n\
         \x20 frodo verify   <model> [--seeds N] [--steps N]\n\
         \x20 frodo convert  <in.{{slx,mdl}}> <out.{{slx,mdl}}>\n\
         \x20 frodo demo     <benchmark-name> <out.{{slx,mdl}}>\n\
         \x20 frodo obs      export <trace.ndjson> [--format chrome|collapsed|ndjson] [-o out]\n\
         \x20 frodo obs      diff <OLD> <NEW> [--fail-over PCT]   (ledger files or raw traces)\n\
         \x20 frodo obs      report <ledger.ndjson> [--strict]\n\
         \x20 frodo list\n\
         \n\
         compile and batch accept --ledger (append a perf-ledger entry to\n\
         .frodo/ledger.ndjson) or --ledger-out FILE for an explicit path.\n\
         batch --incremental compiles jobs sequentially through one compile\n\
         session per style: resubmitting an edited model re-analyzes only the\n\
         dirtied regions (models also accept random:<seed>:<size>[:edit:<k>]\n\
         specs; with --ledger, one entry per job).\n\
         --verify runs the range-soundness checker (frodo-verify) on every\n\
         fresh compile and fails closed with F1xx diagnostics; frodo lint\n\
         reports F0xx model diagnostics (exit 1 on errors, not warnings);\n\
         lint --explain CODE prints any rule's registry entry and a minimal\n\
         trigger. frodo analyze adds the dataflow analyses over the lowered\n\
         IR: value-range numeric safety (F201-F203), residual-redundancy\n\
         detection (F204), parallel-schedule race checking (F301/F302), and\n\
         buffer lifetimes; --gate exits nonzero on any finding, --selftest\n\
         runs the injected-defect detector checks. compile/batch/serve take\n\
         --analyze to run the same stage in the pipeline (fails closed on\n\
         F3xx). build --harness ITERS emits the self-checking native harness\n\
         (the ASan/UBSan CI lane compiles it with the sanitizers on).\n\
         --vectorize shapes loops for SIMD (hints adds restrict/alignment,\n\
         batch[:W] emits W-wide bodies); --window-reuse rewrites sliding-\n\
         window statements into delta updates over a persistent ring buffer.\n\
         --profile emits self-profiling C: per-statement call counts, wall\n\
         nanoseconds, and FLOP tallies, dumped as obs-schema NDJSON by the\n\
         generated frodo_prof_dump() (the harness dumps to stderr on exit);\n\
         frodo calibrate joins such measurements against the cost model and\n\
         gates per-kind drift with --check CALIBRATION_BANDS.ndjson."
    );
}

fn load_model(path: &str) -> Result<Model, String> {
    let p = Path::new(path);
    match p.extension().and_then(|e| e.to_str()) {
        Some("slx") => {
            let bytes = std::fs::read(p).map_err(|e| format!("{path}: {e}"))?;
            read_slx(&bytes, &frodo_obs::Trace::noop()).map_err(|e| format!("{path}: {e}"))
        }
        Some("mdl") => {
            let text = std::fs::read_to_string(p).map_err(|e| format!("{path}: {e}"))?;
            read_mdl(&text, &frodo_obs::Trace::noop()).map_err(|e| format!("{path}: {e}"))
        }
        _ => Err(format!("{path}: expected a .slx or .mdl file")),
    }
}

fn save_model(model: &Model, path: &str) -> Result<(), String> {
    let p = Path::new(path);
    match p.extension().and_then(|e| e.to_str()) {
        Some("slx") => {
            let bytes = write_slx(model).map_err(|e| e.to_string())?;
            std::fs::write(p, bytes).map_err(|e| format!("{path}: {e}"))
        }
        Some("mdl") => std::fs::write(p, write_mdl(model)).map_err(|e| format!("{path}: {e}")),
        _ => Err(format!("{path}: expected a .slx or .mdl destination")),
    }
}

fn parse_style(s: &str) -> Result<GeneratorStyle, String> {
    match s.to_ascii_lowercase().as_str() {
        "simulink" => Ok(GeneratorStyle::SimulinkCoder),
        "dfsynth" => Ok(GeneratorStyle::DfSynth),
        "hcg" => Ok(GeneratorStyle::Hcg),
        "frodo" => Ok(GeneratorStyle::Frodo),
        other => Err(format!(
            "unknown style '{other}' (expected simulink|dfsynth|hcg|frodo)"
        )),
    }
}

fn flag_value<'a>(args: &'a [String], names: &[&str]) -> Option<&'a str> {
    args.windows(2)
        .find(|w| names.contains(&w[0].as_str()))
        .map(|w| w[1].as_str())
}

/// Positional arguments: everything that is neither a flag nor a
/// value-taking flag's value.
fn positionals<'a>(args: &'a [String], value_flags: &[&str], bool_flags: &[&str]) -> Vec<&'a str> {
    let mut out = Vec::new();
    let mut skip = false;
    for arg in args {
        if skip {
            skip = false;
        } else if value_flags.contains(&arg.as_str()) {
            skip = true;
        } else if !bool_flags.contains(&arg.as_str()) {
            out.push(arg.as_str());
        }
    }
    out
}

fn cmd_analyze(args: &[String]) -> Result<(), String> {
    if args.iter().any(|a| a == "--selftest") {
        return analyze_selftest();
    }
    let pos = positionals(
        args,
        &[
            "--engine",
            "-s",
            "--style",
            "--vectorize",
            "--threads",
            "-t",
            "--format",
            "-f",
            "-o",
            "--output",
        ],
        &["--trace", "--window-reuse", "--gate"],
    );
    let model_ref = pos.first().ok_or("analyze: missing model path or name")?;
    let want_trace = args.iter().any(|a| a == "--trace");
    let model = resolve_model(model_ref)?;
    let analysis = Analysis::run_with(model, range_options(args)?).map_err(|e| e.to_string())?;
    if want_trace {
        print!("{}", frodo::core::explain::trace(&analysis));
        return Ok(());
    }
    println!(
        "model '{}': {} blocks, {} connections, {} data-truncation blocks",
        analysis.dfg().model().name(),
        analysis.dfg().model().len(),
        analysis.dfg().model().connections().len(),
        analysis.dfg().truncation_count()
    );
    print!("{}", analysis.report());
    println!("\ncalculation ranges of optimizable blocks:");
    for port in analysis.reduced_ports() {
        let block = analysis.dfg().model().block(port.block);
        println!(
            "  {} <{}> out{}: {}",
            block.name,
            block.kind.type_name(),
            port.port,
            analysis.range(port.block, port.port)
        );
    }

    // static analysis: lower with the requested style and run the
    // dataflow analyses over the statement IR
    let style = match flag_value(args, &["-s", "--style"]) {
        Some(s) => parse_style(s)?,
        None => GeneratorStyle::Frodo,
    };
    vector_mode(args)?; // validated for CLI-matrix symmetry; access sets are emission-invariant
    let lower = frodo::codegen::LowerOptions {
        window_reuse: args.iter().any(|a| a == "--window-reuse"),
        ..Default::default()
    };
    let program = frodo::codegen::generate_with(&analysis, style, lower, &frodo_obs::Trace::noop());
    let threads = intra_threads(args)?;
    let opts = frodo::verify::AnalyzeOptions {
        emit_threads: if threads == 0 { 4 } else { threads },
        ..Default::default()
    };
    let report = frodo::verify::analyze_compile(&analysis, &program, &opts);
    println!(
        "\nstatic analysis ({style}, {} statements, {} buffers):",
        report.stmts, report.buffers
    );
    println!(
        "  value ranges: {} buffers bounded in {} pass{} ({})",
        report.value_ranges.len(),
        report.interval_passes,
        if report.interval_passes == 1 {
            ""
        } else {
            "es"
        },
        if report.interval_converged {
            "converged"
        } else {
            "widened"
        }
    );
    println!(
        "  residual redundancy: {} element{} over {} statement{}",
        report.residual_elements,
        if report.residual_elements == 1 {
            ""
        } else {
            "s"
        },
        report.residual_stmts,
        if report.residual_stmts == 1 { "" } else { "s" }
    );
    println!(
        "  schedule: {} unit{} (width {}), {} conflicting pair{} checked, race-free: {}",
        report.schedule_units,
        if report.schedule_units == 1 { "" } else { "s" },
        report.schedule_width,
        report.schedule_pairs,
        if report.schedule_pairs == 1 { "" } else { "s" },
        if report.race_free() { "yes" } else { "NO" }
    );
    println!(
        "  emission chunks: {} ({} cross-chunk conflicting pair{})",
        report.chunk_count,
        report.chunk_cross_conflicts,
        if report.chunk_cross_conflicts == 1 {
            ""
        } else {
            "s"
        }
    );
    println!(
        "  lifetimes: {} dead-store element{}, {} temp buffer{} -> {} slot{} ({} elements reclaimable)",
        report.lifetime.dead_store_elements,
        if report.lifetime.dead_store_elements == 1 { "" } else { "s" },
        report.lifetime.temp_buffers,
        if report.lifetime.temp_buffers == 1 { "" } else { "s" },
        report.lifetime.temp_slots,
        if report.lifetime.temp_slots == 1 { "" } else { "s" },
        report.lifetime.reclaimable_elements
    );
    let rendered = match flag_value(args, &["--format", "-f"]).unwrap_or("human") {
        "human" => frodo::verify::render_human(&report.diagnostics),
        "json" => frodo::verify::render_json(&report.diagnostics),
        "sarif" => frodo::verify::render_sarif(&report.diagnostics),
        other => {
            return Err(format!(
                "analyze: unknown format '{other}' (expected human|json|sarif)"
            ))
        }
    };
    match flag_value(args, &["-o", "--output"]) {
        Some(out) => std::fs::write(out, &rendered).map_err(|e| format!("{out}: {e}"))?,
        None => {
            if !report.diagnostics.is_empty() {
                println!();
                print!("{rendered}");
            }
        }
    }
    if args.iter().any(|a| a == "--gate") && !report.is_clean() {
        return Err(format!(
            "analyze gate: {} finding{} ({} error{}, {} residual element{}) in '{model_ref}'",
            report.diagnostics.len(),
            if report.diagnostics.len() == 1 {
                ""
            } else {
                "s"
            },
            report.error_count(),
            if report.error_count() == 1 { "" } else { "s" },
            report.residual_elements,
            if report.residual_elements == 1 {
                ""
            } else {
                "s"
            },
        ));
    }
    Ok(())
}

/// Injected-defect self-test of the `analyze` detectors: a known
/// over-computing program must trip the residual detector (F204) and a
/// claimed concurrent schedule with overlapping writes must be refuted
/// (F301). Exits non-zero if either detector goes blind.
fn analyze_selftest() -> Result<(), String> {
    use frodo::codegen::lir::{BufId, Buffer, BufferRole, ConvStyle, Program, Slice, Stmt};
    use frodo::codegen::GeneratorStyle;

    // Figure-1-style over-computation: conv writes [0, 60), only [5, 55)
    // is consumed -> 10 residual elements
    let fig1 = Program {
        name: "selftest_residual".into(),
        style: GeneratorStyle::SimulinkCoder,
        buffers: vec![
            Buffer {
                name: "u".into(),
                len: 50,
                role: BufferRole::Input(0),
            },
            Buffer {
                name: "v".into(),
                len: 11,
                role: BufferRole::Const(vec![0.1; 11]),
            },
            Buffer {
                name: "conv".into(),
                len: 60,
                role: BufferRole::Temp,
            },
            Buffer {
                name: "out0".into(),
                len: 50,
                role: BufferRole::Output(0),
            },
        ],
        stmts: vec![
            Stmt::Conv {
                dst: BufId(2),
                u: BufId(0),
                u_len: 50,
                v: BufId(1),
                v_len: 11,
                k0: 0,
                k1: 60,
                style: ConvStyle::Branchy,
            },
            Stmt::Copy {
                dst: Slice::new(BufId(3), 0),
                src: Slice::new(BufId(2), 5),
                len: 50,
            },
        ],
    };
    let report =
        frodo::verify::analyze_program(&fig1, &[], &frodo::verify::AnalyzeOptions::default());
    if report.residual_elements != 10 || !report.diagnostics.iter().any(|d| d.code == "F204") {
        return Err(format!(
            "analyze selftest: residual detector missed the injected over-computation              (got {} residual elements)",
            report.residual_elements
        ));
    }
    println!(
        "selftest residual: PASS ({} residual elements flagged F204)",
        report.residual_elements
    );

    // overlapping writes claimed concurrent: the race checker must refute
    let racy = Program {
        name: "selftest_race".into(),
        style: GeneratorStyle::Frodo,
        buffers: vec![Buffer {
            name: "out0".into(),
            len: 8,
            role: BufferRole::Output(0),
        }],
        stmts: vec![
            Stmt::Fill {
                dst: Slice::new(BufId(0), 0),
                value: 1.0,
                len: 6,
            },
            Stmt::Fill {
                dst: Slice::new(BufId(0), 4),
                value: 2.0,
                len: 4,
            },
        ],
    };
    let accs: Vec<_> = racy
        .stmts
        .iter()
        .map(|s| frodo::codegen::access::stmt_access(&racy, s))
        .collect();
    let pairs = frodo::verify::conflict_pairs(&accs);
    let claimed = frodo::verify::Schedule {
        units: vec![frodo::verify::Unit {
            tasks: vec![
                frodo::verify::Task { stmts: vec![0] },
                frodo::verify::Task { stmts: vec![1] },
            ],
        }],
    };
    let (diags, checked) = frodo::verify::check_schedule(&racy, &claimed, &accs, &pairs);
    if !diags.iter().any(|d| d.code == "F301") {
        return Err("analyze selftest: race checker accepted an overlapping-write schedule".into());
    }
    println!("selftest race: PASS (injected overlap refuted F301, {checked} pair checked)");

    // and the derived schedule for the same program must verify race-free
    let derived = frodo::verify::level_schedule(&pairs, racy.stmts.len());
    let (diags, _) = frodo::verify::check_schedule(&racy, &derived, &accs, &pairs);
    if !diags.is_empty() {
        return Err("analyze selftest: derived schedule failed its own verification".into());
    }
    println!("selftest schedule: PASS (derived level schedule verifies race-free)");
    Ok(())
}

/// Resolves a CLI model reference to a model: a `.slx`/`.mdl` path, the
/// name of a bundled Table-1 benchmark, or a synthetic-model spec
/// (`random:<seed>:<size>[:edit:<k>]`).
fn resolve_model(model_ref: &str) -> Result<Model, String> {
    let p = Path::new(model_ref);
    if matches!(p.extension().and_then(|e| e.to_str()), Some("slx" | "mdl")) {
        return load_model(model_ref);
    }
    frodo::benchmodels::by_spec(model_ref).ok_or_else(|| {
        format!(
            "'{model_ref}' is not a .slx/.mdl path, a bundled benchmark (try 'frodo list'), \
             or a random:<seed>:<size>[:edit:<k>] spec"
        )
    })
}

/// Static model diagnostics (`frodo-verify` layer 1). Exit code is only
/// non-zero for error-severity findings; warnings report and pass.
fn cmd_lint(args: &[String]) -> Result<(), String> {
    if let Some(code) = flag_value(args, &["--explain"]) {
        return lint_explain(code);
    }
    let pos = positionals(args, &["--format", "-f", "-o", "--output"], &[]);
    let model_ref = pos.first().ok_or("lint: missing model path or name")?;
    let model = resolve_model(model_ref)?;
    let diags = frodo::verify::lint(&model);
    let rendered = match flag_value(args, &["--format", "-f"]).unwrap_or("human") {
        "human" => frodo::verify::render_human(&diags),
        "json" => frodo::verify::render_json(&diags),
        "sarif" => frodo::verify::render_sarif(&diags),
        other => {
            return Err(format!(
                "lint: unknown format '{other}' (expected human|json|sarif)"
            ))
        }
    };
    match flag_value(args, &["-o", "--output"]) {
        Some(out) => std::fs::write(out, &rendered).map_err(|e| format!("{out}: {e}"))?,
        None => print!("{rendered}"),
    }
    let errors = diags
        .iter()
        .filter(|d| d.severity == frodo::verify::Severity::Error)
        .count();
    if errors > 0 {
        Err(format!(
            "{errors} error{} in '{model_ref}' ({} finding{} total)",
            if errors == 1 { "" } else { "s" },
            diags.len(),
            if diags.len() == 1 { "" } else { "s" }
        ))
    } else {
        eprintln!(
            "lint '{model_ref}': {} finding{}, no errors",
            diags.len(),
            if diags.len() == 1 { "" } else { "s" }
        );
        Ok(())
    }
}

/// `frodo lint --explain CODE`: prints the registry entry for one rule —
/// severity, summary, and a minimal model/program that triggers it.
fn lint_explain(code: &str) -> Result<(), String> {
    let code = code.to_ascii_uppercase();
    match frodo::verify::rule(&code) {
        Some(r) => {
            println!("{} ({})", r.code, r.severity);
            println!("  {}", r.summary);
            println!("\nminimal trigger:");
            for line in r.example.lines() {
                println!("  {line}");
            }
            Ok(())
        }
        None => {
            let known: Vec<&str> = frodo::verify::RULES.iter().map(|r| r.code).collect();
            Err(format!(
                "lint: unknown rule id '{code}' (known rules: {})",
                known.join(", ")
            ))
        }
    }
}

/// Parses `--vectorize auto|off|hints|batch[:W]`; bare `batch` takes the
/// x86 cost model's lane count.
fn vector_mode(args: &[String]) -> Result<frodo::codegen::VectorMode, String> {
    match flag_value(args, &["--vectorize"]) {
        None => Ok(frodo::codegen::VectorMode::default()),
        Some(s) => frodo::codegen::VectorMode::parse(s, CostModel::x86_gcc().lanes()),
    }
}

fn cmd_build(args: &[String]) -> Result<(), String> {
    let path = args.first().ok_or("build: missing model path")?;
    let style = match flag_value(args, &["-s", "--style"]) {
        Some(s) => parse_style(s)?,
        None => GeneratorStyle::Frodo,
    };
    let shared = args.iter().any(|a| a == "--shared-helper");
    let model = resolve_model(path)?;
    let analysis = Analysis::run(model).map_err(|e| e.to_string())?;
    let program = generate(&analysis, style, &frodo_obs::Trace::noop());
    let opts = frodo::codegen::CEmitOptions {
        shared_conv_helper: shared,
        vectorize: vector_mode(args)?,
        profile: args.iter().any(|a| a == "--profile"),
    };
    let code = match flag_value(args, &["--harness"]) {
        Some(iters) => {
            let iters: usize = iters
                .parse()
                .map_err(|_| "build: bad --harness iteration count".to_string())?;
            frodo::codegen::emit_c_harness_with(&program, iters, opts)
        }
        None => frodo::codegen::emit_c_with(&program, opts),
    };
    match flag_value(args, &["-o", "--output"]) {
        Some(out) => {
            std::fs::write(out, &code).map_err(|e| format!("{out}: {e}"))?;
            eprintln!(
                "wrote {out}: {} statements, {} elements/step ({style})",
                program.stmts.len(),
                program.computed_elements()
            );
        }
        None => print!("{code}"),
    }
    Ok(())
}

/// Resolves a CLI model reference: a `.slx`/`.mdl` path, the name of a
/// bundled Table-1 benchmark, or a `random:<seed>:<size>[:edit:<k>]` spec.
fn job_spec_for(model_ref: &str, style: GeneratorStyle) -> Result<JobSpec, String> {
    let p = Path::new(model_ref);
    if matches!(p.extension().and_then(|e| e.to_str()), Some("slx" | "mdl")) {
        return Ok(JobSpec::from_path(p, style));
    }
    if let Some(bench) = frodo::benchmodels::by_name(model_ref) {
        return Ok(JobSpec::from_model(bench.name, bench.model, style));
    }
    match frodo::benchmodels::by_spec(model_ref) {
        Some(model) => Ok(JobSpec::from_model(model_ref, model, style)),
        None => Err(format!(
            "'{model_ref}' is not a .slx/.mdl path, a bundled benchmark (try 'frodo list'), \
             or a random:<seed>:<size>[:edit:<k>] spec"
        )),
    }
}

/// Parses `--threads N` (`0` or absent means auto: one per available core,
/// split across batch workers).
fn intra_threads(args: &[String]) -> Result<usize, String> {
    flag_value(args, &["--threads", "-t"])
        .map(|s| s.parse().map_err(|_| "bad --threads".to_string()))
        .transpose()
        .map(|v| v.unwrap_or(0))
}

/// Parses `--engine` into range options. The explicit engine is respected
/// as long as the resolved intra-model thread budget stays at one; with
/// more threads the driver swaps in the parallel engine (byte-identical
/// results either way).
fn range_options(args: &[String]) -> Result<RangeOptions, String> {
    let engine = match flag_value(args, &["--engine"]) {
        None | Some("recursive") => RangeEngine::Recursive,
        Some("iterative") => RangeEngine::Iterative,
        Some("parallel") => RangeEngine::Parallel,
        Some(other) => {
            return Err(format!(
                "unknown engine '{other}' (expected recursive|iterative|parallel)"
            ))
        }
    };
    Ok(RangeOptions {
        engine,
        ..Default::default()
    })
}

/// The service configuration shared by `compile` and `batch`.
fn service_config(args: &[String]) -> Result<ServiceConfig, String> {
    Ok(ServiceConfig {
        workers: flag_value(args, &["--workers", "-j"])
            .map(|s| s.parse().map_err(|_| "bad --workers".to_string()))
            .transpose()?
            .unwrap_or(0),
        cache_dir: flag_value(args, &["--cache-dir"]).map(Into::into),
        no_cache: args.iter().any(|a| a == "--no-cache"),
        cache_cap_bytes: flag_value(args, &["--cache-cap"])
            .map(|s| s.parse().map_err(|_| "bad --cache-cap".to_string()))
            .transpose()?
            .unwrap_or(0),
    })
}

fn cmd_compile(args: &[String]) -> Result<(), String> {
    let pos = positionals(
        args,
        &[
            "-s",
            "--style",
            "--threads",
            "-t",
            "--engine",
            "--cache-dir",
            "--workers",
            "-j",
            "--trace",
            "-o",
            "--output",
            "--ledger-out",
            "--vectorize",
        ],
        &[
            "--no-cache",
            "--ledger",
            "--verify",
            "--analyze",
            "--window-reuse",
            "--profile",
        ],
    );
    let model_ref = pos.first().ok_or("compile: missing model path or name")?;
    let style = match flag_value(args, &["-s", "--style"]) {
        Some(s) => parse_style(s)?,
        None => GeneratorStyle::Frodo,
    };
    let trace_out = flag_value(args, &["--trace"]);
    let ledger = ledger_path(args);
    // the ledger is derived from a trace, so --ledger implies tracing
    let trace = (trace_out.is_some() || ledger.is_some()).then(Trace::new);
    let intra = intra_threads(args)?;
    let mut spec = job_spec_for(model_ref, style)?.with_options(
        CompileOptions::builder()
            .range(range_options(args)?)
            .intra_threads(intra)
            .verify(args.iter().any(|a| a == "--verify"))
            .analyze(args.iter().any(|a| a == "--analyze"))
            .vectorize(vector_mode(args)?)
            .window_reuse(args.iter().any(|a| a == "--window-reuse"))
            .profile(args.iter().any(|a| a == "--profile"))
            .build(),
    );
    if let Some(t) = &trace {
        spec = spec.with_trace(t);
    }
    let service = CompileService::new(service_config(args)?);
    let out = service.compile(spec).map_err(|e| {
        for line in frodo::verify::render_human(e.diagnostics()).lines() {
            eprintln!("{line}");
        }
        e.to_string()
    })?;
    let r = &out.report;
    eprintln!(
        "{} ({}): cache {}, digest {}, {} blocks ({} optimizable), \
         {}/{} elements eliminated, {} bytes of C",
        r.job,
        r.style.label(),
        r.cache.label(),
        r.digest,
        r.metrics.blocks,
        r.metrics.optimizable_blocks,
        r.metrics.eliminated_elements,
        r.metrics.total_elements,
        r.code_bytes
    );
    for (name, d) in r.timings.rows() {
        eprintln!("  {name:<10} {}", frodo::driver::report::fmt_duration(d));
    }
    eprintln!(
        "  {:<10} {}",
        "total",
        frodo::driver::report::fmt_duration(r.timings.total())
    );
    if let (Some(path), Some(t)) = (trace_out, &trace) {
        std::fs::write(path, t.to_ndjson()).map_err(|e| format!("{path}: {e}"))?;
        eprintln!("wrote trace to {path} ({} spans)", t.span_count());
    }
    if let (Some(path), Some(t)) = (&ledger, &trace) {
        let agg = frodo::obs::aggregate(&t.snapshot());
        let entry = frodo::obs::LedgerEntry::from_agg(
            &agg,
            &r.job,
            engine_label(intra),
            intra as u64,
            1,
            r.timings.total().as_nanos() as u64,
        );
        frodo::obs::append_entry(path, &entry)?;
        eprintln!("appended ledger entry to {}", path.display());
    }
    match flag_value(args, &["-o", "--output"]) {
        Some(path) => std::fs::write(path, &out.code).map_err(|e| format!("{path}: {e}")),
        None => {
            print!("{}", out.code);
            Ok(())
        }
    }
}

/// The engine label a run is recorded under in the perf ledger, from its
/// `--threads` request (the driver swaps in the parallel engine when the
/// resolved budget exceeds one thread).
fn engine_label(intra_threads: usize) -> &'static str {
    match intra_threads {
        0 => "auto",
        1 => "recursive",
        _ => "parallel",
    }
}

/// Resolves the perf-ledger destination: `--ledger-out FILE` for an
/// explicit path, bare `--ledger` for the default `.frodo/ledger.ndjson`.
fn ledger_path(args: &[String]) -> Option<std::path::PathBuf> {
    if let Some(path) = flag_value(args, &["--ledger-out"]) {
        return Some(path.into());
    }
    args.iter()
        .any(|a| a == "--ledger")
        .then(|| Path::new(".frodo").join("ledger.ndjson"))
}

fn cmd_batch(args: &[String]) -> Result<(), String> {
    let styles: Vec<GeneratorStyle> = match flag_value(args, &["-s", "--styles", "--style"]) {
        None => vec![GeneratorStyle::Frodo],
        Some("all") => GeneratorStyle::ALL.to_vec(),
        Some(list) => list.split(',').map(parse_style).collect::<Result<_, _>>()?,
    };
    let out_dir = flag_value(args, &["-o", "--output"]);
    let machine = args.iter().any(|a| a == "--machine");
    let want_tree = args.iter().any(|a| a == "--trace");
    let trace_out = flag_value(args, &["--trace-out"]);
    let ledger = ledger_path(args);

    // positional args are model references; flag values are not
    let model_refs = positionals(
        args,
        &[
            "--workers",
            "-j",
            "--threads",
            "-t",
            "--engine",
            "--cache-dir",
            "-s",
            "--styles",
            "--style",
            "-o",
            "--output",
            "--trace-out",
            "--ledger-out",
            "--region-max",
            "--vectorize",
        ],
        &[
            "--no-cache",
            "--machine",
            "--trace",
            "--ledger",
            "--verify",
            "--analyze",
            "--incremental",
            "--window-reuse",
            "--profile",
        ],
    );
    if model_refs.is_empty() {
        return Err("batch: no models given (paths or benchmark names; see 'frodo list')".into());
    }

    let intra = intra_threads(args)?;
    let options = CompileOptions::builder()
        .range(range_options(args)?)
        .intra_threads(intra)
        .verify(args.iter().any(|a| a == "--verify"))
        .analyze(args.iter().any(|a| a == "--analyze"))
        .vectorize(vector_mode(args)?)
        .window_reuse(args.iter().any(|a| a == "--window-reuse"))
        .profile(args.iter().any(|a| a == "--profile"))
        .build();
    if args.iter().any(|a| a == "--incremental") {
        return cmd_batch_incremental(args, &model_refs, &styles, options);
    }
    let mut specs = Vec::new();
    for model_ref in &model_refs {
        for &style in &styles {
            specs.push(job_spec_for(model_ref, style)?.with_options(options));
        }
    }

    let service = CompileService::new(service_config(args)?);
    let trace = (want_tree || trace_out.is_some() || ledger.is_some()).then(Trace::new);
    let report = match &trace {
        Some(t) => service.compile_batch_traced(specs, t),
        None => service.compile_batch(specs),
    };
    print!("{}", report.render_table());
    if machine {
        print!("{}", report.machine_lines());
    }
    if want_tree {
        if let Some(tree) = report.render_trace() {
            println!("\nspan tree:\n{tree}");
        }
    }
    if let (Some(path), Some(t)) = (trace_out, &trace) {
        std::fs::write(path, t.to_ndjson()).map_err(|e| format!("{path}: {e}"))?;
        eprintln!("wrote trace to {path} ({} spans)", t.span_count());
    }
    if let Some(path) = &ledger {
        let label = format!("batch:{}", model_refs.len());
        let entry = report
            .ledger_entry(&label, engine_label(intra), intra as u64)
            .ok_or("batch: ledger requested but no trace was recorded")?;
        frodo::obs::append_entry(path, &entry)?;
        eprintln!("appended ledger entry to {}", path.display());
    }

    if let Some(dir) = out_dir {
        std::fs::create_dir_all(dir).map_err(|e| format!("{dir}: {e}"))?;
        for out in report.jobs.iter().flatten() {
            let r = &out.report;
            let file = format!(
                "{}/{}_{}.c",
                dir,
                r.job.replace(['/', '\\'], "_"),
                r.style.label().to_ascii_lowercase()
            );
            std::fs::write(&file, &out.code).map_err(|e| format!("{file}: {e}"))?;
        }
        eprintln!("wrote {} C files to {dir}", report.succeeded());
    }

    if report.failed() > 0 {
        Err(format!(
            "{} of {} jobs failed",
            report.failed(),
            report.jobs.len()
        ))
    } else {
        Ok(())
    }
}

/// `batch --incremental`: jobs run sequentially through one
/// [`frodo::driver::CompileSession`] per style, so a resubmitted model
/// reuses the per-region analysis and lowering of every region whose
/// inputs are unchanged. With `--ledger` each job appends its own entry
/// (labelled by its model reference), which is how the CI gate reads the
/// region hit rate of a cold-then-edited pair.
fn cmd_batch_incremental(
    args: &[String],
    model_refs: &[&str],
    styles: &[GeneratorStyle],
    options: CompileOptions,
) -> Result<(), String> {
    let out_dir = flag_value(args, &["-o", "--output"]);
    let want_tree = args.iter().any(|a| a == "--trace");
    let trace_out = flag_value(args, &["--trace-out"]);
    let ledger = ledger_path(args);
    let intra = intra_threads(args)?;
    let region_max: usize = flag_value(args, &["--region-max"])
        .map(|s| s.parse().map_err(|_| "bad --region-max".to_string()))
        .transpose()?
        .unwrap_or(frodo::driver::DEFAULT_REGION_MAX);

    let mut sessions: Vec<frodo::driver::CompileSession> = styles
        .iter()
        .map(|&style| {
            frodo::driver::CompileSession::builder(style)
                .options(options)
                .region_max(region_max)
                .build()
        })
        .collect();

    if let Some(dir) = out_dir {
        std::fs::create_dir_all(dir).map_err(|e| format!("{dir}: {e}"))?;
    }

    let mut last_trace = None;
    let mut ledger_entries = 0usize;
    let mut wrote = 0usize;
    for model_ref in model_refs {
        for (session, &style) in sessions.iter_mut().zip(styles) {
            let model = resolve_model(model_ref)?;
            let trace = if want_tree || trace_out.is_some() || ledger.is_some() {
                Trace::new()
            } else {
                Trace::noop()
            };
            let out = session.compile(model_ref, model, &trace).map_err(|e| {
                for line in frodo::verify::render_human(e.diagnostics()).lines() {
                    eprintln!("{line}");
                }
                e.to_string()
            })?;
            let r = &out.report;
            let s = session.stats();
            eprintln!(
                "{} ({}): regions {}/{} reused, {} dirty blocks, {}/{} elements eliminated, \
                 {} bytes of C, {}",
                r.job,
                r.style.label(),
                s.last_region_hits,
                s.last_region_total,
                s.last_dirty_blocks,
                r.metrics.eliminated_elements,
                r.metrics.total_elements,
                r.code_bytes,
                frodo::driver::report::fmt_duration(r.timings.total()),
            );
            if want_tree {
                println!("{}", trace.render_tree());
            }
            if let Some(path) = &ledger {
                let agg = frodo::obs::aggregate(&trace.snapshot());
                let entry = frodo::obs::LedgerEntry::from_agg(
                    &agg,
                    &r.job,
                    engine_label(intra),
                    intra as u64,
                    1,
                    r.timings.total().as_nanos() as u64,
                );
                frodo::obs::append_entry(path, &entry)?;
                ledger_entries += 1;
            }
            if let Some(dir) = out_dir {
                let file = format!(
                    "{}/{}_{}.c",
                    dir,
                    r.job.replace(['/', '\\', ':'], "_"),
                    style.label().to_ascii_lowercase()
                );
                std::fs::write(&file, &out.code).map_err(|e| format!("{file}: {e}"))?;
                wrote += 1;
            }
            if trace_out.is_some() {
                last_trace = Some(trace);
            }
        }
    }
    if let (Some(path), Some(t)) = (trace_out, &last_trace) {
        std::fs::write(path, t.to_ndjson()).map_err(|e| format!("{path}: {e}"))?;
        eprintln!(
            "wrote final job's trace to {path} ({} spans)",
            t.span_count()
        );
    }
    if let Some(path) = &ledger {
        eprintln!(
            "appended {ledger_entries} ledger entries to {}",
            path.display()
        );
    }
    if let Some(dir) = out_dir {
        eprintln!("wrote {wrote} C files to {dir}");
    }
    Ok(())
}

fn cmd_simulate(args: &[String]) -> Result<(), String> {
    let path = args.first().ok_or("simulate: missing model path")?;
    let seed: u64 = flag_value(args, &["--seed"])
        .map(|s| s.parse().map_err(|_| "bad --seed".to_string()))
        .transpose()?
        .unwrap_or(1);
    let steps: usize = flag_value(args, &["--steps"])
        .map(|s| s.parse().map_err(|_| "bad --steps".to_string()))
        .transpose()?
        .unwrap_or(1);
    let model = load_model(path)?;
    let dfg =
        frodo::graph::Dfg::new(model, &frodo_obs::Trace::noop()).map_err(|e| e.to_string())?;
    let mut sim = ReferenceSimulator::new(dfg.clone());
    for step in 0..steps {
        let inputs = workload::random_inputs(&dfg, seed.wrapping_add(step as u64));
        let outputs = sim.step(&inputs).map_err(|e| e.to_string())?;
        println!("step {step}:");
        for (i, t) in outputs.iter().enumerate() {
            println!("  out{i} = {t}");
        }
    }
    Ok(())
}

fn cmd_bench(args: &[String]) -> Result<(), String> {
    let path = args.first().ok_or("bench: missing model path")?;
    let want_native = args.iter().any(|a| a == "--native");
    let model = load_model(path)?;
    let analysis = Analysis::run(model).map_err(|e| e.to_string())?;
    println!(
        "{:<10} {:>10} {:>12} {:>12} {:>12} {:>12}",
        "style", "elements", "x86/gcc", "x86/clang", "arm/gcc", "arm/clang"
    );
    for style in GeneratorStyle::ALL {
        let p = generate(&analysis, style, &frodo_obs::Trace::noop());
        let cells: Vec<String> = CostModel::all()
            .iter()
            .map(|cm| format!("{:.1}us", cm.program_ns(&p) / 1e3))
            .collect();
        println!(
            "{:<10} {:>10} {:>12} {:>12} {:>12} {:>12}",
            style.label(),
            p.computed_elements(),
            cells[0],
            cells[1],
            cells[2],
            cells[3]
        );
    }
    if want_native {
        if !native::gcc_available() {
            return Err("--native requested but gcc is unavailable".into());
        }
        println!("\nnative x86 gcc -O3 (10000 iterations):");
        for style in GeneratorStyle::ALL {
            let p = generate(&analysis, style, &frodo_obs::Trace::noop());
            let r = native::compile_and_run(&p, style, 10_000).map_err(|e| e.to_string())?;
            println!("{:<10} {:>12.0} ns/iter", style.label(), r.ns_per_iter);
        }
    }
    Ok(())
}

/// Cost-model calibration: runs the Table-1 suite's FRODO programs under
/// the profiled VM (or self-profiling native binaries with `--native`),
/// joins measured per-statement costs against [`CostModel`] predictions,
/// and prints per-kind p50/p95 measured/predicted ratios. `--check FILE`
/// exits nonzero when a kind's p50 leaves its committed tolerance band;
/// `--ledger`/`--ledger-out` append the report as a perf-ledger entry.
/// `--native --sanitize` builds the harnesses under ASan/UBSan instead of
/// `-O3` — a dynamic memory/UB sweep of every benchmark's generated code
/// (don't `--check` those timings against the committed bands).
fn cmd_calibrate(args: &[String]) -> Result<(), String> {
    use frodo::bench::calibrate;
    let steps: usize = flag_value(args, &["--steps"])
        .map(|s| s.parse().map_err(|_| "bad --steps".to_string()))
        .transpose()?
        .unwrap_or(5);
    let start = std::time::Instant::now();
    let sanitize = args.iter().any(|a| a == "--sanitize");
    let report = if args.iter().any(|a| a == "--native") {
        if !native::gcc_available() {
            return Err("calibrate: --native requested but gcc is unavailable".into());
        }
        if sanitize && !native::sanitizer_available() {
            return Err("calibrate: --sanitize requested but gcc lacks ASan/UBSan runtimes".into());
        }
        let iters: usize = flag_value(args, &["--iters"])
            .map(|s| s.parse().map_err(|_| "bad --iters".to_string()))
            .transpose()?
            .unwrap_or(200);
        calibrate::calibrate_native_opts(iters, sanitize).map_err(|e| e.to_string())?
    } else {
        if sanitize {
            return Err("calibrate: --sanitize requires --native".into());
        }
        calibrate::calibrate_vm(steps)
    };
    let wall_ns = start.elapsed().as_nanos() as u64;
    print!("{}", report.render());
    if let Some(path) = ledger_path(args) {
        let entry = report.ledger_entry(wall_ns);
        frodo::obs::append_entry(&path, &entry)?;
        eprintln!("appended calibration entry to {}", path.display());
    }
    if let Some(path) = flag_value(args, &["--check"]) {
        let text = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
        let bands = calibrate::parse_bands(&text).map_err(|e| format!("{path}: {e}"))?;
        let violations = calibrate::check_bands(&report, &bands);
        if !violations.is_empty() {
            for v in &violations {
                eprintln!("calibrate: {v}");
            }
            return Err(format!(
                "{} calibration band violation(s) against {path}",
                violations.len()
            ));
        }
        eprintln!(
            "all {} kinds inside their bands ({path})",
            report.kinds.len()
        );
    }
    Ok(())
}

/// The paper's §4 methodology as a command: random test cases, every
/// generator's output compared against model simulation.
fn cmd_verify(args: &[String]) -> Result<(), String> {
    let path = args.first().ok_or("verify: missing model path")?;
    let seeds: u64 = flag_value(args, &["--seeds"])
        .map(|s| s.parse().map_err(|_| "bad --seeds".to_string()))
        .transpose()?
        .unwrap_or(16);
    let steps: u64 = flag_value(args, &["--steps"])
        .map(|s| s.parse().map_err(|_| "bad --steps".to_string()))
        .transpose()?
        .unwrap_or(3);
    let model = load_model(path)?;
    let analysis = Analysis::run(model).map_err(|e| e.to_string())?;
    let dfg = analysis.dfg().clone();
    let mut worst_by_style = vec![0.0f64; GeneratorStyle::ALL.len()];
    let mut cases = 0usize;
    for seed in 0..seeds {
        let mut oracle = ReferenceSimulator::new(dfg.clone());
        let mut vms: Vec<_> = GeneratorStyle::ALL
            .iter()
            .map(|&s| {
                let p = generate(&analysis, s, &frodo_obs::Trace::noop());
                let vm = Vm::new(&p);
                (p, vm)
            })
            .collect();
        for step in 0..steps {
            let inputs = workload::random_inputs(&dfg, seed.wrapping_mul(7919).wrapping_add(step));
            let expected = oracle.step(&inputs).map_err(|e| e.to_string())?;
            let raw: Vec<Vec<f64>> = inputs.iter().map(|t| t.data().to_vec()).collect();
            for (k, (p, vm)) in vms.iter_mut().enumerate() {
                let got = vm.step(p, &raw);
                let worst = got
                    .iter()
                    .zip(&expected)
                    .flat_map(|(g, e)| g.iter().zip(e.data()).map(|(a, b)| (a - b).abs()))
                    .fold(0.0, f64::max);
                worst_by_style[k] = worst_by_style[k].max(worst);
            }
            cases += 1;
        }
    }
    println!(
        "verified '{}' against model simulation: {cases} random cases x {} generators",
        dfg.model().name(),
        GeneratorStyle::ALL.len()
    );
    let mut ok = true;
    for (style, worst) in GeneratorStyle::ALL.iter().zip(&worst_by_style) {
        let verdict = if *worst < 1e-9 {
            "consistent"
        } else {
            "DEVIATES"
        };
        if *worst >= 1e-9 {
            ok = false;
        }
        println!(
            "  {:<10} max deviation {:>10.2e}  {verdict}",
            style.label(),
            worst
        );
    }
    if ok {
        println!("all generators are consistent with model simulation");
        Ok(())
    } else {
        Err("generated code deviates from model simulation".into())
    }
}

fn cmd_convert(args: &[String]) -> Result<(), String> {
    let (src, dst) = match args {
        [a, b, ..] => (a, b),
        _ => return Err("convert: need <input> and <output> paths".into()),
    };
    let model = load_model(src)?;
    save_model(&model, dst)?;
    eprintln!("converted {src} -> {dst} ({} blocks)", model.deep_len());
    Ok(())
}

fn cmd_demo(args: &[String]) -> Result<(), String> {
    let (name, out) = match args {
        [a, b, ..] => (a, b),
        _ => return Err("demo: need <benchmark-name> and <output> (try 'frodo list')".into()),
    };
    let bench = frodo::benchmodels::by_name(name)
        .ok_or_else(|| format!("unknown benchmark '{name}' (try 'frodo list')"))?;
    save_model(&bench.model, out)?;
    eprintln!(
        "wrote {} ({} blocks) to {out}",
        bench.name,
        bench.model.deep_len()
    );
    Ok(())
}

/// The `frodo obs` family: trace exports, cross-run diffs, and ledger
/// reports — all over the NDJSON files the rest of the CLI produces.
fn cmd_obs(args: &[String]) -> Result<(), String> {
    match args.first().map(String::as_str) {
        Some("export") => cmd_obs_export(&args[1..]),
        Some("diff") => cmd_obs_diff(&args[1..]),
        Some("report") => cmd_obs_report(&args[1..]),
        _ => Err("obs: expected a subcommand: export | diff | report".into()),
    }
}

fn cmd_obs_export(args: &[String]) -> Result<(), String> {
    let pos = positionals(args, &["--format", "-f", "-o", "--output"], &[]);
    let input = pos.first().ok_or("obs export: missing trace file")?;
    let text = std::fs::read_to_string(input).map_err(|e| format!("{input}: {e}"))?;
    let snap = frodo::obs::ndjson::snapshot(&text).map_err(|e| format!("{input}: {e}"))?;
    let rendered = match flag_value(args, &["--format", "-f"]).unwrap_or("chrome") {
        "chrome" => frodo::obs::chrome_trace(&snap),
        "collapsed" => frodo::obs::collapsed(&snap),
        "ndjson" => frodo::obs::ndjson_export(&snap),
        other => {
            return Err(format!(
                "obs export: unknown format '{other}' (expected chrome|collapsed|ndjson)"
            ))
        }
    };
    match flag_value(args, &["-o", "--output"]) {
        Some(out) => {
            std::fs::write(out, &rendered).map_err(|e| format!("{out}: {e}"))?;
            eprintln!("wrote {out} ({} bytes)", rendered.len());
            Ok(())
        }
        None => {
            print!("{rendered}");
            Ok(())
        }
    }
}

/// Loads a comparison side for `obs diff`: the last entry of a ledger
/// file, or a raw NDJSON trace folded into an equivalent entry on the
/// fly (label = file name, wall = the latest span end).
fn diff_side(path: &str) -> Result<frodo::obs::LedgerEntry, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
    if text.contains("\"type\":\"ledger\"") {
        let entries = frodo::obs::read_ledger(&text).map_err(|e| format!("{path}: {e}"))?;
        return entries
            .into_iter()
            .last()
            .ok_or_else(|| format!("{path}: ledger file has no entries"));
    }
    let snap = frodo::obs::ndjson::snapshot(&text).map_err(|e| format!("{path}: {e}"))?;
    let wall_ns = snap
        .spans
        .iter()
        .map(|s| s.start_ns + s.dur_ns)
        .max()
        .unwrap_or(0);
    let agg = frodo::obs::aggregate(&snap);
    Ok(frodo::obs::LedgerEntry::from_agg(
        &agg, path, "trace", 0, 0, wall_ns,
    ))
}

fn cmd_obs_diff(args: &[String]) -> Result<(), String> {
    let pos = positionals(args, &["--fail-over"], &[]);
    let (old_path, new_path) = match pos.as_slice() {
        [a, b, ..] => (*a, *b),
        _ => return Err("obs diff: need <OLD> and <NEW> (ledger files or raw traces)".into()),
    };
    let fail_over: f64 = flag_value(args, &["--fail-over"])
        .map(|s| s.parse().map_err(|_| "bad --fail-over".to_string()))
        .transpose()?
        .unwrap_or(0.0);
    let old = diff_side(old_path)?;
    let new = diff_side(new_path)?;
    let d = frodo::obs::diff_entries(&old, &new, fail_over);
    print!("{}", d.render());
    if d.ok() {
        Ok(())
    } else {
        Err(format!(
            "{} counter drift(s), {} wall-time regression(s) between {old_path} and {new_path}",
            d.drifts.len(),
            d.regressions.len()
        ))
    }
}

fn cmd_obs_report(args: &[String]) -> Result<(), String> {
    let strict = args.iter().any(|a| a == "--strict");
    let pos = positionals(args, &[], &["--strict"]);
    let path = *pos.first().ok_or("obs report: missing ledger file")?;
    let text = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
    // Parse line by line so one corrupt line (a truncated write, a
    // foreign tool appending to the same file) degrades to a warning
    // instead of hiding every other entry behind a hard error.
    let mut entries = Vec::new();
    let mut skipped = 0usize;
    for (i, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        match frodo::obs::LedgerEntry::from_line(line) {
            Ok(entry) => entries.push(entry),
            Err(e) => {
                skipped += 1;
                eprintln!("obs report: {path} line {}: skipping: {e}", i + 1);
            }
        }
    }
    if entries.is_empty() {
        return Err(format!("{path}: ledger file has no entries"));
    }
    println!(
        "{:<10} {:<14} {:<9} {:>7} {:>7} {:>5} {:>10} {:>10} {:>6} {:>7}",
        "rev", "label", "engine", "threads", "workers", "jobs", "wall", "alg1", "cache%", "region%"
    );
    for e in &entries {
        let alg1_ns: u64 = ["dfg", "iomap", "ranges", "classify"]
            .iter()
            .filter_map(|s| e.stage(s))
            .map(|s| s.sum_ns)
            .sum();
        let cache = e
            .svc
            .as_ref()
            .map(|s| format!("{:.0}", s.cache_hit_rate_pct()))
            .unwrap_or_else(|| "-".to_string());
        let region = e
            .region_hit_rate_pct()
            .map(|r| format!("{r:.0}"))
            .unwrap_or_else(|| "-".to_string());
        println!(
            "{:<10} {:<14} {:<9} {:>7} {:>7} {:>5} {:>10} {:>10} {:>6} {:>7}",
            e.git_rev,
            e.label,
            e.engine,
            e.threads,
            e.workers,
            e.jobs,
            frodo::obs::fmt_duration(std::time::Duration::from_nanos(e.wall_ns)),
            frodo::obs::fmt_duration(std::time::Duration::from_nanos(alg1_ns)),
            cache,
            region
        );
    }
    println!(
        "{} entr{} in {path}",
        entries.len(),
        if entries.len() == 1 { "y" } else { "ies" }
    );
    if strict && skipped > 0 {
        return Err(format!(
            "obs report: {skipped} unparseable ledger line(s) in {path} (--strict)"
        ));
    }
    Ok(())
}

fn cmd_list() -> Result<(), String> {
    println!("{:<14} {:<42} {:>7}", "name", "functionality", "#block");
    for bench in frodo::benchmodels::all() {
        println!(
            "{:<14} {:<42} {:>7}",
            bench.name,
            bench.functionality,
            bench.model.deep_len()
        );
    }
    Ok(())
}
