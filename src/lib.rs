//! # frodo — redundancy-eliminating code generation for Simulink models
//!
//! A Rust reproduction of *"Efficient Code Generation for Data-Intensive
//! Simulink Models via Redundancy Elimination"* (DAC 2024). This facade
//! crate re-exports the whole pipeline:
//!
//! | module | crate | role |
//! |--------|-------|------|
//! | [`ranges`] | `frodo-ranges` | index-set algebra and I/O mappings |
//! | [`model`] | `frodo-model` | model IR + block property library |
//! | [`graph`] | `frodo-graph` | dataflow graph + scheduling |
//! | [`slx`] | `frodo-slx` | `.slx` (ZIP+XML) and `.mdl` file formats |
//! | [`core`] | `frodo-core` | Algorithm 1: calculation range determination |
//! | [`codegen`] | `frodo-codegen` | loop IR, generator styles, C emission |
//! | [`sim`] | `frodo-sim` | reference simulator, VM, cost models, native runs |
//! | [`benchmodels`] | `frodo-benchmodels` | the paper's Table-1 suite |
//! | [`bench`] | `frodo-bench` | benchmark harness + cost-model calibration |
//! | [`driver`] | `frodo-driver` | batch compile service: worker pool, artifact cache, metrics |
//! | [`serve`] | `frodo-serve` | persistent compile daemon: NDJSON socket protocol, admission control |
//! | [`obs`] | `frodo-obs` | observability: trace spans, counters, stage timings, NDJSON export |
//! | [`verify`] | `frodo-verify` | model lint + range-soundness checker (translation validation) |
//!
//! # Quickstart
//!
//! ```
//! use frodo::prelude::*;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! // The paper's Figure-1 model: full convolution + same-conv selector.
//! let mut m = Model::new("quick");
//! let i = m.add(Block::new("in", BlockKind::Inport { index: 0, shape: Shape::Vector(50) }));
//! let k = m.add(Block::new("k", BlockKind::Constant { value: Tensor::vector(vec![0.1; 11]) }));
//! let c = m.add(Block::new("conv", BlockKind::Convolution));
//! let s = m.add(Block::new("sel", BlockKind::Selector {
//!     mode: SelectorMode::StartEnd { start: 5, end: 55 } }));
//! let o = m.add(Block::new("out", BlockKind::Outport { index: 0 }));
//! m.connect(i, 0, c, 0)?;
//! m.connect(k, 0, c, 1)?;
//! m.connect(c, 0, s, 0)?;
//! m.connect(s, 0, o, 0)?;
//!
//! let analysis = Analysis::run(m)?;
//! let program = generate(&analysis, GeneratorStyle::Frodo, &frodo_obs::Trace::noop());
//! let c_code = emit_c(&program);
//! assert!(c_code.contains("for (int k = 5; k < 55; ++k)"));
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use frodo_bench as bench;
pub use frodo_benchmodels as benchmodels;
pub use frodo_codegen as codegen;
pub use frodo_core as core;
pub use frodo_driver as driver;
pub use frodo_graph as graph;
pub use frodo_model as model;
pub use frodo_obs as obs;
pub use frodo_ranges as ranges;
pub use frodo_serve as serve;
pub use frodo_sim as sim;
pub use frodo_slx as slx;
pub use frodo_verify as verify;

/// One-stop imports for the common pipeline.
pub mod prelude {
    pub use frodo_codegen::{emit_c, emit_c_harness, generate, GeneratorStyle};
    pub use frodo_core::{Analysis, RangeEngine, RangeOptions};
    pub use frodo_driver::{CompileOptions, CompileService, JobSpec, ServiceConfig};
    pub use frodo_graph::Dfg;
    pub use frodo_model::{
        Block, BlockKind, Model, ModelError, RelOp, RoundMode, SelectorMode, Tensor,
    };
    pub use frodo_obs::{StageTimings, Trace};
    pub use frodo_ranges::{IndexSet, Interval, PortMap, Shape};
    pub use frodo_sim::{CostModel, MemoryReport, ReferenceSimulator, Vm};
    pub use frodo_verify::{Diagnostic, Severity, SoundnessReport};
}
