//! Quickstart: build a model, run redundancy elimination, emit C.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use frodo::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // The paper's Figure-1 motivating model: a "same" convolution realized
    // as full-padding Convolution + Selector.
    let mut m = Model::new("quickstart");
    let input = m.add(Block::new(
        "signal",
        BlockKind::Inport {
            index: 0,
            shape: Shape::Vector(50),
        },
    ));
    let kernel = m.add(Block::new(
        "kernel",
        BlockKind::Constant {
            value: Tensor::vector(vec![1.0 / 11.0; 11]),
        },
    ));
    let conv = m.add(Block::new("conv", BlockKind::Convolution));
    let same = m.add(Block::new(
        "same",
        BlockKind::Selector {
            mode: SelectorMode::StartEnd { start: 5, end: 55 },
        },
    ));
    let out = m.add(Block::new("smoothed", BlockKind::Outport { index: 0 }));
    m.connect(input, 0, conv, 0)?;
    m.connect(kernel, 0, conv, 1)?;
    m.connect(conv, 0, same, 0)?;
    m.connect(same, 0, out, 0)?;

    // 1. model analysis + calculation range determination (Algorithm 1),
    //    recorded on a trace so stage costs can be read back afterwards
    let trace = Trace::new();
    let analysis = Analysis::run_traced(m, RangeOptions::default(), &trace)?;
    println!("{}", analysis.report());
    println!("convolution calculation range: {}", analysis.range(conv, 0));

    // 2. concise code generation
    let program = generate(&analysis, GeneratorStyle::Frodo, &frodo_obs::Trace::noop());
    println!(
        "FRODO computes {} elements/step; the Simulink-style baseline computes {}",
        program.computed_elements(),
        generate(
            &analysis,
            GeneratorStyle::SimulinkCoder,
            &frodo_obs::Trace::noop()
        )
        .computed_elements()
    );

    // 3. run the generated program and cross-check against simulation
    let signal: Vec<f64> = (0..50).map(|i| (i as f64 * 0.3).sin()).collect();
    let mut vm = Vm::new(&program);
    let got = vm.step(&program, std::slice::from_ref(&signal));
    let mut reference = ReferenceSimulator::new(analysis.dfg().clone());
    let expected = reference.step(&[Tensor::vector(signal)])?;
    let worst = got[0]
        .iter()
        .zip(expected[0].data())
        .map(|(a, b)| (a - b).abs())
        .fold(0.0, f64::max);
    println!("max deviation from model simulation: {worst:.2e}");

    // 4. where the analysis time went
    println!("\nanalysis stage timings:");
    let stages = StageTimings::from_trace(&trace);
    for (name, d) in stages.rows().iter().filter(|(_, d)| !d.is_zero()) {
        println!("  {name:<10} {}", frodo::obs::fmt_duration(*d));
    }
    println!(
        "  {:<10} {}",
        "total",
        frodo::obs::fmt_duration(stages.total())
    );

    // 5. the deployable C
    println!("\n--- generated C ---\n{}", emit_c(&program));
    Ok(())
}
