//! Streaming execution of a stateful model: the Kalman temperature observer
//! run over many steps, with FRODO's generated program tracking the
//! reference simulation exactly while doing a fraction of the work.
//!
//! ```sh
//! cargo run --example streaming_control
//! ```

use frodo::prelude::*;
use frodo::sim::workload;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let analysis = Analysis::run(frodo::benchmodels::kalman())?;
    let dfg = analysis.dfg().clone();

    let frodo_prog = generate(&analysis, GeneratorStyle::Frodo, &frodo_obs::Trace::noop());
    let baseline = generate(
        &analysis,
        GeneratorStyle::DfSynth,
        &frodo_obs::Trace::noop(),
    );
    println!(
        "Kalman observer: FRODO computes {} elements/step, the full-range baseline {}",
        frodo_prog.computed_elements(),
        baseline.computed_elements()
    );

    let mut simulator = ReferenceSimulator::new(dfg.clone());
    let mut vm = Vm::new(&frodo_prog);

    println!(
        "\n{:>4} {:>12} {:>12} {:>12} {:>12}",
        "step", "cabin T0", "cabin T1", "command", "max dev"
    );
    let mut worst_overall: f64 = 0.0;
    for step in 0..50u64 {
        let inputs = workload::random_inputs(&dfg, 1000 + step);
        let expected = simulator.step(&inputs)?;
        let raw: Vec<Vec<f64>> = inputs.iter().map(|t| t.data().to_vec()).collect();
        let got = vm.step(&frodo_prog, &raw);
        let worst = got
            .iter()
            .zip(&expected)
            .flat_map(|(g, e)| g.iter().zip(e.data()).map(|(a, b)| (a - b).abs()))
            .fold(0.0, f64::max);
        worst_overall = worst_overall.max(worst);
        if step % 10 == 0 {
            println!(
                "{step:>4} {:>12.5} {:>12.5} {:>12.5} {:>12.2e}",
                got[0][0], got[0][1], got[1][0], worst
            );
        }
    }
    println!(
        "\nafter 50 steps of evolving delay state, the generated program never\n\
         deviated from model simulation by more than {worst_overall:.2e}"
    );
    assert!(worst_overall < 1e-9);
    Ok(())
}
