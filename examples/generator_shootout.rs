//! Compare all four generators over the whole Table-1 suite, on all four
//! (architecture × compiler) cost profiles — a compact run of the paper's
//! entire evaluation. Pass `--native` to add real `gcc -O3` wall-clock
//! measurements for the configuration this host can execute.
//!
//! ```sh
//! cargo run --release --example generator_shootout [--native]
//! ```

use frodo::prelude::*;
use frodo::sim::native;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let want_native = std::env::args().any(|a| a == "--native");
    let suite = frodo::benchmodels::all();
    let configs = CostModel::all();

    // Analyze every model once, on a shared trace, instead of re-running
    // the pipeline per cost profile.
    let trace = Trace::new();
    let mut analyses = Vec::new();
    for bench in &suite {
        let a = Analysis::run_traced(bench.model.clone(), RangeOptions::default(), &trace)?;
        analyses.push((bench.name, a));
    }

    for cm in &configs {
        println!("== {} ==", cm.label());
        println!(
            "{:<14} {:>10} {:>10} {:>10} {:>10} {:>18}",
            "model", "Simulink", "DFSynth", "HCG", "Frodo", "Frodo speedup"
        );
        for (name, analysis) in &analyses {
            let us: Vec<f64> = GeneratorStyle::ALL
                .iter()
                .map(|&s| cm.program_ns(&generate(analysis, s, &frodo_obs::Trace::noop())) / 1e3)
                .collect();
            let best_other = us[..3].iter().cloned().fold(f64::MAX, f64::min);
            println!(
                "{:<14} {:>8.1}us {:>8.1}us {:>8.1}us {:>8.1}us {:>13.2}x",
                name,
                us[0],
                us[1],
                us[2],
                us[3],
                best_other / us[3]
            );
        }
        println!();
    }

    println!("== analysis cost across the suite (per stage) ==");
    let stages = StageTimings::from_trace(&trace);
    for (name, d) in stages.rows().iter().filter(|(_, d)| !d.is_zero()) {
        println!("{name:<10} {}", frodo::obs::fmt_duration(*d));
    }
    println!(
        "{:<10} {}\n",
        "total",
        frodo::obs::fmt_duration(stages.total())
    );

    if want_native {
        if !native::gcc_available() {
            eprintln!("--native requested but no gcc found");
            return Ok(());
        }
        println!("== native x86 gcc -O3 (ns/iteration, 10000 reps) ==");
        println!(
            "{:<14} {:>10} {:>10} {:>10} {:>10} {:>14}",
            "model", "Simulink", "DFSynth", "HCG", "Frodo", "Frodo speedup"
        );
        for (name, analysis) in &analyses {
            let ns: Vec<f64> = GeneratorStyle::ALL
                .iter()
                .map(|&s| {
                    let p = generate(analysis, s, &frodo_obs::Trace::noop());
                    native::compile_and_run(&p, s, 10_000)
                        .map(|r| r.ns_per_iter)
                        .unwrap_or(f64::NAN)
                })
                .collect();
            let best_other = ns[..3].iter().cloned().fold(f64::MAX, f64::min);
            println!(
                "{:<14} {:>10.0} {:>10.0} {:>10.0} {:>10.0} {:>13.2}x",
                name,
                ns[0],
                ns[1],
                ns[2],
                ns[3],
                best_other / ns[3]
            );
        }
    }
    Ok(())
}
