//! The paper's Figure-1 motivation, reproduced end to end: how a
//! full-padding `Convolution` followed by a `Selector` makes every
//! state-of-the-art generator waste work, and what FRODO emits instead.
//!
//! ```sh
//! cargo run --example convolution_motivation
//! ```

use frodo::prelude::*;

fn figure1() -> Result<Model, ModelError> {
    let mut m = Model::new("Convolution");
    let i = m.add(Block::new(
        "In1",
        BlockKind::Inport {
            index: 0,
            shape: Shape::Vector(50),
        },
    ));
    let k = m.add(Block::new(
        "Kernel",
        BlockKind::Constant {
            value: Tensor::vector(vec![0.09; 11]),
        },
    ));
    let c = m.add(Block::new("Convolution", BlockKind::Convolution));
    let s = m.add(Block::new(
        "Selector",
        BlockKind::Selector {
            mode: SelectorMode::StartEnd { start: 5, end: 55 },
        },
    ));
    let o = m.add(Block::new("Out1", BlockKind::Outport { index: 0 }));
    m.connect(i, 0, c, 0)?;
    m.connect(k, 0, c, 1)?;
    m.connect(c, 0, s, 0)?;
    m.connect(s, 0, o, 0)?;
    Ok(m)
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let analysis = Analysis::run(figure1()?)?;
    let conv = analysis.dfg().model().find("Convolution").unwrap();

    println!("== the motivation (paper §1, Figure 1) ==\n");
    println!(
        "The 'same' convolution needs 50 outputs, but the Convolution block's\n\
         full-padding implementation produces {} — the Selector then throws\n\
         {} of them away. Existing generators translate both blocks verbatim.\n",
        analysis.dfg().shapes().output(conv, 0).numel(),
        analysis.report().stat(conv).eliminated(),
    );

    println!("-- Simulink-Embedded-Coder-style code (boundary judgments, green box) --\n");
    let simulink = generate(
        &analysis,
        GeneratorStyle::SimulinkCoder,
        &frodo_obs::Trace::noop(),
    );
    print_block(&emit_c(&simulink), "for (int k = 0");

    println!("-- FRODO's concise code (exact calculation range [5, 55)) --\n");
    let frodo = generate(&analysis, GeneratorStyle::Frodo, &frodo_obs::Trace::noop());
    print_block(&emit_c(&frodo), "for (int k = 5");

    println!("== quantitative effect ==\n");
    println!(
        "{:<22} {:>10} {:>14}",
        "generator", "elements", "est. x86/gcc"
    );
    for style in GeneratorStyle::ALL {
        let p = generate(&analysis, style, &frodo_obs::Trace::noop());
        let ns = CostModel::x86_gcc().program_ns(&p);
        println!(
            "{:<22} {:>10} {:>11.0} ns",
            style.label(),
            p.computed_elements(),
            ns
        );
    }

    println!(
        "\nFRODO range recursion (paper Figure 5): Out1 needs [0,50) of the\n\
         Selector; the Selector maps that to [5,55) of the Convolution; the\n\
         Convolution window maps [5,55) to [0,50) of In1 — nothing upstream\n\
         of the Selector computes the 10 padding elements."
    );
    Ok(())
}

/// Prints the generated loop nest containing `marker` (plus context).
fn print_block(code: &str, marker: &str) {
    let lines: Vec<&str> = code.lines().collect();
    if let Some(at) = lines.iter().position(|l| l.contains(marker)) {
        for line in &lines[at..] {
            println!("    {line}");
            if line.trim() == "}" && line.starts_with("    }") {
                break;
            }
        }
    }
    println!();
}
