//! Exercise the `.slx` container path the paper's model parse describes:
//! write a benchmark model as real ZIP+XML bytes, list the archive, read it
//! back, and show the reparsed model analyzes identically. Also prints the
//! `.mdl` text form.
//!
//! ```sh
//! cargo run --example slx_roundtrip [output.slx]
//! ```

use frodo::prelude::*;
use frodo::slx::zip::Archive;
use frodo::slx::{read_slx, write_mdl, write_slx};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let model = frodo::benchmodels::kalman();
    let bytes = write_slx(&model)?;
    println!(
        "serialized '{}' ({} blocks) to {} bytes of .slx",
        model.name(),
        model.deep_len(),
        bytes.len()
    );

    // optional: persist to disk like a real tool would
    if let Some(path) = std::env::args().nth(1) {
        std::fs::write(&path, &bytes)?;
        println!("wrote {path}");
    }

    println!("\narchive contents:");
    let archive = Archive::from_bytes(&bytes)?;
    for entry in archive.entries() {
        println!("  {:<32} {:>7} bytes", entry.name, entry.data.len());
    }

    let reread = read_slx(&bytes, &frodo_obs::Trace::noop())?;
    assert_eq!(reread, model);
    println!("\nre-read model is identical to the original");

    let a = Analysis::run(model.clone())?;
    let b = Analysis::run(reread)?;
    assert_eq!(a.ranges(), b.ranges());
    println!("calculation ranges from the re-read model match exactly");

    let mdl = write_mdl(&model);
    println!(
        "\nfirst lines of the .mdl text form ({} lines total):",
        mdl.lines().count()
    );
    for line in mdl.lines().take(16) {
        println!("  {line}");
    }
    Ok(())
}
