//! Drive the `AudioProcess` benchmark (vehicle audio analysis) through the
//! whole toolchain: analysis, all four generators, VM execution validated
//! against model simulation, and per-configuration duration estimates.
//!
//! ```sh
//! cargo run --example audio_pipeline
//! ```

use frodo::prelude::*;
use frodo::sim::workload;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let model = frodo::benchmodels::audio_process();
    println!(
        "model {}: {} blocks, {} data-truncation blocks",
        model.name(),
        model.deep_len(),
        model
            .blocks()
            .iter()
            .filter(|b| b.kind.is_truncation())
            .count()
    );

    let analysis = Analysis::run(model)?;
    println!("{}", analysis.report());

    // simulate one audio frame as ground truth
    let inputs = workload::random_inputs(analysis.dfg(), 2024);
    let mut simulator = ReferenceSimulator::new(analysis.dfg().clone());
    let expected = simulator.step(&inputs)?;
    let raw: Vec<Vec<f64>> = inputs.iter().map(|t| t.data().to_vec()).collect();

    println!(
        "{:<12} {:>10} {:>12} {:>12} {:>12}",
        "generator", "elements", "x86/gcc", "arm/gcc", "max dev"
    );
    for style in GeneratorStyle::ALL {
        let program = generate(&analysis, style, &frodo_obs::Trace::noop());
        let mut vm = Vm::new(&program);
        let got = vm.step(&program, &raw);
        let worst = got
            .iter()
            .zip(&expected)
            .flat_map(|(g, e)| g.iter().zip(e.data()).map(|(a, b)| (a - b).abs()))
            .fold(0.0, f64::max);
        println!(
            "{:<12} {:>10} {:>9.1} us {:>9.1} us {:>12.2e}",
            style.label(),
            program.computed_elements(),
            CostModel::x86_gcc().program_ns(&program) / 1e3,
            CostModel::arm_gcc().program_ns(&program) / 1e3,
            worst
        );
    }

    // memory parity (paper §5)
    let reports: Vec<MemoryReport> = GeneratorStyle::ALL
        .iter()
        .map(|&s| MemoryReport::of(&generate(&analysis, s, &frodo_obs::Trace::noop())))
        .collect();
    assert!(reports.windows(2).all(|w| w[0] == w[1]));
    println!(
        "\nmemory (all generators identical): {} B static, {} B const, {} B interface",
        reports[0].static_bytes, reports[0].const_bytes, reports[0].interface_bytes
    );
    Ok(())
}
