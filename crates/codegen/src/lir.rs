//! The loop IR (LIR): the common target of all four generator styles.
//!
//! A [`Program`] is a set of flat `f64` buffers plus a straight-line sequence
//! of loop-level statements ([`Stmt`]). Each statement corresponds to one
//! *consecutive-run* snippet of the element-level code library applied to a
//! block: the same structure is emitted as C and executed by the virtual
//! machine in `frodo-sim` for cost modeling and correctness checks.

use std::fmt;

/// Handle of a buffer inside one [`Program`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct BufId(pub usize);

impl fmt::Display for BufId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "%{}", self.0)
    }
}

/// What a buffer is for, which also decides its C storage class.
#[derive(Debug, Clone, PartialEq)]
pub enum BufferRole {
    /// A model input; the value arrives as a function argument.
    Input(usize),
    /// A model output; the value leaves through a function argument.
    Output(usize),
    /// Intermediate block result (file-scope static array in C).
    Temp,
    /// Compile-time constant data.
    Const(Vec<f64>),
    /// Persistent state (unit delays), with its initial value.
    State(Vec<f64>),
}

/// One flat `f64` buffer.
#[derive(Debug, Clone, PartialEq)]
pub struct Buffer {
    /// C-safe identifier.
    pub name: String,
    /// Number of elements.
    pub len: usize,
    /// Role (storage class).
    pub role: BufferRole,
}

/// A starting position inside a buffer: the element `buf[off]`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Slice {
    /// The buffer.
    pub buf: BufId,
    /// Element offset of the run's first element.
    pub off: usize,
}

impl Slice {
    /// Creates a slice at `buf[off]`.
    pub fn new(buf: BufId, off: usize) -> Self {
        Slice { buf, off }
    }
}

impl fmt::Display for Slice {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}[{}..]", self.buf, self.off)
    }
}

/// A statement operand: a run, a broadcast scalar element, or a constant.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Src {
    /// `buf[off + i]` for loop index `i`.
    Run(Slice),
    /// `buf[off]` for every loop index (scalar broadcast).
    Broadcast(Slice),
    /// An immediate constant.
    Const(f64),
}

impl fmt::Display for Src {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Src::Run(s) => write!(f, "{s}"),
            Src::Broadcast(s) => write!(f, "bcast({})", s),
            Src::Const(c) => write!(f, "{c}"),
        }
    }
}

/// Unary elementwise operators (with folded parameters).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum UnOp {
    /// Multiply by a constant.
    Gain(f64),
    /// Add a constant.
    Bias(f64),
    /// `fabs`.
    Abs,
    /// `sqrt`.
    Sqrt,
    /// `x * x`.
    Square,
    /// `exp`.
    Exp,
    /// `log`.
    Log,
    /// `sin`.
    Sin,
    /// `cos`.
    Cos,
    /// `tanh`.
    Tanh,
    /// `-x`.
    Neg,
    /// `1.0 / x`.
    Recip,
    /// Clamp into `[lo, hi]`.
    Sat(f64, f64),
    /// `floor`.
    Floor,
    /// `ceil`.
    Ceil,
    /// `round`.
    Round,
    /// `trunc`.
    Trunc,
    /// Logical negation: `x == 0.0 ? 1.0 : 0.0`.
    Not,
    /// Identity (plain move; used when folding produced a no-op).
    Id,
}

impl UnOp {
    /// Whether the operation maps to a libm call in C (costlier, still
    /// vectorizable only with vector math libraries).
    pub fn is_transcendental(&self) -> bool {
        matches!(
            self,
            UnOp::Sqrt | UnOp::Exp | UnOp::Log | UnOp::Sin | UnOp::Cos | UnOp::Tanh
        )
    }
}

/// Binary elementwise operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BinOp {
    /// `a + b`
    Add,
    /// `a - b`
    Sub,
    /// `a * b`
    Mul,
    /// `a / b`
    Div,
    /// `fmin(a, b)`
    Min,
    /// `fmax(a, b)`
    Max,
    /// `fmod(a, b)`
    Mod,
    /// `a < b ? 1.0 : 0.0`
    Lt,
    /// `a <= b`
    Le,
    /// `a > b`
    Gt,
    /// `a >= b`
    Ge,
    /// `a == b`
    EqOp,
    /// `a != b`
    Ne,
    /// `(a != 0) && (b != 0)`
    And,
    /// `(a != 0) || (b != 0)`
    Or,
    /// `(a != 0) ^ (b != 0)`
    Xor,
}

/// Reduction operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReduceOp {
    /// Sum of elements.
    Sum,
    /// Arithmetic mean.
    Mean,
    /// Minimum element.
    Min,
    /// Maximum element.
    Max,
}

/// How a [`Stmt::WindowedReuse`] statement turns its rolling window sum
/// into the output value.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum WindowScale {
    /// `out[k] = acc / d` — a trailing moving average over a `d`-sample
    /// window.
    Div(f64),
    /// `out[k] = acc * c` — a uniform-kernel convolution/FIR, whose dot
    /// product degenerates to a scaled window sum.
    Mul(f64),
}

/// How convolution loop boundaries are generated.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ConvStyle {
    /// Exact loop bounds computed in the loop header (`lo = max(0, k-m+1)`),
    /// no per-element branching — what FRODO/DFSynth/HCG emit.
    Tight,
    /// Fixed full loops with a per-element *boundary judgment* inside — the
    /// paper observes Simulink Embedded Coder generates these for
    /// `Convolution` blocks, making AudioProcess/Manufacture slow.
    Branchy,
}

/// One loop-level statement.
///
/// Range-restricted statements carry explicit `[k0, k1)` output runs; the
/// FRODO generator emits one statement per run of a block's calculation
/// range, baselines emit a single full-range statement.
#[derive(Debug, Clone, PartialEq)]
pub enum Stmt {
    /// `dst[off+i] = un_op(src..)` for `i in 0..len`.
    Unary {
        /// Operator.
        op: UnOp,
        /// Destination run.
        dst: Slice,
        /// Source operand.
        src: Src,
        /// Run length.
        len: usize,
    },
    /// `dst[off+i] = opN(…op1(src..))` for `i in 0..len` — a folded chain
    /// of unary operators produced by
    /// [`optimize::fold_expressions`](crate::optimize::fold_expressions).
    FusedUnary {
        /// Operators applied innermost-first.
        ops: Vec<UnOp>,
        /// Destination run.
        dst: Slice,
        /// Source operand.
        src: Src,
        /// Run length.
        len: usize,
    },
    /// `dst[off+i] = bin_op(a.., b..)` for `i in 0..len`.
    Binary {
        /// Operator.
        op: BinOp,
        /// Destination run.
        dst: Slice,
        /// Left operand.
        a: Src,
        /// Right operand.
        b: Src,
        /// Run length.
        len: usize,
    },
    /// `dst[off+i] = ctrl >= threshold ? a : b` per element.
    Select {
        /// Destination run.
        dst: Slice,
        /// Control operand.
        ctrl: Src,
        /// Switch threshold.
        threshold: f64,
        /// Taken when `ctrl >= threshold`.
        a: Src,
        /// Taken otherwise.
        b: Src,
        /// Run length.
        len: usize,
    },
    /// Contiguous element copy.
    Copy {
        /// Destination run.
        dst: Slice,
        /// Source run.
        src: Slice,
        /// Run length.
        len: usize,
    },
    /// Fill a run with a constant.
    Fill {
        /// Destination run.
        dst: Slice,
        /// The constant.
        value: f64,
        /// Run length.
        len: usize,
    },
    /// `dst[off+i] = src[indices[i]]` (static gather: selectors with index
    /// vectors, submatrix regions, partial transposes).
    Gather {
        /// Destination run.
        dst: Slice,
        /// Source buffer.
        src: BufId,
        /// Source element index per destination element.
        indices: Vec<usize>,
    },
    /// `dst[off+i] = src[clamp(idx[i])]` (runtime gather: Selector in
    /// IndexPort mode).
    DynGather {
        /// Destination run.
        dst: Slice,
        /// Source buffer.
        src: BufId,
        /// Source length for clamping.
        src_len: usize,
        /// Buffer holding runtime indices.
        idx: Slice,
        /// Number of elements gathered.
        len: usize,
    },
    /// `dst[off] = reduce(src[off .. off+len])`.
    Reduce {
        /// Reduction operator.
        op: ReduceOp,
        /// Destination element.
        dst: Slice,
        /// Source run.
        src: Slice,
        /// Number of reduced elements.
        len: usize,
    },
    /// `dst[off] = Σ a[i] · b[i]`.
    Dot {
        /// Destination element.
        dst: Slice,
        /// First operand run.
        a: Slice,
        /// Second operand run.
        b: Slice,
        /// Operand length.
        len: usize,
    },
    /// Convolution output run `[k0, k1)`:
    /// `dst[k] = Σ_j u[j] · v[k−j]`.
    Conv {
        /// Destination buffer (full-convolution indexing).
        dst: BufId,
        /// First operand.
        u: BufId,
        /// First operand length.
        u_len: usize,
        /// Second operand.
        v: BufId,
        /// Second operand length.
        v_len: usize,
        /// First computed output index.
        k0: usize,
        /// One past the last computed output index.
        k1: usize,
        /// Loop-boundary style.
        style: ConvStyle,
    },
    /// FIR filter output run `[k0, k1)` with constant taps from a buffer:
    /// `dst[k] = Σ_t c[t] · src[k−t]`, `t ≤ k`.
    Fir {
        /// Destination buffer.
        dst: BufId,
        /// Input buffer.
        src: BufId,
        /// Tap buffer (constant).
        coeffs: BufId,
        /// Number of taps.
        taps: usize,
        /// First computed output index.
        k0: usize,
        /// One past the last computed output index.
        k1: usize,
    },
    /// Trailing moving average output run `[k0, k1)` over `window` samples.
    MovingAvg {
        /// Destination buffer.
        dst: BufId,
        /// Input buffer.
        src: BufId,
        /// Window length.
        window: usize,
        /// First computed output index.
        k0: usize,
        /// One past the last computed output index.
        k1: usize,
    },
    /// Cumulative sum prefix `[0, k_end)` (prefix dependency forces
    /// computation from zero).
    CumSum {
        /// Destination buffer.
        dst: BufId,
        /// Input buffer.
        src: BufId,
        /// One past the last computed output index.
        k_end: usize,
    },
    /// First difference output run `[k0, k1)`.
    Diff {
        /// Destination buffer.
        dst: BufId,
        /// Input buffer.
        src: BufId,
        /// First computed output index.
        k0: usize,
        /// One past the last computed output index.
        k1: usize,
    },
    /// Matrix multiply rows `[r0, r1)` of `dst = a(m×k) · b(k×n)`.
    MatMul {
        /// Destination buffer (`m×n` row-major).
        dst: BufId,
        /// Left operand (`m×k`).
        a: BufId,
        /// Right operand (`k×n`).
        b: BufId,
        /// Rows of `a`.
        m: usize,
        /// Shared dimension.
        k: usize,
        /// Columns of `b`.
        n: usize,
        /// First computed output row.
        r0: usize,
        /// One past the last computed output row.
        r1: usize,
    },
    /// Full matrix transpose `dst(cols×rows) = srcᵀ(rows×cols)`.
    Transpose {
        /// Destination buffer.
        dst: BufId,
        /// Source buffer.
        src: BufId,
        /// Source rows.
        rows: usize,
        /// Source columns.
        cols: usize,
    },
    /// Load persistent state into a working buffer (unit delay read).
    StateLoad {
        /// Working buffer receiving the state.
        dst: BufId,
        /// State buffer.
        state: BufId,
        /// Element count.
        len: usize,
    },
    /// Store a working buffer into persistent state (unit delay write).
    StateStore {
        /// State buffer.
        state: BufId,
        /// Working buffer providing the new state.
        src: BufId,
        /// Element count.
        len: usize,
    },
    /// Sliding-window sum over run `[k0, k1)` with inter-invocation reuse
    /// (the `window_reuse` LIR pass): `out[k] = scale(Σ src[lo..=hi])` with
    /// `lo = max(0, k+1−window)`, `hi = min(k, src_len−1)`, computed with a
    /// rolling accumulator instead of a fresh per-element sum, then the
    /// retained window tail is stored into persistent ring-buffer `state`
    /// (length `window`) for the next invocation.
    WindowedReuse {
        /// Destination buffer (absolute `k` indexing, like [`Stmt::Conv`]).
        dst: BufId,
        /// Input buffer.
        src: BufId,
        /// Input buffer length (for window clamping).
        src_len: usize,
        /// Persistent ring-buffer state holding the retained window tail.
        state: BufId,
        /// Window length in samples.
        window: usize,
        /// Scaling applied to the window sum.
        scale: WindowScale,
        /// First computed output index.
        k0: usize,
        /// One past the last computed output index.
        k1: usize,
    },
}

impl Stmt {
    /// Whether the statement has SIMD-friendly unit-stride structure a
    /// vectorizer could target.
    pub fn is_vectorizable(&self) -> bool {
        match self {
            Stmt::Unary { op, .. } => !op.is_transcendental(),
            Stmt::FusedUnary { ops, .. } => ops.iter().all(|o| !o.is_transcendental()),
            Stmt::Binary { .. }
            | Stmt::Copy { .. }
            | Stmt::Fill { .. }
            | Stmt::Dot { .. }
            | Stmt::Reduce { .. }
            | Stmt::Fir { .. }
            | Stmt::MovingAvg { .. }
            | Stmt::MatMul { .. }
            | Stmt::Diff { .. }
            | Stmt::StateLoad { .. }
            | Stmt::StateStore { .. } => true,
            Stmt::Conv { style, .. } => *style == ConvStyle::Tight,
            // loop-carried rolling accumulator: inherently serial
            Stmt::Select { .. }
            | Stmt::Gather { .. }
            | Stmt::DynGather { .. }
            | Stmt::CumSum { .. }
            | Stmt::Transpose { .. }
            | Stmt::WindowedReuse { .. } => false,
        }
    }

    /// A stable lowercase label for the statement kind, shared by the
    /// self-profiling C emission, the VM statement profiler, and the
    /// calibration report so the three views key their data identically.
    pub fn kind_label(&self) -> &'static str {
        match self {
            Stmt::Unary { .. } => "unary",
            Stmt::FusedUnary { .. } => "fused_unary",
            Stmt::Binary { .. } => "binary",
            Stmt::Select { .. } => "select",
            Stmt::Copy { .. } => "copy",
            Stmt::Fill { .. } => "fill",
            Stmt::Gather { .. } => "gather",
            Stmt::DynGather { .. } => "dyn_gather",
            Stmt::Reduce { .. } => "reduce",
            Stmt::Dot { .. } => "dot",
            Stmt::Conv { .. } => "conv",
            Stmt::Fir { .. } => "fir",
            Stmt::MovingAvg { .. } => "moving_avg",
            Stmt::CumSum { .. } => "cumsum",
            Stmt::Diff { .. } => "diff",
            Stmt::MatMul { .. } => "matmul",
            Stmt::Transpose { .. } => "transpose",
            Stmt::StateLoad { .. } => "state_load",
            Stmt::StateStore { .. } => "state_store",
            Stmt::WindowedReuse { .. } => "window_reuse",
        }
    }

    /// Architecture-independent floating-point operations per execution:
    /// the arithmetic actually performed given the statement's exact loop
    /// bounds (boundary-clamped convolutions count only the taken inner
    /// iterations). Pure data movement (copies, gathers, transposes,
    /// state transfer) counts zero.
    pub fn flops(&self) -> u64 {
        let flops = |n: usize| n as u64;
        match self {
            Stmt::Unary { len, .. } => flops(*len),
            Stmt::FusedUnary { ops, len, .. } => flops(len * ops.len()),
            Stmt::Binary { len, .. } => flops(*len),
            Stmt::Select { .. }
            | Stmt::Copy { .. }
            | Stmt::Fill { .. }
            | Stmt::Gather { .. }
            | Stmt::DynGather { .. }
            | Stmt::Transpose { .. }
            | Stmt::StateLoad { .. }
            | Stmt::StateStore { .. } => 0,
            Stmt::Reduce { len, .. } => flops(*len),
            Stmt::Dot { len, .. } => flops(2 * len),
            Stmt::Conv {
                u_len,
                v_len,
                k0,
                k1,
                ..
            } => {
                let taken: usize = (*k0..*k1)
                    .map(|k| k.min(u_len - 1) - k.saturating_sub(v_len - 1) + 1)
                    .sum();
                flops(2 * taken)
            }
            Stmt::Fir { taps, k0, k1, .. } => {
                let inner: usize = (*k0..*k1).map(|k| k.min(taps - 1) + 1).sum();
                flops(2 * inner)
            }
            Stmt::MovingAvg { window, k0, k1, .. } => {
                let inner: usize = (*k0..*k1)
                    .map(|k| k - k.saturating_sub(window - 1) + 1)
                    .sum();
                flops(inner + (k1 - k0))
            }
            Stmt::CumSum { k_end, .. } => flops(*k_end),
            Stmt::Diff { k0, k1, .. } => flops(*k1 - *k0),
            Stmt::MatMul { k, n, r0, r1, .. } => flops(2 * (r1 - r0) * n * k),
            Stmt::WindowedReuse {
                src_len,
                window,
                k0,
                k1,
                ..
            } => {
                let seed = k0.min(&(src_len - 1)) + 1 - (k0 + 1).saturating_sub(*window);
                flops(seed + 3 * (k1 - k0))
            }
        }
    }

    /// Number of output elements the statement produces (used for
    /// element-count accounting in the evaluation).
    pub fn output_elements(&self) -> usize {
        match self {
            Stmt::Unary { len, .. }
            | Stmt::FusedUnary { len, .. }
            | Stmt::Binary { len, .. }
            | Stmt::Select { len, .. }
            | Stmt::Copy { len, .. }
            | Stmt::Fill { len, .. }
            | Stmt::DynGather { len, .. } => *len,
            Stmt::Gather { indices, .. } => indices.len(),
            Stmt::Reduce { .. } | Stmt::Dot { .. } => 1,
            Stmt::Conv { k0, k1, .. }
            | Stmt::Fir { k0, k1, .. }
            | Stmt::MovingAvg { k0, k1, .. }
            | Stmt::Diff { k0, k1, .. }
            | Stmt::WindowedReuse { k0, k1, .. } => k1 - k0,
            Stmt::CumSum { k_end, .. } => *k_end,
            Stmt::MatMul { n, r0, r1, .. } => (r1 - r0) * n,
            Stmt::Transpose { rows, cols, .. } => rows * cols,
            Stmt::StateLoad { len, .. } | Stmt::StateStore { len, .. } => *len,
        }
    }
}

/// A complete generated program: buffers + statement sequence, tagged with
/// the generator style that produced it.
#[derive(Debug, Clone, PartialEq)]
pub struct Program {
    /// Model name (becomes the C function prefix).
    pub name: String,
    /// Generator style tag (drives cost-model assumptions downstream).
    pub style: crate::GeneratorStyle,
    /// All buffers.
    pub buffers: Vec<Buffer>,
    /// The statement sequence, in schedule order.
    pub stmts: Vec<Stmt>,
}

impl Program {
    /// The buffer behind a handle.
    ///
    /// # Panics
    ///
    /// Panics if the handle does not belong to this program.
    pub fn buffer(&self, id: BufId) -> &Buffer {
        &self.buffers[id.0]
    }

    /// Buffers with [`BufferRole::Input`], ordered by input index.
    pub fn inputs(&self) -> Vec<(usize, BufId)> {
        let mut v: Vec<(usize, BufId)> = self
            .buffers
            .iter()
            .enumerate()
            .filter_map(|(i, b)| match b.role {
                BufferRole::Input(idx) => Some((idx, BufId(i))),
                _ => None,
            })
            .collect();
        v.sort();
        v
    }

    /// Buffers with [`BufferRole::Output`], ordered by output index.
    pub fn outputs(&self) -> Vec<(usize, BufId)> {
        let mut v: Vec<(usize, BufId)> = self
            .buffers
            .iter()
            .enumerate()
            .filter_map(|(i, b)| match b.role {
                BufferRole::Output(idx) => Some((idx, BufId(i))),
                _ => None,
            })
            .collect();
        v.sort();
        v
    }

    /// Total statically allocated elements (the memory-study metric:
    /// identical across generator styles for the same model).
    pub fn total_buffer_elements(&self) -> usize {
        self.buffers.iter().map(|b| b.len).sum()
    }

    /// Total output elements produced per step across all statements —
    /// the element-computation count redundancy elimination reduces.
    pub fn computed_elements(&self) -> usize {
        self.stmts.iter().map(Stmt::output_elements).sum()
    }
}

impl fmt::Display for Program {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "program {} [{:?}]", self.name, self.style)?;
        for (i, b) in self.buffers.iter().enumerate() {
            writeln!(
                f,
                "  %{} {}: [{}] {:?}",
                i,
                b.name,
                b.len,
                role_tag(&b.role)
            )?;
        }
        for s in &self.stmts {
            writeln!(f, "  {s:?}")?;
        }
        Ok(())
    }
}

fn role_tag(role: &BufferRole) -> &'static str {
    match role {
        BufferRole::Input(_) => "input",
        BufferRole::Output(_) => "output",
        BufferRole::Temp => "temp",
        BufferRole::Const(_) => "const",
        BufferRole::State(_) => "state",
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vectorizability_classification() {
        let dst = Slice::new(BufId(0), 0);
        assert!(Stmt::Copy {
            dst,
            src: dst,
            len: 8
        }
        .is_vectorizable());
        assert!(Stmt::Unary {
            op: UnOp::Gain(2.0),
            dst,
            src: Src::Run(dst),
            len: 8
        }
        .is_vectorizable());
        assert!(!Stmt::Unary {
            op: UnOp::Exp,
            dst,
            src: Src::Run(dst),
            len: 8
        }
        .is_vectorizable());
        assert!(!Stmt::Gather {
            dst,
            src: BufId(1),
            indices: vec![0, 2]
        }
        .is_vectorizable());
        assert!(Stmt::Conv {
            dst: BufId(0),
            u: BufId(1),
            u_len: 8,
            v: BufId(2),
            v_len: 3,
            k0: 0,
            k1: 10,
            style: ConvStyle::Tight
        }
        .is_vectorizable());
        assert!(!Stmt::Conv {
            dst: BufId(0),
            u: BufId(1),
            u_len: 8,
            v: BufId(2),
            v_len: 3,
            k0: 0,
            k1: 10,
            style: ConvStyle::Branchy
        }
        .is_vectorizable());
    }

    #[test]
    fn windowed_reuse_is_serial_and_counts_its_run() {
        let s = Stmt::WindowedReuse {
            dst: BufId(0),
            src: BufId(1),
            src_len: 50,
            state: BufId(2),
            window: 11,
            scale: WindowScale::Mul(0.1),
            k0: 5,
            k1: 55,
        };
        assert!(!s.is_vectorizable());
        assert_eq!(s.output_elements(), 50);
    }

    #[test]
    fn output_element_accounting() {
        let dst = Slice::new(BufId(0), 5);
        assert_eq!(
            Stmt::Fill {
                dst,
                value: 0.0,
                len: 7
            }
            .output_elements(),
            7
        );
        assert_eq!(
            Stmt::Reduce {
                op: ReduceOp::Sum,
                dst,
                src: dst,
                len: 30
            }
            .output_elements(),
            1
        );
        assert_eq!(
            Stmt::MatMul {
                dst: BufId(0),
                a: BufId(1),
                b: BufId(2),
                m: 4,
                k: 4,
                n: 5,
                r0: 1,
                r1: 3
            }
            .output_elements(),
            10
        );
    }

    #[test]
    fn program_buffer_queries() {
        let p = Program {
            name: "t".into(),
            style: crate::GeneratorStyle::Frodo,
            buffers: vec![
                Buffer {
                    name: "o".into(),
                    len: 4,
                    role: BufferRole::Output(0),
                },
                Buffer {
                    name: "i".into(),
                    len: 4,
                    role: BufferRole::Input(0),
                },
                Buffer {
                    name: "t".into(),
                    len: 6,
                    role: BufferRole::Temp,
                },
            ],
            stmts: vec![Stmt::Copy {
                dst: Slice::new(BufId(0), 0),
                src: Slice::new(BufId(1), 0),
                len: 4,
            }],
        };
        assert_eq!(p.inputs(), vec![(0, BufId(1))]);
        assert_eq!(p.outputs(), vec![(0, BufId(0))]);
        assert_eq!(p.total_buffer_elements(), 14);
        assert_eq!(p.computed_elements(), 4);
    }

    #[test]
    fn transcendental_classification() {
        assert!(UnOp::Exp.is_transcendental());
        assert!(UnOp::Sqrt.is_transcendental());
        assert!(!UnOp::Gain(3.0).is_transcendental());
        assert!(!UnOp::Abs.is_transcendental());
    }
}
