//! Optional LIR optimization passes.
//!
//! The paper notes that Simulink Embedded Coder performs *expression
//! folding* and that "compilers employ a similar and effective
//! implementation"; this module provides the same transformation at the IR
//! level so its interaction with redundancy elimination can be studied
//! (`frodo-bench --bin ablation`). The pass is opt-in: the default pipeline
//! leaves folding to the C compiler, like the paper's generators do.
//!
//! [`window_reuse`] is the second opt-in pass: it rewrites sliding-window
//! statements (moving averages, uniform-kernel convolutions and FIR runs)
//! into [`Stmt::WindowedReuse`] rolling-accumulator form with persistent
//! ring-buffer state, eliminating the overlap recomputation between
//! consecutive output elements and retaining the window tail across
//! invocations.

use crate::lir::{BufId, Buffer, BufferRole, ConvStyle, Program, Slice, Src, Stmt, WindowScale};

/// Fuses chains of elementwise unary statements into single loops.
///
/// # Example
///
/// ```
/// use frodo_codegen::optimize::fold_expressions;
/// use frodo_codegen::{generate, GeneratorStyle};
/// use frodo_core::Analysis;
/// use frodo_model::{Block, BlockKind, Model};
/// use frodo_ranges::Shape;
///
/// # fn main() -> Result<(), frodo_model::ModelError> {
/// let mut m = Model::new("chain");
/// let i = m.add(Block::new("i", BlockKind::Inport { index: 0, shape: Shape::Vector(8) }));
/// let g = m.add(Block::new("g", BlockKind::Gain { gain: 2.0 }));
/// let a = m.add(Block::new("a", BlockKind::Abs));
/// let o = m.add(Block::new("o", BlockKind::Outport { index: 0 }));
/// m.connect(i, 0, g, 0)?;
/// m.connect(g, 0, a, 0)?;
/// m.connect(a, 0, o, 0)?;
/// let p = generate(&Analysis::run(m)?, GeneratorStyle::Frodo, &frodo_obs::Trace::noop());
/// let folded = fold_expressions(&p);
/// assert_eq!(folded.stmts.len(), p.stmts.len() - 1); // gain+abs fused
/// # Ok(())
/// # }
/// ```
///
/// `t = f(x); y = g(t)` becomes `y = g(f(x))` when the intermediate run is
/// produced by exactly one unary statement and consumed by exactly one
/// other statement. The intermediate buffer stays allocated (memory parity
/// across generators is part of the evaluation) but is no longer written.
///
/// Chains of any length fold in one call; the result is returned as a new
/// program.
pub fn fold_expressions(program: &Program) -> Program {
    // the input program is borrowed, so the statement list must be copied
    // once up front; the folding loop below then works by ownership
    let mut stmts = program.stmts.clone();
    while let Some((producer, consumer, delta)) = find_fusable(&stmts) {
        // merge producer into consumer: removing the producer first hands
        // us its statement by value (find_fusable guarantees
        // producer < consumer, so the consumer shifts down by one)
        let (mut ops, p_src) = match stmts.remove(producer) {
            Stmt::Unary { op, src, .. } => (vec![op], src),
            Stmt::FusedUnary { ops, src, .. } => (ops, src),
            _ => unreachable!("find_fusable only returns unary producers"),
        };
        // a subset consumer fuses on the intersection — its own (smaller)
        // run — so the producer's run source shifts by the same offset
        let p_src = match p_src {
            Src::Run(s) => Src::Run(Slice::new(s.buf, s.off + delta)),
            other => other,
        };
        let consumer = consumer - 1;
        let (c_ops, c_dst, c_len) = match &stmts[consumer] {
            &Stmt::Unary { op, dst, len, .. } => (vec![op], dst, len),
            Stmt::FusedUnary { ops, dst, len, .. } => (ops.clone(), *dst, *len),
            _ => unreachable!("find_fusable only returns unary consumers"),
        };
        ops.extend(c_ops);
        stmts[consumer] = Stmt::FusedUnary {
            ops,
            dst: c_dst,
            src: p_src,
            len: c_len,
        };
    }
    Program {
        name: program.name.clone(),
        style: program.style,
        buffers: program.buffers.clone(),
        stmts,
    }
}

/// Finds `(producer, consumer, delta)` of a fusable unary pair, where
/// `delta` is the consumer run's offset into the producer's run (`0` when
/// the runs coincide exactly).
fn find_fusable(stmts: &[Stmt]) -> Option<(usize, usize, usize)> {
    for (j, stmt) in stmts.iter().enumerate() {
        let (src, len) = match stmt {
            Stmt::Unary {
                src: Src::Run(s),
                len,
                ..
            }
            | Stmt::FusedUnary {
                src: Src::Run(s),
                len,
                ..
            } => (*s, *len),
            _ => continue,
        };
        // the producer must be the unique unary statement writing a run
        // the consumer's read run sits inside — fusion happens on the
        // intersection, which for a subset read is the consumer's own
        // `[k0, k1)`; the producer's uncovered tail elements are written
        // for nobody (the uniqueness check below guarantees no other
        // reader) and simply drop out
        let Some((i, delta)) = stmts.iter().enumerate().find_map(|(i, p)| match p {
            Stmt::Unary { dst, len: plen, .. } | Stmt::FusedUnary { dst, len: plen, .. } => {
                (dst.buf == src.buf && src.off >= dst.off && src.off + len <= dst.off + plen)
                    .then(|| (i, src.off - dst.off))
            }
            _ => None,
        }) else {
            continue;
        };
        if i >= j {
            continue;
        }
        // nothing else may write or read the intermediate buffer
        let unique = stmts.iter().enumerate().all(|(k, s)| {
            k == i || k == j || (!writes_buffer(s, src) && !reads_buffer(s, src.buf))
        });
        if unique {
            return Some((i, j, delta));
        }
    }
    None
}

fn writes_buffer(stmt: &Stmt, dst: Slice) -> bool {
    match stmt {
        Stmt::Unary { dst: d, .. }
        | Stmt::FusedUnary { dst: d, .. }
        | Stmt::Binary { dst: d, .. }
        | Stmt::Select { dst: d, .. }
        | Stmt::Copy { dst: d, .. }
        | Stmt::Fill { dst: d, .. }
        | Stmt::Gather { dst: d, .. }
        | Stmt::DynGather { dst: d, .. }
        | Stmt::Reduce { dst: d, .. }
        | Stmt::Dot { dst: d, .. } => d.buf == dst.buf,
        Stmt::Conv { dst: d, .. }
        | Stmt::Fir { dst: d, .. }
        | Stmt::MovingAvg { dst: d, .. }
        | Stmt::CumSum { dst: d, .. }
        | Stmt::Diff { dst: d, .. }
        | Stmt::MatMul { dst: d, .. }
        | Stmt::Transpose { dst: d, .. }
        | Stmt::StateLoad { dst: d, .. } => *d == dst.buf,
        Stmt::StateStore { state, .. } => *state == dst.buf,
        Stmt::WindowedReuse { dst: d, state, .. } => *d == dst.buf || *state == dst.buf,
    }
}

fn src_buf(src: &Src) -> Option<crate::lir::BufId> {
    match src {
        Src::Run(s) | Src::Broadcast(s) => Some(s.buf),
        Src::Const(_) => None,
    }
}

fn reads_buffer(stmt: &Stmt, buf: crate::lir::BufId) -> bool {
    match stmt {
        Stmt::Unary { src, .. } | Stmt::FusedUnary { src, .. } => src_buf(src) == Some(buf),
        Stmt::Binary { a, b, .. } => src_buf(a) == Some(buf) || src_buf(b) == Some(buf),
        Stmt::Select { ctrl, a, b, .. } => {
            src_buf(ctrl) == Some(buf) || src_buf(a) == Some(buf) || src_buf(b) == Some(buf)
        }
        Stmt::Copy { src, .. } => src.buf == buf,
        Stmt::Fill { .. } => false,
        Stmt::Gather { src, .. } | Stmt::DynGather { src, .. } => *src == buf,
        Stmt::Reduce { src, .. } => src.buf == buf,
        Stmt::Dot { a, b, .. } => a.buf == buf || b.buf == buf,
        Stmt::Conv { u, v, .. } => *u == buf || *v == buf,
        Stmt::Fir { src, coeffs, .. } => *src == buf || *coeffs == buf,
        Stmt::MovingAvg { src, .. } | Stmt::CumSum { src, .. } | Stmt::Diff { src, .. } => {
            *src == buf
        }
        Stmt::MatMul { a, b, .. } => *a == buf || *b == buf,
        Stmt::Transpose { src, .. } => *src == buf,
        Stmt::StateLoad { state, .. } => *state == buf,
        Stmt::StateStore { src, .. } => *src == buf,
        Stmt::WindowedReuse { src, .. } => *src == buf,
    }
}

/// Minimum window length for which the rolling accumulator pays off: the
/// delta update costs ~2 flops per element against `window` flops for a
/// fresh sum, so tiny windows are left alone.
const MIN_WINDOW: usize = 4;

/// Rewrites eligible sliding-window statements into rolling-accumulator
/// [`Stmt::WindowedReuse`] form.
///
/// A statement qualifies when its read windows at consecutive output
/// indices overlap and the per-element weights are uniform, so the window
/// sum can be maintained incrementally (add the entering sample, subtract
/// the leaving one) instead of recomputed from scratch:
///
/// - [`Stmt::MovingAvg`] always qualifies (scale `1/window`);
/// - [`Stmt::Conv`] with [`ConvStyle::Tight`] qualifies when either
///   operand is a uniform constant `c` (scale `c`, window over the other
///   operand — convolution is commutative);
/// - [`Stmt::Fir`] qualifies when all taps are the same constant `c`.
///
/// Each rewrite appends a persistent [`BufferRole::State`] ring buffer of
/// `window` elements holding the retained window tail, so a subsequent
/// invocation of a streaming deployment can seed its accumulator from the
/// previous input's trailing samples instead of recomputing the overlap.
/// Windows shorter than `MIN_WINDOW` and runs shorter than two elements
/// are left untouched (no overlap worth reusing).
pub fn window_reuse(program: &Program) -> Program {
    let mut buffers = program.buffers.clone();
    let mut stmts = Vec::with_capacity(program.stmts.len());
    let mut rewritten = 0usize;
    for stmt in &program.stmts {
        match window_candidate(program, stmt) {
            Some((dst, src, src_len, window, scale, k0, k1)) => {
                let state = BufId(buffers.len());
                let dst_name = buffers[dst.0].name.clone();
                buffers.push(Buffer {
                    name: format!("{dst_name}_win{rewritten}"),
                    len: window,
                    role: BufferRole::State(vec![0.0; window]),
                });
                rewritten += 1;
                stmts.push(Stmt::WindowedReuse {
                    dst,
                    src,
                    src_len,
                    state,
                    window,
                    scale,
                    k0,
                    k1,
                });
            }
            None => stmts.push(stmt.clone()),
        }
    }
    Program {
        name: program.name.clone(),
        style: program.style,
        buffers,
        stmts,
    }
}

/// Returns the `(dst, src, src_len, window, scale, k0, k1)` pieces of a
/// [`Stmt::WindowedReuse`] rewrite when `stmt` qualifies.
#[allow(clippy::type_complexity)]
fn window_candidate(
    program: &Program,
    stmt: &Stmt,
) -> Option<(BufId, BufId, usize, usize, WindowScale, usize, usize)> {
    let (dst, src, src_len, window, scale, k0, k1) = match *stmt {
        Stmt::MovingAvg {
            dst,
            src,
            window,
            k0,
            k1,
        } => (
            dst,
            src,
            program.buffers[src.0].len,
            window,
            WindowScale::Div(window as f64),
            k0,
            k1,
        ),
        Stmt::Conv {
            dst,
            u,
            u_len,
            v,
            v_len,
            k0,
            k1,
            style: ConvStyle::Tight,
        } => {
            if let Some(c) = uniform_const(program, v) {
                (dst, u, u_len, v_len, WindowScale::Mul(c), k0, k1)
            } else if let Some(c) = uniform_const(program, u) {
                (dst, v, v_len, u_len, WindowScale::Mul(c), k0, k1)
            } else {
                return None;
            }
        }
        Stmt::Fir {
            dst,
            src,
            coeffs,
            taps,
            k0,
            k1,
        } => {
            let c = uniform_const(program, coeffs)?;
            (
                dst,
                src,
                program.buffers[src.0].len,
                taps,
                WindowScale::Mul(c),
                k0,
                k1,
            )
        }
        _ => return None,
    };
    (window >= MIN_WINDOW && k1 - k0 >= 2).then_some((dst, src, src_len, window, scale, k0, k1))
}

/// The single value every element of a constant buffer holds, if the
/// buffer is constant, non-empty, and bit-identical throughout.
fn uniform_const(program: &Program, buf: BufId) -> Option<f64> {
    match &program.buffers[buf.0].role {
        BufferRole::Const(data) if !data.is_empty() => {
            let first = data[0];
            data.iter()
                .all(|d| d.to_bits() == first.to_bits())
                .then_some(first)
        }
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{generate, GeneratorStyle};
    use frodo_core::Analysis;
    use frodo_model::{Block, BlockKind, Model};
    use frodo_ranges::Shape;

    fn unary_chain_model() -> Model {
        // in -> gain -> bias -> abs -> sqrt -> out, with only out consuming
        let mut m = Model::new("chain");
        let i = m.add(Block::new(
            "i",
            BlockKind::Inport {
                index: 0,
                shape: Shape::Vector(16),
            },
        ));
        let g = m.add(Block::new("g", BlockKind::Gain { gain: 2.0 }));
        let b = m.add(Block::new("b", BlockKind::Bias { bias: 1.0 }));
        let a = m.add(Block::new("a", BlockKind::Abs));
        let s = m.add(Block::new("s", BlockKind::Sqrt));
        let o = m.add(Block::new("o", BlockKind::Outport { index: 0 }));
        m.connect(i, 0, g, 0).unwrap();
        m.connect(g, 0, b, 0).unwrap();
        m.connect(b, 0, a, 0).unwrap();
        m.connect(a, 0, s, 0).unwrap();
        m.connect(s, 0, o, 0).unwrap();
        m
    }

    #[test]
    fn chain_folds_to_single_loop() {
        let analysis = Analysis::run(unary_chain_model()).unwrap();
        let p = generate(&analysis, GeneratorStyle::Frodo, &frodo_obs::Trace::noop());
        let folded = fold_expressions(&p);
        let fused: Vec<&Stmt> = folded
            .stmts
            .iter()
            .filter(|s| matches!(s, Stmt::FusedUnary { .. }))
            .collect();
        assert_eq!(fused.len(), 1, "{folded}");
        match fused[0] {
            Stmt::FusedUnary { ops, .. } => assert_eq!(ops.len(), 4),
            _ => unreachable!(),
        }
        // chain loops collapsed: 4 unary stmts -> 1 fused (+ outport copy)
        assert_eq!(folded.stmts.len(), p.stmts.len() - 3);
    }

    /// A minimal evaluator sufficient for unary-chain programs (the full
    /// VM lives in `frodo-sim`, which depends on this crate).
    ///
    /// Returns `None` when the program contains an op or statement outside
    /// its repertoire: callers skip the semantics comparison for that fold
    /// instead of aborting, so an unexpected op can never panic the suite.
    fn mini_eval(p: &Program, input: &[f64]) -> Option<Vec<f64>> {
        use crate::lir::{BufferRole, Src};
        let mut bufs: Vec<Vec<f64>> = p
            .buffers
            .iter()
            .map(|b| match &b.role {
                BufferRole::Const(d) | BufferRole::State(d) => d.clone(),
                BufferRole::Input(_) => input.to_vec(),
                _ => vec![0.0; b.len],
            })
            .collect();
        let apply = |op: crate::lir::UnOp, x: f64| -> Option<f64> {
            use crate::lir::UnOp::*;
            match op {
                Gain(g) => Some(x * g),
                Bias(b) => Some(x + b),
                Abs => Some(x.abs()),
                Sqrt => Some(x.sqrt()),
                Square => Some(x * x),
                _ => None, // outside the chain-test repertoire
            }
        };
        for stmt in &p.stmts {
            match stmt.clone() {
                Stmt::Unary { op, dst, src, len } => {
                    for i in 0..len {
                        let x = match src {
                            Src::Run(s) => bufs[s.buf.0][s.off + i],
                            Src::Broadcast(s) => bufs[s.buf.0][s.off],
                            Src::Const(c) => c,
                        };
                        bufs[dst.buf.0][dst.off + i] = apply(op, x)?;
                    }
                }
                Stmt::FusedUnary { ops, dst, src, len } => {
                    for i in 0..len {
                        let mut x = match src {
                            Src::Run(s) => bufs[s.buf.0][s.off + i],
                            Src::Broadcast(s) => bufs[s.buf.0][s.off],
                            Src::Const(c) => c,
                        };
                        for &op in &ops {
                            x = apply(op, x)?;
                        }
                        bufs[dst.buf.0][dst.off + i] = x;
                    }
                }
                Stmt::Copy { dst, src, len } => {
                    for i in 0..len {
                        bufs[dst.buf.0][dst.off + i] = bufs[src.buf.0][src.off + i];
                    }
                }
                _ => return None, // statement kind the mini evaluator can't model
            }
        }
        let (_, out) = p.outputs()[0];
        Some(bufs[out.0].clone())
    }

    #[test]
    fn folding_preserves_semantics() {
        let analysis = Analysis::run(unary_chain_model()).unwrap();
        for style in GeneratorStyle::ALL {
            let p = generate(&analysis, style, &frodo_obs::Trace::noop());
            let folded = fold_expressions(&p);
            let input: Vec<f64> = (0..16).map(|i| i as f64 - 8.0).collect();
            let before = mini_eval(&p, &input).expect("chain ops are in repertoire");
            let after = mini_eval(&folded, &input).expect("fold keeps ops in repertoire");
            assert_eq!(before, after, "style {style}");
        }
    }

    #[test]
    fn unknown_ops_skip_the_semantics_check_instead_of_panicking() {
        // in -> sin -> exp -> tanh -> out: every op is outside mini_eval's
        // repertoire. The fold itself must still fuse the chain, and the
        // evaluator must decline gracefully rather than abort the suite.
        let mut m = Model::new("transcendental");
        let i = m.add(Block::new(
            "i",
            BlockKind::Inport {
                index: 0,
                shape: Shape::Vector(16),
            },
        ));
        let s = m.add(Block::new("s", BlockKind::Sin));
        let e = m.add(Block::new("e", BlockKind::Exp));
        let t = m.add(Block::new("t", BlockKind::Tanh));
        let o = m.add(Block::new("o", BlockKind::Outport { index: 0 }));
        m.connect(i, 0, s, 0).unwrap();
        m.connect(s, 0, e, 0).unwrap();
        m.connect(e, 0, t, 0).unwrap();
        m.connect(t, 0, o, 0).unwrap();
        let analysis = Analysis::run(m).unwrap();
        let p = generate(&analysis, GeneratorStyle::Frodo, &frodo_obs::Trace::noop());
        let folded = fold_expressions(&p);
        assert!(
            folded
                .stmts
                .iter()
                .any(|s| matches!(s, Stmt::FusedUnary { .. })),
            "transcendental chain still fuses: {folded}"
        );
        let input: Vec<f64> = (0..16).map(|i| i as f64 - 8.0).collect();
        assert_eq!(mini_eval(&p, &input), None);
        assert_eq!(mini_eval(&folded, &input), None);
    }

    #[test]
    fn fanout_blocks_folding() {
        // in -> gain -> (abs, square) : gain's result is consumed twice
        let mut m = Model::new("fan");
        let i = m.add(Block::new(
            "i",
            BlockKind::Inport {
                index: 0,
                shape: Shape::Vector(8),
            },
        ));
        let g = m.add(Block::new("g", BlockKind::Gain { gain: 2.0 }));
        let a = m.add(Block::new("a", BlockKind::Abs));
        let q = m.add(Block::new("q", BlockKind::Square));
        let o0 = m.add(Block::new("o0", BlockKind::Outport { index: 0 }));
        let o1 = m.add(Block::new("o1", BlockKind::Outport { index: 1 }));
        m.connect(i, 0, g, 0).unwrap();
        m.connect(g, 0, a, 0).unwrap();
        m.connect(g, 0, q, 0).unwrap();
        m.connect(a, 0, o0, 0).unwrap();
        m.connect(q, 0, o1, 0).unwrap();
        let analysis = Analysis::run(m).unwrap();
        let p = generate(&analysis, GeneratorStyle::Frodo, &frodo_obs::Trace::noop());
        let folded = fold_expressions(&p);
        // the gain feeds two consumers, so nothing may fold into it
        assert_eq!(folded.stmts.len(), p.stmts.len());
    }

    #[test]
    fn subset_run_fuses_on_the_intersection() {
        use crate::lir::UnOp;
        // the producer writes a 16-wide run; the consumer reads only the
        // middle 8 elements starting at offset 4 — fusion must land on the
        // consumer's run with the producer's source shifted by the delta
        let p = Program {
            name: "subset".into(),
            style: GeneratorStyle::Frodo,
            buffers: vec![
                Buffer {
                    name: "u".into(),
                    len: 16,
                    role: BufferRole::Input(0),
                },
                Buffer {
                    name: "t".into(),
                    len: 16,
                    role: BufferRole::Temp,
                },
                Buffer {
                    name: "y".into(),
                    len: 8,
                    role: BufferRole::Output(0),
                },
            ],
            stmts: vec![
                Stmt::Unary {
                    op: UnOp::Gain(2.0),
                    dst: Slice::new(BufId(1), 0),
                    src: Src::Run(Slice::new(BufId(0), 0)),
                    len: 16,
                },
                Stmt::Unary {
                    op: UnOp::Abs,
                    dst: Slice::new(BufId(2), 0),
                    src: Src::Run(Slice::new(BufId(1), 4)),
                    len: 8,
                },
            ],
        };
        let folded = fold_expressions(&p);
        assert_eq!(folded.stmts.len(), 1, "{folded}");
        match &folded.stmts[0] {
            Stmt::FusedUnary { ops, src, len, .. } => {
                assert_eq!(ops.len(), 2);
                assert_eq!(*len, 8);
                assert_eq!(*src, Src::Run(Slice::new(BufId(0), 4)));
            }
            other => panic!("expected fused statement, got {other:?}"),
        }
        let input: Vec<f64> = (0..16).map(|i| i as f64 - 8.0).collect();
        let before = mini_eval(&p, &input).expect("subset ops are in repertoire");
        assert_eq!(Some(before), mini_eval(&folded, &input));
    }

    fn uniform_conv_program(kernel: Vec<f64>) -> Program {
        let v_len = kernel.len();
        Program {
            name: "conv".into(),
            style: GeneratorStyle::Frodo,
            buffers: vec![
                Buffer {
                    name: "u".into(),
                    len: 50,
                    role: BufferRole::Input(0),
                },
                Buffer {
                    name: "h".into(),
                    len: v_len,
                    role: BufferRole::Const(kernel),
                },
                Buffer {
                    name: "y".into(),
                    len: 50 + v_len - 1,
                    role: BufferRole::Output(0),
                },
            ],
            stmts: vec![Stmt::Conv {
                dst: BufId(2),
                u: BufId(0),
                u_len: 50,
                v: BufId(1),
                v_len,
                k0: 5,
                k1: 55,
                style: ConvStyle::Tight,
            }],
        }
    }

    #[test]
    fn window_reuse_rewrites_uniform_kernel_conv() {
        // the figure-1 shape: x * [0.1; 11] truncated to a trailing run
        let p = uniform_conv_program(vec![0.1; 11]);
        let reused = window_reuse(&p);
        assert_eq!(reused.stmts.len(), 1);
        match &reused.stmts[0] {
            Stmt::WindowedReuse {
                dst,
                src,
                src_len,
                state,
                window,
                scale,
                k0,
                k1,
            } => {
                assert_eq!((*dst, *src, *src_len), (BufId(2), BufId(0), 50));
                assert_eq!((*window, *k0, *k1), (11, 5, 55));
                assert_eq!(*scale, WindowScale::Mul(0.1));
                assert_eq!(*state, BufId(3));
            }
            other => panic!("expected WindowedReuse, got {other:?}"),
        }
        // one persistent ring buffer of `window` zeros was appended
        assert_eq!(reused.buffers.len(), p.buffers.len() + 1);
        let ring = reused.buffers.last().unwrap();
        assert_eq!(ring.name, "y_win0");
        assert_eq!(ring.len, 11);
        assert_eq!(ring.role, BufferRole::State(vec![0.0; 11]));
    }

    #[test]
    fn window_reuse_skips_non_uniform_and_tiny_windows() {
        // non-uniform taps: the weighted sum cannot roll
        let varying: Vec<f64> = (0..11).map(|i| 0.01 * i as f64).collect();
        let p = uniform_conv_program(varying);
        assert_eq!(window_reuse(&p).stmts, p.stmts);
        // uniform but below MIN_WINDOW: delta update would not pay off
        let tiny = uniform_conv_program(vec![0.5; 3]);
        assert_eq!(window_reuse(&tiny).stmts, tiny.stmts);
    }

    #[test]
    fn window_reuse_rewrites_moving_average() {
        let p = Program {
            name: "avg".into(),
            style: GeneratorStyle::Frodo,
            buffers: vec![
                Buffer {
                    name: "u".into(),
                    len: 40,
                    role: BufferRole::Input(0),
                },
                Buffer {
                    name: "y".into(),
                    len: 40,
                    role: BufferRole::Output(0),
                },
            ],
            stmts: vec![Stmt::MovingAvg {
                dst: BufId(1),
                src: BufId(0),
                window: 8,
                k0: 10,
                k1: 40,
            }],
        };
        let reused = window_reuse(&p);
        match &reused.stmts[0] {
            Stmt::WindowedReuse { scale, window, .. } => {
                assert_eq!(*scale, WindowScale::Div(8.0));
                assert_eq!(*window, 8);
            }
            other => panic!("expected WindowedReuse, got {other:?}"),
        }
    }
}
