//! Optional LIR optimization passes.
//!
//! The paper notes that Simulink Embedded Coder performs *expression
//! folding* and that "compilers employ a similar and effective
//! implementation"; this module provides the same transformation at the IR
//! level so its interaction with redundancy elimination can be studied
//! (`frodo-bench --bin ablation`). The pass is opt-in: the default pipeline
//! leaves folding to the C compiler, like the paper's generators do.

use crate::lir::{Program, Slice, Src, Stmt};

/// Fuses chains of elementwise unary statements into single loops.
///
/// # Example
///
/// ```
/// use frodo_codegen::optimize::fold_expressions;
/// use frodo_codegen::{generate, GeneratorStyle};
/// use frodo_core::Analysis;
/// use frodo_model::{Block, BlockKind, Model};
/// use frodo_ranges::Shape;
///
/// # fn main() -> Result<(), frodo_model::ModelError> {
/// let mut m = Model::new("chain");
/// let i = m.add(Block::new("i", BlockKind::Inport { index: 0, shape: Shape::Vector(8) }));
/// let g = m.add(Block::new("g", BlockKind::Gain { gain: 2.0 }));
/// let a = m.add(Block::new("a", BlockKind::Abs));
/// let o = m.add(Block::new("o", BlockKind::Outport { index: 0 }));
/// m.connect(i, 0, g, 0)?;
/// m.connect(g, 0, a, 0)?;
/// m.connect(a, 0, o, 0)?;
/// let p = generate(&Analysis::run(m)?, GeneratorStyle::Frodo, &frodo_obs::Trace::noop());
/// let folded = fold_expressions(&p);
/// assert_eq!(folded.stmts.len(), p.stmts.len() - 1); // gain+abs fused
/// # Ok(())
/// # }
/// ```
///
/// `t = f(x); y = g(t)` becomes `y = g(f(x))` when the intermediate run is
/// produced by exactly one unary statement and consumed by exactly one
/// other statement. The intermediate buffer stays allocated (memory parity
/// across generators is part of the evaluation) but is no longer written.
///
/// Chains of any length fold in one call; the result is returned as a new
/// program.
pub fn fold_expressions(program: &Program) -> Program {
    // the input program is borrowed, so the statement list must be copied
    // once up front; the folding loop below then works by ownership
    let mut stmts = program.stmts.clone();
    while let Some((producer, consumer)) = find_fusable(&stmts) {
        // merge producer into consumer: removing the producer first hands
        // us its statement by value (find_fusable guarantees
        // producer < consumer, so the consumer shifts down by one)
        let (mut ops, p_src) = match stmts.remove(producer) {
            Stmt::Unary { op, src, .. } => (vec![op], src),
            Stmt::FusedUnary { ops, src, .. } => (ops, src),
            _ => unreachable!("find_fusable only returns unary producers"),
        };
        let consumer = consumer - 1;
        let (c_ops, c_dst, c_len) = match &stmts[consumer] {
            &Stmt::Unary { op, dst, len, .. } => (vec![op], dst, len),
            Stmt::FusedUnary { ops, dst, len, .. } => (ops.clone(), *dst, *len),
            _ => unreachable!("find_fusable only returns unary consumers"),
        };
        ops.extend(c_ops);
        stmts[consumer] = Stmt::FusedUnary {
            ops,
            dst: c_dst,
            src: p_src,
            len: c_len,
        };
    }
    Program {
        name: program.name.clone(),
        style: program.style,
        buffers: program.buffers.clone(),
        stmts,
    }
}

/// Finds `(producer, consumer)` indices of a fusable unary pair.
fn find_fusable(stmts: &[Stmt]) -> Option<(usize, usize)> {
    for (j, stmt) in stmts.iter().enumerate() {
        let (src, len) = match stmt {
            Stmt::Unary {
                src: Src::Run(s),
                len,
                ..
            }
            | Stmt::FusedUnary {
                src: Src::Run(s),
                len,
                ..
            } => (*s, *len),
            _ => continue,
        };
        // the producer must be the unique unary statement writing this run
        let Some(i) = stmts.iter().position(|p| match p {
            Stmt::Unary { dst, len: plen, .. } | Stmt::FusedUnary { dst, len: plen, .. } => {
                *dst == src && *plen == len
            }
            _ => false,
        }) else {
            continue;
        };
        if i >= j {
            continue;
        }
        // nothing else may write or read the intermediate buffer
        let unique = stmts.iter().enumerate().all(|(k, s)| {
            k == i || k == j || (!writes_buffer(s, src) && !reads_buffer(s, src.buf))
        });
        if unique {
            return Some((i, j));
        }
    }
    None
}

fn writes_buffer(stmt: &Stmt, dst: Slice) -> bool {
    match stmt {
        Stmt::Unary { dst: d, .. }
        | Stmt::FusedUnary { dst: d, .. }
        | Stmt::Binary { dst: d, .. }
        | Stmt::Select { dst: d, .. }
        | Stmt::Copy { dst: d, .. }
        | Stmt::Fill { dst: d, .. }
        | Stmt::Gather { dst: d, .. }
        | Stmt::DynGather { dst: d, .. }
        | Stmt::Reduce { dst: d, .. }
        | Stmt::Dot { dst: d, .. } => d.buf == dst.buf,
        Stmt::Conv { dst: d, .. }
        | Stmt::Fir { dst: d, .. }
        | Stmt::MovingAvg { dst: d, .. }
        | Stmt::CumSum { dst: d, .. }
        | Stmt::Diff { dst: d, .. }
        | Stmt::MatMul { dst: d, .. }
        | Stmt::Transpose { dst: d, .. }
        | Stmt::StateLoad { dst: d, .. } => *d == dst.buf,
        Stmt::StateStore { state, .. } => *state == dst.buf,
    }
}

fn src_buf(src: &Src) -> Option<crate::lir::BufId> {
    match src {
        Src::Run(s) | Src::Broadcast(s) => Some(s.buf),
        Src::Const(_) => None,
    }
}

fn reads_buffer(stmt: &Stmt, buf: crate::lir::BufId) -> bool {
    match stmt {
        Stmt::Unary { src, .. } | Stmt::FusedUnary { src, .. } => src_buf(src) == Some(buf),
        Stmt::Binary { a, b, .. } => src_buf(a) == Some(buf) || src_buf(b) == Some(buf),
        Stmt::Select { ctrl, a, b, .. } => {
            src_buf(ctrl) == Some(buf) || src_buf(a) == Some(buf) || src_buf(b) == Some(buf)
        }
        Stmt::Copy { src, .. } => src.buf == buf,
        Stmt::Fill { .. } => false,
        Stmt::Gather { src, .. } | Stmt::DynGather { src, .. } => *src == buf,
        Stmt::Reduce { src, .. } => src.buf == buf,
        Stmt::Dot { a, b, .. } => a.buf == buf || b.buf == buf,
        Stmt::Conv { u, v, .. } => *u == buf || *v == buf,
        Stmt::Fir { src, coeffs, .. } => *src == buf || *coeffs == buf,
        Stmt::MovingAvg { src, .. } | Stmt::CumSum { src, .. } | Stmt::Diff { src, .. } => {
            *src == buf
        }
        Stmt::MatMul { a, b, .. } => *a == buf || *b == buf,
        Stmt::Transpose { src, .. } => *src == buf,
        Stmt::StateLoad { state, .. } => *state == buf,
        Stmt::StateStore { src, .. } => *src == buf,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{generate, GeneratorStyle};
    use frodo_core::Analysis;
    use frodo_model::{Block, BlockKind, Model};
    use frodo_ranges::Shape;

    fn unary_chain_model() -> Model {
        // in -> gain -> bias -> abs -> sqrt -> out, with only out consuming
        let mut m = Model::new("chain");
        let i = m.add(Block::new(
            "i",
            BlockKind::Inport {
                index: 0,
                shape: Shape::Vector(16),
            },
        ));
        let g = m.add(Block::new("g", BlockKind::Gain { gain: 2.0 }));
        let b = m.add(Block::new("b", BlockKind::Bias { bias: 1.0 }));
        let a = m.add(Block::new("a", BlockKind::Abs));
        let s = m.add(Block::new("s", BlockKind::Sqrt));
        let o = m.add(Block::new("o", BlockKind::Outport { index: 0 }));
        m.connect(i, 0, g, 0).unwrap();
        m.connect(g, 0, b, 0).unwrap();
        m.connect(b, 0, a, 0).unwrap();
        m.connect(a, 0, s, 0).unwrap();
        m.connect(s, 0, o, 0).unwrap();
        m
    }

    #[test]
    fn chain_folds_to_single_loop() {
        let analysis = Analysis::run(unary_chain_model()).unwrap();
        let p = generate(&analysis, GeneratorStyle::Frodo, &frodo_obs::Trace::noop());
        let folded = fold_expressions(&p);
        let fused: Vec<&Stmt> = folded
            .stmts
            .iter()
            .filter(|s| matches!(s, Stmt::FusedUnary { .. }))
            .collect();
        assert_eq!(fused.len(), 1, "{folded}");
        match fused[0] {
            Stmt::FusedUnary { ops, .. } => assert_eq!(ops.len(), 4),
            _ => unreachable!(),
        }
        // chain loops collapsed: 4 unary stmts -> 1 fused (+ outport copy)
        assert_eq!(folded.stmts.len(), p.stmts.len() - 3);
    }

    /// A minimal evaluator sufficient for unary-chain programs (the full
    /// VM lives in `frodo-sim`, which depends on this crate).
    fn mini_eval(p: &Program, input: &[f64]) -> Vec<f64> {
        use crate::lir::{BufferRole, Src};
        let mut bufs: Vec<Vec<f64>> = p
            .buffers
            .iter()
            .map(|b| match &b.role {
                BufferRole::Const(d) | BufferRole::State(d) => d.clone(),
                BufferRole::Input(_) => input.to_vec(),
                _ => vec![0.0; b.len],
            })
            .collect();
        let apply = |op: crate::lir::UnOp, x: f64| -> f64 {
            use crate::lir::UnOp::*;
            match op {
                Gain(g) => x * g,
                Bias(b) => x + b,
                Abs => x.abs(),
                Sqrt => x.sqrt(),
                Square => x * x,
                _ => unimplemented!("mini_eval covers chain-test ops only"),
            }
        };
        for stmt in &p.stmts {
            match stmt.clone() {
                Stmt::Unary { op, dst, src, len } => {
                    for i in 0..len {
                        let x = match src {
                            Src::Run(s) => bufs[s.buf.0][s.off + i],
                            Src::Broadcast(s) => bufs[s.buf.0][s.off],
                            Src::Const(c) => c,
                        };
                        bufs[dst.buf.0][dst.off + i] = apply(op, x);
                    }
                }
                Stmt::FusedUnary { ops, dst, src, len } => {
                    for i in 0..len {
                        let mut x = match src {
                            Src::Run(s) => bufs[s.buf.0][s.off + i],
                            Src::Broadcast(s) => bufs[s.buf.0][s.off],
                            Src::Const(c) => c,
                        };
                        for &op in &ops {
                            x = apply(op, x);
                        }
                        bufs[dst.buf.0][dst.off + i] = x;
                    }
                }
                Stmt::Copy { dst, src, len } => {
                    for i in 0..len {
                        bufs[dst.buf.0][dst.off + i] = bufs[src.buf.0][src.off + i];
                    }
                }
                other => unimplemented!("mini_eval: {other:?}"),
            }
        }
        let (_, out) = p.outputs()[0];
        bufs[out.0].clone()
    }

    #[test]
    fn folding_preserves_semantics() {
        let analysis = Analysis::run(unary_chain_model()).unwrap();
        for style in GeneratorStyle::ALL {
            let p = generate(&analysis, style, &frodo_obs::Trace::noop());
            let folded = fold_expressions(&p);
            let input: Vec<f64> = (0..16).map(|i| i as f64 - 8.0).collect();
            assert_eq!(
                mini_eval(&p, &input),
                mini_eval(&folded, &input),
                "style {style}"
            );
        }
    }

    #[test]
    fn fanout_blocks_folding() {
        // in -> gain -> (abs, square) : gain's result is consumed twice
        let mut m = Model::new("fan");
        let i = m.add(Block::new(
            "i",
            BlockKind::Inport {
                index: 0,
                shape: Shape::Vector(8),
            },
        ));
        let g = m.add(Block::new("g", BlockKind::Gain { gain: 2.0 }));
        let a = m.add(Block::new("a", BlockKind::Abs));
        let q = m.add(Block::new("q", BlockKind::Square));
        let o0 = m.add(Block::new("o0", BlockKind::Outport { index: 0 }));
        let o1 = m.add(Block::new("o1", BlockKind::Outport { index: 1 }));
        m.connect(i, 0, g, 0).unwrap();
        m.connect(g, 0, a, 0).unwrap();
        m.connect(g, 0, q, 0).unwrap();
        m.connect(a, 0, o0, 0).unwrap();
        m.connect(q, 0, o1, 0).unwrap();
        let analysis = Analysis::run(m).unwrap();
        let p = generate(&analysis, GeneratorStyle::Frodo, &frodo_obs::Trace::noop());
        let folded = fold_expressions(&p);
        // the gain feeds two consumers, so nothing may fold into it
        assert_eq!(folded.stmts.len(), p.stmts.len());
    }
}
