//! Region-fragment caching for incremental code generation.
//!
//! [`generate_from_fragments`] produces the same [`Program`] as
//! [`generate_with`] for the same analysis, but lowers block bodies region
//! by region (the regions come from `frodo_core::incremental`) and caches
//! each region's lowered statements in a caller-owned [`FragmentCache`].
//! On resubmission only the regions whose content, calculation ranges, or
//! buffer assignment changed are re-lowered; everything else is stitched
//! back from the cache.
//!
//! Byte-identity with a cold compile holds because:
//!
//! - buffer allocation always re-runs (it is deterministic in model
//!   iteration order, so an unchanged model reproduces the exact `BufId`
//!   assignment the cached statements refer to — and the fragment key pins
//!   every `BufId` a fragment's statements can mention, so a *changed*
//!   assignment misses the cache instead of replaying stale operands);
//! - `lower_block` emits a block's statements as a pure function of the
//!   analysis, so per-block statement lists can be computed in any order
//!   and stitched back in schedule order, exactly where a monolithic
//!   lowering would have put them;
//! - state loads/stores and final C emission always re-run.
//!
//! [`generate_with`]: crate::generate_with

use crate::lir::{Program, Stmt};
use crate::lower::Lowerer;
use crate::{GeneratorStyle, LowerOptions};
use frodo_core::incremental::RegionInfo;
use frodo_core::{full_ranges, Analysis, Ranges};
use frodo_model::{BlockId, InPort, OutPort};
use std::collections::{BTreeMap, HashMap};

/// 128-bit FNV-1a (private copy; the other lives in `frodo-core`'s
/// incremental module — both digest into independent key spaces).
#[derive(Debug, Clone, Copy)]
struct Fnv128(u128);

impl Fnv128 {
    const OFFSET: u128 = 0x6c62272e07bb014262b821756295c58d;
    const PRIME: u128 = 0x0000000001000000000000000000013B;

    fn new() -> Self {
        Fnv128(Self::OFFSET)
    }

    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= u128::from(b);
            self.0 = self.0.wrapping_mul(Self::PRIME);
        }
    }

    fn write_usize(&mut self, v: usize) {
        self.write(&(v as u64).to_le_bytes());
    }

    fn write_u128(&mut self, v: u128) {
        self.write(&v.to_le_bytes());
    }

    fn finish(self) -> u128 {
        self.0
    }
}

/// A caller-owned cache of lowered region fragments. Owned by a compile
/// session alongside the region range cache; never shared between
/// sessions with different styles or lowering options (the key includes
/// both, so sharing would merely never hit).
#[derive(Debug, Default)]
pub struct FragmentCache {
    /// key → per-block statement lists, parallel to the region's blocks.
    map: HashMap<u128, Vec<Vec<Stmt>>>,
}

impl FragmentCache {
    /// An empty cache.
    pub fn new() -> Self {
        FragmentCache::default()
    }

    /// Number of cached region fragments.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Whether nothing is cached yet.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Drops every cached fragment.
    pub fn clear(&mut self) {
        self.map.clear();
    }
}

/// Fragment-cache effectiveness of one [`generate_from_fragments`] run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FragmentStats {
    /// Regions lowered (or replayed) this run.
    pub regions: u64,
    /// Regions stitched straight from the cache.
    pub hits: u64,
    /// Regions re-lowered.
    pub misses: u64,
}

/// Cache key of one region's lowered fragment: the region's content
/// digest, the calculation ranges its statements depend on (its own
/// blocks' output ranges plus the ranges of the source ports feeding its
/// inputs — `Mux`/`Concatenate` clamp copies to what the producer
/// writes), every `BufId` its statements can mention, and the
/// style/lowering options that shape statement emission.
fn fragment_key(
    analysis: &Analysis,
    lw: &Lowerer<'_>,
    style: GeneratorStyle,
    opts: LowerOptions,
    ranges: &Ranges,
    info: &RegionInfo,
) -> u128 {
    let dfg = analysis.dfg();
    let mut h = Fnv128::new();
    h.write_u128(info.content);
    h.write(style.label().as_bytes());
    h.write_usize(opts.coalesce_gap);
    let buf = |h: &mut Fnv128, b: Option<crate::lir::BufId>| match b {
        Some(id) => h.write_usize(id.0 + 1),
        None => h.write_usize(0),
    };
    let range = |h: &mut Fnv128, block: BlockId, port: usize| {
        let set = ranges.out(block, port);
        h.write_usize(set.intervals().len());
        for iv in set.intervals() {
            h.write_usize(iv.start);
            h.write_usize(iv.end);
        }
    };
    for &b in &info.blocks {
        let kind = &dfg.model().block(b).kind;
        for o in 0..kind.num_outputs() {
            range(&mut h, b, o);
            buf(&mut h, lw.out_buf_of(OutPort::new(b, o)));
        }
        // Outports stash their buffer under a sentinel port
        buf(&mut h, lw.out_buf_of(OutPort::new(b, usize::MAX)));
        buf(&mut h, lw.state_buf_of(b));
        buf(&mut h, lw.fir_coeffs_of(b));
        for p in 0..kind.num_inputs() {
            let src = dfg.source_of(InPort::new(b, p));
            range(&mut h, src.block, src.port);
            buf(&mut h, Some(lw.input_buf(InPort::new(b, p))));
        }
    }
    h.finish()
}

/// Generates a program like [`generate_with`], but lowering region by
/// region against `cache`: a region whose key matches a cached entry is
/// stitched from its cached statements without re-lowering. `regions`
/// must be the partition of `analysis`'s model (as produced by
/// `frodo_core::incremental::analyze_incremental` on the same
/// submission).
///
/// Recorded as a `lower` span with the standard `stmts` /
/// `computed_elements` counters plus `fragment_total`, `fragment_hits`,
/// and `fragment_misses`.
///
/// [`generate_with`]: crate::generate_with
pub fn generate_from_fragments(
    analysis: &Analysis,
    style: GeneratorStyle,
    opts: LowerOptions,
    regions: &[RegionInfo],
    cache: &mut FragmentCache,
    trace: &frodo_obs::Trace,
) -> (Program, FragmentStats) {
    let span = trace.span("lower");
    let mut lw = Lowerer::new(analysis, style, opts);
    lw.alloc_buffers();

    let full;
    let ranges: &Ranges = if style.uses_ranges() {
        analysis.ranges()
    } else {
        full = full_ranges(analysis.dfg());
        &full
    };

    lw.push_state_loads();

    let mut stats = FragmentStats {
        regions: regions.len() as u64,
        ..FragmentStats::default()
    };
    let mut by_block: BTreeMap<BlockId, Vec<Stmt>> = BTreeMap::new();
    for info in regions {
        let key = fragment_key(analysis, &lw, style, opts, ranges, info);
        if let Some(frags) = cache.map.get(&key) {
            stats.hits += 1;
            for (&b, stmts) in info.blocks.iter().zip(frags) {
                by_block.insert(b, stmts.clone());
            }
            continue;
        }
        stats.misses += 1;
        let mut frags = Vec::with_capacity(info.blocks.len());
        for &b in &info.blocks {
            let mark = lw.stmt_mark();
            lw.lower_block(b, ranges);
            frags.push(lw.drain_stmts_from(mark));
        }
        for (&b, stmts) in info.blocks.iter().zip(&frags) {
            by_block.insert(b, stmts.clone());
        }
        cache.map.insert(key, frags);
    }

    // stitch per-block statements back in schedule order — exactly where
    // a monolithic lowering would have emitted them
    let order = analysis
        .dfg()
        .schedule()
        .expect("valid Dfg always schedules");
    for id in order {
        if let Some(stmts) = by_block.get(&id) {
            lw.push_stmts(stmts);
        }
    }

    lw.push_state_stores();
    let mut program = lw.into_program();
    // window reuse runs post-stitch, so fragment keys stay independent of
    // it (the cached fragments hold the pre-rewrite statements either way)
    if opts.window_reuse {
        program = crate::optimize::window_reuse(&program);
        let rewritten = program
            .stmts
            .iter()
            .filter(|s| matches!(s, Stmt::WindowedReuse { .. }))
            .count();
        span.count("window_reuse_stmts", rewritten as u64);
    }
    span.count("stmts", program.stmts.len() as u64);
    span.count("computed_elements", program.computed_elements() as u64);
    span.count("fragment_total", stats.regions);
    span.count("fragment_hits", stats.hits);
    span.count("fragment_misses", stats.misses);
    (program, stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generate_with;
    use frodo_core::incremental::{analyze_incremental, RegionCache};
    use frodo_core::RangeOptions;
    use frodo_model::{Block, BlockKind, Model, SelectorMode, Tensor};
    use frodo_obs::Trace;
    use frodo_ranges::Shape;

    fn figure1(gain: f64) -> Model {
        let mut m = Model::new("conv");
        let i = m.add(Block::new(
            "in",
            BlockKind::Inport {
                index: 0,
                shape: Shape::Vector(50),
            },
        ));
        let k = m.add(Block::new(
            "k",
            BlockKind::Constant {
                value: Tensor::vector(vec![0.1; 11]),
            },
        ));
        let c = m.add(Block::new("conv", BlockKind::Convolution));
        let g = m.add(Block::new("g", BlockKind::Gain { gain }));
        let s = m.add(Block::new(
            "sel",
            BlockKind::Selector {
                mode: SelectorMode::StartEnd { start: 5, end: 55 },
            },
        ));
        let o = m.add(Block::new("out", BlockKind::Outport { index: 0 }));
        m.connect(i, 0, c, 0).unwrap();
        m.connect(k, 0, c, 1).unwrap();
        m.connect(c, 0, g, 0).unwrap();
        m.connect(g, 0, s, 0).unwrap();
        m.connect(s, 0, o, 0).unwrap();
        m
    }

    #[test]
    fn fragments_reproduce_monolithic_lowering_exactly() {
        for style in GeneratorStyle::ALL {
            let inc = analyze_incremental(
                figure1(2.0),
                RangeOptions::default(),
                2,
                &mut RegionCache::new(),
                &Trace::noop(),
            )
            .unwrap();
            let mono = generate_with(
                &inc.analysis,
                style,
                LowerOptions::default(),
                &Trace::noop(),
            );
            let (stitched, stats) = generate_from_fragments(
                &inc.analysis,
                style,
                LowerOptions::default(),
                &inc.regions,
                &mut FragmentCache::new(),
                &Trace::noop(),
            );
            assert_eq!(stitched, mono, "style {style:?}");
            assert_eq!(stats.hits, 0);
        }
    }

    #[test]
    fn identical_resubmission_hits_every_fragment() {
        let mut rc = RegionCache::new();
        let mut fc = FragmentCache::new();
        let style = GeneratorStyle::Frodo;
        for round in 0..2 {
            let inc = analyze_incremental(
                figure1(2.0),
                RangeOptions::default(),
                2,
                &mut rc,
                &Trace::noop(),
            )
            .unwrap();
            let (_, stats) = generate_from_fragments(
                &inc.analysis,
                style,
                LowerOptions::default(),
                &inc.regions,
                &mut fc,
                &Trace::noop(),
            );
            if round == 1 {
                assert_eq!(stats.misses, 0);
                assert_eq!(stats.hits, stats.regions);
            }
        }
    }

    #[test]
    fn window_reuse_fragments_match_cold_compile() {
        // the pass runs post-stitch, so warm replays must still produce
        // exactly what a cold window-reuse compile produces
        let opts = LowerOptions {
            window_reuse: true,
            ..LowerOptions::default()
        };
        let mut rc = RegionCache::new();
        let mut fc = FragmentCache::new();
        for _ in 0..2 {
            let inc = analyze_incremental(
                figure1(2.0),
                RangeOptions::default(),
                2,
                &mut rc,
                &Trace::noop(),
            )
            .unwrap();
            let (stitched, _) = generate_from_fragments(
                &inc.analysis,
                GeneratorStyle::Frodo,
                opts,
                &inc.regions,
                &mut fc,
                &Trace::noop(),
            );
            let cold = generate_with(&inc.analysis, GeneratorStyle::Frodo, opts, &Trace::noop());
            assert_eq!(stitched, cold);
            assert!(stitched
                .stmts
                .iter()
                .any(|s| matches!(s, Stmt::WindowedReuse { .. })));
        }
    }

    #[test]
    fn param_edit_relowers_only_the_dirty_region_but_matches_cold() {
        let mut rc = RegionCache::new();
        let mut fc = FragmentCache::new();
        let style = GeneratorStyle::Frodo;
        let warm_up = analyze_incremental(
            figure1(2.0),
            RangeOptions::default(),
            1,
            &mut rc,
            &Trace::noop(),
        )
        .unwrap();
        generate_from_fragments(
            &warm_up.analysis,
            style,
            LowerOptions::default(),
            &warm_up.regions,
            &mut fc,
            &Trace::noop(),
        );
        let edited = analyze_incremental(
            figure1(3.5),
            RangeOptions::default(),
            1,
            &mut rc,
            &Trace::noop(),
        )
        .unwrap();
        let (stitched, stats) = generate_from_fragments(
            &edited.analysis,
            style,
            LowerOptions::default(),
            &edited.regions,
            &mut fc,
            &Trace::noop(),
        );
        assert!(stats.hits > 0, "{stats:?}");
        assert!(stats.misses < stats.regions, "{stats:?}");
        let cold = generate_with(
            &edited.analysis,
            style,
            LowerOptions::default(),
            &Trace::noop(),
        );
        assert_eq!(stitched, cold);
    }
}
