//! Generator styles: FRODO and the three comparison generators.

use crate::lir::ConvStyle;
use std::fmt;

/// Which code generator's behaviour to emulate.
///
/// The styles differ along the axes the paper's evaluation isolates:
///
/// | Style | Calculation ranges | Convolution loops | Explicit SIMD |
/// |-------|--------------------|-------------------|---------------|
/// | `Frodo` | eliminated (Algorithm 1) | tight bounds | no (compiler auto-vec) |
/// | `SimulinkCoder` | full | per-element boundary judgments | no, and conservative auto-vec |
/// | `DfSynth` | full | tight bounds | no (compiler auto-vec) |
/// | `Hcg` | full | tight bounds | yes (intrinsics hints) |
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum GeneratorStyle {
    /// This paper: redundancy elimination + concise code.
    Frodo,
    /// Simulink Embedded Coder-like baseline.
    SimulinkCoder,
    /// DFSynth-like baseline (branch-structured synthesis).
    DfSynth,
    /// HCG-like baseline (SIMD instruction synthesis).
    Hcg,
}

impl GeneratorStyle {
    /// All styles, in the paper's table order.
    pub const ALL: [GeneratorStyle; 4] = [
        GeneratorStyle::SimulinkCoder,
        GeneratorStyle::DfSynth,
        GeneratorStyle::Hcg,
        GeneratorStyle::Frodo,
    ];

    /// Whether lowering should restrict blocks to their calculation ranges.
    pub fn uses_ranges(&self) -> bool {
        matches!(self, GeneratorStyle::Frodo)
    }

    /// How convolution loops are emitted.
    pub fn conv_style(&self) -> ConvStyle {
        match self {
            GeneratorStyle::SimulinkCoder => ConvStyle::Branchy,
            _ => ConvStyle::Tight,
        }
    }

    /// Whether vectorizable loops carry explicit SIMD batching (HCG).
    pub fn explicit_simd(&self) -> bool {
        matches!(self, GeneratorStyle::Hcg)
    }

    /// Display label used in regenerated tables (matches the paper).
    pub fn label(&self) -> &'static str {
        match self {
            GeneratorStyle::Frodo => "Frodo",
            GeneratorStyle::SimulinkCoder => "Simulink",
            GeneratorStyle::DfSynth => "DFSynth",
            GeneratorStyle::Hcg => "HCG",
        }
    }
}

impl fmt::Display for GeneratorStyle {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn style_axes_match_paper_characterization() {
        assert!(GeneratorStyle::Frodo.uses_ranges());
        assert!(!GeneratorStyle::Hcg.uses_ranges());
        assert_eq!(
            GeneratorStyle::SimulinkCoder.conv_style(),
            ConvStyle::Branchy
        );
        assert_eq!(GeneratorStyle::Frodo.conv_style(), ConvStyle::Tight);
        assert!(GeneratorStyle::Hcg.explicit_simd());
        assert!(!GeneratorStyle::DfSynth.explicit_simd());
    }

    #[test]
    fn labels_match_table2_headers() {
        let labels: Vec<&str> = GeneratorStyle::ALL.iter().map(|s| s.label()).collect();
        assert_eq!(labels, vec!["Simulink", "DFSynth", "HCG", "Frodo"]);
    }
}
