//! The **element-level code library**: C snippet templates with
//! `$placeholder$` substitution, mirroring the paper's Figure 4.
//!
//! Each complex block has a *single-element* snippet (①) and a
//! *consecutive-elements* snippet (②); FRODO picks per run of the derived
//! calculation range and substitutes the placeholders (e.g.
//! `$Input2_size$`) with the block's actual parameters. The C emitter
//! ([`crate::emit_c`]) renders every complex-block statement through these
//! templates.

use std::fmt;

/// A C code template with `$name$` placeholders.
///
/// # Example
///
/// ```
/// use frodo_codegen::library::CodeTemplate;
///
/// let t = CodeTemplate::new("$dst$[$k$] = $src$[$k$] * 2.0;");
/// let code = t.render(&[("dst", "y".into()), ("k", "3".into()), ("src", "x".into())]).unwrap();
/// assert_eq!(code, "y[3] = x[3] * 2.0;");
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CodeTemplate {
    text: &'static str,
}

/// A placeholder left unresolved after rendering.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RenderError {
    /// The placeholder that had no substitution.
    pub placeholder: String,
}

impl fmt::Display for RenderError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "unresolved placeholder ${}$", self.placeholder)
    }
}

impl std::error::Error for RenderError {}

impl CodeTemplate {
    /// Wraps a template string.
    pub const fn new(text: &'static str) -> Self {
        CodeTemplate { text }
    }

    /// The raw template text.
    pub fn text(&self) -> &'static str {
        self.text
    }

    /// Substitutes every `$key$` with its value.
    ///
    /// # Errors
    ///
    /// Returns [`RenderError`] if a placeholder remains unsubstituted —
    /// a template/parameter mismatch in the block library.
    pub fn render(&self, subs: &[(&str, String)]) -> Result<String, RenderError> {
        render_text(self.text, subs)
    }
}

/// [`CodeTemplate::render`] over template text built at run time (the
/// width-parameterized snippets from [`conv_batched_template`]).
///
/// # Errors
///
/// Returns [`RenderError`] if a placeholder remains unsubstituted.
pub fn render_text(text: &str, subs: &[(&str, String)]) -> Result<String, RenderError> {
    let mut out = text.to_string();
    for (key, value) in subs {
        out = out.replace(&format!("${key}$"), value);
    }
    if let Some(start) = out.find('$') {
        let rest = &out[start + 1..];
        let end = rest.find('$').unwrap_or(rest.len());
        return Err(RenderError {
            placeholder: rest[..end].to_string(),
        });
    }
    Ok(out)
}

/// Pairwise-reduction expression over `acc0 .. acc{width-1}` — the
/// accumulator merge of a batched dot product (`(acc0 + acc1) + (acc2 +
/// acc3)` at width 4). Pairing keeps the reduction tree balanced, which is
/// what lets the compiler map it onto horizontal vector adds.
fn pairwise_sum(lo: usize, len: usize) -> String {
    if len == 1 {
        return format!("acc{lo}");
    }
    let half = len / 2;
    let wrap = |s: String, l: usize| if l > 1 { format!("({s})") } else { s };
    format!(
        "{} + {}",
        wrap(pairwise_sum(lo, half), half),
        wrap(pairwise_sum(lo + half, len - half), len - half)
    )
}

/// Builds the consecutive-elements convolution snippet with an explicit
/// `width`-lane batched inner dot product, tagged with the generator's
/// lowercase label. `conv_batched_template(4, "hcg")` reproduces
/// [`CONV_RUN_HCG`] byte-for-byte; other widths generalize the same
/// structure to the target's SIMD lane count.
///
/// # Panics
///
/// Panics if `width < 2` — a one-lane batch is just [`CONV_RUN`].
pub fn conv_batched_template(width: usize, tag: &str) -> String {
    assert!(width >= 2, "batched conv needs at least two lanes");
    let mut t = String::new();
    t.push_str(&format!(
        "/* {tag}: explicit simd batch (width {width}) */\n"
    ));
    t.push_str("for (int k = $k0$; k < $k1$; ++k) {\n");
    t.push_str("    int lo = k >= $Input2_size$ ? k - ($Input2_size$ - 1) : 0;\n");
    t.push_str("    int hi = k < $Input1_size$ - 1 ? k : $Input1_size$ - 1;\n");
    let decls: Vec<String> = (0..width).map(|l| format!("acc{l} = 0.0")).collect();
    t.push_str(&format!("    double {};\n", decls.join(", ")));
    t.push_str("    int j = lo;\n");
    t.push_str(&format!(
        "    for (; j + {} <= hi; j += {width}) {{\n",
        width - 1
    ));
    for l in 0..width {
        if l == 0 {
            t.push_str("        acc0 += $Input1$[j] * $Input2$[k - j];\n");
        } else {
            t.push_str(&format!(
                "        acc{l} += $Input1$[j + {l}] * $Input2$[k - j - {l}];\n"
            ));
        }
    }
    t.push_str("    }\n");
    t.push_str(&format!("    double acc = {};\n", pairwise_sum(0, width)));
    t.push_str("    for (; j <= hi; ++j) {\n");
    t.push_str("        acc += $Input1$[j] * $Input2$[k - j];\n");
    t.push_str("    }\n");
    t.push_str("    $Output$[k] = acc;\n");
    t.push('}');
    t
}

/// Convolution, consecutive-elements snippet (paper Figure 4 ②):
/// exact loop bounds, no per-element branching.
pub const CONV_RUN: CodeTemplate = CodeTemplate::new(
    "for (int k = $k0$; k < $k1$; ++k) {\n\
     \x20   int lo = k >= $Input2_size$ ? k - ($Input2_size$ - 1) : 0;\n\
     \x20   int hi = k < $Input1_size$ - 1 ? k : $Input1_size$ - 1;\n\
     \x20   double acc = 0.0;\n\
     \x20   for (int j = lo; j <= hi; ++j) {\n\
     \x20       acc += $Input1$[j] * $Input2$[k - j];\n\
     \x20   }\n\
     \x20   $Output$[k] = acc;\n\
     }",
);

/// Convolution, single-element snippet (paper Figure 4 ①).
pub const CONV_SINGLE: CodeTemplate = CodeTemplate::new(
    "{\n\
     \x20   int k = $k$;\n\
     \x20   int lo = k >= $Input2_size$ ? k - ($Input2_size$ - 1) : 0;\n\
     \x20   int hi = k < $Input1_size$ - 1 ? k : $Input1_size$ - 1;\n\
     \x20   double acc = 0.0;\n\
     \x20   for (int j = lo; j <= hi; ++j) {\n\
     \x20       acc += $Input1$[j] * $Input2$[k - j];\n\
     \x20   }\n\
     \x20   $Output$[k] = acc;\n\
     }",
);

/// Convolution, full-padding loop with per-element *boundary judgments* —
/// the style the paper observes in Simulink Embedded Coder output
/// (Figure 1, green).
pub const CONV_BRANCHY: CodeTemplate = CodeTemplate::new(
    "for (int k = $k0$; k < $k1$; ++k) {\n\
     \x20   double acc = 0.0;\n\
     \x20   for (int j = $Input2_size$ - 1; j >= 0; --j) {\n\
     \x20       if (k - j >= 0 && k - j < $Input1_size$) {\n\
     \x20           acc += $Input2$[j] * $Input1$[k - j];\n\
     \x20       }\n\
     \x20   }\n\
     \x20   $Output$[k] = acc;\n\
     }",
);

/// Convolution with HCG-style explicit SIMD batching: the inner dot product
/// is hand-batched four lanes wide (the structural equivalent of the
/// `_mm256_fmadd_pd` synthesis the paper analyzes).
pub const CONV_RUN_HCG: CodeTemplate = CodeTemplate::new(
    "/* hcg: explicit simd batch (width 4) */\n\
     for (int k = $k0$; k < $k1$; ++k) {\n\
     \x20   int lo = k >= $Input2_size$ ? k - ($Input2_size$ - 1) : 0;\n\
     \x20   int hi = k < $Input1_size$ - 1 ? k : $Input1_size$ - 1;\n\
     \x20   double acc0 = 0.0, acc1 = 0.0, acc2 = 0.0, acc3 = 0.0;\n\
     \x20   int j = lo;\n\
     \x20   for (; j + 3 <= hi; j += 4) {\n\
     \x20       acc0 += $Input1$[j] * $Input2$[k - j];\n\
     \x20       acc1 += $Input1$[j + 1] * $Input2$[k - j - 1];\n\
     \x20       acc2 += $Input1$[j + 2] * $Input2$[k - j - 2];\n\
     \x20       acc3 += $Input1$[j + 3] * $Input2$[k - j - 3];\n\
     \x20   }\n\
     \x20   double acc = (acc0 + acc1) + (acc2 + acc3);\n\
     \x20   for (; j <= hi; ++j) {\n\
     \x20       acc += $Input1$[j] * $Input2$[k - j];\n\
     \x20   }\n\
     \x20   $Output$[k] = acc;\n\
     }",
);

/// Sliding-window sum with a rolling accumulator and a persistent
/// ring-buffer handoff (the `window_reuse` pass): the seed element `k0` is
/// summed once, every later element reuses the retained overlap by one
/// delta add and one delta subtract, and the final window tail is stored
/// into `$State$` for the next invocation. `$AccOut$` is the scaling
/// expression over `acc` (`acc / (double)W` for a moving average, `acc *
/// c` for a uniform kernel).
pub const WINDOW_REUSE_RUN: CodeTemplate = CodeTemplate::new(
    "/* window_reuse: rolling window sum (window $Window$) */\n\
     {\n\
     \x20   int lo = $k0$ + 1 >= $Window$ ? $k0$ + 1 - $Window$ : 0;\n\
     \x20   int hi = $k0$ < $SrcLen$ - 1 ? $k0$ : $SrcLen$ - 1;\n\
     \x20   double acc = 0.0;\n\
     \x20   for (int j = lo; j <= hi; ++j) {\n\
     \x20       acc += $Input$[j];\n\
     \x20   }\n\
     \x20   $Output$[$k0$] = $AccOut$;\n\
     \x20   for (int k = $k0$ + 1; k < $k1$; ++k) {\n\
     \x20       if (k <= $SrcLen$ - 1) {\n\
     \x20           acc += $Input$[k];\n\
     \x20       }\n\
     \x20       if (k >= $Window$) {\n\
     \x20           acc -= $Input$[k - $Window$];\n\
     \x20       }\n\
     \x20       $Output$[k] = $AccOut$;\n\
     \x20   }\n\
     \x20   for (int t = 0; t < $Window$; ++t) {\n\
     \x20       int j = $k1$ - $Window$ + t;\n\
     \x20       $State$[t] = (j >= 0 && j < $SrcLen$) ? $Input$[j] : 0.0;\n\
     \x20   }\n\
     }",
);

/// FIR filter, consecutive-elements snippet.
pub const FIR_RUN: CodeTemplate = CodeTemplate::new(
    "for (int k = $k0$; k < $k1$; ++k) {\n\
     \x20   int tmax = k < $Taps$ - 1 ? k : $Taps$ - 1;\n\
     \x20   double acc = 0.0;\n\
     \x20   for (int t = 0; t <= tmax; ++t) {\n\
     \x20       acc += $Coeffs$[t] * $Input$[k - t];\n\
     \x20   }\n\
     \x20   $Output$[k] = acc;\n\
     }",
);

/// Trailing moving average, consecutive-elements snippet.
pub const MOVAVG_RUN: CodeTemplate = CodeTemplate::new(
    "for (int k = $k0$; k < $k1$; ++k) {\n\
     \x20   int lo = k >= $Window$ - 1 ? k - ($Window$ - 1) : 0;\n\
     \x20   double acc = 0.0;\n\
     \x20   for (int j = lo; j <= k; ++j) {\n\
     \x20       acc += $Input$[j];\n\
     \x20   }\n\
     \x20   $Output$[k] = acc / (double)$Window$;\n\
     }",
);

/// Matrix multiply, row-range snippet.
pub const MATMUL_RUN: CodeTemplate = CodeTemplate::new(
    "for (int r = $r0$; r < $r1$; ++r) {\n\
     \x20   for (int c = 0; c < $N$; ++c) {\n\
     \x20       double acc = 0.0;\n\
     \x20       for (int t = 0; t < $K$; ++t) {\n\
     \x20           acc += $A$[r * $K$ + t] * $B$[t * $N$ + c];\n\
     \x20       }\n\
     \x20       $Output$[r * $N$ + c] = acc;\n\
     \x20   }\n\
     }",
);

/// Cumulative sum prefix snippet.
pub const CUMSUM_RUN: CodeTemplate = CodeTemplate::new(
    "{\n\
     \x20   double acc = 0.0;\n\
     \x20   for (int k = 0; k < $k_end$; ++k) {\n\
     \x20       acc += $Input$[k];\n\
     \x20       $Output$[k] = acc;\n\
     \x20   }\n\
     }",
);

/// First-difference run snippet (the `k0 == 0` head element is emitted
/// separately by the emitter).
pub const DIFF_RUN: CodeTemplate = CodeTemplate::new(
    "for (int k = $k0$; k < $k1$; ++k) {\n\
     \x20   $Output$[k] = $Input$[k] - $Input$[k - 1];\n\
     }",
);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_replaces_all_placeholders() {
        let code = CONV_RUN
            .render(&[
                ("k0", "5".into()),
                ("k1", "55".into()),
                ("Input1", "g_in".into()),
                ("Input1_size", "50".into()),
                ("Input2", "g_k".into()),
                ("Input2_size", "11".into()),
                ("Output", "g_conv".into()),
            ])
            .unwrap();
        assert!(code.contains("for (int k = 5; k < 55; ++k)"));
        assert!(code.contains("g_in[j] * g_k[k - j]"));
        assert!(!code.contains('$'));
    }

    #[test]
    fn render_reports_missing_placeholder() {
        let err = CONV_RUN.render(&[("k0", "0".into())]).unwrap_err();
        assert_eq!(err.placeholder, "k1");
        assert!(err.to_string().contains("$k1$"));
    }

    #[test]
    fn branchy_template_contains_boundary_judgment() {
        assert!(CONV_BRANCHY.text().contains("if (k - j >= 0"));
        assert!(!CONV_RUN.text().contains("if (k - j"));
    }

    #[test]
    fn conv_batched_width_4_reproduces_the_hcg_snippet() {
        assert_eq!(conv_batched_template(4, "hcg"), CONV_RUN_HCG.text());
    }

    #[test]
    fn conv_batched_scales_lanes_and_keeps_pairwise_merge() {
        let w8 = conv_batched_template(8, "frodo");
        assert!(w8.starts_with("/* frodo: explicit simd batch (width 8) */"));
        assert!(w8.contains("for (; j + 7 <= hi; j += 8)"));
        assert!(w8.contains("acc7 += $Input1$[j + 7] * $Input2$[k - j - 7];"));
        assert!(w8.contains("((acc0 + acc1) + (acc2 + acc3)) + ((acc4 + acc5) + (acc6 + acc7))"));
        let w2 = conv_batched_template(2, "frodo");
        assert!(w2.contains("double acc = acc0 + acc1;"));
    }

    #[test]
    fn window_reuse_snippet_renders_and_stores_state() {
        let code = WINDOW_REUSE_RUN
            .render(&[
                ("k0", "5".into()),
                ("k1", "55".into()),
                ("Window", "11".into()),
                ("SrcLen", "50".into()),
                ("Input", "in0".into()),
                ("Output", "g_conv".into()),
                ("State", "g_conv_win".into()),
                ("AccOut", "acc * 0.1".into()),
            ])
            .unwrap();
        assert!(code.contains("g_conv[5] = acc * 0.1;"));
        assert!(code.contains("acc -= in0[k - 11];"));
        assert!(code.contains("g_conv_win[t] = (j >= 0 && j < 50) ? in0[j] : 0.0;"));
        assert!(!code.contains('$'));
    }

    #[test]
    fn single_element_snippet_pins_one_index() {
        let code = CONV_SINGLE
            .render(&[
                ("k", "7".into()),
                ("Input1", "u".into()),
                ("Input1_size", "10".into()),
                ("Input2", "v".into()),
                ("Input2_size", "3".into()),
                ("Output", "y".into()),
            ])
            .unwrap();
        assert!(code.contains("int k = 7;"));
    }
}
