//! Lowering: analyzed model → loop IR, per generator style.
//!
//! FRODO's *concise code generation*: for optimizable blocks, one statement
//! is emitted per consecutive run of the block's calculation range (the
//! paper's element-level code library snippet ② — snippet ① is the
//! degenerate single-element run). Baseline styles lower every block at its
//! full output range.

use crate::lir::{BinOp, BufId, Buffer, BufferRole, Program, ReduceOp, Slice, Src, Stmt, UnOp};
use crate::GeneratorStyle;
use frodo_core::{full_ranges, Analysis};
use frodo_model::{BlockId, BlockKind, InPort, LogicOp, OutPort, RelOp, RoundMode, SelectorMode};
use frodo_ranges::IndexSet;
use std::collections::BTreeMap;

/// Tuning knobs for lowering.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LowerOptions {
    /// Maximum gap (in elements) bridged when coalescing a fragmented
    /// calculation range into contiguous runs. Computing up to this many
    /// extra elements is cheaper than restarting a loop — the remedy for
    /// the discontinuous-range overhead the paper's §5 discusses. `0`
    /// disables coalescing (one statement per exact run).
    pub coalesce_gap: usize,
    /// Run the [`crate::optimize::window_reuse`] pass after lowering,
    /// rewriting eligible sliding-window statements into rolling-accumulator
    /// form with persistent ring-buffer state. Off by default: it changes
    /// the emitted code shape and buffer allocation, so it is opt-in like
    /// expression folding.
    pub window_reuse: bool,
}

impl Default for LowerOptions {
    fn default() -> Self {
        LowerOptions {
            coalesce_gap: 16,
            window_reuse: false,
        }
    }
}

/// Generates a program from an analysis, in the given style; recorded as
/// a `lower` span (with statement and computed-element counters) on the
/// given trace. Pass `&Trace::noop()` when no instrumentation is wanted.
///
/// All styles allocate the same buffers (the paper's memory study relies on
/// this); they differ in calculation ranges, convolution loop style, and
/// SIMD hints (see [`GeneratorStyle`]).
pub fn generate(analysis: &Analysis, style: GeneratorStyle, trace: &frodo_obs::Trace) -> Program {
    generate_with(analysis, style, LowerOptions::default(), trace)
}

/// [`generate`] with explicit [`LowerOptions`] (ablation studies).
pub fn generate_with(
    analysis: &Analysis,
    style: GeneratorStyle,
    opts: LowerOptions,
    trace: &frodo_obs::Trace,
) -> Program {
    let span = trace.span("lower");
    let mut program = Lowerer::new(analysis, style, opts).run();
    if opts.window_reuse {
        let before = program.stmts.len();
        program = crate::optimize::window_reuse(&program);
        let rewritten = program
            .stmts
            .iter()
            .filter(|s| matches!(s, Stmt::WindowedReuse { .. }))
            .count();
        debug_assert_eq!(before, program.stmts.len());
        span.count("window_reuse_stmts", rewritten as u64);
    }
    span.count("stmts", program.stmts.len() as u64);
    span.count("computed_elements", program.computed_elements() as u64);
    program
}

/// Deprecated alias of [`generate_with`], kept one release for callers of
/// the old split traced/untraced entry points.
#[deprecated(
    since = "0.7.0",
    note = "use `generate_with(analysis, style, opts, trace)` instead"
)]
pub fn generate_traced(
    analysis: &Analysis,
    style: GeneratorStyle,
    opts: LowerOptions,
    trace: &frodo_obs::Trace,
) -> Program {
    generate_with(analysis, style, opts, trace)
}

pub(crate) struct Lowerer<'a> {
    analysis: &'a Analysis,
    style: GeneratorStyle,
    opts: LowerOptions,
    buffers: Vec<Buffer>,
    /// Buffer of each block output port.
    out_buf: BTreeMap<OutPort, BufId>,
    /// State buffer of each unit delay.
    state_buf: BTreeMap<BlockId, BufId>,
    /// Constant tap buffers of FIR blocks.
    fir_coeffs: BTreeMap<BlockId, BufId>,
    stmts: Vec<Stmt>,
    used_names: BTreeMap<String, usize>,
}

impl<'a> Lowerer<'a> {
    pub(crate) fn new(analysis: &'a Analysis, style: GeneratorStyle, opts: LowerOptions) -> Self {
        Lowerer {
            analysis,
            style,
            opts,
            buffers: Vec::new(),
            out_buf: BTreeMap::new(),
            state_buf: BTreeMap::new(),
            fir_coeffs: BTreeMap::new(),
            stmts: Vec::new(),
            used_names: BTreeMap::new(),
        }
    }

    fn fresh_name(&mut self, base: &str) -> String {
        let mut sane: String = base
            .chars()
            .map(|c| if c.is_ascii_alphanumeric() { c } else { '_' })
            .collect();
        if sane.is_empty() || sane.chars().next().is_some_and(|c| c.is_ascii_digit()) {
            sane.insert(0, 'b');
        }
        // the map owns one copy of the key and the buffer owns the name,
        // so this clone is structural, not avoidable
        let n = self.used_names.entry(sane.clone()).or_insert(0);
        *n += 1;
        if *n > 1 {
            format!("{sane}_{}", *n - 1)
        } else {
            sane
        }
    }

    fn alloc(&mut self, base: &str, len: usize, role: BufferRole) -> BufId {
        let name = self.fresh_name(base);
        self.buffers.push(Buffer { name, len, role });
        BufId(self.buffers.len() - 1)
    }

    fn run(mut self) -> Program {
        self.alloc_buffers();

        // -- ranges --
        let full;
        let ranges: &frodo_core::Ranges = if self.style.uses_ranges() {
            self.analysis.ranges()
        } else {
            full = full_ranges(self.analysis.dfg());
            &full
        };

        self.push_state_loads();

        // -- block bodies in schedule order --
        let order = self
            .analysis
            .dfg()
            .schedule()
            .expect("valid Dfg always schedules");
        for id in order {
            self.lower_block(id, ranges);
        }

        self.push_state_stores();
        self.into_program()
    }

    /// Phase 1: buffer allocation, identical across styles and the only
    /// phase that touches the name/buffer tables. Deterministic in model
    /// iteration order — the fragment stitcher relies on re-running this
    /// phase reproducing the exact `BufId` assignment of a cold compile.
    pub(crate) fn alloc_buffers(&mut self) {
        let dfg = self.analysis.dfg();
        let model = dfg.model();
        let shapes = dfg.shapes();

        for (id, block) in model.iter() {
            match &block.kind {
                BlockKind::Inport { index, shape } => {
                    let b = self.alloc(&block.name, shape.numel(), BufferRole::Input(*index));
                    self.out_buf.insert(OutPort::new(id, 0), b);
                }
                BlockKind::Constant { value } => {
                    let b = self.alloc(
                        &block.name,
                        value.numel(),
                        BufferRole::Const(value.data().to_vec()),
                    );
                    self.out_buf.insert(OutPort::new(id, 0), b);
                }
                BlockKind::Outport { index } => {
                    let len = shapes.input(id, 0).numel();
                    let b = self.alloc(&block.name, len, BufferRole::Output(*index));
                    // Outports have no output ports; remember via state map? No:
                    // handled directly during lowering below.
                    let _ = b;
                    // re-alloc lookup happens in lower_block through outputs();
                    // stash under a sentinel port for retrieval:
                    self.out_buf.insert(OutPort::new(id, usize::MAX), b);
                }
                BlockKind::Terminator => {}
                BlockKind::UnitDelay { initial } => {
                    let len = initial.numel();
                    let work = self.alloc(&block.name, len, BufferRole::Temp);
                    self.out_buf.insert(OutPort::new(id, 0), work);
                    let name = format!("{}_state", block.name);
                    let st = self.alloc(&name, len, BufferRole::State(initial.data().to_vec()));
                    self.state_buf.insert(id, st);
                }
                kind => {
                    for o in 0..kind.num_outputs() {
                        let len = shapes.output(id, o).numel();
                        let b = if kind.num_outputs() > 1 {
                            self.alloc(&format!("{}_{o}", block.name), len, BufferRole::Temp)
                        } else {
                            self.alloc(&block.name, len, BufferRole::Temp)
                        };
                        self.out_buf.insert(OutPort::new(id, o), b);
                    }
                    if let BlockKind::FirFilter { coeffs } = kind {
                        let name = format!("{}_taps", block.name);
                        let b = self.alloc(&name, coeffs.len(), BufferRole::Const(coeffs.clone()));
                        self.fir_coeffs.insert(id, b);
                    }
                }
            }
        }
    }

    /// State reads first: delay outputs are previous-step state.
    pub(crate) fn push_state_loads(&mut self) {
        let model = self.analysis.dfg().model();
        for (id, block) in model.iter() {
            if let BlockKind::UnitDelay { initial } = &block.kind {
                let dst = self.out_buf[&OutPort::new(id, 0)];
                let state = self.state_buf[&id];
                self.stmts.push(Stmt::StateLoad {
                    dst,
                    state,
                    len: initial.numel(),
                });
            }
        }
    }

    /// State writes last.
    pub(crate) fn push_state_stores(&mut self) {
        let model = self.analysis.dfg().model();
        for (id, block) in model.iter() {
            if let BlockKind::UnitDelay { initial } = &block.kind {
                let src = self.input_buf(InPort::new(id, 0));
                let state = self.state_buf[&id];
                self.stmts.push(Stmt::StateStore {
                    state,
                    src,
                    len: initial.numel(),
                });
            }
        }
    }

    /// Number of statements emitted so far; paired with
    /// [`Lowerer::drain_stmts_from`] to harvest one block's statements.
    pub(crate) fn stmt_mark(&self) -> usize {
        self.stmts.len()
    }

    /// Removes and returns every statement emitted since `mark`.
    pub(crate) fn drain_stmts_from(&mut self, mark: usize) -> Vec<Stmt> {
        self.stmts.split_off(mark)
    }

    /// Appends pre-lowered statements (a cached fragment replay).
    pub(crate) fn push_stmts(&mut self, stmts: &[Stmt]) {
        self.stmts.extend_from_slice(stmts);
    }

    /// The buffer assigned to a block output port, if any. `Outport`
    /// blocks stash theirs under a `usize::MAX` sentinel port.
    pub(crate) fn out_buf_of(&self, port: OutPort) -> Option<BufId> {
        self.out_buf.get(&port).copied()
    }

    /// The state buffer of a unit delay, if any.
    pub(crate) fn state_buf_of(&self, id: BlockId) -> Option<BufId> {
        self.state_buf.get(&id).copied()
    }

    /// The tap-constant buffer of a FIR filter, if any.
    pub(crate) fn fir_coeffs_of(&self, id: BlockId) -> Option<BufId> {
        self.fir_coeffs.get(&id).copied()
    }

    /// Finalizes into a [`Program`].
    pub(crate) fn into_program(self) -> Program {
        Program {
            name: self.analysis.dfg().model().name().to_string(),
            style: self.style,
            buffers: self.buffers,
            stmts: self.stmts,
        }
    }

    /// Buffer feeding one of a block's input ports.
    pub(crate) fn input_buf(&self, port: InPort) -> BufId {
        let src = self.analysis.dfg().source_of(port);
        self.out_buf[&src]
    }

    /// Operand for an elementwise statement: broadcast if the input is a
    /// scalar feeding a non-scalar computation.
    fn operand(&self, block: BlockId, in_port: usize, off: usize, out_scalar: bool) -> Src {
        let buf = self.input_buf(InPort::new(block, in_port));
        let in_scalar = self
            .analysis
            .dfg()
            .shapes()
            .input(block, in_port)
            .is_scalar();
        if in_scalar && !out_scalar {
            Src::Broadcast(Slice::new(buf, 0))
        } else {
            Src::Run(Slice::new(buf, off))
        }
    }

    pub(crate) fn lower_block(&mut self, id: BlockId, ranges: &frodo_core::Ranges) {
        // borrow the block straight out of the analysis (which outlives
        // `self`), so no per-block clone is needed
        let analysis: &'a Analysis = self.analysis;
        let dfg = analysis.dfg();
        let block = dfg.model().block(id);
        let kind = &block.kind;
        match kind {
            // sources produce no code; delays were handled globally
            BlockKind::Inport { .. }
            | BlockKind::Constant { .. }
            | BlockKind::UnitDelay { .. }
            | BlockKind::Terminator => {}

            BlockKind::Outport { .. } => {
                let dst = self.out_buf[&OutPort::new(id, usize::MAX)];
                let src = self.input_buf(InPort::new(id, 0));
                let len = dfg.shapes().input(id, 0).numel();
                self.stmts.push(Stmt::Copy {
                    dst: Slice::new(dst, 0),
                    src: Slice::new(src, 0),
                    len,
                });
            }

            // ---- unary elementwise ----
            BlockKind::Gain { gain } => self.unary_runs(id, ranges, UnOp::Gain(*gain)),
            BlockKind::Bias { bias } => self.unary_runs(id, ranges, UnOp::Bias(*bias)),
            BlockKind::Abs => self.unary_runs(id, ranges, UnOp::Abs),
            BlockKind::Sqrt => self.unary_runs(id, ranges, UnOp::Sqrt),
            BlockKind::Square => self.unary_runs(id, ranges, UnOp::Square),
            BlockKind::Exp => self.unary_runs(id, ranges, UnOp::Exp),
            BlockKind::Log => self.unary_runs(id, ranges, UnOp::Log),
            BlockKind::Sin => self.unary_runs(id, ranges, UnOp::Sin),
            BlockKind::Cos => self.unary_runs(id, ranges, UnOp::Cos),
            BlockKind::Tanh => self.unary_runs(id, ranges, UnOp::Tanh),
            BlockKind::Negate => self.unary_runs(id, ranges, UnOp::Neg),
            BlockKind::Reciprocal => self.unary_runs(id, ranges, UnOp::Recip),
            BlockKind::Saturation { lower, upper } => {
                self.unary_runs(id, ranges, UnOp::Sat(*lower, *upper))
            }
            BlockKind::Rounding { mode } => self.unary_runs(
                id,
                ranges,
                match mode {
                    RoundMode::Floor => UnOp::Floor,
                    RoundMode::Ceil => UnOp::Ceil,
                    RoundMode::Round => UnOp::Round,
                    RoundMode::Fix => UnOp::Trunc,
                },
            ),

            // ---- binary elementwise ----
            BlockKind::Add => self.binary_runs(id, ranges, BinOp::Add),
            BlockKind::Subtract => self.binary_runs(id, ranges, BinOp::Sub),
            BlockKind::Multiply => self.binary_runs(id, ranges, BinOp::Mul),
            BlockKind::Divide => self.binary_runs(id, ranges, BinOp::Div),
            BlockKind::Min => self.binary_runs(id, ranges, BinOp::Min),
            BlockKind::Max => self.binary_runs(id, ranges, BinOp::Max),
            BlockKind::Mod => self.binary_runs(id, ranges, BinOp::Mod),
            BlockKind::Relational { op } => self.binary_runs(
                id,
                ranges,
                match op {
                    RelOp::Lt => BinOp::Lt,
                    RelOp::Le => BinOp::Le,
                    RelOp::Gt => BinOp::Gt,
                    RelOp::Ge => BinOp::Ge,
                    RelOp::Eq => BinOp::EqOp,
                    RelOp::Ne => BinOp::Ne,
                },
            ),
            BlockKind::Logical { op } => match op {
                LogicOp::Not => self.unary_runs(id, ranges, UnOp::Not),
                LogicOp::And => self.binary_runs(id, ranges, BinOp::And),
                LogicOp::Or => self.binary_runs(id, ranges, BinOp::Or),
                LogicOp::Xor => self.binary_runs(id, ranges, BinOp::Xor),
            },

            BlockKind::Switch { threshold } => {
                let dst = self.out_buf[&OutPort::new(id, 0)];
                let out_scalar = dfg.shapes().output(id, 0).is_scalar();
                for &iv in self.range_runs(id, 0, ranges).intervals() {
                    let a = self.operand(id, 0, iv.start, out_scalar);
                    let ctrl = self.operand(id, 1, iv.start, out_scalar);
                    let b = self.operand(id, 2, iv.start, out_scalar);
                    self.stmts.push(Stmt::Select {
                        dst: Slice::new(dst, iv.start),
                        ctrl,
                        threshold: *threshold,
                        a,
                        b,
                        len: iv.len(),
                    });
                }
            }

            // ---- reductions ----
            BlockKind::SumOfElements => self.reduce(id, ranges, ReduceOp::Sum),
            BlockKind::MeanOfElements => self.reduce(id, ranges, ReduceOp::Mean),
            BlockKind::MinOfElements => self.reduce(id, ranges, ReduceOp::Min),
            BlockKind::MaxOfElements => self.reduce(id, ranges, ReduceOp::Max),
            BlockKind::DotProduct => {
                if !ranges.out(id, 0).is_empty() {
                    let dst = self.out_buf[&OutPort::new(id, 0)];
                    let a = self.input_buf(InPort::new(id, 0));
                    let b = self.input_buf(InPort::new(id, 1));
                    let len = dfg.shapes().input(id, 0).numel();
                    self.stmts.push(Stmt::Dot {
                        dst: Slice::new(dst, 0),
                        a: Slice::new(a, 0),
                        b: Slice::new(b, 0),
                        len,
                    });
                }
            }

            // ---- matrix ----
            BlockKind::MatrixMultiply => {
                let range = self.calc_range(id, 0, ranges);
                if range.is_empty() {
                    return;
                }
                let dst = self.out_buf[&OutPort::new(id, 0)];
                let a = self.input_buf(InPort::new(id, 0));
                let b = self.input_buf(InPort::new(id, 1));
                let sa = dfg.shapes().input(id, 0);
                let sb = dfg.shapes().input(id, 1);
                let (m, k, n) = (sa.rows(), sa.cols(), sb.cols());
                // restrict to the output rows that contain needed elements
                let mut rows = IndexSet::new();
                for iv in range.intervals() {
                    rows = rows.union(&IndexSet::from_range(iv.start / n, (iv.end - 1) / n + 1));
                }
                for iv in rows.intervals() {
                    self.stmts.push(Stmt::MatMul {
                        dst,
                        a,
                        b,
                        m,
                        k,
                        n,
                        r0: iv.start,
                        r1: iv.end,
                    });
                }
            }

            BlockKind::Transpose => {
                let range = self.calc_range(id, 0, ranges);
                if range.is_empty() {
                    return;
                }
                let dst = self.out_buf[&OutPort::new(id, 0)];
                let src = self.input_buf(InPort::new(id, 0));
                let in_shape = dfg.shapes().input(id, 0);
                let (rows, cols) = (in_shape.rows(), in_shape.cols());
                let numel = rows * cols;
                if range.count() == numel {
                    self.stmts.push(Stmt::Transpose {
                        dst,
                        src,
                        rows,
                        cols,
                    });
                } else {
                    // partial transpose: gather exactly the needed elements
                    let out_cols = rows;
                    for iv in range.intervals() {
                        let indices: Vec<usize> = (iv.start..iv.end)
                            .map(|o| (o % out_cols) * cols + o / out_cols)
                            .collect();
                        self.stmts.push(Stmt::Gather {
                            dst: Slice::new(dst, iv.start),
                            src,
                            indices,
                        });
                    }
                }
            }

            BlockKind::Reshape { .. } => {
                let dst = self.out_buf[&OutPort::new(id, 0)];
                let src = self.input_buf(InPort::new(id, 0));
                for &iv in self.range_runs(id, 0, ranges).intervals() {
                    self.stmts.push(Stmt::Copy {
                        dst: Slice::new(dst, iv.start),
                        src: Slice::new(src, iv.start),
                        len: iv.len(),
                    });
                }
            }

            // ---- truncation & routing ----
            BlockKind::Selector { mode } => {
                let dst = self.out_buf[&OutPort::new(id, 0)];
                let src = self.input_buf(InPort::new(id, 0));
                match mode {
                    SelectorMode::StartEnd { start, .. } => {
                        for &iv in self.range_runs(id, 0, ranges).intervals() {
                            self.stmts.push(Stmt::Copy {
                                dst: Slice::new(dst, iv.start),
                                src: Slice::new(src, iv.start + start),
                                len: iv.len(),
                            });
                        }
                    }
                    SelectorMode::IndexVector(idxs) => {
                        for &iv in self.range_runs(id, 0, ranges).intervals() {
                            self.stmts.push(Stmt::Gather {
                                dst: Slice::new(dst, iv.start),
                                src,
                                indices: idxs[iv.start..iv.end].to_vec(),
                            });
                        }
                    }
                    SelectorMode::IndexPort { .. } => {
                        let idx_buf = self.input_buf(InPort::new(id, 1));
                        let src_len = dfg.shapes().input(id, 0).numel();
                        for &iv in self.range_runs(id, 0, ranges).intervals() {
                            self.stmts.push(Stmt::DynGather {
                                dst: Slice::new(dst, iv.start),
                                src,
                                src_len,
                                idx: Slice::new(idx_buf, iv.start),
                                len: iv.len(),
                            });
                        }
                    }
                }
            }

            BlockKind::Pad { left, value, .. } => {
                let dst = self.out_buf[&OutPort::new(id, 0)];
                let src = self.input_buf(InPort::new(id, 0));
                let n = dfg.shapes().input(id, 0).numel();
                let range = self.calc_range(id, 0, ranges);
                let data_zone = IndexSet::from_range(*left, left + n);
                // padding positions
                for iv in range.difference(&data_zone).intervals() {
                    self.stmts.push(Stmt::Fill {
                        dst: Slice::new(dst, iv.start),
                        value: *value,
                        len: iv.len(),
                    });
                }
                // data positions
                for iv in range.intersect(&data_zone).intervals() {
                    self.stmts.push(Stmt::Copy {
                        dst: Slice::new(dst, iv.start),
                        src: Slice::new(src, iv.start - left),
                        len: iv.len(),
                    });
                }
            }

            BlockKind::Submatrix {
                row_start,
                col_start,
                ..
            } => {
                let dst = self.out_buf[&OutPort::new(id, 0)];
                let src = self.input_buf(InPort::new(id, 0));
                let in_cols = dfg.shapes().input(id, 0).cols();
                let out_cols = dfg.shapes().output(id, 0).cols();
                for &iv in self.range_runs(id, 0, ranges).intervals() {
                    let indices: Vec<usize> = (iv.start..iv.end)
                        .map(|o| (row_start + o / out_cols) * in_cols + col_start + o % out_cols)
                        .collect();
                    self.stmts.push(Stmt::Gather {
                        dst: Slice::new(dst, iv.start),
                        src,
                        indices,
                    });
                }
            }

            BlockKind::Assignment { start } => {
                let dst = self.out_buf[&OutPort::new(id, 0)];
                let base = self.input_buf(InPort::new(id, 0));
                let patch = self.input_buf(InPort::new(id, 1));
                let patch_len = dfg.shapes().input(id, 1).numel();
                let zone = IndexSet::from_range(*start, start + patch_len);
                let range = self.calc_range(id, 0, ranges);
                for iv in range.difference(&zone).intervals() {
                    self.stmts.push(Stmt::Copy {
                        dst: Slice::new(dst, iv.start),
                        src: Slice::new(base, iv.start),
                        len: iv.len(),
                    });
                }
                for iv in range.intersect(&zone).intervals() {
                    self.stmts.push(Stmt::Copy {
                        dst: Slice::new(dst, iv.start),
                        src: Slice::new(patch, iv.start - start),
                        len: iv.len(),
                    });
                }
            }

            BlockKind::Mux { .. } | BlockKind::Concatenate { .. } => {
                let dst = self.out_buf[&OutPort::new(id, 0)];
                let range = self.calc_range(id, 0, ranges);
                let mut seg_start = 0usize;
                for p in 0..kind.num_inputs() {
                    let len = dfg.shapes().input(id, p).numel();
                    let seg = IndexSet::from_range(seg_start, seg_start + len);
                    let in_port = InPort::new(id, p);
                    let src = self.input_buf(in_port);
                    // Coalescing runs per block, and joining segments can
                    // bridge a gap across a segment boundary that the
                    // producer (whose universe ends at the boundary) never
                    // bridged — so clamp each copy to what the producer
                    // actually writes; the skipped elements are coalesce
                    // slop that no demanded output reads.
                    let upstream = dfg.source_of(in_port);
                    let written = self
                        .calc_range(upstream.block, upstream.port, ranges)
                        .shift(seg_start as isize);
                    for iv in range.intersect(&seg).intersect(&written).intervals() {
                        self.stmts.push(Stmt::Copy {
                            dst: Slice::new(dst, iv.start),
                            src: Slice::new(src, iv.start - seg_start),
                            len: iv.len(),
                        });
                    }
                    seg_start += len;
                }
            }

            BlockKind::Demux { sizes } => {
                let src = self.input_buf(InPort::new(id, 0));
                let mut offset = 0usize;
                for (o, &sz) in sizes.iter().enumerate() {
                    let dst = self.out_buf[&OutPort::new(id, o)];
                    let range = self.calc_range(id, o, ranges);
                    debug_assert!(range.max().is_none_or(|m| m < sz));
                    for iv in range.intervals() {
                        self.stmts.push(Stmt::Copy {
                            dst: Slice::new(dst, iv.start),
                            src: Slice::new(src, offset + iv.start),
                            len: iv.len(),
                        });
                    }
                    offset += sz;
                }
            }

            // ---- DSP ----
            BlockKind::Convolution => {
                let dst = self.out_buf[&OutPort::new(id, 0)];
                let u = self.input_buf(InPort::new(id, 0));
                let v = self.input_buf(InPort::new(id, 1));
                let u_len = dfg.shapes().input(id, 0).numel();
                let v_len = dfg.shapes().input(id, 1).numel();
                let style = self.style.conv_style();
                for &iv in self.range_runs(id, 0, ranges).intervals() {
                    self.stmts.push(Stmt::Conv {
                        dst,
                        u,
                        u_len,
                        v,
                        v_len,
                        k0: iv.start,
                        k1: iv.end,
                        style,
                    });
                }
            }

            BlockKind::FirFilter { coeffs } => {
                let dst = self.out_buf[&OutPort::new(id, 0)];
                let src = self.input_buf(InPort::new(id, 0));
                let taps = coeffs.len();
                let cb = self.fir_coeffs[&id];
                for &iv in self.range_runs(id, 0, ranges).intervals() {
                    self.stmts.push(Stmt::Fir {
                        dst,
                        src,
                        coeffs: cb,
                        taps,
                        k0: iv.start,
                        k1: iv.end,
                    });
                }
            }

            BlockKind::MovingAverage { window } => {
                let dst = self.out_buf[&OutPort::new(id, 0)];
                let src = self.input_buf(InPort::new(id, 0));
                for &iv in self.range_runs(id, 0, ranges).intervals() {
                    self.stmts.push(Stmt::MovingAvg {
                        dst,
                        src,
                        window: *window,
                        k0: iv.start,
                        k1: iv.end,
                    });
                }
            }

            BlockKind::Downsample { factor, phase } => {
                let dst = self.out_buf[&OutPort::new(id, 0)];
                let src = self.input_buf(InPort::new(id, 0));
                for &iv in self.range_runs(id, 0, ranges).intervals() {
                    let indices: Vec<usize> =
                        (iv.start..iv.end).map(|i| i * factor + phase).collect();
                    self.stmts.push(Stmt::Gather {
                        dst: Slice::new(dst, iv.start),
                        src,
                        indices,
                    });
                }
            }

            BlockKind::CumulativeSum => {
                let range = self.calc_range(id, 0, ranges);
                if let Some(max) = range.max() {
                    let dst = self.out_buf[&OutPort::new(id, 0)];
                    let src = self.input_buf(InPort::new(id, 0));
                    self.stmts.push(Stmt::CumSum {
                        dst,
                        src,
                        k_end: max + 1,
                    });
                }
            }

            BlockKind::Difference => {
                let dst = self.out_buf[&OutPort::new(id, 0)];
                let src = self.input_buf(InPort::new(id, 0));
                for &iv in self.range_runs(id, 0, ranges).intervals() {
                    self.stmts.push(Stmt::Diff {
                        dst,
                        src,
                        k0: iv.start,
                        k1: iv.end,
                    });
                }
            }

            BlockKind::Subsystem(_) => unreachable!("Dfg models are flattened"),
        }
    }

    /// A block's calculation range on one output port, clamped to the
    /// output shape and coalesced into contiguous runs.
    fn calc_range(&self, id: BlockId, port: usize, ranges: &frodo_core::Ranges) -> IndexSet {
        let numel = self.analysis.dfg().shapes().output(id, port).numel();
        ranges
            .out(id, port)
            .clamp_to(numel)
            .coalesce(self.opts.coalesce_gap)
    }

    /// The runs (clamped, coalesced consecutive intervals) of a block's
    /// calculation range on one output port. Iterate the returned set's
    /// [`IndexSet::intervals`] — returning the set itself avoids a `Vec`
    /// copy per lowered block.
    fn range_runs(&self, id: BlockId, port: usize, ranges: &frodo_core::Ranges) -> IndexSet {
        self.calc_range(id, port, ranges)
    }

    fn unary_runs(&mut self, id: BlockId, ranges: &frodo_core::Ranges, op: UnOp) {
        let dst = self.out_buf[&OutPort::new(id, 0)];
        let out_scalar = self.analysis.dfg().shapes().output(id, 0).is_scalar();
        for &iv in self.range_runs(id, 0, ranges).intervals() {
            let src = self.operand(id, 0, iv.start, out_scalar);
            self.stmts.push(Stmt::Unary {
                op,
                dst: Slice::new(dst, iv.start),
                src,
                len: iv.len(),
            });
        }
    }

    fn binary_runs(&mut self, id: BlockId, ranges: &frodo_core::Ranges, op: BinOp) {
        let dst = self.out_buf[&OutPort::new(id, 0)];
        let out_scalar = self.analysis.dfg().shapes().output(id, 0).is_scalar();
        for &iv in self.range_runs(id, 0, ranges).intervals() {
            let a = self.operand(id, 0, iv.start, out_scalar);
            let b = self.operand(id, 1, iv.start, out_scalar);
            self.stmts.push(Stmt::Binary {
                op,
                dst: Slice::new(dst, iv.start),
                a,
                b,
                len: iv.len(),
            });
        }
    }

    fn reduce(&mut self, id: BlockId, ranges: &frodo_core::Ranges, op: ReduceOp) {
        if ranges.out(id, 0).is_empty() {
            return;
        }
        let dst = self.out_buf[&OutPort::new(id, 0)];
        let src = self.input_buf(InPort::new(id, 0));
        let len = self.analysis.dfg().shapes().input(id, 0).numel();
        self.stmts.push(Stmt::Reduce {
            op,
            dst: Slice::new(dst, 0),
            src: Slice::new(src, 0),
            len,
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use frodo_model::{Block, Model, Tensor};
    use frodo_ranges::Shape;

    fn figure1() -> Analysis {
        let mut m = Model::new("conv");
        let i = m.add(Block::new(
            "in",
            BlockKind::Inport {
                index: 0,
                shape: Shape::Vector(50),
            },
        ));
        let k = m.add(Block::new(
            "k",
            BlockKind::Constant {
                value: Tensor::vector(vec![0.1; 11]),
            },
        ));
        let c = m.add(Block::new("conv", BlockKind::Convolution));
        let s = m.add(Block::new(
            "sel",
            BlockKind::Selector {
                mode: SelectorMode::StartEnd { start: 5, end: 55 },
            },
        ));
        let o = m.add(Block::new("out", BlockKind::Outport { index: 0 }));
        m.connect(i, 0, c, 0).unwrap();
        m.connect(k, 0, c, 1).unwrap();
        m.connect(c, 0, s, 0).unwrap();
        m.connect(s, 0, o, 0).unwrap();
        Analysis::run(m).unwrap()
    }

    #[test]
    #[allow(deprecated)]
    fn deprecated_traced_shim_still_works() {
        let a = figure1();
        let noop = frodo_obs::Trace::noop();
        let via_shim = generate_traced(&a, GeneratorStyle::Frodo, LowerOptions::default(), &noop);
        let direct = generate(&a, GeneratorStyle::Frodo, &noop);
        assert_eq!(via_shim, direct);
    }

    #[test]
    fn window_reuse_option_rewrites_figure1_conv() {
        let a = figure1();
        let opts = LowerOptions {
            window_reuse: true,
            ..Default::default()
        };
        let p = generate_with(&a, GeneratorStyle::Frodo, opts, &frodo_obs::Trace::noop());
        assert!(
            p.stmts
                .iter()
                .any(|s| matches!(s, Stmt::WindowedReuse { .. })),
            "{p}"
        );
        // the default path stays untouched
        let d = generate(&a, GeneratorStyle::Frodo, &frodo_obs::Trace::noop());
        assert!(!d
            .stmts
            .iter()
            .any(|s| matches!(s, Stmt::WindowedReuse { .. })));
    }

    #[test]
    fn frodo_conv_is_range_restricted() {
        let a = figure1();
        let p = generate(&a, GeneratorStyle::Frodo, &frodo_obs::Trace::noop());
        let conv = p
            .stmts
            .iter()
            .find_map(|s| match s {
                Stmt::Conv { k0, k1, style, .. } => Some((*k0, *k1, *style)),
                _ => None,
            })
            .expect("conv stmt present");
        assert_eq!(conv, (5, 55, crate::lir::ConvStyle::Tight));
    }

    #[test]
    fn simulink_conv_is_full_and_branchy() {
        let a = figure1();
        let p = generate(&a, GeneratorStyle::SimulinkCoder, &frodo_obs::Trace::noop());
        let conv = p
            .stmts
            .iter()
            .find_map(|s| match s {
                Stmt::Conv { k0, k1, style, .. } => Some((*k0, *k1, *style)),
                _ => None,
            })
            .expect("conv stmt present");
        assert_eq!(conv, (0, 60, crate::lir::ConvStyle::Branchy));
    }

    #[test]
    fn frodo_computes_fewer_elements_than_baselines() {
        let a = figure1();
        let frodo = generate(&a, GeneratorStyle::Frodo, &frodo_obs::Trace::noop());
        let dfsynth = generate(&a, GeneratorStyle::DfSynth, &frodo_obs::Trace::noop());
        assert!(frodo.computed_elements() < dfsynth.computed_elements());
    }

    #[test]
    fn all_styles_allocate_identical_buffers() {
        let a = figure1();
        let sizes: Vec<usize> = GeneratorStyle::ALL
            .iter()
            .map(|&s| generate(&a, s, &frodo_obs::Trace::noop()).total_buffer_elements())
            .collect();
        assert!(
            sizes.windows(2).all(|w| w[0] == w[1]),
            "memory parity: {sizes:?}"
        );
    }

    #[test]
    fn selector_lowers_to_offset_copy() {
        let a = figure1();
        let p = generate(&a, GeneratorStyle::Frodo, &frodo_obs::Trace::noop());
        assert!(p.stmts.iter().any(|s| matches!(
            s,
            Stmt::Copy { src, len: 50, .. } if src.off == 5
        )));
    }

    #[test]
    fn pad_splits_fill_and_copy() {
        let mut m = Model::new("pad");
        let i = m.add(Block::new(
            "in",
            BlockKind::Inport {
                index: 0,
                shape: Shape::Vector(10),
            },
        ));
        let p = m.add(Block::new(
            "p",
            BlockKind::Pad {
                left: 3,
                right: 2,
                value: 7.0,
            },
        ));
        let o = m.add(Block::new("out", BlockKind::Outport { index: 0 }));
        m.connect(i, 0, p, 0).unwrap();
        m.connect(p, 0, o, 0).unwrap();
        let a = Analysis::run(m).unwrap();
        let prog = generate(&a, GeneratorStyle::Frodo, &frodo_obs::Trace::noop());
        let fills = prog
            .stmts
            .iter()
            .filter(|s| matches!(s, Stmt::Fill { value, .. } if *value == 7.0))
            .count();
        assert_eq!(fills, 2, "left and right padding zones");
    }

    #[test]
    fn delay_produces_state_load_and_store() {
        let mut m = Model::new("dly");
        let i = m.add(Block::new(
            "in",
            BlockKind::Inport {
                index: 0,
                shape: Shape::Vector(4),
            },
        ));
        let z = m.add(Block::new(
            "z",
            BlockKind::UnitDelay {
                initial: Tensor::vector(vec![0.0; 4]),
            },
        ));
        let o = m.add(Block::new("out", BlockKind::Outport { index: 0 }));
        m.connect(i, 0, z, 0).unwrap();
        m.connect(z, 0, o, 0).unwrap();
        let a = Analysis::run(m).unwrap();
        let prog = generate(&a, GeneratorStyle::Frodo, &frodo_obs::Trace::noop());
        assert!(matches!(prog.stmts.first(), Some(Stmt::StateLoad { .. })));
        assert!(matches!(prog.stmts.last(), Some(Stmt::StateStore { .. })));
    }

    #[test]
    fn dead_terminator_chain_emits_nothing() {
        let mut m = Model::new("dead");
        let i = m.add(Block::new(
            "in",
            BlockKind::Inport {
                index: 0,
                shape: Shape::Vector(8),
            },
        ));
        let g = m.add(Block::new("g", BlockKind::Gain { gain: 2.0 }));
        let t = m.add(Block::new("t", BlockKind::Terminator));
        let o = m.add(Block::new("out", BlockKind::Outport { index: 0 }));
        m.connect(i, 0, g, 0).unwrap();
        m.connect(g, 0, t, 0).unwrap();
        m.connect(i, 0, o, 0).unwrap();
        let a = Analysis::run(m).unwrap();
        let prog = generate(&a, GeneratorStyle::Frodo, &frodo_obs::Trace::noop());
        // only the outport copy remains
        assert_eq!(prog.stmts.len(), 1);
        // the baseline still computes the dead gain
        let base = generate(&a, GeneratorStyle::DfSynth, &frodo_obs::Trace::noop());
        assert_eq!(base.stmts.len(), 2);
    }

    #[test]
    fn matmul_rows_restrict_via_submatrix() {
        // (4x4)·(4x4) but only rows 1..3 of the product are kept
        let mut m = Model::new("mm");
        let a = m.add(Block::new(
            "a",
            BlockKind::Inport {
                index: 0,
                shape: Shape::Matrix(4, 4),
            },
        ));
        let b = m.add(Block::new(
            "b",
            BlockKind::Inport {
                index: 1,
                shape: Shape::Matrix(4, 4),
            },
        ));
        let mm = m.add(Block::new("mm", BlockKind::MatrixMultiply));
        let sub = m.add(Block::new(
            "sub",
            BlockKind::Submatrix {
                row_start: 1,
                row_end: 3,
                col_start: 0,
                col_end: 4,
            },
        ));
        let o = m.add(Block::new("out", BlockKind::Outport { index: 0 }));
        m.connect(a, 0, mm, 0).unwrap();
        m.connect(b, 0, mm, 1).unwrap();
        m.connect(mm, 0, sub, 0).unwrap();
        m.connect(sub, 0, o, 0).unwrap();
        let an = Analysis::run(m).unwrap();
        let prog = generate(&an, GeneratorStyle::Frodo, &frodo_obs::Trace::noop());
        let rows = prog
            .stmts
            .iter()
            .find_map(|s| match s {
                Stmt::MatMul { r0, r1, .. } => Some((*r0, *r1)),
                _ => None,
            })
            .expect("matmul stmt");
        assert_eq!(rows, (1, 3));
    }
}
