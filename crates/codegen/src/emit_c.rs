//! C code emission (the paper's *code synthesis* step).
//!
//! [`emit_c`] renders a [`Program`] as a self-contained C translation unit
//! with a `void <model>_step(const double *in0, …, double *out0, …)` entry
//! point; [`emit_c_harness`] additionally appends a timing `main` that
//! matches the paper's measurement protocol (repeat the step function and
//! average).

use crate::library;
use crate::lir::{BinOp, BufId, BufferRole, ConvStyle, Program, ReduceOp, Slice, Src, Stmt, UnOp};
use crate::GeneratorStyle;
use std::fmt::Write;

/// How aggressively the emitter shapes loops for SIMD execution
/// (`--vectorize off|hints|batch[:W]` on the CLI).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum VectorMode {
    /// Historical per-style behavior: HCG batches vectorizable loops four
    /// lanes wide, every other style emits plain scalar loops. This is the
    /// default, and its output is byte-identical to what the emitter
    /// produced before [`VectorMode`] existed.
    #[default]
    Auto,
    /// Plain scalar loops for every style, including HCG.
    Off,
    /// Scalar loop bodies, but the step function takes `restrict`-qualified
    /// pointers, asserts 64-byte buffer alignment, and marks vectorizable
    /// loops with `#pragma GCC ivdep` so the compiler's auto-vectorizer has
    /// everything it needs.
    Hints,
    /// Everything [`VectorMode::Hints`] does, plus explicit `W`-wide batched
    /// loop bodies on every vectorizable statement (the HCG treatment,
    /// parameterized by the target lane count: 8×f64 on x86-512b, 2×f64 on
    /// ARM-128b).
    Batch(usize),
}

impl VectorMode {
    /// Lane widths accepted by [`VectorMode::parse`].
    pub const WIDTH_RANGE: std::ops::RangeInclusive<usize> = 2..=16;

    /// Parses the CLI syntax `off | hints | batch[:W]`; bare `batch` takes
    /// `default_width` (callers map this from the target cost model's lane
    /// count).
    ///
    /// # Errors
    ///
    /// Returns a human-readable message for unknown modes and out-of-range
    /// widths.
    pub fn parse(s: &str, default_width: usize) -> Result<Self, String> {
        match s {
            "auto" => return Ok(VectorMode::Auto),
            "off" => return Ok(VectorMode::Off),
            "hints" => return Ok(VectorMode::Hints),
            "batch" => return Ok(VectorMode::Batch(default_width)),
            _ => {}
        }
        if let Some(w) = s.strip_prefix("batch:") {
            let w: usize = w.parse().map_err(|_| {
                format!(
                    "bad batch width '{w}' in --vectorize (expected batch[:W], W in {}..={})",
                    Self::WIDTH_RANGE.start(),
                    Self::WIDTH_RANGE.end()
                )
            })?;
            if !Self::WIDTH_RANGE.contains(&w) {
                return Err(format!(
                    "batch width {w} out of range {}..={}",
                    Self::WIDTH_RANGE.start(),
                    Self::WIDTH_RANGE.end()
                ));
            }
            return Ok(VectorMode::Batch(w));
        }
        Err(format!(
            "unknown vectorize mode '{s}' (expected auto|off|hints|batch[:W], W in {}..={})",
            Self::WIDTH_RANGE.start(),
            Self::WIDTH_RANGE.end()
        ))
    }

    /// Whether the mode asks for `restrict` pointers and alignment
    /// assertions on the step function.
    pub fn wants_hints(&self) -> bool {
        matches!(self, VectorMode::Hints | VectorMode::Batch(_))
    }
}

/// Options for C emission.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CEmitOptions {
    /// Emit a single generic `frodo_conv_range` helper and call it with the
    /// derived calculation range as parameters, instead of instantiating a
    /// loop nest per convolution statement — the code-size remedy the
    /// paper's §5 proposes for duplicated complex-block code.
    pub shared_conv_helper: bool,
    /// Loop shaping for SIMD execution; see [`VectorMode`].
    pub vectorize: VectorMode,
    /// Self-profiling emission: wrap every statement in monotonic-clock
    /// hooks that accumulate per-statement invocation counts, nanosecond
    /// totals, log2-bucket latency histograms, and FLOP tallies into a
    /// static table, and emit a `frodo_prof_dump(FILE*)` that prints them
    /// in the `frodo-obs` flat-NDJSON export schema (`span` / `counter` /
    /// `hist` lines, keyed `stmt_<index>_<kind>`). Off by default; the
    /// non-profiled emission is byte-identical to `profile: false`.
    pub profile: bool,
}

/// Emits a complete C translation unit for the program.
pub fn emit_c(program: &Program) -> String {
    emit_c_with(program, CEmitOptions::default())
}

/// [`emit_c`] with explicit [`CEmitOptions`].
pub fn emit_c_with(program: &Program, opts: CEmitOptions) -> String {
    Emitter::new_with(program, opts).emit()
}

/// [`emit_c_with`] with the statement bodies rendered by `threads` worker
/// threads into private string buffers that are rejoined in statement order.
///
/// Each statement renders from a fresh indent-1 emitter and is addressed by
/// its *global* index (local tables like `idx_<n>` embed that index), so the
/// output is byte-identical to [`emit_c_with`] for every thread count. Small
/// programs fall back to the sequential path: parallel rendering only pays
/// off when each worker has a meaningful amount of text to produce.
pub fn emit_c_threaded(program: &Program, opts: CEmitOptions, threads: usize) -> String {
    let chunks = emission_chunks(program.stmts.len(), threads);
    if chunks.len() <= 1 {
        return emit_c_with(program, opts);
    }
    let chunk = chunks[0].1 - chunks[0].0;
    let mut out = Emitter::new_with(program, opts).header();
    let parts: Vec<String> = std::thread::scope(|s| {
        let handles: Vec<_> = program
            .stmts
            .chunks(chunk)
            .enumerate()
            .map(|(ci, stmts)| {
                s.spawn(move || {
                    let mut e = Emitter::new_with(program, opts);
                    for (j, stmt) in stmts.iter().enumerate() {
                        e.emit_stmt(ci * chunk + j, stmt);
                    }
                    e.out
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("emit worker panicked"))
            .collect()
    });
    for part in &parts {
        out.push_str(part);
    }
    out.push_str("}\n");
    out
}

/// The statement-chunk partition [`emit_c_threaded`] hands its rendering
/// workers: consecutive half-open `[start, end)` index ranges covering
/// `0..n` exactly once, in statement order. Small programs collapse to a
/// single chunk (below 64 statements per worker, thread spawn overhead
/// exceeds the rendering cost). Exported so the schedule race checker in
/// `frodo-verify` can prove the partition it certifies is the partition
/// the emitter actually uses.
pub fn emission_chunks(n: usize, threads: usize) -> Vec<(usize, usize)> {
    /// Below this many statements per worker, thread spawn overhead exceeds
    /// the rendering cost.
    const MIN_STMTS_PER_WORKER: usize = 64;
    let threads = threads.min(n / MIN_STMTS_PER_WORKER).max(1);
    if threads <= 1 {
        return vec![(0, n)];
    }
    let chunk = n.div_ceil(threads);
    (0..n.div_ceil(chunk))
        .map(|ci| (ci * chunk, ((ci + 1) * chunk).min(n)))
        .collect()
}

/// [`emit_c_threaded`], recorded as an `emit` span (with `bytes_emitted` and
/// `emit_threads` counters) on the given trace.
pub fn emit_c_traced(
    program: &Program,
    opts: CEmitOptions,
    threads: usize,
    trace: &frodo_obs::Trace,
) -> String {
    let span = trace.span("emit");
    span.count("emit_threads", threads as u64);
    let code = emit_c_threaded(program, opts, threads);
    span.count("bytes_emitted", code.len() as u64);
    code
}

/// Emits the translation unit plus a timing `main` that fills the inputs
/// with a deterministic LCG, calls the step function `iters` times, and
/// prints `<checksum> <nanoseconds-per-iteration>`.
pub fn emit_c_harness(program: &Program, iters: usize) -> String {
    emit_c_harness_with(program, iters, CEmitOptions::default())
}

/// [`emit_c_harness`] with explicit [`CEmitOptions`].
pub fn emit_c_harness_with(program: &Program, iters: usize, opts: CEmitOptions) -> String {
    let mut out = Emitter::new_with(program, opts).emit();
    let name = &program.name;
    let mut main = String::new();
    let _ = writeln!(main, "\n#include <stdio.h>\n#include <time.h>\n");
    let _ = writeln!(main, "int main(void) {{");
    // hints/batch emission asserts 64-byte alignment on in/out buffers, so
    // the harness must honor that contract
    let align = if opts.vectorize.wants_hints() {
        "_Alignas(64) "
    } else {
        ""
    };
    for (idx, id) in program.inputs() {
        let len = program.buffer(id).len;
        let _ = writeln!(main, "    static {align}double in{idx}[{len}];");
    }
    for (idx, id) in program.outputs() {
        let len = program.buffer(id).len;
        let _ = writeln!(main, "    static {align}double out{idx}[{len}];");
    }
    let _ = writeln!(main, "    unsigned long long lcg = 0x243F6A8885A308D3ULL;");
    for (idx, id) in program.inputs() {
        let len = program.buffer(id).len;
        let _ = writeln!(
            main,
            "    for (int i = 0; i < {len}; ++i) {{\n        \
             lcg = lcg * 6364136223846793005ULL + 1442695040888963407ULL;\n        \
             in{idx}[i] = (double)(lcg >> 40) / 16777216.0 - 0.5;\n    }}"
        );
    }
    let args = call_args(program);
    let _ = writeln!(main, "    struct timespec t0, t1;");
    let _ = writeln!(main, "    clock_gettime(CLOCK_MONOTONIC, &t0);");
    let _ = writeln!(main, "    for (int rep = 0; rep < {iters}; ++rep) {{");
    let _ = writeln!(main, "        {name}_step({args});");
    let _ = writeln!(main, "    }}");
    let _ = writeln!(main, "    clock_gettime(CLOCK_MONOTONIC, &t1);");
    let _ = writeln!(main, "    double checksum = 0.0;");
    for (idx, id) in program.outputs() {
        let len = program.buffer(id).len;
        let _ = writeln!(
            main,
            "    for (int i = 0; i < {len}; ++i) checksum += out{idx}[i];"
        );
    }
    let _ = writeln!(
        main,
        "    double ns = ((t1.tv_sec - t0.tv_sec) * 1e9 + (t1.tv_nsec - t0.tv_nsec)) / {iters}.0;"
    );
    let _ = writeln!(main, "    printf(\"%.17g %.3f\\n\", checksum, ns);");
    if opts.profile {
        // the profile goes to stderr so the stdout checksum line stays
        // machine-parseable on its own
        let _ = writeln!(main, "    frodo_prof_dump(stderr);");
    }
    let _ = writeln!(main, "    return 0;");
    let _ = writeln!(main, "}}");
    out.push_str(&main);
    out
}

fn call_args(program: &Program) -> String {
    let mut parts: Vec<String> = Vec::new();
    for (idx, _) in program.inputs() {
        parts.push(format!("in{idx}"));
    }
    for (idx, _) in program.outputs() {
        parts.push(format!("out{idx}"));
    }
    parts.join(", ")
}

struct Emitter<'a> {
    p: &'a Program,
    opts: CEmitOptions,
    out: String,
    indent: usize,
}

/// The generic range-parameterized convolution helper (paper §5).
const CONV_HELPER: &str = "\
static void frodo_conv_range(const double *u, int ulen, const double *v,\n\
                             int vlen, double *dst, int k0, int k1) {\n\
    for (int k = k0; k < k1; ++k) {\n\
        int lo = k >= vlen ? k - (vlen - 1) : 0;\n\
        int hi = k < ulen - 1 ? k : ulen - 1;\n\
        double acc = 0.0;\n\
        for (int j = lo; j <= hi; ++j) {\n\
            acc += u[j] * v[k - j];\n\
        }\n\
        dst[k] = acc;\n\
    }\n\
}\n";

impl<'a> Emitter<'a> {
    fn new_with(p: &'a Program, opts: CEmitOptions) -> Self {
        Emitter {
            p,
            opts,
            out: String::new(),
            indent: 1,
        }
    }

    fn uses_conv_helper(&self) -> bool {
        self.opts.shared_conv_helper
            && self.p.style != GeneratorStyle::Hcg
            && self.p.stmts.iter().any(|s| {
                matches!(
                    s,
                    Stmt::Conv {
                        style: ConvStyle::Tight,
                        ..
                    }
                )
            })
    }

    fn buf_expr(&self, id: BufId) -> String {
        let b = self.p.buffer(id);
        match b.role {
            BufferRole::Input(idx) => format!("in{idx}"),
            BufferRole::Output(idx) => format!("out{idx}"),
            _ => format!("g_{}", b.name),
        }
    }

    fn line(&mut self, s: &str) {
        for _ in 0..self.indent {
            self.out.push_str("    ");
        }
        self.out.push_str(s);
        self.out.push('\n');
    }

    fn block_text(&mut self, text: &str) {
        for line in text.lines() {
            self.line(line);
        }
    }

    fn emit(mut self) -> String {
        self.out = self.header();
        for (i, s) in self.p.stmts.iter().enumerate() {
            self.emit_stmt(i, s);
        }
        self.out.push_str("}\n");
        self.out
    }

    /// Everything before the statement bodies: file comment, includes,
    /// buffers, optional conv helper, and the open `_step` signature.
    fn header(&self) -> String {
        let p = self.p;
        let mut head = String::new();
        let _ = writeln!(
            head,
            "/* Generated by frodo-codegen (style: {}) for model '{}'. */",
            p.style.label(),
            p.name
        );
        let _ = writeln!(head, "#include <math.h>");
        if self.opts.profile {
            let _ = writeln!(head, "#include <stdio.h>");
        }
        let _ = writeln!(head, "#include <string.h>");
        if self.opts.profile {
            let _ = writeln!(head, "#include <time.h>");
        }
        let _ = writeln!(head);

        // file-scope buffers; under hints/batch modes they carry an
        // explicit 64-byte alignment so the assumed alignment below holds
        let align = if self.opts.vectorize.wants_hints() {
            "_Alignas(64) "
        } else {
            ""
        };
        for b in &p.buffers {
            match &b.role {
                BufferRole::Input(_) | BufferRole::Output(_) => {}
                BufferRole::Temp => {
                    let _ = writeln!(head, "static {align}double g_{}[{}];", b.name, b.len);
                }
                BufferRole::Const(data) => {
                    let vals: Vec<String> = data.iter().map(|v| format!("{v:?}")).collect();
                    let _ = writeln!(
                        head,
                        "static {align}const double g_{}[{}] = {{{}}};",
                        b.name,
                        b.len,
                        vals.join(", ")
                    );
                }
                BufferRole::State(init) => {
                    let vals: Vec<String> = init.iter().map(|v| format!("{v:?}")).collect();
                    let _ = writeln!(
                        head,
                        "static {align}double g_{}[{}] = {{{}}};",
                        b.name,
                        b.len,
                        vals.join(", ")
                    );
                }
            }
        }

        if self.uses_conv_helper() {
            let _ = writeln!(head, "\n{CONV_HELPER}");
        }

        if self.opts.profile {
            head.push_str(&self.profile_runtime());
        }

        // signature; hints/batch modes promise the compiler non-aliasing
        // arguments via restrict
        let restrict = if self.opts.vectorize.wants_hints() {
            "restrict "
        } else {
            ""
        };
        let mut params: Vec<String> = Vec::new();
        for (idx, _) in p.inputs() {
            params.push(format!("const double *{restrict}in{idx}"));
        }
        for (idx, _) in p.outputs() {
            params.push(format!("double *{restrict}out{idx}"));
        }
        if params.is_empty() {
            params.push("void".to_string());
        }
        let _ = writeln!(head, "\nvoid {}_step({}) {{", p.name, params.join(", "));
        if self.opts.vectorize.wants_hints() {
            // alignment contract: callers pass 64-byte aligned buffers
            let _ = writeln!(head, "#if defined(__GNUC__)");
            for (idx, _) in p.inputs() {
                let _ = writeln!(
                    head,
                    "    in{idx} = (const double *)__builtin_assume_aligned(in{idx}, 64);"
                );
            }
            for (idx, _) in p.outputs() {
                let _ = writeln!(
                    head,
                    "    out{idx} = (double *)__builtin_assume_aligned(out{idx}, 64);"
                );
            }
            let _ = writeln!(head, "#endif");
        }
        head
    }

    fn src_expr(&self, src: Src, iv: &str) -> String {
        match src {
            Src::Run(s) => format!("{}[{} + {iv}]", self.buf_expr(s.buf), s.off),
            Src::Broadcast(s) => format!("{}[{}]", self.buf_expr(s.buf), s.off),
            Src::Const(c) => format!("{c:?}"),
        }
    }

    fn dst_expr(&self, dst: Slice, iv: &str) -> String {
        format!("{}[{} + {iv}]", self.buf_expr(dst.buf), dst.off)
    }

    fn emit_loop<F: Fn(&Self, &str) -> String>(&mut self, len: usize, body: F) {
        let text = body(self, "i");
        self.line(&format!("for (int i = 0; i < {len}; ++i) {{"));
        self.indent += 1;
        self.line(&text);
        self.indent -= 1;
        self.line("}");
    }

    /// The generator's lowercase label, used to tag batched loops.
    fn style_tag(&self) -> String {
        self.p.style.label().to_lowercase()
    }

    /// Batch width for a vectorizable statement's elementwise loop under
    /// the active [`VectorMode`]: `Auto` preserves the historical HCG-only
    /// width-4 batching (explicit SIMD is what HCG's instruction synthesis
    /// amounts to structurally), `Batch(w)` batches every style. Runs
    /// shorter than two full batches gain nothing over the scalar loop
    /// plus its remainder and stay scalar.
    fn batch_width(&self, s: &Stmt, len: usize) -> Option<usize> {
        let width = match self.opts.vectorize {
            VectorMode::Auto if self.p.style == GeneratorStyle::Hcg => 4,
            VectorMode::Batch(w) => w,
            _ => return None,
        };
        (s.is_vectorizable() && len >= 2 * width).then_some(width)
    }

    /// Width of the batched inner dot product for tight convolution runs
    /// (same policy as [`Emitter::batch_width`], minus the length gate —
    /// the batched dimension is the kernel, not the run).
    fn conv_batch_width(&self) -> Option<usize> {
        match self.opts.vectorize {
            VectorMode::Auto if self.p.style == GeneratorStyle::Hcg => Some(4),
            VectorMode::Batch(w) => Some(w),
            _ => None,
        }
    }

    fn emit_batched_loop<F: Fn(&Self, &str) -> String>(
        &mut self,
        width: usize,
        len: usize,
        body: F,
    ) {
        let main = (len / width) * width;
        self.line(&format!(
            "/* {}: explicit simd batch (width {width}) */",
            self.style_tag()
        ));
        self.line(&format!("for (int i = 0; i < {main}; i += {width}) {{"));
        self.indent += 1;
        for lane in 0..width {
            let txt = body(self, &format!("(i + {lane})"));
            self.line(&txt);
        }
        self.indent -= 1;
        self.line("}");
        if main < len {
            self.line(&format!("for (int i = {main}; i < {len}; ++i) {{"));
            self.indent += 1;
            let txt = body(self, "i");
            self.line(&txt);
            self.indent -= 1;
            self.line("}");
        }
    }

    fn elementwise<F: Fn(&Self, &str) -> String + Copy>(&mut self, s: &Stmt, len: usize, body: F) {
        if let Some(width) = self.batch_width(s, len) {
            self.emit_batched_loop(width, len, body);
        } else {
            if self.opts.vectorize == VectorMode::Hints && s.is_vectorizable() {
                self.line("#pragma GCC ivdep");
            }
            self.emit_loop(len, body);
        }
    }

    /// One statement, wrapped in the per-statement timing hooks when
    /// profiling is on. The wrapper braces give the hook's `t0` local its
    /// own scope, so statement bodies (including the conv helper's early
    /// return path) never see it.
    fn emit_stmt(&mut self, idx: usize, s: &Stmt) {
        if !self.opts.profile {
            self.emit_stmt_body(idx, s);
            return;
        }
        self.line("{");
        self.indent += 1;
        self.line("unsigned long long frodo_prof_t0 = frodo_prof_now();");
        self.emit_stmt_body(idx, s);
        self.line(&format!("frodo_prof_record({idx}, frodo_prof_t0);"));
        self.indent -= 1;
        self.line("}");
    }

    /// The self-profiling runtime: static accumulation tables sized to the
    /// statement count, a monotonic-clock reader, the per-statement
    /// recorder (whose log2 bucketing matches `frodo_obs::Histogram`
    /// exactly), and `frodo_prof_dump`, which prints the tables in the
    /// `frodo-obs` NDJSON export schema — one root `prof:<model>` span,
    /// one span + `_calls`/`_flops` counters per statement, and one
    /// latency `hist` line per executed statement.
    fn profile_runtime(&self) -> String {
        let p = self.p;
        let n = p.stmts.len();
        // C forbids zero-length arrays; a statement-less program still
        // gets well-formed (never-indexed) tables
        let cap = n.max(1);
        let flops: Vec<String> = if n == 0 {
            vec!["0ULL".to_string()]
        } else {
            p.stmts
                .iter()
                .map(|s| format!("{}ULL", s.flops()))
                .collect()
        };
        let kinds: Vec<String> = if n == 0 {
            vec!["\"none\"".to_string()]
        } else {
            p.stmts
                .iter()
                .map(|s| format!("\"{}\"", s.kind_label()))
                .collect()
        };
        let mut out = String::new();
        let _ = writeln!(out, "\n#define FRODO_PROF_N {n}");
        let _ = writeln!(out, "#define FRODO_PROF_BUCKETS 48");
        let _ = writeln!(out, "static unsigned long long frodo_prof_calls[{cap}];");
        let _ = writeln!(out, "static unsigned long long frodo_prof_ns[{cap}];");
        let _ = writeln!(out, "static unsigned long long frodo_prof_ns_min[{cap}];");
        let _ = writeln!(out, "static unsigned long long frodo_prof_ns_max[{cap}];");
        let _ = writeln!(
            out,
            "static unsigned long long frodo_prof_hist[{cap}][FRODO_PROF_BUCKETS];"
        );
        let _ = writeln!(
            out,
            "static const unsigned long long frodo_prof_flops[{cap}] = {{{}}};",
            flops.join(", ")
        );
        let _ = writeln!(
            out,
            "static const char *const frodo_prof_kind[{cap}] = {{{}}};",
            kinds.join(", ")
        );
        out.push_str(
            "\nstatic unsigned long long frodo_prof_now(void) {\n\
             \x20   struct timespec ts;\n\
             \x20   clock_gettime(CLOCK_MONOTONIC, &ts);\n\
             \x20   return (unsigned long long)ts.tv_sec * 1000000000ULL\n\
             \x20       + (unsigned long long)ts.tv_nsec;\n\
             }\n\
             \n\
             static void frodo_prof_record(int idx, unsigned long long t0) {\n\
             \x20   unsigned long long ns = frodo_prof_now() - t0;\n\
             \x20   unsigned long long v = ns;\n\
             \x20   int bits = 0;\n\
             \x20   if (frodo_prof_calls[idx] == 0 || ns < frodo_prof_ns_min[idx]) {\n\
             \x20       frodo_prof_ns_min[idx] = ns;\n\
             \x20   }\n\
             \x20   if (frodo_prof_calls[idx] == 0 || ns > frodo_prof_ns_max[idx]) {\n\
             \x20       frodo_prof_ns_max[idx] = ns;\n\
             \x20   }\n\
             \x20   frodo_prof_calls[idx] += 1;\n\
             \x20   frodo_prof_ns[idx] += ns;\n\
             \x20   while (v) { v >>= 1; ++bits; }\n\
             \x20   if (bits > FRODO_PROF_BUCKETS - 1) bits = FRODO_PROF_BUCKETS - 1;\n\
             \x20   frodo_prof_hist[idx][bits] += 1;\n\
             }\n\
             \n\
             static void frodo_prof_dump(FILE *out) {\n\
             \x20   unsigned long long total = 0;\n\
             \x20   int i, b, first;\n\
             \x20   for (i = 0; i < FRODO_PROF_N; ++i) total += frodo_prof_ns[i];\n",
        );
        let _ = writeln!(
            out,
            "    fprintf(out, \"{{\\\"type\\\":\\\"span\\\",\\\"id\\\":1,\\\"parent\\\":0,\
             \\\"name\\\":\\\"prof:{}\\\",\\\"start_ns\\\":0,\\\"dur_ns\\\":%llu}}\\n\", total);",
            p.name
        );
        out.push_str(
            "    for (i = 0; i < FRODO_PROF_N; ++i) {\n\
             \x20       fprintf(out, \"{\\\"type\\\":\\\"span\\\",\\\"id\\\":%d,\\\"parent\\\":1,\
             \\\"name\\\":\\\"stmt_%d_%s\\\",\\\"start_ns\\\":0,\\\"dur_ns\\\":%llu}\\n\",\n\
             \x20               i + 2, i, frodo_prof_kind[i], frodo_prof_ns[i]);\n\
             \x20   }\n\
             \x20   for (i = 0; i < FRODO_PROF_N; ++i) {\n\
             \x20       fprintf(out, \"{\\\"type\\\":\\\"counter\\\",\\\"span\\\":%d,\
             \\\"name\\\":\\\"stmt_%d_%s_calls\\\",\\\"value\\\":%llu}\\n\",\n\
             \x20               i + 2, i, frodo_prof_kind[i], frodo_prof_calls[i]);\n\
             \x20       fprintf(out, \"{\\\"type\\\":\\\"counter\\\",\\\"span\\\":%d,\
             \\\"name\\\":\\\"stmt_%d_%s_flops\\\",\\\"value\\\":%llu}\\n\",\n\
             \x20               i + 2, i, frodo_prof_kind[i],\n\
             \x20               frodo_prof_flops[i] * frodo_prof_calls[i]);\n\
             \x20   }\n\
             \x20   for (i = 0; i < FRODO_PROF_N; ++i) {\n\
             \x20       if (frodo_prof_calls[i] == 0) continue;\n\
             \x20       fprintf(out, \"{\\\"type\\\":\\\"hist\\\",\\\"name\\\":\\\"stmt_%d_%s_ns\\\",\
             \\\"count\\\":%llu,\\\"sum\\\":%llu,\\\"min\\\":%llu,\\\"max\\\":%llu,\\\"bucket_upper\\\":[\",\n\
             \x20               i, frodo_prof_kind[i], frodo_prof_calls[i], frodo_prof_ns[i],\n\
             \x20               frodo_prof_ns_min[i], frodo_prof_ns_max[i]);\n\
             \x20       first = 1;\n\
             \x20       for (b = 0; b < FRODO_PROF_BUCKETS; ++b) {\n\
             \x20           if (!frodo_prof_hist[i][b]) continue;\n\
             \x20           fprintf(out, first ? \"%llu\" : \",%llu\", 1ULL << b);\n\
             \x20           first = 0;\n\
             \x20       }\n\
             \x20       fprintf(out, \"],\\\"bucket_count\\\":[\");\n\
             \x20       first = 1;\n\
             \x20       for (b = 0; b < FRODO_PROF_BUCKETS; ++b) {\n\
             \x20           if (!frodo_prof_hist[i][b]) continue;\n\
             \x20           fprintf(out, first ? \"%llu\" : \",%llu\", frodo_prof_hist[i][b]);\n\
             \x20           first = 0;\n\
             \x20       }\n\
             \x20       fprintf(out, \"]}\\n\");\n\
             \x20   }\n\
             }\n",
        );
        out
    }

    fn emit_stmt_body(&mut self, idx: usize, s: &Stmt) {
        match s {
            &Stmt::Unary { op, dst, src, len } => {
                self.elementwise(s, len, |e, iv| {
                    format!(
                        "{} = {};",
                        e.dst_expr(dst, iv),
                        unop_expr(op, &e.src_expr(src, iv))
                    )
                });
            }
            Stmt::FusedUnary { ops, dst, src, len } => {
                self.elementwise(s, *len, |e, iv| {
                    let mut expr = e.src_expr(*src, iv);
                    for &op in ops {
                        expr = unop_expr(op, &format!("({expr})"));
                    }
                    format!("{} = {};", e.dst_expr(*dst, iv), expr)
                });
            }
            &Stmt::Binary { op, dst, a, b, len } => {
                self.elementwise(s, len, |e, iv| {
                    format!(
                        "{} = {};",
                        e.dst_expr(dst, iv),
                        binop_expr(op, &e.src_expr(a, iv), &e.src_expr(b, iv))
                    )
                });
            }
            &Stmt::Select {
                dst,
                ctrl,
                threshold,
                a,
                b,
                len,
            } => {
                self.emit_loop(len, |e, iv| {
                    format!(
                        "{} = ({} >= {threshold:?}) ? {} : {};",
                        e.dst_expr(dst, iv),
                        e.src_expr(ctrl, iv),
                        e.src_expr(a, iv),
                        e.src_expr(b, iv)
                    )
                });
            }
            &Stmt::Copy { dst, src, len } => {
                let d = self.buf_expr(dst.buf);
                let sb = self.buf_expr(src.buf);
                self.line(&format!(
                    "memcpy(&{d}[{}], &{sb}[{}], {len} * sizeof(double));",
                    dst.off, src.off
                ));
            }
            &Stmt::Fill { dst, value, len } => {
                self.emit_loop(len, |e, iv| format!("{} = {value:?};", e.dst_expr(dst, iv)));
            }
            Stmt::Gather { dst, src, indices } => {
                let table: Vec<String> = indices.iter().map(|i| i.to_string()).collect();
                self.line(&format!(
                    "static const int idx_{idx}[{}] = {{{}}};",
                    indices.len(),
                    table.join(", ")
                ));
                let sb = self.buf_expr(*src);
                let n = indices.len();
                self.emit_loop(n, |e, iv| {
                    format!("{} = {sb}[idx_{idx}[{iv}]];", e.dst_expr(*dst, iv))
                });
            }
            &Stmt::DynGather {
                dst,
                src,
                src_len,
                idx: ix,
                len,
            } => {
                let sb = self.buf_expr(src);
                let ib = self.buf_expr(ix.buf);
                let off = ix.off;
                self.emit_loop(len, |e, iv| {
                    format!(
                        "{{ int j = (int){ib}[{off} + {iv}]; if (j < 0) j = 0; \
                         if (j >= {src_len}) j = {src_len} - 1; {} = {sb}[j]; }}",
                        e.dst_expr(dst, iv)
                    )
                });
            }
            &Stmt::Reduce { op, dst, src, len } => {
                let d = self.dst_expr(dst, "0").replace(" + 0", ""); // cosmetic
                let sb = self.buf_expr(src.buf);
                let off = src.off;
                let (init, step, fin) = match op {
                    ReduceOp::Sum => (
                        "0.0".into(),
                        format!("acc += {sb}[{off} + i];"),
                        String::new(),
                    ),
                    ReduceOp::Mean => (
                        "0.0".into(),
                        format!("acc += {sb}[{off} + i];"),
                        format!("acc /= (double){len};"),
                    ),
                    ReduceOp::Min => (
                        format!("{sb}[{off}]"),
                        format!("acc = fmin(acc, {sb}[{off} + i]);"),
                        String::new(),
                    ),
                    ReduceOp::Max => (
                        format!("{sb}[{off}]"),
                        format!("acc = fmax(acc, {sb}[{off} + i]);"),
                        String::new(),
                    ),
                };
                self.line("{");
                self.indent += 1;
                self.line(&format!("double acc = {init};"));
                self.line(&format!("for (int i = 0; i < {len}; ++i) {{ {step} }}"));
                if !fin.is_empty() {
                    self.line(&fin);
                }
                self.line(&format!("{d} = acc;"));
                self.indent -= 1;
                self.line("}");
            }
            &Stmt::Dot { dst, a, b, len } => {
                let d = self.dst_expr(dst, "0").replace(" + 0", "");
                let ab = self.buf_expr(a.buf);
                let bb = self.buf_expr(b.buf);
                self.line("{");
                self.indent += 1;
                self.line("double acc = 0.0;");
                self.line(&format!(
                    "for (int i = 0; i < {len}; ++i) {{ acc += {ab}[{} + i] * {bb}[{} + i]; }}",
                    a.off, b.off
                ));
                self.line(&format!("{d} = acc;"));
                self.indent -= 1;
                self.line("}");
            }
            &Stmt::Conv {
                dst,
                u,
                u_len,
                v,
                v_len,
                k0,
                k1,
                style,
            } => {
                if style == ConvStyle::Tight && self.uses_conv_helper() {
                    let call = format!(
                        "frodo_conv_range({}, {u_len}, {}, {v_len}, {}, {k0}, {k1});",
                        self.buf_expr(u),
                        self.buf_expr(v),
                        self.buf_expr(dst)
                    );
                    self.line(&call);
                    return;
                }
                let subs = [
                    ("k0", k0.to_string()),
                    ("k1", k1.to_string()),
                    ("k", k0.to_string()),
                    ("Input1", self.buf_expr(u)),
                    ("Input1_size", u_len.to_string()),
                    ("Input2", self.buf_expr(v)),
                    ("Input2_size", v_len.to_string()),
                    ("Output", self.buf_expr(dst)),
                ];
                let batched = (style == ConvStyle::Tight && k1 - k0 > 1)
                    .then(|| self.conv_batch_width())
                    .flatten();
                let code = match (style, batched) {
                    (ConvStyle::Tight, Some(w)) => library::render_text(
                        &library::conv_batched_template(w, &self.style_tag()),
                        &subs,
                    ),
                    (ConvStyle::Tight, None) if k1 - k0 == 1 => library::CONV_SINGLE.render(&subs),
                    (ConvStyle::Tight, None) => library::CONV_RUN.render(&subs),
                    (ConvStyle::Branchy, _) => library::CONV_BRANCHY.render(&subs),
                }
                .expect("conv template complete");
                self.block_text(&code);
            }
            &Stmt::Fir {
                dst,
                src,
                coeffs,
                taps,
                k0,
                k1,
            } => {
                let code = library::FIR_RUN
                    .render(&[
                        ("k0", k0.to_string()),
                        ("k1", k1.to_string()),
                        ("Taps", taps.to_string()),
                        ("Coeffs", self.buf_expr(coeffs)),
                        ("Input", self.buf_expr(src)),
                        ("Output", self.buf_expr(dst)),
                    ])
                    .expect("fir template complete");
                self.block_text(&code);
            }
            &Stmt::MovingAvg {
                dst,
                src,
                window,
                k0,
                k1,
            } => {
                let code = library::MOVAVG_RUN
                    .render(&[
                        ("k0", k0.to_string()),
                        ("k1", k1.to_string()),
                        ("Window", window.to_string()),
                        ("Input", self.buf_expr(src)),
                        ("Output", self.buf_expr(dst)),
                    ])
                    .expect("movavg template complete");
                self.block_text(&code);
            }
            &Stmt::CumSum { dst, src, k_end } => {
                let code = library::CUMSUM_RUN
                    .render(&[
                        ("k_end", k_end.to_string()),
                        ("Input", self.buf_expr(src)),
                        ("Output", self.buf_expr(dst)),
                    ])
                    .expect("cumsum template complete");
                self.block_text(&code);
            }
            &Stmt::Diff { dst, src, k0, k1 } => {
                let d = self.buf_expr(dst);
                let sb = self.buf_expr(src);
                let mut start = k0;
                if k0 == 0 {
                    self.line(&format!("{d}[0] = {sb}[0];"));
                    start = 1;
                }
                if start < k1 {
                    let code = library::DIFF_RUN
                        .render(&[
                            ("k0", start.to_string()),
                            ("k1", k1.to_string()),
                            ("Input", sb),
                            ("Output", d),
                        ])
                        .expect("diff template complete");
                    self.block_text(&code);
                }
            }
            &Stmt::MatMul {
                dst,
                a,
                b,
                k,
                n,
                r0,
                r1,
                ..
            } => {
                let code = library::MATMUL_RUN
                    .render(&[
                        ("r0", r0.to_string()),
                        ("r1", r1.to_string()),
                        ("N", n.to_string()),
                        ("K", k.to_string()),
                        ("A", self.buf_expr(a)),
                        ("B", self.buf_expr(b)),
                        ("Output", self.buf_expr(dst)),
                    ])
                    .expect("matmul template complete");
                self.block_text(&code);
            }
            &Stmt::Transpose {
                dst,
                src,
                rows,
                cols,
            } => {
                let d = self.buf_expr(dst);
                let sb = self.buf_expr(src);
                self.line(&format!("for (int r = 0; r < {rows}; ++r) {{"));
                self.indent += 1;
                self.line(&format!(
                    "for (int c = 0; c < {cols}; ++c) {{ {d}[c * {rows} + r] = {sb}[r * {cols} + c]; }}"
                ));
                self.indent -= 1;
                self.line("}");
            }
            &Stmt::StateLoad { dst, state, len } => {
                let d = self.buf_expr(dst);
                let sb = self.buf_expr(state);
                self.line(&format!("memcpy({d}, {sb}, {len} * sizeof(double));"));
            }
            &Stmt::StateStore { state, src, len } => {
                let d = self.buf_expr(state);
                let sb = self.buf_expr(src);
                self.line(&format!("memcpy({d}, {sb}, {len} * sizeof(double));"));
            }
            &Stmt::WindowedReuse {
                dst,
                src,
                src_len,
                state,
                window,
                scale,
                k0,
                k1,
            } => {
                let acc_out = match scale {
                    crate::lir::WindowScale::Div(d) => format!("acc / {d:?}"),
                    crate::lir::WindowScale::Mul(c) => format!("acc * {c:?}"),
                };
                let code = library::WINDOW_REUSE_RUN
                    .render(&[
                        ("k0", k0.to_string()),
                        ("k1", k1.to_string()),
                        ("Window", window.to_string()),
                        ("SrcLen", src_len.to_string()),
                        ("Input", self.buf_expr(src)),
                        ("Output", self.buf_expr(dst)),
                        ("State", self.buf_expr(state)),
                        ("AccOut", acc_out),
                    ])
                    .expect("window reuse template complete");
                self.block_text(&code);
            }
        }
    }
}

fn unop_expr(op: UnOp, x: &str) -> String {
    match op {
        UnOp::Gain(g) => format!("{x} * {g:?}"),
        UnOp::Bias(b) => format!("{x} + {b:?}"),
        UnOp::Abs => format!("fabs({x})"),
        UnOp::Sqrt => format!("sqrt({x})"),
        UnOp::Square => format!("{x} * {x}"),
        UnOp::Exp => format!("exp({x})"),
        UnOp::Log => format!("log({x})"),
        UnOp::Sin => format!("sin({x})"),
        UnOp::Cos => format!("cos({x})"),
        UnOp::Tanh => format!("tanh({x})"),
        UnOp::Neg => format!("-({x})"),
        UnOp::Recip => format!("1.0 / ({x})"),
        UnOp::Sat(lo, hi) => format!("fmin(fmax({x}, {lo:?}), {hi:?})"),
        UnOp::Floor => format!("floor({x})"),
        UnOp::Ceil => format!("ceil({x})"),
        UnOp::Round => format!("round({x})"),
        UnOp::Trunc => format!("trunc({x})"),
        UnOp::Not => format!("(({x}) == 0.0) ? 1.0 : 0.0"),
        UnOp::Id => x.to_string(),
    }
}

fn binop_expr(op: BinOp, a: &str, b: &str) -> String {
    match op {
        BinOp::Add => format!("{a} + {b}"),
        BinOp::Sub => format!("{a} - {b}"),
        BinOp::Mul => format!("{a} * {b}"),
        BinOp::Div => format!("{a} / {b}"),
        BinOp::Min => format!("fmin({a}, {b})"),
        BinOp::Max => format!("fmax({a}, {b})"),
        BinOp::Mod => format!("fmod({a}, {b})"),
        BinOp::Lt => format!("({a} < {b}) ? 1.0 : 0.0"),
        BinOp::Le => format!("({a} <= {b}) ? 1.0 : 0.0"),
        BinOp::Gt => format!("({a} > {b}) ? 1.0 : 0.0"),
        BinOp::Ge => format!("({a} >= {b}) ? 1.0 : 0.0"),
        BinOp::EqOp => format!("({a} == {b}) ? 1.0 : 0.0"),
        BinOp::Ne => format!("({a} != {b}) ? 1.0 : 0.0"),
        BinOp::And => format!("(({a}) != 0.0 && ({b}) != 0.0) ? 1.0 : 0.0"),
        BinOp::Or => format!("(({a}) != 0.0 || ({b}) != 0.0) ? 1.0 : 0.0"),
        BinOp::Xor => format!("((({a}) != 0.0) != (({b}) != 0.0)) ? 1.0 : 0.0"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generate;
    use frodo_core::Analysis;
    use frodo_model::{Block, BlockKind, Model, SelectorMode, Tensor};
    use frodo_ranges::Shape;

    fn figure1() -> Analysis {
        let mut m = Model::new("conv");
        let i = m.add(Block::new(
            "in",
            BlockKind::Inport {
                index: 0,
                shape: Shape::Vector(50),
            },
        ));
        let k = m.add(Block::new(
            "k",
            BlockKind::Constant {
                value: Tensor::vector(vec![0.1; 11]),
            },
        ));
        let c = m.add(Block::new("conv", BlockKind::Convolution));
        let s = m.add(Block::new(
            "sel",
            BlockKind::Selector {
                mode: SelectorMode::StartEnd { start: 5, end: 55 },
            },
        ));
        let o = m.add(Block::new("out", BlockKind::Outport { index: 0 }));
        m.connect(i, 0, c, 0).unwrap();
        m.connect(k, 0, c, 1).unwrap();
        m.connect(c, 0, s, 0).unwrap();
        m.connect(s, 0, o, 0).unwrap();
        Analysis::run(m).unwrap()
    }

    #[test]
    fn frodo_c_has_tight_restricted_loop() {
        let p = generate(&figure1(), GeneratorStyle::Frodo, &frodo_obs::Trace::noop());
        let c = emit_c(&p);
        assert!(c.contains("void conv_step(const double *in0, double *out0)"));
        assert!(c.contains("for (int k = 5; k < 55; ++k)"));
        assert!(!c.contains("if (k - j >= 0"));
    }

    #[test]
    fn simulink_c_has_boundary_judgments() {
        let p = generate(
            &figure1(),
            GeneratorStyle::SimulinkCoder,
            &frodo_obs::Trace::noop(),
        );
        let c = emit_c(&p);
        assert!(c.contains("for (int k = 0; k < 60; ++k)"));
        assert!(c.contains("if (k - j >= 0 && k - j < 50)"));
    }

    #[test]
    fn hcg_c_has_simd_batches() {
        let p = generate(&figure1(), GeneratorStyle::Hcg, &frodo_obs::Trace::noop());
        let c = emit_c(&p);
        assert!(c.contains("hcg: explicit simd batch"));
    }

    #[test]
    fn vectorize_off_strips_hcg_batching() {
        let p = generate(&figure1(), GeneratorStyle::Hcg, &frodo_obs::Trace::noop());
        let c = emit_c_with(
            &p,
            CEmitOptions {
                vectorize: VectorMode::Off,
                ..CEmitOptions::default()
            },
        );
        assert!(!c.contains("explicit simd batch"));
        assert!(!c.contains("restrict"));
    }

    #[test]
    fn vectorize_hints_adds_restrict_alignment_and_pragmas() {
        let p = generate(&figure1(), GeneratorStyle::Frodo, &frodo_obs::Trace::noop());
        let c = emit_c_with(
            &p,
            CEmitOptions {
                vectorize: VectorMode::Hints,
                ..CEmitOptions::default()
            },
        );
        assert!(c.contains("const double *restrict in0"));
        assert!(c.contains("double *restrict out0"));
        assert!(c.contains("__builtin_assume_aligned(in0, 64)"));
        assert!(c.contains("_Alignas(64) const double g_k[11]"));
        // bodies stay scalar under hints
        assert!(!c.contains("explicit simd batch"));
    }

    #[test]
    fn vectorize_batch_batches_frodo_convolution_at_requested_width() {
        let p = generate(&figure1(), GeneratorStyle::Frodo, &frodo_obs::Trace::noop());
        let c = emit_c_with(
            &p,
            CEmitOptions {
                vectorize: VectorMode::Batch(8),
                ..CEmitOptions::default()
            },
        );
        assert!(c.contains("/* frodo: explicit simd batch (width 8) */"));
        assert!(c.contains("for (; j + 7 <= hi; j += 8)"));
        assert!(c.contains("const double *restrict in0"));
        // deterministic: two renders agree byte-for-byte
        let again = emit_c_with(
            &p,
            CEmitOptions {
                vectorize: VectorMode::Batch(8),
                ..CEmitOptions::default()
            },
        );
        assert_eq!(c, again);
    }

    #[test]
    fn auto_mode_is_byte_identical_to_the_pre_vectormode_output() {
        // the Auto default must keep HCG's historical width-4 batching and
        // everyone else scalar — pinned by the exact comment text
        let p = generate(&figure1(), GeneratorStyle::Hcg, &frodo_obs::Trace::noop());
        let c = emit_c(&p);
        assert!(c.contains("/* hcg: explicit simd batch (width 4) */"));
        assert!(!c.contains("restrict"));
        let p = generate(&figure1(), GeneratorStyle::Frodo, &frodo_obs::Trace::noop());
        assert!(!emit_c(&p).contains("explicit simd batch"));
    }

    #[test]
    fn vector_mode_parse_covers_the_cli_grammar() {
        assert_eq!(VectorMode::parse("auto", 8), Ok(VectorMode::Auto));
        assert_eq!(VectorMode::parse("off", 8), Ok(VectorMode::Off));
        assert_eq!(VectorMode::parse("hints", 8), Ok(VectorMode::Hints));
        assert_eq!(VectorMode::parse("batch", 8), Ok(VectorMode::Batch(8)));
        assert_eq!(VectorMode::parse("batch:2", 8), Ok(VectorMode::Batch(2)));
        assert!(VectorMode::parse("batch:1", 8).is_err());
        assert!(VectorMode::parse("batch:99", 8).is_err());
        assert!(VectorMode::parse("wide", 8).is_err());
    }

    #[test]
    fn windowed_reuse_emits_rolling_accumulator_and_state_store() {
        use crate::lir::{Buffer, BufferRole, WindowScale};
        let p = Program {
            name: "wr".into(),
            style: GeneratorStyle::Frodo,
            buffers: vec![
                Buffer {
                    name: "x".into(),
                    len: 50,
                    role: BufferRole::Input(0),
                },
                Buffer {
                    name: "y".into(),
                    len: 60,
                    role: BufferRole::Output(0),
                },
                Buffer {
                    name: "y_win".into(),
                    len: 11,
                    role: BufferRole::State(vec![0.0; 11]),
                },
            ],
            stmts: vec![Stmt::WindowedReuse {
                dst: BufId(1),
                src: BufId(0),
                src_len: 50,
                state: BufId(2),
                window: 11,
                scale: WindowScale::Mul(0.1),
                k0: 5,
                k1: 55,
            }],
        };
        let c = emit_c(&p);
        assert!(c.contains("/* window_reuse: rolling window sum (window 11) */"));
        assert!(c.contains("out0[5] = acc * 0.1;"));
        assert!(c.contains("acc -= in0[k - 11];"));
        assert!(c.contains("g_y_win[t] = (j >= 0 && j < 50) ? in0[j] : 0.0;"));
        let open = c.matches('{').count();
        assert_eq!(open, c.matches('}').count());
    }

    #[test]
    fn const_kernel_is_embedded() {
        let p = generate(&figure1(), GeneratorStyle::Frodo, &frodo_obs::Trace::noop());
        let c = emit_c(&p);
        assert!(c.contains("static const double g_k[11]"));
    }

    #[test]
    fn harness_contains_timing_main() {
        let p = generate(&figure1(), GeneratorStyle::Frodo, &frodo_obs::Trace::noop());
        let c = emit_c_harness(&p, 10_000);
        assert!(c.contains("int main(void)"));
        assert!(c.contains("clock_gettime"));
        assert!(c.contains("for (int rep = 0; rep < 10000; ++rep)"));
        assert!(c.contains("conv_step(in0, out0);"));
    }

    #[test]
    fn shared_conv_helper_replaces_inline_loops() {
        let p = generate(&figure1(), GeneratorStyle::Frodo, &frodo_obs::Trace::noop());
        let c = emit_c_with(
            &p,
            CEmitOptions {
                shared_conv_helper: true,
                ..Default::default()
            },
        );
        assert!(c.contains("static void frodo_conv_range"));
        assert!(c.contains("frodo_conv_range(in0, 50, g_k, 11, g_conv, 5, 55);"));
        // the inline loop nest is gone
        assert!(!c.contains("for (int k = 5; k < 55; ++k)"));
        // helper appears exactly once
        assert_eq!(c.matches("static void frodo_conv_range").count(), 1);
    }

    #[test]
    fn shared_conv_helper_is_skipped_without_tight_convs() {
        let p = generate(
            &figure1(),
            GeneratorStyle::SimulinkCoder,
            &frodo_obs::Trace::noop(),
        );
        let c = emit_c_with(
            &p,
            CEmitOptions {
                shared_conv_helper: true,
                ..Default::default()
            },
        );
        // Simulink style is branchy, so the helper is unnecessary
        assert!(!c.contains("frodo_conv_range"));
    }

    #[test]
    fn threaded_emit_is_byte_identical_for_any_thread_count() {
        use crate::lir::{Buffer, BufferRole};
        // Large enough to clear MIN_STMTS_PER_WORKER for several workers, and
        // heavy on Gather so the `idx_<global index>` tables would expose any
        // per-chunk index reset.
        let mut stmts = Vec::new();
        for i in 0..300 {
            if i % 3 == 0 {
                stmts.push(Stmt::Gather {
                    dst: Slice::new(BufId(2), 0),
                    src: BufId(0),
                    indices: vec![i % 8, (i + 1) % 8],
                });
            } else {
                stmts.push(Stmt::Unary {
                    op: UnOp::Gain(1.5),
                    dst: Slice::new(BufId(1), 0),
                    src: Src::Run(Slice::new(BufId(2), 0)),
                    len: 8,
                });
            }
        }
        let p = Program {
            name: "wide".into(),
            style: GeneratorStyle::Frodo,
            buffers: vec![
                Buffer {
                    name: "a".into(),
                    len: 8,
                    role: BufferRole::Input(0),
                },
                Buffer {
                    name: "b".into(),
                    len: 8,
                    role: BufferRole::Output(0),
                },
                Buffer {
                    name: "t".into(),
                    len: 8,
                    role: BufferRole::Temp,
                },
            ],
            stmts,
        };
        let sequential = emit_c(&p);
        for threads in [1, 2, 4, 7] {
            let threaded = emit_c_threaded(&p, CEmitOptions::default(), threads);
            assert_eq!(threaded, sequential, "threads = {threads}");
        }
        assert!(sequential.contains("idx_297"));
    }

    /// Emits one statement in a minimal two-buffer program.
    fn emit_single(stmt: Stmt) -> String {
        use crate::lir::{Buffer, BufferRole};
        let p = Program {
            name: "single".into(),
            style: GeneratorStyle::DfSynth,
            buffers: vec![
                Buffer {
                    name: "a".into(),
                    len: 8,
                    role: BufferRole::Input(0),
                },
                Buffer {
                    name: "b".into(),
                    len: 8,
                    role: BufferRole::Output(0),
                },
                Buffer {
                    name: "t".into(),
                    len: 8,
                    role: BufferRole::Temp,
                },
            ],
            stmts: vec![stmt],
        };
        emit_c(&p)
    }

    #[test]
    fn reduce_emits_accumulator_loop() {
        use crate::lir::{BufId, Slice};
        let c = emit_single(Stmt::Reduce {
            op: ReduceOp::Mean,
            dst: Slice::new(BufId(1), 0),
            src: Slice::new(BufId(0), 0),
            len: 8,
        });
        assert!(c.contains("double acc = 0.0;"));
        assert!(c.contains("acc /= (double)8;"));
        assert!(c.contains("out0[0] = acc;"));
    }

    #[test]
    fn dot_emits_fma_loop() {
        use crate::lir::{BufId, Slice};
        let c = emit_single(Stmt::Dot {
            dst: Slice::new(BufId(1), 0),
            a: Slice::new(BufId(0), 0),
            b: Slice::new(BufId(2), 0),
            len: 8,
        });
        assert!(c.contains("acc += in0[0 + i] * g_t[0 + i];"));
    }

    #[test]
    fn select_emits_ternary() {
        use crate::lir::{BufId, Slice, Src};
        let c = emit_single(Stmt::Select {
            dst: Slice::new(BufId(1), 0),
            ctrl: Src::Run(Slice::new(BufId(0), 0)),
            threshold: 0.5,
            a: Src::Run(Slice::new(BufId(2), 0)),
            b: Src::Const(0.0),
            len: 8,
        });
        assert!(c.contains(">= 0.5) ?"));
    }

    #[test]
    fn dyn_gather_emits_clamped_index() {
        use crate::lir::{BufId, Slice};
        let c = emit_single(Stmt::DynGather {
            dst: Slice::new(BufId(1), 0),
            src: BufId(2),
            src_len: 8,
            idx: Slice::new(BufId(0), 0),
            len: 4,
        });
        assert!(c.contains("int j = (int)in0[0 + i];"));
        assert!(c.contains("if (j < 0) j = 0;"));
        assert!(c.contains("if (j >= 8) j = 8 - 1;"));
    }

    #[test]
    fn transpose_emits_double_loop() {
        use crate::lir::BufId;
        let c = emit_single(Stmt::Transpose {
            dst: BufId(1),
            src: BufId(0),
            rows: 2,
            cols: 4,
        });
        assert!(c.contains("out0[c * 2 + r] = in0[r * 4 + c];"));
    }

    #[test]
    fn fused_unary_nests_expressions() {
        use crate::lir::{BufId, Slice, Src, UnOp};
        let c = emit_single(Stmt::FusedUnary {
            ops: vec![UnOp::Gain(2.0), UnOp::Abs, UnOp::Bias(1.0)],
            dst: Slice::new(BufId(1), 0),
            src: Src::Run(Slice::new(BufId(0), 0)),
            len: 8,
        });
        assert!(c.contains("(fabs(((in0[0 + i]) * 2.0))) + 1.0"), "{c}");
    }

    #[test]
    fn state_buffers_carry_initializers() {
        use crate::lir::{BufId, Buffer, BufferRole};
        let p = Program {
            name: "st".into(),
            style: GeneratorStyle::Frodo,
            buffers: vec![
                Buffer {
                    name: "s".into(),
                    len: 2,
                    role: BufferRole::State(vec![1.5, -2.0]),
                },
                Buffer {
                    name: "w".into(),
                    len: 2,
                    role: BufferRole::Temp,
                },
            ],
            stmts: vec![Stmt::StateLoad {
                dst: BufId(1),
                state: BufId(0),
                len: 2,
            }],
        };
        let c = emit_c(&p);
        assert!(c.contains("static double g_s[2] = {1.5, -2.0};"));
        assert!(c.contains("memcpy(g_w, g_s, 2 * sizeof(double));"));
    }

    #[test]
    fn generated_c_is_brace_balanced() {
        for style in GeneratorStyle::ALL {
            let p = generate(&figure1(), style, &frodo_obs::Trace::noop());
            let c = emit_c_harness(&p, 10);
            let open = c.matches('{').count();
            let close = c.matches('}').count();
            assert_eq!(open, close, "style {style}");
        }
    }

    #[test]
    fn profiled_emission_carries_hooks_tables_and_dump() {
        let p = generate(&figure1(), GeneratorStyle::Frodo, &frodo_obs::Trace::noop());
        let c = emit_c_with(
            &p,
            CEmitOptions {
                profile: true,
                ..CEmitOptions::default()
            },
        );
        assert!(c.contains(&format!("#define FRODO_PROF_N {}", p.stmts.len())));
        assert!(c.contains("static unsigned long long frodo_prof_now(void)"));
        assert!(c.contains("static void frodo_prof_dump(FILE *out)"));
        assert!(c.contains("\"name\\\":\\\"prof:conv\\\""));
        // every statement is bracketed by exactly one timing hook pair
        assert_eq!(
            c.matches("unsigned long long frodo_prof_t0 = frodo_prof_now();")
                .count(),
            p.stmts.len()
        );
        for i in 0..p.stmts.len() {
            assert!(c.contains(&format!("frodo_prof_record({i}, frodo_prof_t0);")));
        }
        assert_eq!(c.matches('{').count(), c.matches('}').count());
        // deterministic
        let again = emit_c_with(
            &p,
            CEmitOptions {
                profile: true,
                ..CEmitOptions::default()
            },
        );
        assert_eq!(c, again);
    }

    #[test]
    fn profiled_emission_is_off_by_default_and_byte_invisible_when_off() {
        let p = generate(&figure1(), GeneratorStyle::Frodo, &frodo_obs::Trace::noop());
        let plain = emit_c(&p);
        assert!(!plain.contains("frodo_prof"));
        let explicit_off = emit_c_with(
            &p,
            CEmitOptions {
                profile: false,
                ..CEmitOptions::default()
            },
        );
        assert_eq!(plain, explicit_off);
    }

    #[test]
    fn profiled_threaded_emit_matches_sequential() {
        use crate::lir::{Buffer, BufferRole};
        let stmts: Vec<Stmt> = (0..200)
            .map(|_| Stmt::Unary {
                op: UnOp::Gain(1.5),
                dst: Slice::new(BufId(1), 0),
                src: Src::Run(Slice::new(BufId(0), 0)),
                len: 8,
            })
            .collect();
        let p = Program {
            name: "wide".into(),
            style: GeneratorStyle::Frodo,
            buffers: vec![
                Buffer {
                    name: "a".into(),
                    len: 8,
                    role: BufferRole::Input(0),
                },
                Buffer {
                    name: "b".into(),
                    len: 8,
                    role: BufferRole::Output(0),
                },
            ],
            stmts,
        };
        let opts = CEmitOptions {
            profile: true,
            ..CEmitOptions::default()
        };
        let sequential = emit_c_with(&p, opts);
        for threads in [2, 3] {
            assert_eq!(emit_c_threaded(&p, opts, threads), sequential);
        }
        assert!(sequential.contains("frodo_prof_record(199, frodo_prof_t0);"));
    }

    #[test]
    fn profiled_harness_dumps_to_stderr() {
        let p = generate(&figure1(), GeneratorStyle::Frodo, &frodo_obs::Trace::noop());
        let opts = CEmitOptions {
            profile: true,
            ..CEmitOptions::default()
        };
        let c = emit_c_harness_with(&p, 100, opts);
        assert!(c.contains("frodo_prof_dump(stderr);"));
        assert_eq!(c.matches('{').count(), c.matches('}').count());
        // the profiled conv helper path keeps the record hook after the
        // early-returning helper call
        let shared = emit_c_with(
            &p,
            CEmitOptions {
                shared_conv_helper: true,
                profile: true,
                ..CEmitOptions::default()
            },
        );
        assert!(shared.contains("frodo_conv_range("));
        assert!(shared.contains("frodo_prof_record("));
        assert_eq!(shared.matches('{').count(), shared.matches('}').count());
    }
}
