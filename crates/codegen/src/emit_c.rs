//! C code emission (the paper's *code synthesis* step).
//!
//! [`emit_c`] renders a [`Program`] as a self-contained C translation unit
//! with a `void <model>_step(const double *in0, …, double *out0, …)` entry
//! point; [`emit_c_harness`] additionally appends a timing `main` that
//! matches the paper's measurement protocol (repeat the step function and
//! average).

use crate::library;
use crate::lir::{BinOp, BufId, BufferRole, ConvStyle, Program, ReduceOp, Slice, Src, Stmt, UnOp};
use crate::GeneratorStyle;
use std::fmt::Write;

/// Options for C emission.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CEmitOptions {
    /// Emit a single generic `frodo_conv_range` helper and call it with the
    /// derived calculation range as parameters, instead of instantiating a
    /// loop nest per convolution statement — the code-size remedy the
    /// paper's §5 proposes for duplicated complex-block code.
    pub shared_conv_helper: bool,
}

/// Emits a complete C translation unit for the program.
pub fn emit_c(program: &Program) -> String {
    emit_c_with(program, CEmitOptions::default())
}

/// [`emit_c`] with explicit [`CEmitOptions`].
pub fn emit_c_with(program: &Program, opts: CEmitOptions) -> String {
    Emitter::new_with(program, opts).emit()
}

/// [`emit_c_with`] with the statement bodies rendered by `threads` worker
/// threads into private string buffers that are rejoined in statement order.
///
/// Each statement renders from a fresh indent-1 emitter and is addressed by
/// its *global* index (local tables like `idx_<n>` embed that index), so the
/// output is byte-identical to [`emit_c_with`] for every thread count. Small
/// programs fall back to the sequential path: parallel rendering only pays
/// off when each worker has a meaningful amount of text to produce.
pub fn emit_c_threaded(program: &Program, opts: CEmitOptions, threads: usize) -> String {
    /// Below this many statements per worker, thread spawn overhead exceeds
    /// the rendering cost.
    const MIN_STMTS_PER_WORKER: usize = 64;
    let n = program.stmts.len();
    let threads = threads.min(n / MIN_STMTS_PER_WORKER).max(1);
    if threads <= 1 {
        return emit_c_with(program, opts);
    }
    let chunk = n.div_ceil(threads);
    let mut out = Emitter::new_with(program, opts).header();
    let parts: Vec<String> = std::thread::scope(|s| {
        let handles: Vec<_> = program
            .stmts
            .chunks(chunk)
            .enumerate()
            .map(|(ci, stmts)| {
                s.spawn(move || {
                    let mut e = Emitter::new_with(program, opts);
                    for (j, stmt) in stmts.iter().enumerate() {
                        e.emit_stmt(ci * chunk + j, stmt);
                    }
                    e.out
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("emit worker panicked"))
            .collect()
    });
    for part in &parts {
        out.push_str(part);
    }
    out.push_str("}\n");
    out
}

/// [`emit_c_threaded`], recorded as an `emit` span (with `bytes_emitted` and
/// `emit_threads` counters) on the given trace.
pub fn emit_c_traced(
    program: &Program,
    opts: CEmitOptions,
    threads: usize,
    trace: &frodo_obs::Trace,
) -> String {
    let span = trace.span("emit");
    span.count("emit_threads", threads as u64);
    let code = emit_c_threaded(program, opts, threads);
    span.count("bytes_emitted", code.len() as u64);
    code
}

/// Emits the translation unit plus a timing `main` that fills the inputs
/// with a deterministic LCG, calls the step function `iters` times, and
/// prints `<checksum> <nanoseconds-per-iteration>`.
pub fn emit_c_harness(program: &Program, iters: usize) -> String {
    emit_c_harness_with(program, iters, CEmitOptions::default())
}

/// [`emit_c_harness`] with explicit [`CEmitOptions`].
pub fn emit_c_harness_with(program: &Program, iters: usize, opts: CEmitOptions) -> String {
    let mut out = Emitter::new_with(program, opts).emit();
    let name = &program.name;
    let mut main = String::new();
    let _ = writeln!(main, "\n#include <stdio.h>\n#include <time.h>\n");
    let _ = writeln!(main, "int main(void) {{");
    for (idx, id) in program.inputs() {
        let len = program.buffer(id).len;
        let _ = writeln!(main, "    static double in{idx}[{len}];");
    }
    for (idx, id) in program.outputs() {
        let len = program.buffer(id).len;
        let _ = writeln!(main, "    static double out{idx}[{len}];");
    }
    let _ = writeln!(main, "    unsigned long long lcg = 0x243F6A8885A308D3ULL;");
    for (idx, id) in program.inputs() {
        let len = program.buffer(id).len;
        let _ = writeln!(
            main,
            "    for (int i = 0; i < {len}; ++i) {{\n        \
             lcg = lcg * 6364136223846793005ULL + 1442695040888963407ULL;\n        \
             in{idx}[i] = (double)(lcg >> 40) / 16777216.0 - 0.5;\n    }}"
        );
    }
    let args = call_args(program);
    let _ = writeln!(main, "    struct timespec t0, t1;");
    let _ = writeln!(main, "    clock_gettime(CLOCK_MONOTONIC, &t0);");
    let _ = writeln!(main, "    for (int rep = 0; rep < {iters}; ++rep) {{");
    let _ = writeln!(main, "        {name}_step({args});");
    let _ = writeln!(main, "    }}");
    let _ = writeln!(main, "    clock_gettime(CLOCK_MONOTONIC, &t1);");
    let _ = writeln!(main, "    double checksum = 0.0;");
    for (idx, id) in program.outputs() {
        let len = program.buffer(id).len;
        let _ = writeln!(
            main,
            "    for (int i = 0; i < {len}; ++i) checksum += out{idx}[i];"
        );
    }
    let _ = writeln!(
        main,
        "    double ns = ((t1.tv_sec - t0.tv_sec) * 1e9 + (t1.tv_nsec - t0.tv_nsec)) / {iters}.0;"
    );
    let _ = writeln!(main, "    printf(\"%.17g %.3f\\n\", checksum, ns);");
    let _ = writeln!(main, "    return 0;");
    let _ = writeln!(main, "}}");
    out.push_str(&main);
    out
}

fn call_args(program: &Program) -> String {
    let mut parts: Vec<String> = Vec::new();
    for (idx, _) in program.inputs() {
        parts.push(format!("in{idx}"));
    }
    for (idx, _) in program.outputs() {
        parts.push(format!("out{idx}"));
    }
    parts.join(", ")
}

struct Emitter<'a> {
    p: &'a Program,
    opts: CEmitOptions,
    out: String,
    indent: usize,
}

/// The generic range-parameterized convolution helper (paper §5).
const CONV_HELPER: &str = "\
static void frodo_conv_range(const double *u, int ulen, const double *v,\n\
                             int vlen, double *dst, int k0, int k1) {\n\
    for (int k = k0; k < k1; ++k) {\n\
        int lo = k >= vlen ? k - (vlen - 1) : 0;\n\
        int hi = k < ulen - 1 ? k : ulen - 1;\n\
        double acc = 0.0;\n\
        for (int j = lo; j <= hi; ++j) {\n\
            acc += u[j] * v[k - j];\n\
        }\n\
        dst[k] = acc;\n\
    }\n\
}\n";

impl<'a> Emitter<'a> {
    fn new_with(p: &'a Program, opts: CEmitOptions) -> Self {
        Emitter {
            p,
            opts,
            out: String::new(),
            indent: 1,
        }
    }

    fn uses_conv_helper(&self) -> bool {
        self.opts.shared_conv_helper
            && self.p.style != GeneratorStyle::Hcg
            && self.p.stmts.iter().any(|s| {
                matches!(
                    s,
                    Stmt::Conv {
                        style: ConvStyle::Tight,
                        ..
                    }
                )
            })
    }

    fn buf_expr(&self, id: BufId) -> String {
        let b = self.p.buffer(id);
        match b.role {
            BufferRole::Input(idx) => format!("in{idx}"),
            BufferRole::Output(idx) => format!("out{idx}"),
            _ => format!("g_{}", b.name),
        }
    }

    fn line(&mut self, s: &str) {
        for _ in 0..self.indent {
            self.out.push_str("    ");
        }
        self.out.push_str(s);
        self.out.push('\n');
    }

    fn block_text(&mut self, text: &str) {
        for line in text.lines() {
            self.line(line);
        }
    }

    fn emit(mut self) -> String {
        self.out = self.header();
        for (i, s) in self.p.stmts.iter().enumerate() {
            self.emit_stmt(i, s);
        }
        self.out.push_str("}\n");
        self.out
    }

    /// Everything before the statement bodies: file comment, includes,
    /// buffers, optional conv helper, and the open `_step` signature.
    fn header(&self) -> String {
        let p = self.p;
        let mut head = String::new();
        let _ = writeln!(
            head,
            "/* Generated by frodo-codegen (style: {}) for model '{}'. */",
            p.style.label(),
            p.name
        );
        let _ = writeln!(head, "#include <math.h>");
        let _ = writeln!(head, "#include <string.h>\n");

        // file-scope buffers
        for b in &p.buffers {
            match &b.role {
                BufferRole::Input(_) | BufferRole::Output(_) => {}
                BufferRole::Temp => {
                    let _ = writeln!(head, "static double g_{}[{}];", b.name, b.len);
                }
                BufferRole::Const(data) => {
                    let vals: Vec<String> = data.iter().map(|v| format!("{v:?}")).collect();
                    let _ = writeln!(
                        head,
                        "static const double g_{}[{}] = {{{}}};",
                        b.name,
                        b.len,
                        vals.join(", ")
                    );
                }
                BufferRole::State(init) => {
                    let vals: Vec<String> = init.iter().map(|v| format!("{v:?}")).collect();
                    let _ = writeln!(
                        head,
                        "static double g_{}[{}] = {{{}}};",
                        b.name,
                        b.len,
                        vals.join(", ")
                    );
                }
            }
        }

        if self.uses_conv_helper() {
            let _ = writeln!(head, "\n{CONV_HELPER}");
        }

        // signature
        let mut params: Vec<String> = Vec::new();
        for (idx, _) in p.inputs() {
            params.push(format!("const double *in{idx}"));
        }
        for (idx, _) in p.outputs() {
            params.push(format!("double *out{idx}"));
        }
        if params.is_empty() {
            params.push("void".to_string());
        }
        let _ = writeln!(head, "\nvoid {}_step({}) {{", p.name, params.join(", "));
        head
    }

    fn src_expr(&self, src: Src, iv: &str) -> String {
        match src {
            Src::Run(s) => format!("{}[{} + {iv}]", self.buf_expr(s.buf), s.off),
            Src::Broadcast(s) => format!("{}[{}]", self.buf_expr(s.buf), s.off),
            Src::Const(c) => format!("{c:?}"),
        }
    }

    fn dst_expr(&self, dst: Slice, iv: &str) -> String {
        format!("{}[{} + {iv}]", self.buf_expr(dst.buf), dst.off)
    }

    fn emit_loop<F: Fn(&Self, &str) -> String>(&mut self, len: usize, body: F) {
        // HCG batches vectorizable loops explicitly (4-wide), which is what
        // its SIMD instruction synthesis amounts to structurally.
        let text = body(self, "i");
        self.line(&format!("for (int i = 0; i < {len}; ++i) {{"));
        self.indent += 1;
        self.line(&text);
        self.indent -= 1;
        self.line("}");
    }

    fn emit_batched_loop<F: Fn(&Self, &str) -> String>(&mut self, len: usize, body: F) {
        let width = 4;
        let main = (len / width) * width;
        self.line("/* hcg: explicit simd batch (width 4) */");
        self.line(&format!("for (int i = 0; i < {main}; i += {width}) {{"));
        self.indent += 1;
        for lane in 0..width {
            let txt = body(self, &format!("(i + {lane})"));
            self.line(&txt);
        }
        self.indent -= 1;
        self.line("}");
        if main < len {
            self.line(&format!("for (int i = {main}; i < {len}; ++i) {{"));
            self.indent += 1;
            let txt = body(self, "i");
            self.line(&txt);
            self.indent -= 1;
            self.line("}");
        }
    }

    fn elementwise<F: Fn(&Self, &str) -> String + Copy>(&mut self, s: &Stmt, len: usize, body: F) {
        if self.p.style == GeneratorStyle::Hcg && s.is_vectorizable() && len >= 8 {
            self.emit_batched_loop(len, body);
        } else {
            self.emit_loop(len, body);
        }
    }

    fn emit_stmt(&mut self, idx: usize, s: &Stmt) {
        match s {
            &Stmt::Unary { op, dst, src, len } => {
                self.elementwise(s, len, |e, iv| {
                    format!(
                        "{} = {};",
                        e.dst_expr(dst, iv),
                        unop_expr(op, &e.src_expr(src, iv))
                    )
                });
            }
            Stmt::FusedUnary { ops, dst, src, len } => {
                self.elementwise(s, *len, |e, iv| {
                    let mut expr = e.src_expr(*src, iv);
                    for &op in ops {
                        expr = unop_expr(op, &format!("({expr})"));
                    }
                    format!("{} = {};", e.dst_expr(*dst, iv), expr)
                });
            }
            &Stmt::Binary { op, dst, a, b, len } => {
                self.elementwise(s, len, |e, iv| {
                    format!(
                        "{} = {};",
                        e.dst_expr(dst, iv),
                        binop_expr(op, &e.src_expr(a, iv), &e.src_expr(b, iv))
                    )
                });
            }
            &Stmt::Select {
                dst,
                ctrl,
                threshold,
                a,
                b,
                len,
            } => {
                self.emit_loop(len, |e, iv| {
                    format!(
                        "{} = ({} >= {threshold:?}) ? {} : {};",
                        e.dst_expr(dst, iv),
                        e.src_expr(ctrl, iv),
                        e.src_expr(a, iv),
                        e.src_expr(b, iv)
                    )
                });
            }
            &Stmt::Copy { dst, src, len } => {
                let d = self.buf_expr(dst.buf);
                let sb = self.buf_expr(src.buf);
                self.line(&format!(
                    "memcpy(&{d}[{}], &{sb}[{}], {len} * sizeof(double));",
                    dst.off, src.off
                ));
            }
            &Stmt::Fill { dst, value, len } => {
                self.emit_loop(len, |e, iv| format!("{} = {value:?};", e.dst_expr(dst, iv)));
            }
            Stmt::Gather { dst, src, indices } => {
                let table: Vec<String> = indices.iter().map(|i| i.to_string()).collect();
                self.line(&format!(
                    "static const int idx_{idx}[{}] = {{{}}};",
                    indices.len(),
                    table.join(", ")
                ));
                let sb = self.buf_expr(*src);
                let n = indices.len();
                self.emit_loop(n, |e, iv| {
                    format!("{} = {sb}[idx_{idx}[{iv}]];", e.dst_expr(*dst, iv))
                });
            }
            &Stmt::DynGather {
                dst,
                src,
                src_len,
                idx: ix,
                len,
            } => {
                let sb = self.buf_expr(src);
                let ib = self.buf_expr(ix.buf);
                let off = ix.off;
                self.emit_loop(len, |e, iv| {
                    format!(
                        "{{ int j = (int){ib}[{off} + {iv}]; if (j < 0) j = 0; \
                         if (j >= {src_len}) j = {src_len} - 1; {} = {sb}[j]; }}",
                        e.dst_expr(dst, iv)
                    )
                });
            }
            &Stmt::Reduce { op, dst, src, len } => {
                let d = self.dst_expr(dst, "0").replace(" + 0", ""); // cosmetic
                let sb = self.buf_expr(src.buf);
                let off = src.off;
                let (init, step, fin) = match op {
                    ReduceOp::Sum => (
                        "0.0".into(),
                        format!("acc += {sb}[{off} + i];"),
                        String::new(),
                    ),
                    ReduceOp::Mean => (
                        "0.0".into(),
                        format!("acc += {sb}[{off} + i];"),
                        format!("acc /= (double){len};"),
                    ),
                    ReduceOp::Min => (
                        format!("{sb}[{off}]"),
                        format!("acc = fmin(acc, {sb}[{off} + i]);"),
                        String::new(),
                    ),
                    ReduceOp::Max => (
                        format!("{sb}[{off}]"),
                        format!("acc = fmax(acc, {sb}[{off} + i]);"),
                        String::new(),
                    ),
                };
                self.line("{");
                self.indent += 1;
                self.line(&format!("double acc = {init};"));
                self.line(&format!("for (int i = 0; i < {len}; ++i) {{ {step} }}"));
                if !fin.is_empty() {
                    self.line(&fin);
                }
                self.line(&format!("{d} = acc;"));
                self.indent -= 1;
                self.line("}");
            }
            &Stmt::Dot { dst, a, b, len } => {
                let d = self.dst_expr(dst, "0").replace(" + 0", "");
                let ab = self.buf_expr(a.buf);
                let bb = self.buf_expr(b.buf);
                self.line("{");
                self.indent += 1;
                self.line("double acc = 0.0;");
                self.line(&format!(
                    "for (int i = 0; i < {len}; ++i) {{ acc += {ab}[{} + i] * {bb}[{} + i]; }}",
                    a.off, b.off
                ));
                self.line(&format!("{d} = acc;"));
                self.indent -= 1;
                self.line("}");
            }
            &Stmt::Conv {
                dst,
                u,
                u_len,
                v,
                v_len,
                k0,
                k1,
                style,
            } => {
                if style == ConvStyle::Tight && self.uses_conv_helper() {
                    let call = format!(
                        "frodo_conv_range({}, {u_len}, {}, {v_len}, {}, {k0}, {k1});",
                        self.buf_expr(u),
                        self.buf_expr(v),
                        self.buf_expr(dst)
                    );
                    self.line(&call);
                    return;
                }
                let template = match style {
                    ConvStyle::Tight if self.p.style == GeneratorStyle::Hcg && k1 - k0 > 1 => {
                        library::CONV_RUN_HCG
                    }
                    ConvStyle::Tight => {
                        if k1 - k0 == 1 {
                            library::CONV_SINGLE
                        } else {
                            library::CONV_RUN
                        }
                    }
                    ConvStyle::Branchy => library::CONV_BRANCHY,
                };
                let subs = [
                    ("k0", k0.to_string()),
                    ("k1", k1.to_string()),
                    ("k", k0.to_string()),
                    ("Input1", self.buf_expr(u)),
                    ("Input1_size", u_len.to_string()),
                    ("Input2", self.buf_expr(v)),
                    ("Input2_size", v_len.to_string()),
                    ("Output", self.buf_expr(dst)),
                ];
                let code = template.render(&subs).expect("conv template complete");
                self.block_text(&code);
            }
            &Stmt::Fir {
                dst,
                src,
                coeffs,
                taps,
                k0,
                k1,
            } => {
                let code = library::FIR_RUN
                    .render(&[
                        ("k0", k0.to_string()),
                        ("k1", k1.to_string()),
                        ("Taps", taps.to_string()),
                        ("Coeffs", self.buf_expr(coeffs)),
                        ("Input", self.buf_expr(src)),
                        ("Output", self.buf_expr(dst)),
                    ])
                    .expect("fir template complete");
                self.block_text(&code);
            }
            &Stmt::MovingAvg {
                dst,
                src,
                window,
                k0,
                k1,
            } => {
                let code = library::MOVAVG_RUN
                    .render(&[
                        ("k0", k0.to_string()),
                        ("k1", k1.to_string()),
                        ("Window", window.to_string()),
                        ("Input", self.buf_expr(src)),
                        ("Output", self.buf_expr(dst)),
                    ])
                    .expect("movavg template complete");
                self.block_text(&code);
            }
            &Stmt::CumSum { dst, src, k_end } => {
                let code = library::CUMSUM_RUN
                    .render(&[
                        ("k_end", k_end.to_string()),
                        ("Input", self.buf_expr(src)),
                        ("Output", self.buf_expr(dst)),
                    ])
                    .expect("cumsum template complete");
                self.block_text(&code);
            }
            &Stmt::Diff { dst, src, k0, k1 } => {
                let d = self.buf_expr(dst);
                let sb = self.buf_expr(src);
                let mut start = k0;
                if k0 == 0 {
                    self.line(&format!("{d}[0] = {sb}[0];"));
                    start = 1;
                }
                if start < k1 {
                    let code = library::DIFF_RUN
                        .render(&[
                            ("k0", start.to_string()),
                            ("k1", k1.to_string()),
                            ("Input", sb),
                            ("Output", d),
                        ])
                        .expect("diff template complete");
                    self.block_text(&code);
                }
            }
            &Stmt::MatMul {
                dst,
                a,
                b,
                k,
                n,
                r0,
                r1,
                ..
            } => {
                let code = library::MATMUL_RUN
                    .render(&[
                        ("r0", r0.to_string()),
                        ("r1", r1.to_string()),
                        ("N", n.to_string()),
                        ("K", k.to_string()),
                        ("A", self.buf_expr(a)),
                        ("B", self.buf_expr(b)),
                        ("Output", self.buf_expr(dst)),
                    ])
                    .expect("matmul template complete");
                self.block_text(&code);
            }
            &Stmt::Transpose {
                dst,
                src,
                rows,
                cols,
            } => {
                let d = self.buf_expr(dst);
                let sb = self.buf_expr(src);
                self.line(&format!("for (int r = 0; r < {rows}; ++r) {{"));
                self.indent += 1;
                self.line(&format!(
                    "for (int c = 0; c < {cols}; ++c) {{ {d}[c * {rows} + r] = {sb}[r * {cols} + c]; }}"
                ));
                self.indent -= 1;
                self.line("}");
            }
            &Stmt::StateLoad { dst, state, len } => {
                let d = self.buf_expr(dst);
                let sb = self.buf_expr(state);
                self.line(&format!("memcpy({d}, {sb}, {len} * sizeof(double));"));
            }
            &Stmt::StateStore { state, src, len } => {
                let d = self.buf_expr(state);
                let sb = self.buf_expr(src);
                self.line(&format!("memcpy({d}, {sb}, {len} * sizeof(double));"));
            }
        }
    }
}

fn unop_expr(op: UnOp, x: &str) -> String {
    match op {
        UnOp::Gain(g) => format!("{x} * {g:?}"),
        UnOp::Bias(b) => format!("{x} + {b:?}"),
        UnOp::Abs => format!("fabs({x})"),
        UnOp::Sqrt => format!("sqrt({x})"),
        UnOp::Square => format!("{x} * {x}"),
        UnOp::Exp => format!("exp({x})"),
        UnOp::Log => format!("log({x})"),
        UnOp::Sin => format!("sin({x})"),
        UnOp::Cos => format!("cos({x})"),
        UnOp::Tanh => format!("tanh({x})"),
        UnOp::Neg => format!("-({x})"),
        UnOp::Recip => format!("1.0 / ({x})"),
        UnOp::Sat(lo, hi) => format!("fmin(fmax({x}, {lo:?}), {hi:?})"),
        UnOp::Floor => format!("floor({x})"),
        UnOp::Ceil => format!("ceil({x})"),
        UnOp::Round => format!("round({x})"),
        UnOp::Trunc => format!("trunc({x})"),
        UnOp::Not => format!("(({x}) == 0.0) ? 1.0 : 0.0"),
        UnOp::Id => x.to_string(),
    }
}

fn binop_expr(op: BinOp, a: &str, b: &str) -> String {
    match op {
        BinOp::Add => format!("{a} + {b}"),
        BinOp::Sub => format!("{a} - {b}"),
        BinOp::Mul => format!("{a} * {b}"),
        BinOp::Div => format!("{a} / {b}"),
        BinOp::Min => format!("fmin({a}, {b})"),
        BinOp::Max => format!("fmax({a}, {b})"),
        BinOp::Mod => format!("fmod({a}, {b})"),
        BinOp::Lt => format!("({a} < {b}) ? 1.0 : 0.0"),
        BinOp::Le => format!("({a} <= {b}) ? 1.0 : 0.0"),
        BinOp::Gt => format!("({a} > {b}) ? 1.0 : 0.0"),
        BinOp::Ge => format!("({a} >= {b}) ? 1.0 : 0.0"),
        BinOp::EqOp => format!("({a} == {b}) ? 1.0 : 0.0"),
        BinOp::Ne => format!("({a} != {b}) ? 1.0 : 0.0"),
        BinOp::And => format!("(({a}) != 0.0 && ({b}) != 0.0) ? 1.0 : 0.0"),
        BinOp::Or => format!("(({a}) != 0.0 || ({b}) != 0.0) ? 1.0 : 0.0"),
        BinOp::Xor => format!("((({a}) != 0.0) != (({b}) != 0.0)) ? 1.0 : 0.0"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generate;
    use frodo_core::Analysis;
    use frodo_model::{Block, BlockKind, Model, SelectorMode, Tensor};
    use frodo_ranges::Shape;

    fn figure1() -> Analysis {
        let mut m = Model::new("conv");
        let i = m.add(Block::new(
            "in",
            BlockKind::Inport {
                index: 0,
                shape: Shape::Vector(50),
            },
        ));
        let k = m.add(Block::new(
            "k",
            BlockKind::Constant {
                value: Tensor::vector(vec![0.1; 11]),
            },
        ));
        let c = m.add(Block::new("conv", BlockKind::Convolution));
        let s = m.add(Block::new(
            "sel",
            BlockKind::Selector {
                mode: SelectorMode::StartEnd { start: 5, end: 55 },
            },
        ));
        let o = m.add(Block::new("out", BlockKind::Outport { index: 0 }));
        m.connect(i, 0, c, 0).unwrap();
        m.connect(k, 0, c, 1).unwrap();
        m.connect(c, 0, s, 0).unwrap();
        m.connect(s, 0, o, 0).unwrap();
        Analysis::run(m).unwrap()
    }

    #[test]
    fn frodo_c_has_tight_restricted_loop() {
        let p = generate(&figure1(), GeneratorStyle::Frodo, &frodo_obs::Trace::noop());
        let c = emit_c(&p);
        assert!(c.contains("void conv_step(const double *in0, double *out0)"));
        assert!(c.contains("for (int k = 5; k < 55; ++k)"));
        assert!(!c.contains("if (k - j >= 0"));
    }

    #[test]
    fn simulink_c_has_boundary_judgments() {
        let p = generate(&figure1(), GeneratorStyle::SimulinkCoder, &frodo_obs::Trace::noop());
        let c = emit_c(&p);
        assert!(c.contains("for (int k = 0; k < 60; ++k)"));
        assert!(c.contains("if (k - j >= 0 && k - j < 50)"));
    }

    #[test]
    fn hcg_c_has_simd_batches() {
        let p = generate(&figure1(), GeneratorStyle::Hcg, &frodo_obs::Trace::noop());
        let c = emit_c(&p);
        assert!(c.contains("hcg: explicit simd batch"));
    }

    #[test]
    fn const_kernel_is_embedded() {
        let p = generate(&figure1(), GeneratorStyle::Frodo, &frodo_obs::Trace::noop());
        let c = emit_c(&p);
        assert!(c.contains("static const double g_k[11]"));
    }

    #[test]
    fn harness_contains_timing_main() {
        let p = generate(&figure1(), GeneratorStyle::Frodo, &frodo_obs::Trace::noop());
        let c = emit_c_harness(&p, 10_000);
        assert!(c.contains("int main(void)"));
        assert!(c.contains("clock_gettime"));
        assert!(c.contains("for (int rep = 0; rep < 10000; ++rep)"));
        assert!(c.contains("conv_step(in0, out0);"));
    }

    #[test]
    fn shared_conv_helper_replaces_inline_loops() {
        let p = generate(&figure1(), GeneratorStyle::Frodo, &frodo_obs::Trace::noop());
        let c = emit_c_with(
            &p,
            CEmitOptions {
                shared_conv_helper: true,
            },
        );
        assert!(c.contains("static void frodo_conv_range"));
        assert!(c.contains("frodo_conv_range(in0, 50, g_k, 11, g_conv, 5, 55);"));
        // the inline loop nest is gone
        assert!(!c.contains("for (int k = 5; k < 55; ++k)"));
        // helper appears exactly once
        assert_eq!(c.matches("static void frodo_conv_range").count(), 1);
    }

    #[test]
    fn shared_conv_helper_is_skipped_without_tight_convs() {
        let p = generate(&figure1(), GeneratorStyle::SimulinkCoder, &frodo_obs::Trace::noop());
        let c = emit_c_with(
            &p,
            CEmitOptions {
                shared_conv_helper: true,
            },
        );
        // Simulink style is branchy, so the helper is unnecessary
        assert!(!c.contains("frodo_conv_range"));
    }

    #[test]
    fn threaded_emit_is_byte_identical_for_any_thread_count() {
        use crate::lir::{Buffer, BufferRole};
        // Large enough to clear MIN_STMTS_PER_WORKER for several workers, and
        // heavy on Gather so the `idx_<global index>` tables would expose any
        // per-chunk index reset.
        let mut stmts = Vec::new();
        for i in 0..300 {
            if i % 3 == 0 {
                stmts.push(Stmt::Gather {
                    dst: Slice::new(BufId(2), 0),
                    src: BufId(0),
                    indices: vec![i % 8, (i + 1) % 8],
                });
            } else {
                stmts.push(Stmt::Unary {
                    op: UnOp::Gain(1.5),
                    dst: Slice::new(BufId(1), 0),
                    src: Src::Run(Slice::new(BufId(2), 0)),
                    len: 8,
                });
            }
        }
        let p = Program {
            name: "wide".into(),
            style: GeneratorStyle::Frodo,
            buffers: vec![
                Buffer {
                    name: "a".into(),
                    len: 8,
                    role: BufferRole::Input(0),
                },
                Buffer {
                    name: "b".into(),
                    len: 8,
                    role: BufferRole::Output(0),
                },
                Buffer {
                    name: "t".into(),
                    len: 8,
                    role: BufferRole::Temp,
                },
            ],
            stmts,
        };
        let sequential = emit_c(&p);
        for threads in [1, 2, 4, 7] {
            let threaded = emit_c_threaded(&p, CEmitOptions::default(), threads);
            assert_eq!(threaded, sequential, "threads = {threads}");
        }
        assert!(sequential.contains("idx_297"));
    }

    /// Emits one statement in a minimal two-buffer program.
    fn emit_single(stmt: Stmt) -> String {
        use crate::lir::{Buffer, BufferRole};
        let p = Program {
            name: "single".into(),
            style: GeneratorStyle::DfSynth,
            buffers: vec![
                Buffer {
                    name: "a".into(),
                    len: 8,
                    role: BufferRole::Input(0),
                },
                Buffer {
                    name: "b".into(),
                    len: 8,
                    role: BufferRole::Output(0),
                },
                Buffer {
                    name: "t".into(),
                    len: 8,
                    role: BufferRole::Temp,
                },
            ],
            stmts: vec![stmt],
        };
        emit_c(&p)
    }

    #[test]
    fn reduce_emits_accumulator_loop() {
        use crate::lir::{BufId, Slice};
        let c = emit_single(Stmt::Reduce {
            op: ReduceOp::Mean,
            dst: Slice::new(BufId(1), 0),
            src: Slice::new(BufId(0), 0),
            len: 8,
        });
        assert!(c.contains("double acc = 0.0;"));
        assert!(c.contains("acc /= (double)8;"));
        assert!(c.contains("out0[0] = acc;"));
    }

    #[test]
    fn dot_emits_fma_loop() {
        use crate::lir::{BufId, Slice};
        let c = emit_single(Stmt::Dot {
            dst: Slice::new(BufId(1), 0),
            a: Slice::new(BufId(0), 0),
            b: Slice::new(BufId(2), 0),
            len: 8,
        });
        assert!(c.contains("acc += in0[0 + i] * g_t[0 + i];"));
    }

    #[test]
    fn select_emits_ternary() {
        use crate::lir::{BufId, Slice, Src};
        let c = emit_single(Stmt::Select {
            dst: Slice::new(BufId(1), 0),
            ctrl: Src::Run(Slice::new(BufId(0), 0)),
            threshold: 0.5,
            a: Src::Run(Slice::new(BufId(2), 0)),
            b: Src::Const(0.0),
            len: 8,
        });
        assert!(c.contains(">= 0.5) ?"));
    }

    #[test]
    fn dyn_gather_emits_clamped_index() {
        use crate::lir::{BufId, Slice};
        let c = emit_single(Stmt::DynGather {
            dst: Slice::new(BufId(1), 0),
            src: BufId(2),
            src_len: 8,
            idx: Slice::new(BufId(0), 0),
            len: 4,
        });
        assert!(c.contains("int j = (int)in0[0 + i];"));
        assert!(c.contains("if (j < 0) j = 0;"));
        assert!(c.contains("if (j >= 8) j = 8 - 1;"));
    }

    #[test]
    fn transpose_emits_double_loop() {
        use crate::lir::BufId;
        let c = emit_single(Stmt::Transpose {
            dst: BufId(1),
            src: BufId(0),
            rows: 2,
            cols: 4,
        });
        assert!(c.contains("out0[c * 2 + r] = in0[r * 4 + c];"));
    }

    #[test]
    fn fused_unary_nests_expressions() {
        use crate::lir::{BufId, Slice, Src, UnOp};
        let c = emit_single(Stmt::FusedUnary {
            ops: vec![UnOp::Gain(2.0), UnOp::Abs, UnOp::Bias(1.0)],
            dst: Slice::new(BufId(1), 0),
            src: Src::Run(Slice::new(BufId(0), 0)),
            len: 8,
        });
        assert!(c.contains("(fabs(((in0[0 + i]) * 2.0))) + 1.0"), "{c}");
    }

    #[test]
    fn state_buffers_carry_initializers() {
        use crate::lir::{BufId, Buffer, BufferRole};
        let p = Program {
            name: "st".into(),
            style: GeneratorStyle::Frodo,
            buffers: vec![
                Buffer {
                    name: "s".into(),
                    len: 2,
                    role: BufferRole::State(vec![1.5, -2.0]),
                },
                Buffer {
                    name: "w".into(),
                    len: 2,
                    role: BufferRole::Temp,
                },
            ],
            stmts: vec![Stmt::StateLoad {
                dst: BufId(1),
                state: BufId(0),
                len: 2,
            }],
        };
        let c = emit_c(&p);
        assert!(c.contains("static double g_s[2] = {1.5, -2.0};"));
        assert!(c.contains("memcpy(g_w, g_s, 2 * sizeof(double));"));
    }

    #[test]
    fn generated_c_is_brace_balanced() {
        for style in GeneratorStyle::ALL {
            let p = generate(&figure1(), style, &frodo_obs::Trace::noop());
            let c = emit_c_harness(&p, 10);
            let open = c.matches('{').count();
            let close = c.matches('}').count();
            assert_eq!(open, close, "style {style}");
        }
    }
}
