//! Code generation for FRODO and the comparison generators.
//!
//! Lowers an analyzed model ([`frodo_core::Analysis`]) to a **loop IR**
//! ([`lir::Program`]) and emits deployable C from it. Four generator styles
//! are provided ([`GeneratorStyle`]):
//!
//! - [`GeneratorStyle::Frodo`] — the paper's contribution: every block is
//!   lowered restricted to its *calculation range*, using the element-level
//!   code library's single-element and consecutive-run snippets.
//! - [`GeneratorStyle::SimulinkCoder`] — Embedded-Coder-like baseline:
//!   full ranges, convolution emitted as a full loop with per-element
//!   *boundary judgments* (the paper's Figure 1 green code), conservative
//!   vectorization.
//! - [`GeneratorStyle::DfSynth`] — DFSynth-like baseline: full ranges with
//!   clean branch structure, no range optimization.
//! - [`GeneratorStyle::Hcg`] — HCG-like baseline: full ranges with explicit
//!   SIMD batching hints on vectorizable loops.
//!
//! # Example
//!
//! ```
//! use frodo_codegen::{generate, emit_c, GeneratorStyle};
//! use frodo_core::Analysis;
//! use frodo_model::{Block, BlockKind, Model, SelectorMode, Tensor};
//! use frodo_ranges::Shape;
//!
//! # fn main() -> Result<(), frodo_model::ModelError> {
//! let mut m = Model::new("conv");
//! let i = m.add(Block::new("in", BlockKind::Inport { index: 0, shape: Shape::Vector(50) }));
//! let k = m.add(Block::new("k", BlockKind::Constant { value: Tensor::vector(vec![0.1; 11]) }));
//! let c = m.add(Block::new("conv", BlockKind::Convolution));
//! let s = m.add(Block::new("sel", BlockKind::Selector {
//!     mode: SelectorMode::StartEnd { start: 5, end: 55 } }));
//! let o = m.add(Block::new("out", BlockKind::Outport { index: 0 }));
//! m.connect(i, 0, c, 0)?;
//! m.connect(k, 0, c, 1)?;
//! m.connect(c, 0, s, 0)?;
//! m.connect(s, 0, o, 0)?;
//!
//! let analysis = Analysis::run(m)?;
//! let program = generate(&analysis, GeneratorStyle::Frodo, &frodo_obs::Trace::noop());
//! let c_code = emit_c(&program);
//! assert!(c_code.contains("void conv_step"));
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod access;
mod emit_c;
mod fragment;
pub mod library;
pub mod lir;
mod lower;
pub mod optimize;
mod style;

pub use emit_c::{
    emission_chunks, emit_c, emit_c_harness, emit_c_harness_with, emit_c_threaded, emit_c_traced,
    emit_c_with, CEmitOptions, VectorMode,
};
pub use fragment::{generate_from_fragments, FragmentCache, FragmentStats};
#[allow(deprecated)]
pub use lower::generate_traced;
pub use lower::{generate, generate_with, LowerOptions};
pub use style::GeneratorStyle;
