//! Element-level read/write sets of [`Stmt`]s — the single source of
//! truth shared by the soundness checker, the dataflow analyses, and the
//! schedule race checker in `frodo-verify`.
//!
//! [`stmt_access`] mirrors the exact element accesses of the reference VM
//! in `frodo-sim`: for every statement it returns which buffer elements
//! are read and which are written, as [`IndexSet`]s. Degenerate
//! statements (zero-length runs, clamp bounds outside their source
//! extent) are rejected with a [`Malformed`] reason instead of a set.
//!
//! The sets are **emission-invariant**: every [`VectorMode`]
//! (`auto`/`off`/`hints`/`batch:W`) changes only the loop *shape* of the
//! emitted C, never the set of elements a statement touches, so one
//! accessor serves all vector modes. The only mode-dependent accesses in
//! the IR are the `WindowedReuse` ring-buffer statements introduced by
//! the window-reuse rewrite, and those are ordinary statements here: they
//! read their clamped source window and write both the output run and the
//! full retained state tail.
//!
//! [`VectorMode`]: crate::VectorMode

use crate::lir::{BufId, Program, Slice, Src, Stmt};
use frodo_ranges::IndexSet;

/// One element access: which buffer, which elements, and a short operand
/// label ("src", "coeffs", …) for diagnostics.
#[derive(Debug, Clone)]
pub struct Access {
    /// The accessed buffer.
    pub buf: BufId,
    /// The accessed elements.
    pub set: IndexSet,
    /// Operand label for diagnostics ("src", "lhs", "state", …).
    pub what: &'static str,
}

/// The full element-access footprint of one statement.
#[derive(Debug, Clone, Default)]
pub struct StmtAccess {
    /// Elements read, in operand order.
    pub reads: Vec<Access>,
    /// Elements written, in operand order.
    pub writes: Vec<Access>,
}

impl StmtAccess {
    /// Union of read elements of `buf` across all read accesses.
    pub fn reads_of(&self, buf: BufId) -> IndexSet {
        union_of(&self.reads, buf)
    }

    /// Union of written elements of `buf` across all write accesses.
    pub fn writes_of(&self, buf: BufId) -> IndexSet {
        union_of(&self.writes, buf)
    }

    /// Whether this statement conflicts with `other` on any buffer:
    /// write/write or read/write overlap on at least one element. Two
    /// conflicting statements must not run concurrently and must keep
    /// their program order in any parallel schedule.
    pub fn conflicts_with(&self, other: &StmtAccess) -> bool {
        let overlap = |xs: &[Access], ys: &[Access]| {
            xs.iter().any(|x| {
                ys.iter()
                    .any(|y| x.buf == y.buf && !x.set.intersect(&y.set).is_empty())
            })
        };
        overlap(&self.writes, &other.writes)
            || overlap(&self.writes, &other.reads)
            || overlap(&self.reads, &other.writes)
    }
}

/// A degenerate statement the VM would reject: which buffer the problem
/// is about and why (the F105 diagnostic reason).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Malformed {
    /// The buffer the defect is about.
    pub buf: BufId,
    /// Stable human-readable reason.
    pub reason: &'static str,
}

fn union_of(accesses: &[Access], buf: BufId) -> IndexSet {
    let mut out = IndexSet::new();
    for a in accesses {
        if a.buf == buf {
            out = out.union(&a.set);
        }
    }
    out
}

fn run(buf: BufId, off: usize, len: usize, what: &'static str) -> Access {
    Access {
        buf,
        set: IndexSet::from_range(off, off + len),
        what,
    }
}

fn slice(s: Slice, len: usize, what: &'static str) -> Access {
    run(s.buf, s.off, len, what)
}

fn src(s: &Src, len: usize, what: &'static str) -> Option<Access> {
    match s {
        Src::Run(sl) => Some(slice(*sl, len, what)),
        Src::Broadcast(sl) => Some(run(sl.buf, sl.off, 1, what)),
        Src::Const(_) => None,
    }
}

/// Derives the exact element read/write sets of one statement, mirroring
/// the reference VM's accesses. Returns [`Malformed`] for degenerate
/// statements.
///
/// # Errors
///
/// A [`Malformed`] value naming the offending buffer and the reason, for
/// statements the VM would reject (empty runs, clamp bounds outside the
/// source extent).
pub fn stmt_access(program: &Program, stmt: &Stmt) -> Result<StmtAccess, Malformed> {
    let mut acc = StmtAccess::default();
    let malformed = |buf: BufId, reason: &'static str| Err(Malformed { buf, reason });
    match stmt {
        Stmt::Unary {
            dst, src: s, len, ..
        }
        | Stmt::FusedUnary {
            dst, src: s, len, ..
        } => {
            if *len == 0 {
                return malformed(dst.buf, "zero-length run");
            }
            acc.reads.extend(src(s, *len, "src"));
            acc.writes.push(slice(*dst, *len, "dst"));
        }
        Stmt::Binary { dst, a, b, len, .. } => {
            if *len == 0 {
                return malformed(dst.buf, "zero-length run");
            }
            acc.reads.extend(src(a, *len, "lhs"));
            acc.reads.extend(src(b, *len, "rhs"));
            acc.writes.push(slice(*dst, *len, "dst"));
        }
        Stmt::Select {
            dst,
            ctrl,
            a,
            b,
            len,
            ..
        } => {
            if *len == 0 {
                return malformed(dst.buf, "zero-length run");
            }
            acc.reads.extend(src(ctrl, *len, "ctrl"));
            acc.reads.extend(src(a, *len, "then"));
            acc.reads.extend(src(b, *len, "else"));
            acc.writes.push(slice(*dst, *len, "dst"));
        }
        Stmt::Copy { dst, src: s, len } => {
            if *len == 0 {
                return malformed(dst.buf, "zero-length run");
            }
            acc.reads.push(slice(*s, *len, "src"));
            acc.writes.push(slice(*dst, *len, "dst"));
        }
        Stmt::Fill { dst, len, .. } => {
            if *len == 0 {
                return malformed(dst.buf, "zero-length run");
            }
            acc.writes.push(slice(*dst, *len, "dst"));
        }
        Stmt::Gather {
            dst,
            src: s,
            indices,
        } => {
            if indices.is_empty() {
                return malformed(dst.buf, "empty gather index vector");
            }
            acc.reads.push(Access {
                buf: *s,
                set: IndexSet::from_indices(indices.iter().copied()),
                what: "gather",
            });
            acc.writes.push(slice(*dst, indices.len(), "dst"));
        }
        Stmt::DynGather {
            dst,
            src: s,
            src_len,
            idx,
            len,
        } => {
            if *len == 0 {
                return malformed(dst.buf, "zero-length run");
            }
            if *src_len == 0 || *src_len > program.buffer(*s).len {
                return malformed(*s, "dynamic gather clamp bound outside the source extent");
            }
            // runtime indices clamp into [0, src_len): the whole prefix
            // is conservatively readable
            acc.reads.push(run(*s, 0, *src_len, "gather"));
            acc.reads.push(slice(*idx, *len, "indices"));
            acc.writes.push(slice(*dst, *len, "dst"));
        }
        Stmt::Reduce {
            dst, src: s, len, ..
        } => {
            if *len == 0 {
                return malformed(dst.buf, "zero-length reduction");
            }
            acc.reads.push(slice(*s, *len, "src"));
            acc.writes.push(slice(*dst, 1, "dst"));
        }
        Stmt::Dot { dst, a, b, len } => {
            if *len == 0 {
                return malformed(dst.buf, "zero-length dot product");
            }
            acc.reads.push(slice(*a, *len, "lhs"));
            acc.reads.push(slice(*b, *len, "rhs"));
            acc.writes.push(slice(*dst, 1, "dst"));
        }
        Stmt::Conv {
            dst,
            u,
            u_len,
            v,
            v_len,
            k0,
            k1,
            ..
        } => {
            if *k0 >= *k1 || *u_len == 0 || *v_len == 0 {
                return malformed(*dst, "empty convolution run");
            }
            let kmax = (*k1 - 1).min(*u_len + *v_len - 2);
            acc.reads.push(Access {
                buf: *u,
                set: IndexSet::from_range(k0.saturating_sub(*v_len - 1), kmax.min(*u_len - 1) + 1),
                what: "u",
            });
            acc.reads.push(Access {
                buf: *v,
                set: IndexSet::from_range(k0.saturating_sub(*u_len - 1), kmax.min(*v_len - 1) + 1),
                what: "v",
            });
            acc.writes.push(run(*dst, *k0, *k1 - *k0, "dst"));
        }
        Stmt::Fir {
            dst,
            src: s,
            coeffs,
            taps,
            k0,
            k1,
        } => {
            if *k0 >= *k1 || *taps == 0 {
                return malformed(*dst, "empty FIR run");
            }
            acc.reads.push(Access {
                buf: *s,
                set: IndexSet::from_range(k0.saturating_sub(*taps - 1), *k1),
                what: "src",
            });
            acc.reads
                .push(run(*coeffs, 0, (*k1 - 1).min(*taps - 1) + 1, "coeffs"));
            acc.writes.push(run(*dst, *k0, *k1 - *k0, "dst"));
        }
        Stmt::MovingAvg {
            dst,
            src: s,
            window,
            k0,
            k1,
        } => {
            if *k0 >= *k1 || *window == 0 {
                return malformed(*dst, "empty moving-average run");
            }
            acc.reads.push(Access {
                buf: *s,
                set: IndexSet::from_range(k0.saturating_sub(*window - 1), *k1),
                what: "src",
            });
            acc.writes.push(run(*dst, *k0, *k1 - *k0, "dst"));
        }
        Stmt::CumSum { dst, src: s, k_end } => {
            if *k_end == 0 {
                return malformed(*dst, "empty cumulative-sum prefix");
            }
            acc.reads.push(run(*s, 0, *k_end, "src"));
            acc.writes.push(run(*dst, 0, *k_end, "dst"));
        }
        Stmt::Diff {
            dst,
            src: s,
            k0,
            k1,
        } => {
            if *k0 >= *k1 {
                return malformed(*dst, "empty difference run");
            }
            let lo = if *k0 == 0 { 0 } else { *k0 - 1 };
            acc.reads.push(run(*s, lo, *k1 - lo, "src"));
            acc.writes.push(run(*dst, *k0, *k1 - *k0, "dst"));
        }
        Stmt::MatMul {
            dst,
            a,
            b,
            m,
            k,
            n,
            r0,
            r1,
        } => {
            if *r0 >= *r1 || *r1 > *m || *k == 0 || *n == 0 {
                return malformed(*dst, "empty or out-of-shape matmul row run");
            }
            acc.reads.push(run(*a, r0 * k, (*r1 - *r0) * k, "lhs rows"));
            acc.reads.push(run(*b, 0, k * n, "rhs"));
            acc.writes
                .push(run(*dst, r0 * n, (*r1 - *r0) * n, "dst rows"));
        }
        Stmt::Transpose {
            dst,
            src: s,
            rows,
            cols,
        } => {
            if *rows == 0 || *cols == 0 {
                return malformed(*dst, "empty transpose");
            }
            acc.reads.push(run(*s, 0, rows * cols, "src"));
            acc.writes.push(run(*dst, 0, rows * cols, "dst"));
        }
        Stmt::StateLoad { dst, state, len } => {
            if *len == 0 {
                return malformed(*dst, "zero-length state load");
            }
            acc.reads.push(run(*state, 0, *len, "state"));
            acc.writes.push(run(*dst, 0, *len, "dst"));
        }
        Stmt::StateStore { state, src: s, len } => {
            if *len == 0 {
                return malformed(*state, "zero-length state store");
            }
            acc.reads.push(run(*s, 0, *len, "src"));
            acc.writes.push(run(*state, 0, *len, "state"));
        }
        Stmt::WindowedReuse {
            dst,
            src: s,
            src_len,
            state,
            window,
            k0,
            k1,
            ..
        } => {
            if *k0 >= *k1 || *window == 0 || *src_len == 0 {
                return malformed(*dst, "empty windowed-reuse run");
            }
            if *src_len > program.buffer(*s).len {
                return malformed(*s, "windowed-reuse clamp beyond the source extent");
            }
            // union of the clamped windows over [k0, k1); the tail
            // retention reads a subset of the same range
            let lo = (*k0 + 1).saturating_sub(*window);
            let hi = (*k1 - 1).min(*src_len - 1);
            if lo > hi {
                return malformed(*s, "windowed-reuse run past the source extent");
            }
            acc.reads.push(run(*s, lo, hi + 1 - lo, "src"));
            acc.writes.push(run(*dst, *k0, *k1 - *k0, "dst"));
            // the retained tail must be refreshed in full — this write is
            // what the soundness checker's invocation carry-over validates
            acc.writes.push(run(*state, 0, *window, "state"));
        }
    }
    Ok(acc)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lir::{Buffer, BufferRole, ConvStyle, UnOp};
    use crate::GeneratorStyle;

    fn program(stmts: Vec<Stmt>) -> Program {
        Program {
            name: "t".into(),
            style: GeneratorStyle::Frodo,
            buffers: vec![
                Buffer {
                    name: "in0".into(),
                    len: 16,
                    role: BufferRole::Input(0),
                },
                Buffer {
                    name: "t0".into(),
                    len: 16,
                    role: BufferRole::Temp,
                },
                Buffer {
                    name: "out0".into(),
                    len: 16,
                    role: BufferRole::Output(0),
                },
            ],
            stmts,
        }
    }

    #[test]
    fn unary_run_reads_and_writes_match() {
        let p = program(vec![]);
        let s = Stmt::Unary {
            op: UnOp::Abs,
            dst: Slice::new(BufId(1), 2),
            src: Src::Run(Slice::new(BufId(0), 4)),
            len: 5,
        };
        let a = stmt_access(&p, &s).unwrap();
        assert_eq!(a.reads_of(BufId(0)), IndexSet::from_range(4, 9));
        assert_eq!(a.writes_of(BufId(1)), IndexSet::from_range(2, 7));
        assert!(a.reads_of(BufId(1)).is_empty());
    }

    #[test]
    fn conv_reads_mirror_the_vm_window() {
        // u(8) * v(3): outputs [4, 9) read u[2..8] and v[0..3]
        let p = Program {
            name: "c".into(),
            style: GeneratorStyle::Frodo,
            buffers: vec![
                Buffer {
                    name: "u".into(),
                    len: 8,
                    role: BufferRole::Input(0),
                },
                Buffer {
                    name: "v".into(),
                    len: 3,
                    role: BufferRole::Const(vec![1.0; 3]),
                },
                Buffer {
                    name: "out0".into(),
                    len: 10,
                    role: BufferRole::Output(0),
                },
            ],
            stmts: vec![],
        };
        let s = Stmt::Conv {
            dst: BufId(2),
            u: BufId(0),
            u_len: 8,
            v: BufId(1),
            v_len: 3,
            k0: 4,
            k1: 9,
            style: ConvStyle::Tight,
        };
        let a = stmt_access(&p, &s).unwrap();
        assert_eq!(a.reads_of(BufId(0)), IndexSet::from_range(2, 8));
        assert_eq!(a.reads_of(BufId(1)), IndexSet::from_range(0, 3));
        assert_eq!(a.writes_of(BufId(2)), IndexSet::from_range(4, 9));
    }

    #[test]
    fn zero_length_run_is_malformed() {
        let p = program(vec![]);
        let s = Stmt::Copy {
            dst: Slice::new(BufId(2), 0),
            src: Slice::new(BufId(0), 0),
            len: 0,
        };
        let m = stmt_access(&p, &s).unwrap_err();
        assert_eq!(m.buf, BufId(2));
        assert_eq!(m.reason, "zero-length run");
    }

    #[test]
    fn disjoint_writes_do_not_conflict_overlapping_ones_do() {
        let p = program(vec![]);
        let lo = stmt_access(
            &p,
            &Stmt::Fill {
                dst: Slice::new(BufId(1), 0),
                value: 0.0,
                len: 8,
            },
        )
        .unwrap();
        let hi = stmt_access(
            &p,
            &Stmt::Fill {
                dst: Slice::new(BufId(1), 8),
                value: 0.0,
                len: 8,
            },
        )
        .unwrap();
        assert!(!lo.conflicts_with(&hi));
        let overlap = stmt_access(
            &p,
            &Stmt::Fill {
                dst: Slice::new(BufId(1), 4),
                value: 0.0,
                len: 8,
            },
        )
        .unwrap();
        assert!(lo.conflicts_with(&overlap));
        // read/write ordering conflicts count too
        let reader = stmt_access(
            &p,
            &Stmt::Copy {
                dst: Slice::new(BufId(2), 0),
                src: Slice::new(BufId(1), 0),
                len: 4,
            },
        )
        .unwrap();
        assert!(lo.conflicts_with(&reader));
        assert!(!hi.conflicts_with(&reader));
    }
}
