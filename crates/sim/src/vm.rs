//! The loop-IR virtual machine.
//!
//! Executes a [`Program`] with semantics identical to the emitted C (same
//! clamping, same accumulation order), so agreement with the
//! [`ReferenceSimulator`](crate::ReferenceSimulator) validates both the IR
//! lowering and, transitively, the C emitter that prints the same IR.

use frodo_codegen::lir::{
    BinOp, BufferRole, ConvStyle, Program, ReduceOp, Slice, Src, Stmt, UnOp, WindowScale,
};
use frodo_obs::{CounterRecord, Histogram, SpanRecord, TraceSnapshot, NO_PARENT};
use std::time::Instant;

/// Per-statement accumulation of one profiled VM run: execution count,
/// wall-nanosecond latency distribution, and cumulative FLOPs.
#[derive(Debug, Clone)]
pub struct StmtProfile {
    /// Stable statement-kind label ([`Stmt::kind_label`]).
    pub kind: &'static str,
    /// FLOPs one execution performs ([`Stmt::flops`]).
    pub flops_per_call: u64,
    /// Executions recorded.
    pub calls: u64,
    /// Per-execution wall nanoseconds.
    pub ns: Histogram,
}

/// A per-statement execution profile of [`Vm::step_profiled`] runs.
///
/// Keys match the self-profiling C emission exactly — statement `i` of
/// kind `conv` profiles as span `stmt_i_conv`, counters
/// `stmt_i_conv_calls` / `stmt_i_conv_flops`, and latency histogram
/// `stmt_i_conv_ns` under a `prof:<model>` root — so a VM profile and a
/// native profile of the same program are diffable with `obs::diff` after
/// aggregation.
#[derive(Debug, Clone)]
pub struct Profile {
    name: String,
    stmts: Vec<StmtProfile>,
}

impl Profile {
    /// An empty profile sized to `program`'s statement sequence.
    pub fn new(program: &Program) -> Self {
        Profile {
            name: program.name.clone(),
            stmts: program
                .stmts
                .iter()
                .map(|s| StmtProfile {
                    kind: s.kind_label(),
                    flops_per_call: s.flops(),
                    calls: 0,
                    ns: Histogram::new(),
                })
                .collect(),
        }
    }

    /// The per-statement records, in program order.
    pub fn stmts(&self) -> &[StmtProfile] {
        &self.stmts
    }

    fn record(&mut self, idx: usize, ns: f64) {
        let s = &mut self.stmts[idx];
        s.calls += 1;
        s.ns.record(ns);
    }

    /// The profile as a [`TraceSnapshot`] in the same shape the generated
    /// C's `frodo_prof_dump` prints: a `prof:<model>` root span, one span
    /// per statement (duration = total nanoseconds), `_calls`/`_flops`
    /// counters, and a `_ns` latency histogram per executed statement.
    pub fn to_snapshot(&self) -> TraceSnapshot {
        let mut snap = TraceSnapshot::default();
        let total: u64 = self.stmts.iter().map(|s| s.ns.sum() as u64).sum();
        snap.spans.push(SpanRecord {
            id: 1,
            parent: NO_PARENT,
            name: format!("prof:{}", self.name),
            start_ns: 0,
            dur_ns: total,
        });
        for (i, s) in self.stmts.iter().enumerate() {
            snap.spans.push(SpanRecord {
                id: (i + 2) as u32,
                parent: 1,
                name: format!("stmt_{i}_{}", s.kind),
                start_ns: 0,
                dur_ns: s.ns.sum() as u64,
            });
        }
        for (i, s) in self.stmts.iter().enumerate() {
            snap.counters.push(CounterRecord {
                span: (i + 2) as u32,
                name: format!("stmt_{i}_{}_calls", s.kind),
                value: s.calls,
            });
            snap.counters.push(CounterRecord {
                span: (i + 2) as u32,
                name: format!("stmt_{i}_{}_flops", s.kind),
                value: s.flops_per_call * s.calls,
            });
        }
        for (i, s) in self.stmts.iter().enumerate() {
            if s.calls > 0 {
                snap.histograms
                    .push((format!("stmt_{i}_{}_ns", s.kind), s.ns.clone()));
            }
        }
        snap
    }

    /// The profile in the `frodo-obs` NDJSON export schema
    /// (`frodo_obs::ndjson::snapshot` parses it back).
    pub fn to_ndjson(&self) -> String {
        frodo_obs::ndjson_export(&self.to_snapshot())
    }
}

/// Interpreter state: one flat `f64` store per program buffer.
///
/// State buffers persist across [`Vm::step`] calls, matching the generated
/// C's file-scope `static` state arrays.
#[derive(Debug, Clone)]
pub struct Vm {
    bufs: Vec<Vec<f64>>,
}

impl Vm {
    /// Allocates and initializes buffers for a program.
    pub fn new(program: &Program) -> Self {
        let bufs = program
            .buffers
            .iter()
            .map(|b| match &b.role {
                BufferRole::Const(data) | BufferRole::State(data) => data.clone(),
                _ => vec![0.0; b.len],
            })
            .collect();
        Vm { bufs }
    }

    /// Resets state buffers to their initial values (inputs/temps are
    /// overwritten by execution anyway).
    pub fn reset(&mut self, program: &Program) {
        for (i, b) in program.buffers.iter().enumerate() {
            if let BufferRole::State(init) = &b.role {
                self.bufs[i].copy_from_slice(init);
            }
        }
    }

    /// Runs one step: loads `inputs` (ordered by input index), executes the
    /// statement sequence, and returns the output buffers (ordered by output
    /// index).
    ///
    /// # Panics
    ///
    /// Panics if the number or lengths of `inputs` do not match the
    /// program's input buffers.
    pub fn step(&mut self, program: &Program, inputs: &[Vec<f64>]) -> Vec<Vec<f64>> {
        let ins = program.inputs();
        assert_eq!(ins.len(), inputs.len(), "input count mismatch");
        for ((_, id), data) in ins.iter().zip(inputs) {
            assert_eq!(self.bufs[id.0].len(), data.len(), "input length mismatch");
            self.bufs[id.0].copy_from_slice(data);
        }
        for stmt in &program.stmts {
            self.exec(stmt);
        }
        self.collect_outputs(program)
    }

    /// [`Vm::step`] with per-statement profiling: each statement's
    /// execution is timed on the monotonic clock and recorded into
    /// `profile` (which must have been built from the same program via
    /// [`Profile::new`]).
    ///
    /// # Panics
    ///
    /// Panics on the same input mismatches as [`Vm::step`], and if
    /// `profile` was sized to a different statement sequence.
    pub fn step_profiled(
        &mut self,
        program: &Program,
        inputs: &[Vec<f64>],
        profile: &mut Profile,
    ) -> Vec<Vec<f64>> {
        assert_eq!(
            profile.stmts.len(),
            program.stmts.len(),
            "profile/program statement count mismatch"
        );
        let ins = program.inputs();
        assert_eq!(ins.len(), inputs.len(), "input count mismatch");
        for ((_, id), data) in ins.iter().zip(inputs) {
            assert_eq!(self.bufs[id.0].len(), data.len(), "input length mismatch");
            self.bufs[id.0].copy_from_slice(data);
        }
        for (i, stmt) in program.stmts.iter().enumerate() {
            let t0 = Instant::now();
            self.exec(stmt);
            profile.record(i, t0.elapsed().as_nanos() as f64);
        }
        self.collect_outputs(program)
    }

    fn collect_outputs(&self, program: &Program) -> Vec<Vec<f64>> {
        program
            .outputs()
            .into_iter()
            .map(|(_, id)| self.bufs[id.0].clone())
            .collect()
    }

    /// Read access to a buffer (diagnostics and tests).
    pub fn buffer(&self, id: frodo_codegen::lir::BufId) -> &[f64] {
        &self.bufs[id.0]
    }

    fn read(&self, src: Src, i: usize) -> f64 {
        match src {
            Src::Run(s) => self.bufs[s.buf.0][s.off + i],
            Src::Broadcast(s) => self.bufs[s.buf.0][s.off],
            Src::Const(c) => c,
        }
    }

    fn write(&mut self, dst: Slice, i: usize, v: f64) {
        self.bufs[dst.buf.0][dst.off + i] = v;
    }

    fn exec(&mut self, stmt: &Stmt) {
        match stmt.clone() {
            Stmt::Unary { op, dst, src, len } => {
                for i in 0..len {
                    let x = self.read(src, i);
                    self.write(dst, i, apply_un(op, x));
                }
            }
            Stmt::FusedUnary { ops, dst, src, len } => {
                for i in 0..len {
                    let mut x = self.read(src, i);
                    for &op in &ops {
                        x = apply_un(op, x);
                    }
                    self.write(dst, i, x);
                }
            }
            Stmt::Binary { op, dst, a, b, len } => {
                for i in 0..len {
                    let x = self.read(a, i);
                    let y = self.read(b, i);
                    self.write(dst, i, apply_bin(op, x, y));
                }
            }
            Stmt::Select {
                dst,
                ctrl,
                threshold,
                a,
                b,
                len,
            } => {
                for i in 0..len {
                    let c = self.read(ctrl, i);
                    let v = if c >= threshold {
                        self.read(a, i)
                    } else {
                        self.read(b, i)
                    };
                    self.write(dst, i, v);
                }
            }
            Stmt::Copy { dst, src, len } => {
                for i in 0..len {
                    let v = self.bufs[src.buf.0][src.off + i];
                    self.write(dst, i, v);
                }
            }
            Stmt::Fill { dst, value, len } => {
                for i in 0..len {
                    self.write(dst, i, value);
                }
            }
            Stmt::Gather { dst, src, indices } => {
                for (i, &j) in indices.iter().enumerate() {
                    let v = self.bufs[src.0][j];
                    self.write(dst, i, v);
                }
            }
            Stmt::DynGather {
                dst,
                src,
                src_len,
                idx,
                len,
            } => {
                for i in 0..len {
                    let raw = self.bufs[idx.buf.0][idx.off + i] as i64;
                    let j = raw.clamp(0, src_len as i64 - 1) as usize;
                    let v = self.bufs[src.0][j];
                    self.write(dst, i, v);
                }
            }
            Stmt::Reduce { op, dst, src, len } => {
                let data = &self.bufs[src.buf.0][src.off..src.off + len];
                let v = match op {
                    ReduceOp::Sum => data.iter().sum(),
                    ReduceOp::Mean => data.iter().sum::<f64>() / len as f64,
                    ReduceOp::Min => data.iter().skip(1).fold(data[0], |a, &b| a.min(b)),
                    ReduceOp::Max => data.iter().skip(1).fold(data[0], |a, &b| a.max(b)),
                };
                self.write(dst, 0, v);
            }
            Stmt::Dot { dst, a, b, len } => {
                let mut acc = 0.0;
                for i in 0..len {
                    acc += self.bufs[a.buf.0][a.off + i] * self.bufs[b.buf.0][b.off + i];
                }
                self.write(dst, 0, acc);
            }
            Stmt::Conv {
                dst,
                u,
                u_len,
                v,
                v_len,
                k0,
                k1,
                style,
            } => {
                // both styles compute the same values; Branchy just models
                // the slower loop structure for the cost analysis
                let _ = style;
                for k in k0..k1 {
                    let lo = k.saturating_sub(v_len - 1);
                    let hi = k.min(u_len - 1);
                    let mut acc = 0.0;
                    if let ConvStyle::Branchy = style {
                        // kernel iterated descending so the data index
                        // ascends: bit-identical accumulation order to Tight
                        for j in (0..v_len).rev() {
                            if k >= j && k - j < u_len {
                                acc += self.bufs[v.0][j] * self.bufs[u.0][k - j];
                            }
                        }
                    } else {
                        for j in lo..=hi {
                            acc += self.bufs[u.0][j] * self.bufs[v.0][k - j];
                        }
                    }
                    self.bufs[dst.0][k] = acc;
                }
            }
            Stmt::Fir {
                dst,
                src,
                coeffs,
                taps,
                k0,
                k1,
            } => {
                for k in k0..k1 {
                    let tmax = k.min(taps - 1);
                    let mut acc = 0.0;
                    for t in 0..=tmax {
                        acc += self.bufs[coeffs.0][t] * self.bufs[src.0][k - t];
                    }
                    self.bufs[dst.0][k] = acc;
                }
            }
            Stmt::MovingAvg {
                dst,
                src,
                window,
                k0,
                k1,
            } => {
                for k in k0..k1 {
                    let lo = k.saturating_sub(window - 1);
                    let mut acc = 0.0;
                    for j in lo..=k {
                        acc += self.bufs[src.0][j];
                    }
                    self.bufs[dst.0][k] = acc / window as f64;
                }
            }
            Stmt::CumSum { dst, src, k_end } => {
                let mut acc = 0.0;
                for k in 0..k_end {
                    acc += self.bufs[src.0][k];
                    self.bufs[dst.0][k] = acc;
                }
            }
            Stmt::Diff { dst, src, k0, k1 } => {
                for k in k0..k1 {
                    let v = if k == 0 {
                        self.bufs[src.0][0]
                    } else {
                        self.bufs[src.0][k] - self.bufs[src.0][k - 1]
                    };
                    self.bufs[dst.0][k] = v;
                }
            }
            Stmt::MatMul {
                dst,
                a,
                b,
                k,
                n,
                r0,
                r1,
                ..
            } => {
                for r in r0..r1 {
                    for c in 0..n {
                        let mut acc = 0.0;
                        for t in 0..k {
                            acc += self.bufs[a.0][r * k + t] * self.bufs[b.0][t * n + c];
                        }
                        self.bufs[dst.0][r * n + c] = acc;
                    }
                }
            }
            Stmt::Transpose {
                dst,
                src,
                rows,
                cols,
            } => {
                for r in 0..rows {
                    for c in 0..cols {
                        self.bufs[dst.0][c * rows + r] = self.bufs[src.0][r * cols + c];
                    }
                }
            }
            Stmt::StateLoad { dst, state, len } => {
                for i in 0..len {
                    self.bufs[dst.0][i] = self.bufs[state.0][i];
                }
            }
            Stmt::StateStore { state, src, len } => {
                for i in 0..len {
                    self.bufs[state.0][i] = self.bufs[src.0][i];
                }
            }
            Stmt::WindowedReuse {
                dst,
                src,
                src_len,
                state,
                window,
                scale,
                k0,
                k1,
            } => {
                // mirrors the WINDOW_REUSE_RUN C snippet operation for
                // operation: same seed order, same conditional add/subtract
                // order, so VM and compiled output round identically
                let out = |acc: f64| match scale {
                    WindowScale::Div(d) => acc / d,
                    WindowScale::Mul(c) => acc * c,
                };
                let lo = (k0 + 1).saturating_sub(window);
                let hi = k0.min(src_len - 1);
                let mut acc = 0.0;
                for j in lo..=hi {
                    acc += self.bufs[src.0][j];
                }
                self.bufs[dst.0][k0] = out(acc);
                for k in k0 + 1..k1 {
                    if k < src_len {
                        acc += self.bufs[src.0][k];
                    }
                    if k >= window {
                        acc -= self.bufs[src.0][k - window];
                    }
                    self.bufs[dst.0][k] = out(acc);
                }
                // retain the window tail for the next invocation
                for t in 0..window {
                    let j = (k1 + t) as i64 - window as i64;
                    self.bufs[state.0][t] = if j >= 0 && (j as usize) < src_len {
                        self.bufs[src.0][j as usize]
                    } else {
                        0.0
                    };
                }
            }
        }
    }
}

fn apply_un(op: UnOp, x: f64) -> f64 {
    match op {
        UnOp::Gain(g) => x * g,
        UnOp::Bias(b) => x + b,
        UnOp::Abs => x.abs(),
        UnOp::Sqrt => x.sqrt(),
        UnOp::Square => x * x,
        UnOp::Exp => x.exp(),
        UnOp::Log => x.ln(),
        UnOp::Sin => x.sin(),
        UnOp::Cos => x.cos(),
        UnOp::Tanh => x.tanh(),
        UnOp::Neg => -x,
        UnOp::Recip => 1.0 / x,
        UnOp::Sat(lo, hi) => x.max(lo).min(hi),
        UnOp::Floor => x.floor(),
        UnOp::Ceil => x.ceil(),
        UnOp::Round => x.round(),
        UnOp::Trunc => x.trunc(),
        UnOp::Not => {
            if x == 0.0 {
                1.0
            } else {
                0.0
            }
        }
        UnOp::Id => x,
    }
}

fn apply_bin(op: BinOp, a: f64, b: f64) -> f64 {
    let t = |c: bool| if c { 1.0 } else { 0.0 };
    match op {
        BinOp::Add => a + b,
        BinOp::Sub => a - b,
        BinOp::Mul => a * b,
        BinOp::Div => a / b,
        BinOp::Min => a.min(b),
        BinOp::Max => a.max(b),
        BinOp::Mod => a % b,
        BinOp::Lt => t(a < b),
        BinOp::Le => t(a <= b),
        BinOp::Gt => t(a > b),
        BinOp::Ge => t(a >= b),
        BinOp::EqOp => t(a == b),
        BinOp::Ne => t(a != b),
        BinOp::And => t(a != 0.0 && b != 0.0),
        BinOp::Or => t(a != 0.0 || b != 0.0),
        BinOp::Xor => t((a != 0.0) != (b != 0.0)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use frodo_codegen::{generate, GeneratorStyle};
    use frodo_core::Analysis;
    use frodo_model::{Block, BlockKind, Model, SelectorMode, Tensor};
    use frodo_ranges::Shape;

    fn figure1() -> Analysis {
        let mut m = Model::new("conv");
        let i = m.add(Block::new(
            "in",
            BlockKind::Inport {
                index: 0,
                shape: Shape::Vector(50),
            },
        ));
        let k = m.add(Block::new(
            "k",
            BlockKind::Constant {
                value: Tensor::vector(vec![0.1; 11]),
            },
        ));
        let c = m.add(Block::new("conv", BlockKind::Convolution));
        let s = m.add(Block::new(
            "sel",
            BlockKind::Selector {
                mode: SelectorMode::StartEnd { start: 5, end: 55 },
            },
        ));
        let o = m.add(Block::new("out", BlockKind::Outport { index: 0 }));
        m.connect(i, 0, c, 0).unwrap();
        m.connect(k, 0, c, 1).unwrap();
        m.connect(c, 0, s, 0).unwrap();
        m.connect(s, 0, o, 0).unwrap();
        Analysis::run(m).unwrap()
    }

    #[test]
    fn all_styles_agree_with_reference_on_figure1() {
        let a = figure1();
        let input: Vec<f64> = (0..50).map(|i| (i as f64 * 0.7).sin()).collect();
        let mut reference = crate::ReferenceSimulator::new(a.dfg().clone());
        let expected = reference.step(&[Tensor::vector(input.clone())]).unwrap();
        for style in GeneratorStyle::ALL {
            let p = generate(&a, style, &frodo_obs::Trace::noop());
            let mut vm = Vm::new(&p);
            let out = vm.step(&p, std::slice::from_ref(&input));
            let diff: f64 = out[0]
                .iter()
                .zip(expected[0].data())
                .map(|(a, b)| (a - b).abs())
                .fold(0.0, f64::max);
            assert!(diff < 1e-12, "style {style} deviates by {diff}");
        }
    }

    /// Builds a two-buffer program for direct statement-level testing.
    fn scratch_program(stmts: Vec<Stmt>, src_data: Vec<f64>, dst_len: usize) -> Program {
        use frodo_codegen::lir::{Buffer, BufferRole};
        Program {
            name: "scratch".into(),
            style: GeneratorStyle::Frodo,
            buffers: vec![
                Buffer {
                    name: "src".into(),
                    len: src_data.len(),
                    role: BufferRole::Const(src_data),
                },
                Buffer {
                    name: "dst".into(),
                    len: dst_len,
                    role: BufferRole::Output(0),
                },
                Buffer {
                    name: "aux".into(),
                    len: 8,
                    role: BufferRole::Const(vec![2.0, 5.0, -1.0, 0.0, 9.0, 3.0, 7.0, 1.0]),
                },
            ],
            stmts,
        }
    }

    #[test]
    fn select_broadcasts_scalar_control() {
        use frodo_codegen::lir::{BufId, Slice, Src};
        let p = scratch_program(
            vec![Stmt::Select {
                dst: Slice::new(BufId(1), 0),
                ctrl: Src::Broadcast(Slice::new(BufId(0), 0)),
                threshold: 0.5,
                a: Src::Run(Slice::new(BufId(2), 0)),
                b: Src::Const(-7.0),
                len: 4,
            }],
            vec![1.0],
            4,
        );
        let out = Vm::new(&p).step(&p, &[]);
        assert_eq!(out[0], vec![2.0, 5.0, -1.0, 0.0]);
    }

    #[test]
    fn dyn_gather_clamps_out_of_range_indices() {
        use frodo_codegen::lir::{BufId, Slice};
        // indices 9.9 (clamp to 7), -3 (clamp to 0), 2.7 (trunc to 2)
        let p = scratch_program(
            vec![Stmt::DynGather {
                dst: Slice::new(BufId(1), 0),
                src: BufId(2),
                src_len: 8,
                idx: Slice::new(BufId(0), 0),
                len: 3,
            }],
            vec![9.9, -3.0, 2.7],
            3,
        );
        let out = Vm::new(&p).step(&p, &[]);
        assert_eq!(out[0], vec![1.0, 2.0, -1.0]);
    }

    #[test]
    fn reduce_min_max_match_c_fmin_fmax_semantics() {
        use frodo_codegen::lir::{BufId, ReduceOp, Slice};
        let p = scratch_program(
            vec![
                Stmt::Reduce {
                    op: ReduceOp::Min,
                    dst: Slice::new(BufId(1), 0),
                    src: Slice::new(BufId(2), 0),
                    len: 8,
                },
                Stmt::Reduce {
                    op: ReduceOp::Max,
                    dst: Slice::new(BufId(1), 1),
                    src: Slice::new(BufId(2), 0),
                    len: 8,
                },
                Stmt::Reduce {
                    op: ReduceOp::Mean,
                    dst: Slice::new(BufId(1), 2),
                    src: Slice::new(BufId(2), 0),
                    len: 8,
                },
            ],
            vec![0.0],
            3,
        );
        let out = Vm::new(&p).step(&p, &[]);
        assert_eq!(out[0][0], -1.0);
        assert_eq!(out[0][1], 9.0);
        assert!((out[0][2] - 3.25).abs() < 1e-12);
    }

    #[test]
    fn moving_average_partial_range_matches_full_prefix() {
        use frodo_codegen::lir::{BufId, Slice};
        let _ = Slice::new(BufId(0), 0);
        // computing only [4, 8) must produce the same values there as [0, 8)
        let src: Vec<f64> = (0..8).map(|i| i as f64).collect();
        let full = scratch_program(
            vec![Stmt::MovingAvg {
                dst: BufId(1),
                src: BufId(0),
                window: 3,
                k0: 0,
                k1: 8,
            }],
            src.clone(),
            8,
        );
        let partial = scratch_program(
            vec![Stmt::MovingAvg {
                dst: BufId(1),
                src: BufId(0),
                window: 3,
                k0: 4,
                k1: 8,
            }],
            src,
            8,
        );
        let a = Vm::new(&full).step(&full, &[]);
        let b = Vm::new(&partial).step(&partial, &[]);
        assert_eq!(a[0][4..], b[0][4..]);
        assert_eq!(&b[0][..4], &[0.0; 4]);
    }

    #[test]
    fn matmul_row_range_computes_only_those_rows() {
        use frodo_codegen::lir::{BufId, Slice};
        let _ = Slice::new(BufId(0), 0);
        // A = 3x2 (from src), B = 2x2 (first 4 of aux); compute row 1 only
        let p = scratch_program(
            vec![Stmt::MatMul {
                dst: BufId(1),
                a: BufId(0),
                b: BufId(2),
                m: 3,
                k: 2,
                n: 2,
                r0: 1,
                r1: 2,
            }],
            vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0],
            6,
        );
        let out = Vm::new(&p).step(&p, &[]);
        // row 1 of product: [3,4]·[[2,5],[-1,0]] = [3*2+4*(-1), 3*5+4*0] = [2, 15]
        assert_eq!(&out[0][2..4], &[2.0, 15.0]);
        assert_eq!(&out[0][..2], &[0.0, 0.0]);
        assert_eq!(&out[0][4..], &[0.0, 0.0]);
    }

    #[test]
    fn state_persists_across_steps() {
        let mut m = Model::new("acc");
        let i = m.add(Block::new(
            "i",
            BlockKind::Inport {
                index: 0,
                shape: Shape::Scalar,
            },
        ));
        let add = m.add(Block::new("add", BlockKind::Add));
        let z = m.add(Block::new(
            "z",
            BlockKind::UnitDelay {
                initial: Tensor::scalar(0.0),
            },
        ));
        let o = m.add(Block::new("o", BlockKind::Outport { index: 0 }));
        m.connect(i, 0, add, 0).unwrap();
        m.connect(z, 0, add, 1).unwrap();
        m.connect(add, 0, z, 0).unwrap();
        m.connect(add, 0, o, 0).unwrap();
        let a = Analysis::run(m).unwrap();
        let p = generate(&a, GeneratorStyle::Frodo, &frodo_obs::Trace::noop());
        let mut vm = Vm::new(&p);
        assert_eq!(vm.step(&p, &[vec![1.0]])[0], vec![1.0]);
        assert_eq!(vm.step(&p, &[vec![2.0]])[0], vec![3.0]);
        assert_eq!(vm.step(&p, &[vec![3.0]])[0], vec![6.0]);
        vm.reset(&p);
        assert_eq!(vm.step(&p, &[vec![5.0]])[0], vec![5.0]);
    }

    #[test]
    fn profiled_step_matches_plain_step_and_records_every_statement() {
        let a = figure1();
        let input: Vec<f64> = (0..50).map(|i| (i as f64 * 0.7).sin()).collect();
        let p = generate(&a, GeneratorStyle::Frodo, &frodo_obs::Trace::noop());
        let plain = Vm::new(&p).step(&p, std::slice::from_ref(&input));
        let mut prof = Profile::new(&p);
        let mut vm = Vm::new(&p);
        for _ in 0..3 {
            let profiled = vm.step_profiled(&p, std::slice::from_ref(&input), &mut prof);
            assert_eq!(profiled, plain, "profiling must not perturb results");
        }
        assert_eq!(prof.stmts().len(), p.stmts.len());
        for (s, stmt) in prof.stmts().iter().zip(&p.stmts) {
            assert_eq!(s.calls, 3);
            assert_eq!(s.ns.count(), 3);
            assert_eq!(s.kind, stmt.kind_label());
            assert_eq!(s.flops_per_call, stmt.flops());
        }
    }

    #[test]
    fn profile_ndjson_round_trips_through_the_obs_parser() {
        let a = figure1();
        let input: Vec<f64> = (0..50).map(|i| i as f64 * 0.1).collect();
        let p = generate(&a, GeneratorStyle::Frodo, &frodo_obs::Trace::noop());
        let mut prof = Profile::new(&p);
        let mut vm = Vm::new(&p);
        vm.step_profiled(&p, std::slice::from_ref(&input), &mut prof);
        let text = prof.to_ndjson();
        let snap = frodo_obs::ndjson::snapshot(&text).expect("profile NDJSON parses");
        assert_eq!(snap.spans.len(), p.stmts.len() + 1);
        assert!(snap.spans.iter().any(|s| s.name == "prof:conv"));
        assert_eq!(snap.counters.len(), 2 * p.stmts.len());
        // every statement ran once, so every statement has a histogram
        assert_eq!(snap.histograms.len(), p.stmts.len());
        for (name, h) in &snap.histograms {
            assert!(name.starts_with("stmt_") && name.ends_with("_ns"), "{name}");
            assert_eq!(h.count(), 1);
        }
        // the conv statement's flops counter carries the static tally
        let ci = p
            .stmts
            .iter()
            .position(|s| s.kind_label() == "conv")
            .expect("conv statement");
        let flops = snap
            .counters
            .iter()
            .find(|c| c.name == format!("stmt_{ci}_conv_flops"))
            .expect("conv flops counter");
        assert_eq!(flops.value, p.stmts[ci].flops());
    }

    #[test]
    fn branchy_and_tight_conv_agree_numerically() {
        let a = figure1();
        let input: Vec<f64> = (0..50).map(|i| i as f64).collect();
        let tight = generate(&a, GeneratorStyle::Frodo, &frodo_obs::Trace::noop());
        let branchy = generate(&a, GeneratorStyle::SimulinkCoder, &frodo_obs::Trace::noop());
        let o1 = Vm::new(&tight).step(&tight, std::slice::from_ref(&input));
        let o2 = Vm::new(&branchy).step(&branchy, &[input]);
        assert_eq!(o1, o2);
    }

    #[test]
    fn window_reuse_matches_reference_across_three_invocations() {
        use frodo_codegen::{generate_with, LowerOptions};
        let a = figure1();
        let opts = LowerOptions {
            window_reuse: true,
            ..LowerOptions::default()
        };
        let p = generate_with(&a, GeneratorStyle::Frodo, opts, &frodo_obs::Trace::noop());
        assert!(
            p.stmts
                .iter()
                .any(|s| matches!(s, Stmt::WindowedReuse { .. })),
            "figure1's uniform kernel must trigger the rewrite"
        );
        let mut reference = crate::ReferenceSimulator::new(a.dfg().clone());
        let mut vm = Vm::new(&p);
        let mut rng = crate::rng::Rng::seed_from_u64(0xF20D0_2024);
        for inv in 0..3 {
            let input: Vec<f64> = (0..50).map(|_| rng.uniform(-4.0, 4.0)).collect();
            let expected = reference.step(&[Tensor::vector(input.clone())]).unwrap();
            let out = vm.step(&p, std::slice::from_ref(&input));
            let worst: f64 = out[0]
                .iter()
                .zip(expected[0].data())
                .map(|(a, b)| (a - b).abs())
                .fold(0.0, f64::max);
            assert!(worst < 1e-9, "invocation {inv} deviates by {worst}");
        }
    }

    /// Property tests (gated: the `proptest` crate is not vendored, so the
    /// default offline build compiles these out; re-add the dev-dependency
    /// and run `cargo test --features proptest` to enable them).
    #[cfg(feature = "proptest")]
    mod props {
        use super::*;
        use frodo_codegen::{generate_with, LowerOptions};
        use proptest::prelude::*;

        proptest! {
            /// Reuse-transformed programs agree element-for-element
            /// (within the verification tolerance) with the reference
            /// simulator over 3+ consecutive invocations with random
            /// workloads, for every window width the pass accepts.
            #[test]
            fn prop_window_reuse_matches_reference_over_invocations(
                seed in any::<u64>(),
                window in 4usize..16,
                invocations in 3usize..6,
            ) {
                let mut m = Model::new("avg");
                let i = m.add(Block::new(
                    "in",
                    BlockKind::Inport { index: 0, shape: Shape::Vector(40) },
                ));
                let avg = m.add(Block::new("avg", BlockKind::MovingAverage { window }));
                let o = m.add(Block::new("out", BlockKind::Outport { index: 0 }));
                m.connect(i, 0, avg, 0).unwrap();
                m.connect(avg, 0, o, 0).unwrap();
                let a = Analysis::run(m).unwrap();
                let opts = LowerOptions { window_reuse: true, ..LowerOptions::default() };
                let p = generate_with(&a, GeneratorStyle::Frodo, opts, &frodo_obs::Trace::noop());
                prop_assert!(p.stmts.iter().any(|s| matches!(s, Stmt::WindowedReuse { .. })));
                let mut reference = crate::ReferenceSimulator::new(a.dfg().clone());
                let mut vm = Vm::new(&p);
                let mut rng = crate::rng::Rng::seed_from_u64(seed);
                for _ in 0..invocations {
                    let input: Vec<f64> = (0..40).map(|_| rng.uniform(-8.0, 8.0)).collect();
                    let expected = reference.step(&[Tensor::vector(input.clone())]).unwrap();
                    let out = vm.step(&p, std::slice::from_ref(&input));
                    for (x, y) in out[0].iter().zip(expected[0].data()) {
                        prop_assert!((x - y).abs() < 1e-9);
                    }
                }
            }
        }
    }
}
