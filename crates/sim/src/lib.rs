//! Execution substrate for the FRODO evaluation.
//!
//! The paper measures generated code on physical x86 and ARM testbeds with
//! GCC and Clang. This crate provides the equivalents we can run here:
//!
//! - [`ReferenceSimulator`] — direct model-semantics evaluation (the
//!   "model simulation" oracle the paper validates generated code against).
//! - [`Vm`] — an interpreter for the loop IR, bit-equivalent to the emitted
//!   C, used to check every generator style against the oracle.
//! - [`CostModel`] — deterministic per-statement cost estimation
//!   parameterized by architecture (512-bit vs 128-bit SIMD) and compiler
//!   profile (GCC-like vs Clang-like vectorizers), replacing wall clocks for
//!   the configurations this host cannot run (Clang columns, ARM rows).
//! - [`native`] — real `gcc -O3` compile-and-run for the x86/GCC column.
//! - [`MemoryReport`] — static memory accounting for the paper's §5 study.
//! - [`workload`] — deterministic random input generation.
//! - [`rng`] — the vendored SplitMix64 generator behind every random
//!   workload in the workspace (no external `rand` dependency).
//!
//! # Example
//!
//! ```
//! use frodo_codegen::{generate, GeneratorStyle};
//! use frodo_core::Analysis;
//! use frodo_model::{Block, BlockKind, Model, Tensor};
//! use frodo_ranges::Shape;
//! use frodo_sim::{ReferenceSimulator, Vm};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut m = Model::new("gain");
//! let i = m.add(Block::new("i", BlockKind::Inport { index: 0, shape: Shape::Vector(4) }));
//! let g = m.add(Block::new("g", BlockKind::Gain { gain: 2.0 }));
//! let o = m.add(Block::new("o", BlockKind::Outport { index: 0 }));
//! m.connect(i, 0, g, 0)?;
//! m.connect(g, 0, o, 0)?;
//! let analysis = Analysis::run(m)?;
//!
//! let input = Tensor::vector(vec![1.0, 2.0, 3.0, 4.0]);
//! let mut reference = ReferenceSimulator::new(analysis.dfg().clone());
//! let expected = reference.step(&[input.clone()])?;
//!
//! let program = generate(&analysis, GeneratorStyle::Frodo, &frodo_obs::Trace::noop());
//! let mut vm = Vm::new(&program);
//! let got = vm.step(&program, &[input.data().to_vec()]);
//! assert_eq!(got[0], expected[0].data());
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cost;
mod memory;
pub mod native;
mod reference;
pub mod rng;
mod vm;
pub mod workload;

pub use cost::{program_flops, stmt_flops, Arch, CompilerProfile, CostModel};
pub use memory::MemoryReport;
pub use reference::{ReferenceSimulator, SimError};
pub use vm::{Profile, StmtProfile, Vm};
