//! Deterministic cost models standing in for the paper's testbeds.
//!
//! The paper measures wall-clock time on an AMD Ryzen 7 5800X (512-bit SIMD)
//! and an ARM Cortex-A72 (128-bit SIMD) with GCC 11.3 and Clang 14 at `-O3`.
//! We cannot run Clang or ARM here, so those columns are produced by a
//! static per-statement cost estimate whose first-order terms are exactly
//! the effects the paper attributes the differences to:
//!
//! - **element counts** — redundancy elimination's direct effect;
//! - **boundary judgments** — Simulink's branchy convolution loops;
//! - **SIMD width and vectorizer uptake** — 8 `f64` lanes on x86 vs 2 on
//!   ARM; Clang's vectorizer modeled slightly more effective than GCC's;
//!   Simulink's generated code largely missing vectorization; HCG's explicit
//!   4-wide batching capping the achievable width and adding per-loop
//!   overhead (the paper's analysis of why HCG loses at `-O3` on some
//!   models).
//!
//! The estimate is deliberately simple and fully deterministic; the
//! `frodo-bench` harness cross-checks its x86/GCC column against real
//! `gcc -O3` wall times when a compiler is present.

use frodo_codegen::lir::{ConvStyle, Program, Stmt, UnOp};
use frodo_codegen::{GeneratorStyle, VectorMode};

/// Processor family.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Arch {
    /// AMD Ryzen-class desktop x86-64 (512-bit SIMD).
    X86,
    /// ARM Cortex-A72 embedded core (128-bit NEON).
    Arm,
}

/// Compiler vectorizer profile.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CompilerProfile {
    /// GCC 11-like: good but conservative auto-vectorization.
    Gcc,
    /// Clang 14-like: slightly more aggressive auto-vectorization.
    Clang,
}

/// A deterministic statement-cost estimator for one (arch, compiler) pair.
///
/// # Example
///
/// ```
/// use frodo_sim::CostModel;
///
/// let x86 = CostModel::x86_gcc();
/// let arm = CostModel::arm_gcc();
/// assert_eq!(x86.label(), "x86/gcc");
/// assert_eq!(arm.label(), "arm/gcc");
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct CostModel {
    /// Processor family.
    pub arch: Arch,
    /// Compiler profile.
    pub compiler: CompilerProfile,
    /// Nanoseconds per scalar arithmetic/memory element-op.
    base_ns: f64,
    /// Available `f64` SIMD lanes.
    simd_lanes: f64,
    /// Fraction of the ideal SIMD speedup the auto-vectorizer realizes.
    vec_eff: f64,
    /// Nanoseconds per data-dependent branch evaluation.
    branch_ns: f64,
    /// Fixed nanoseconds per emitted loop (setup, remainder handling).
    loop_ns: f64,
    /// Cost multiplier of libm calls relative to a flop.
    transcendental: f64,
}

impl CostModel {
    /// x86-64 + GCC (the configuration also measured natively).
    pub fn x86_gcc() -> Self {
        CostModel {
            arch: Arch::X86,
            compiler: CompilerProfile::Gcc,
            base_ns: 0.40,
            simd_lanes: 8.0,
            vec_eff: 0.60,
            branch_ns: 0.6,
            loop_ns: 2.0,
            transcendental: 12.0,
        }
    }

    /// x86-64 + Clang.
    pub fn x86_clang() -> Self {
        CostModel {
            compiler: CompilerProfile::Clang,
            vec_eff: 0.75,
            ..CostModel::x86_gcc()
        }
    }

    /// ARM Cortex-A72 + GCC.
    pub fn arm_gcc() -> Self {
        CostModel {
            arch: Arch::Arm,
            compiler: CompilerProfile::Gcc,
            base_ns: 1.60,
            simd_lanes: 2.0,
            vec_eff: 0.60,
            branch_ns: 9.6,
            loop_ns: 7.0,
            transcendental: 14.0,
        }
    }

    /// ARM Cortex-A72 + Clang.
    pub fn arm_clang() -> Self {
        CostModel {
            compiler: CompilerProfile::Clang,
            vec_eff: 0.75,
            ..CostModel::arm_gcc()
        }
    }

    /// All four configurations in the paper's order
    /// (x86 GCC, x86 Clang, ARM GCC, ARM Clang).
    pub fn all() -> [CostModel; 4] {
        [
            CostModel::x86_gcc(),
            CostModel::x86_clang(),
            CostModel::arm_gcc(),
            CostModel::arm_clang(),
        ]
    }

    /// Short label, e.g. `x86/gcc`.
    pub fn label(&self) -> String {
        format!(
            "{}/{}",
            match self.arch {
                Arch::X86 => "x86",
                Arch::Arm => "arm",
            },
            match self.compiler {
                CompilerProfile::Gcc => "gcc",
                CompilerProfile::Clang => "clang",
            }
        )
    }

    /// SIMD speedup factor a statement enjoys under this model, considering
    /// the generator style's interaction with the vectorizer.
    fn speedup(&self, style: GeneratorStyle, stmt: &Stmt) -> f64 {
        // memcpy-like moves vectorize regardless of the surrounding code.
        let memlike = matches!(
            stmt,
            Stmt::Copy { .. }
                | Stmt::Fill { .. }
                | Stmt::StateLoad { .. }
                | Stmt::StateStore { .. }
        );
        if memlike {
            return (self.simd_lanes * 0.9).max(1.0);
        }
        if !stmt.is_vectorizable() {
            return 1.0;
        }
        // Variable-bound inner reduction loops (convolution windows, FIR
        // taps, dot products) are where auto-vectorizers lose efficiency and
        // where HCG's explicit batching shines — the source of the mixed
        // HCG-vs-DFSynth results in the paper's Table 2.
        let window_reduction = matches!(
            stmt,
            Stmt::Conv { .. }
                | Stmt::Fir { .. }
                | Stmt::MovingAvg { .. }
                | Stmt::Dot { .. }
                | Stmt::Reduce { .. }
        );
        match style {
            // Simulink "indeed employs some optimization techniques,
            // including SIMD instruction utilization" but "usually fails to
            // effectively identify the target blocks" — partial uptake on
            // plain elementwise loops, none on windowed reductions.
            GeneratorStyle::SimulinkCoder => {
                if window_reduction {
                    1.0
                } else {
                    (self.simd_lanes * self.vec_eff * 0.5).max(1.0)
                }
            }
            // Explicit 4-wide batching: effective even on reductions, but
            // caps the width below wide-SIMD hosts.
            GeneratorStyle::Hcg => (self.simd_lanes.min(4.0) * 0.85).max(1.0),
            // Clean loops: the compiler auto-vectorizes at profile
            // efficiency, with a reduction penalty on windowed loops.
            GeneratorStyle::DfSynth | GeneratorStyle::Frodo => {
                let eff = if window_reduction {
                    self.vec_eff * 0.5
                } else {
                    self.vec_eff
                };
                (self.simd_lanes * eff).max(1.0)
            }
        }
    }

    /// Number of `f64` SIMD lanes (drives the CLI's default `--vectorize
    /// batch` width).
    pub fn lanes(&self) -> usize {
        self.simd_lanes as usize
    }

    /// Estimated nanoseconds for one statement (the historical
    /// [`VectorMode::Auto`] emission).
    pub fn stmt_ns(&self, style: GeneratorStyle, stmt: &Stmt) -> f64 {
        self.stmt_ns_with(style, stmt, VectorMode::Auto)
    }

    /// Estimated nanoseconds for one statement under an explicit emission
    /// vector mode.
    ///
    /// `Auto` reproduces [`CostModel::stmt_ns`] exactly. `Off` strips HCG's
    /// explicit batching, leaving clean scalar loops the compiler
    /// auto-vectorizes at profile efficiency. `Hints` additionally models
    /// the restrict/alignment annotations raising realized vectorizer
    /// efficiency. `Batch(w)` models explicit `w`-wide batching on
    /// vectorizable statements — effective even on reductions, but with
    /// HCG-like per-loop setup overhead.
    pub fn stmt_ns_with(&self, style: GeneratorStyle, stmt: &Stmt, mode: VectorMode) -> f64 {
        // HCG's hand-batched loops (and our explicit `batch` emission)
        // carry extra setup (lane accumulators, remainder loops) and block
        // other compiler optimizations — the paper's assembly analysis
        // calls the result "verbose and lengthy".
        let batched_overhead = (self.loop_ns * 2.5, 1.12);
        let plain = (self.loop_ns, 1.0);
        // with batching stripped, HCG presents the same clean loops as
        // DFSynth; the other styles never batched, so they are unchanged
        let unbatched_style = if style == GeneratorStyle::Hcg {
            GeneratorStyle::DfSynth
        } else {
            style
        };
        let (speed, (loop_ns, work_penalty)) = match mode {
            VectorMode::Auto => {
                let over = if style == GeneratorStyle::Hcg && stmt.is_vectorizable() {
                    batched_overhead
                } else {
                    plain
                };
                (self.speedup(style, stmt), over)
            }
            VectorMode::Off => (self.speedup(unbatched_style, stmt), plain),
            VectorMode::Hints => {
                let base = self.speedup(unbatched_style, stmt);
                let speed = if stmt.is_vectorizable() {
                    (base * 1.15).max(1.0)
                } else {
                    base
                };
                (speed, plain)
            }
            VectorMode::Batch(w) => {
                if stmt.is_vectorizable() {
                    (
                        (self.simd_lanes.min(w as f64) * 0.85).max(1.0),
                        batched_overhead,
                    )
                } else {
                    (self.speedup(unbatched_style, stmt), plain)
                }
            }
        };
        let scalar_work: f64 = match stmt {
            Stmt::Unary { op, len, .. } => {
                let w = if op.is_transcendental() {
                    self.transcendental
                } else {
                    match op {
                        UnOp::Sat(..) => 2.0,
                        UnOp::Not => 1.5,
                        _ => 1.0,
                    }
                };
                *len as f64 * w
            }
            Stmt::FusedUnary { ops, len, .. } => {
                let w: f64 = ops
                    .iter()
                    .map(|op| {
                        if op.is_transcendental() {
                            self.transcendental
                        } else {
                            match op {
                                UnOp::Sat(..) => 2.0,
                                UnOp::Not => 1.5,
                                _ => 1.0,
                            }
                        }
                    })
                    .sum();
                *len as f64 * w
            }
            Stmt::Binary { op, len, .. } => {
                use frodo_codegen::lir::BinOp;
                let w = match op {
                    BinOp::Div => 4.0,
                    BinOp::Mod => 10.0,
                    BinOp::Min | BinOp::Max => 1.2,
                    BinOp::And | BinOp::Or | BinOp::Xor => 1.5,
                    _ => 1.0,
                };
                *len as f64 * w
            }
            Stmt::Select { len, .. } => *len as f64 * (1.0 + self.branch_ns / self.base_ns * 0.3),
            Stmt::Copy { len, .. }
            | Stmt::Fill { len, .. }
            | Stmt::StateLoad { len, .. }
            | Stmt::StateStore { len, .. } => *len as f64 * 0.5,
            Stmt::Gather { indices, .. } => indices.len() as f64 * 2.0,
            Stmt::DynGather { len, .. } => {
                *len as f64 * (2.0 + 2.0 * self.branch_ns / self.base_ns)
            }
            Stmt::Reduce { len, .. } => *len as f64 * 1.3,
            Stmt::Dot { len, .. } => *len as f64 * 1.3,
            Stmt::Conv {
                u_len,
                v_len,
                k0,
                k1,
                style: cs,
                ..
            } => match cs {
                ConvStyle::Tight => {
                    let mut inner = 0usize;
                    for k in *k0..*k1 {
                        let lo = k.saturating_sub(v_len - 1);
                        let hi = k.min(u_len - 1);
                        inner += hi - lo + 1;
                    }
                    inner as f64 * 1.1 + (*k1 - *k0) as f64 * 1.5
                }
                ConvStyle::Branchy => {
                    // kernel-major loop with a boundary judgment per tap
                    // (the paper's Figure 1 green code); the data-dependent
                    // guard defeats vectorization and costs a branch per trip
                    let trips = (*k1 - *k0) * u_len.min(v_len);
                    let taken: usize = (*k0..*k1)
                        .map(|k| k.min(u_len - 1) - k.saturating_sub(v_len - 1) + 1)
                        .sum();
                    let guard = self.branch_ns / self.base_ns;
                    trips as f64 * guard + taken as f64 * 1.1
                }
            },
            Stmt::Fir { taps, k0, k1, .. } => {
                let inner: usize = (*k0..*k1).map(|k| k.min(taps - 1) + 1).sum();
                inner as f64 * 1.1 + (*k1 - *k0) as f64 * 1.5
            }
            Stmt::MovingAvg { window, k0, k1, .. } => {
                let inner: usize = (*k0..*k1)
                    .map(|k| k - k.saturating_sub(window - 1) + 1)
                    .sum();
                inner as f64 * 1.0 + (*k1 - *k0) as f64 * 2.0
            }
            Stmt::CumSum { k_end, .. } => *k_end as f64 * 2.0, // serial chain
            Stmt::Diff { k0, k1, .. } => (*k1 - *k0) as f64 * 1.0,
            Stmt::MatMul { k, n, r0, r1, .. } => ((*r1 - *r0) * *n * *k) as f64 * 1.1,
            Stmt::Transpose { rows, cols, .. } => (*rows * *cols) as f64 * 1.5,
            Stmt::WindowedReuse {
                src_len,
                window,
                k0,
                k1,
                ..
            } => {
                // seed sum once, then a conditional add/subtract pair and a
                // scaled store per element, plus the window-tail retention
                let seed = (k0.min(&(src_len - 1)) + 1 - (k0 + 1).saturating_sub(*window)) as f64;
                seed + (*k1 - *k0) as f64 * 3.0 + *window as f64 * 0.5
            }
        };
        loop_ns + scalar_work * work_penalty * self.base_ns / speed
    }

    /// Estimated nanoseconds for one step of a program.
    pub fn program_ns(&self, program: &Program) -> f64 {
        self.program_ns_with(program, VectorMode::Auto)
    }

    /// [`CostModel::program_ns`] under an explicit emission vector mode.
    pub fn program_ns_with(&self, program: &Program, mode: VectorMode) -> f64 {
        let call_overhead = 5.0;
        call_overhead
            + program
                .stmts
                .iter()
                .map(|s| self.stmt_ns_with(program.style, s, mode))
                .sum::<f64>()
    }

    /// Estimated seconds for `iters` repetitions (the paper's measurement
    /// protocol: 10 000 repetitions, averaged).
    pub fn execution_seconds(&self, program: &Program, iters: usize) -> f64 {
        self.program_ns(program) * iters as f64 / 1e9
    }
}

/// Floating-point operation count of one statement (adds, multiplies,
/// divides — not moves or index arithmetic). Architecture-independent:
/// this is the redundancy-elimination metric the window-reuse ablation
/// gates on, not a timing estimate.
pub fn stmt_flops(stmt: &Stmt) -> u64 {
    stmt.flops()
}

/// Total floating-point operations of one program step.
pub fn program_flops(program: &Program) -> u64 {
    program.stmts.iter().map(stmt_flops).sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use frodo_codegen::{generate, GeneratorStyle};
    use frodo_core::Analysis;
    use frodo_model::{Block, BlockKind, Model, SelectorMode, Tensor};
    use frodo_ranges::Shape;

    fn figure1() -> Analysis {
        let mut m = Model::new("conv");
        let i = m.add(Block::new(
            "in",
            BlockKind::Inport {
                index: 0,
                shape: Shape::Vector(200),
            },
        ));
        let k = m.add(Block::new(
            "k",
            BlockKind::Constant {
                value: Tensor::vector(vec![0.1; 31]),
            },
        ));
        let c = m.add(Block::new("conv", BlockKind::Convolution));
        // deep truncation: only a quarter of the convolution is consumed,
        // as in the paper's data-intensive benchmarks
        let s = m.add(Block::new(
            "sel",
            BlockKind::Selector {
                mode: SelectorMode::StartEnd {
                    start: 120,
                    end: 180,
                },
            },
        ));
        let o = m.add(Block::new("out", BlockKind::Outport { index: 0 }));
        m.connect(i, 0, c, 0).unwrap();
        m.connect(k, 0, c, 1).unwrap();
        m.connect(c, 0, s, 0).unwrap();
        m.connect(s, 0, o, 0).unwrap();
        Analysis::run(m).unwrap()
    }

    #[test]
    fn frodo_is_fastest_on_every_config() {
        let a = figure1();
        for cm in CostModel::all() {
            let frodo = cm.program_ns(&generate(
                &a,
                GeneratorStyle::Frodo,
                &frodo_obs::Trace::noop(),
            ));
            for style in [
                GeneratorStyle::SimulinkCoder,
                GeneratorStyle::DfSynth,
                GeneratorStyle::Hcg,
            ] {
                let other = cm.program_ns(&generate(&a, style, &frodo_obs::Trace::noop()));
                assert!(
                    frodo < other,
                    "{}: frodo {frodo} !< {style} {other}",
                    cm.label()
                );
            }
        }
    }

    #[test]
    fn branchy_conv_is_much_slower_than_tight() {
        let a = figure1();
        let cm = CostModel::x86_gcc();
        let simulink = cm.program_ns(&generate(
            &a,
            GeneratorStyle::SimulinkCoder,
            &frodo_obs::Trace::noop(),
        ));
        let dfsynth = cm.program_ns(&generate(
            &a,
            GeneratorStyle::DfSynth,
            &frodo_obs::Trace::noop(),
        ));
        assert!(simulink > dfsynth * 1.5, "{simulink} vs {dfsynth}");
    }

    #[test]
    fn arm_improvement_exceeds_x86_improvement() {
        // the paper: narrower SIMD ⇒ code logic dominates ⇒ FRODO's ratio grows
        let a = figure1();
        let x86 = CostModel::x86_gcc();
        let arm = CostModel::arm_gcc();
        let ratio = |cm: &CostModel| {
            cm.program_ns(&generate(
                &a,
                GeneratorStyle::SimulinkCoder,
                &frodo_obs::Trace::noop(),
            )) / cm.program_ns(&generate(
                &a,
                GeneratorStyle::Frodo,
                &frodo_obs::Trace::noop(),
            ))
        };
        assert!(ratio(&arm) > ratio(&x86) * 0.9);
    }

    #[test]
    fn clang_profile_is_faster_on_clean_code() {
        let a = figure1();
        let p = generate(&a, GeneratorStyle::Frodo, &frodo_obs::Trace::noop());
        assert!(CostModel::x86_clang().program_ns(&p) < CostModel::x86_gcc().program_ns(&p));
    }

    #[test]
    fn labels_are_stable() {
        assert_eq!(CostModel::x86_gcc().label(), "x86/gcc");
        assert_eq!(CostModel::arm_clang().label(), "arm/clang");
    }

    #[test]
    fn auto_mode_reproduces_the_plain_estimate() {
        let a = figure1();
        for style in GeneratorStyle::ALL {
            let p = generate(&a, style, &frodo_obs::Trace::noop());
            for cm in CostModel::all() {
                assert_eq!(
                    cm.program_ns(&p),
                    cm.program_ns_with(&p, VectorMode::Auto),
                    "{} {style}",
                    cm.label()
                );
            }
        }
    }

    #[test]
    fn window_reuse_cuts_flops_on_the_convolution_benchmark() {
        use frodo_codegen::{generate_with, optimize::window_reuse, LowerOptions};
        let a = figure1();
        let p = generate_with(
            &a,
            GeneratorStyle::Frodo,
            LowerOptions::default(),
            &frodo_obs::Trace::noop(),
        );
        let reused = window_reuse(&p);
        assert!(
            program_flops(&reused) < program_flops(&p) / 2,
            "reuse {} !< half of scalar {}",
            program_flops(&reused),
            program_flops(&p)
        );
    }

    #[test]
    fn batch_plus_reuse_beats_scalar_frodo_by_1_5x() {
        // the PR's acceptance gate, checked at unit granularity: explicit
        // 8-wide batching plus window reuse vs the scalar FRODO emission
        use frodo_codegen::{generate_with, optimize::window_reuse, LowerOptions};
        let a = figure1();
        let scalar = generate_with(
            &a,
            GeneratorStyle::Frodo,
            LowerOptions::default(),
            &frodo_obs::Trace::noop(),
        );
        let reused = window_reuse(&scalar);
        let cm = CostModel::x86_gcc();
        let base = cm.program_ns_with(&scalar, VectorMode::Off);
        let tuned = cm.program_ns_with(&reused, VectorMode::Batch(8));
        assert!(
            base / tuned >= 1.5,
            "predicted speedup {:.2} < 1.5 ({base} vs {tuned})",
            base / tuned
        );
    }

    #[test]
    fn batch_width_caps_at_the_lane_count() {
        let a = figure1();
        let p = generate(&a, GeneratorStyle::Frodo, &frodo_obs::Trace::noop());
        let cm = CostModel::arm_gcc();
        // requesting 8 lanes on a 2-lane target must not beat the 2-wide run
        let wide = cm.program_ns_with(&p, VectorMode::Batch(8));
        let narrow = cm.program_ns_with(&p, VectorMode::Batch(2));
        assert_eq!(wide, narrow);
    }

    #[test]
    fn lane_accessor_matches_the_paper_targets() {
        assert_eq!(CostModel::x86_gcc().lanes(), 8);
        assert_eq!(CostModel::arm_gcc().lanes(), 2);
    }

    #[test]
    fn execution_seconds_scales_with_iters() {
        let a = figure1();
        let p = generate(&a, GeneratorStyle::Frodo, &frodo_obs::Trace::noop());
        let cm = CostModel::x86_gcc();
        let one = cm.execution_seconds(&p, 1);
        let many = cm.execution_seconds(&p, 10_000);
        assert!((many / one - 10_000.0).abs() < 1e-6);
    }
}
