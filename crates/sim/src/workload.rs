//! Deterministic random workload generation.
//!
//! The paper validates generated code with "a large number of random test
//! cases"; these helpers produce reproducible random inputs for any model.

use crate::rng::Rng;
use frodo_graph::Dfg;
use frodo_model::{BlockKind, Tensor};

/// Random input tensors for one step of a model, ordered by inport index.
///
/// Values are uniform in `[-1, 1)`; the same `seed` always produces the
/// same workload.
pub fn random_inputs(dfg: &Dfg, seed: u64) -> Vec<Tensor> {
    let mut rng = Rng::seed_from_u64(seed);
    let mut ports: Vec<(usize, frodo_ranges::Shape)> = dfg
        .model()
        .blocks()
        .iter()
        .filter_map(|b| match b.kind {
            BlockKind::Inport { index, shape } => Some((index, shape)),
            _ => None,
        })
        .collect();
    ports.sort_by_key(|&(i, _)| i);
    ports
        .into_iter()
        .map(|(_, shape)| {
            let data = (0..shape.numel()).map(|_| rng.uniform(-1.0, 1.0)).collect();
            Tensor::new(shape, data)
        })
        .collect()
}

/// Random inputs as raw `f64` vectors (the VM's argument form).
pub fn random_input_vecs(dfg: &Dfg, seed: u64) -> Vec<Vec<f64>> {
    random_inputs(dfg, seed)
        .into_iter()
        .map(Tensor::into_data)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use frodo_model::{Block, Model};
    use frodo_ranges::Shape;

    fn two_input_model() -> Dfg {
        let mut m = Model::new("w");
        let a = m.add(Block::new(
            "a",
            BlockKind::Inport {
                index: 0,
                shape: Shape::Vector(4),
            },
        ));
        let b = m.add(Block::new(
            "b",
            BlockKind::Inport {
                index: 1,
                shape: Shape::Scalar,
            },
        ));
        let add = m.add(Block::new("add", BlockKind::Add));
        let o = m.add(Block::new("o", BlockKind::Outport { index: 0 }));
        m.connect(a, 0, add, 0).unwrap();
        m.connect(b, 0, add, 1).unwrap();
        m.connect(add, 0, o, 0).unwrap();
        Dfg::new(m, &frodo_obs::Trace::noop()).unwrap()
    }

    #[test]
    fn shapes_match_inports_in_index_order() {
        let dfg = two_input_model();
        let ins = random_inputs(&dfg, 1);
        assert_eq!(ins.len(), 2);
        assert_eq!(ins[0].shape(), Shape::Vector(4));
        assert_eq!(ins[1].shape(), Shape::Scalar);
    }

    #[test]
    fn same_seed_same_workload() {
        let dfg = two_input_model();
        assert_eq!(random_inputs(&dfg, 42), random_inputs(&dfg, 42));
        assert_ne!(random_inputs(&dfg, 42), random_inputs(&dfg, 43));
    }

    #[test]
    fn values_bounded() {
        let dfg = two_input_model();
        for t in random_inputs(&dfg, 7) {
            assert!(t.data().iter().all(|v| (-1.0..1.0).contains(v)));
        }
    }
}
