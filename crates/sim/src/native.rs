//! Native compile-and-run harness (real `gcc -O3`, the paper's protocol).
//!
//! Used for the x86/GCC column when a C compiler is available on the host;
//! the other columns fall back to the [`CostModel`](crate::CostModel).

use frodo_codegen::lir::Program;
use frodo_codegen::{emit_c_harness_with, CEmitOptions, GeneratorStyle};
use std::fmt;
use std::io::Write as _;
use std::path::PathBuf;
use std::process::Command;
use std::sync::atomic::{AtomicU64, Ordering};

/// Result of one native measurement.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NativeResult {
    /// Checksum of the outputs after the final iteration (for cross-checks).
    pub checksum: f64,
    /// Average nanoseconds per step-function call.
    pub ns_per_iter: f64,
}

/// Errors from the native harness.
#[derive(Debug)]
pub enum NativeError {
    /// No C compiler was found on the host.
    CompilerUnavailable,
    /// The compiler rejected the generated code (a codegen bug).
    CompileFailed {
        /// Compiler diagnostics.
        stderr: String,
    },
    /// The compiled binary failed or printed unparseable output.
    RunFailed {
        /// Explanation.
        reason: String,
    },
    /// Filesystem trouble while staging the sources.
    Io(std::io::Error),
}

impl fmt::Display for NativeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NativeError::CompilerUnavailable => write!(f, "no C compiler available"),
            NativeError::CompileFailed { stderr } => write!(f, "compile failed: {stderr}"),
            NativeError::RunFailed { reason } => write!(f, "run failed: {reason}"),
            NativeError::Io(e) => write!(f, "io error: {e}"),
        }
    }
}

impl std::error::Error for NativeError {}

impl From<std::io::Error> for NativeError {
    fn from(e: std::io::Error) -> Self {
        NativeError::Io(e)
    }
}

/// Whether `gcc` can be invoked on this host.
pub fn gcc_available() -> bool {
    Command::new("gcc")
        .arg("--version")
        .output()
        .map(|o| o.status.success())
        .unwrap_or(false)
}

/// Compiler flags for a sanitized harness build: AddressSanitizer +
/// UndefinedBehaviorSanitizer, aborting on the first finding. `-O1`
/// instead of `-O3` keeps shadow-memory instrumentation intact.
pub const SANITIZE_FLAGS: [&str; 4] = [
    "-fsanitize=address,undefined",
    "-fno-sanitize-recover=all",
    "-g",
    "-O1",
];

/// Whether the host `gcc` can link an ASan/UBSan binary (the runtime
/// libraries are a separate package and may be missing even when `gcc`
/// itself works).
pub fn sanitizer_available() -> bool {
    if !gcc_available() {
        return false;
    }
    let dir = stage_dir();
    if std::fs::create_dir_all(&dir).is_err() {
        return false;
    }
    let c_path = dir.join("probe.c");
    let bin_path = dir.join("probe");
    let ok = std::fs::write(&c_path, "int main(void){return 0;}\n").is_ok()
        && Command::new("gcc")
            .args(SANITIZE_FLAGS)
            .arg("-o")
            .arg(&bin_path)
            .arg(&c_path)
            .output()
            .map(|o| o.status.success())
            .unwrap_or(false);
    let _ = std::fs::remove_dir_all(&dir);
    ok
}

static STAGE_COUNTER: AtomicU64 = AtomicU64::new(0);

fn stage_dir() -> PathBuf {
    let n = STAGE_COUNTER.fetch_add(1, Ordering::Relaxed);
    std::env::temp_dir().join(format!("frodo-native-{}-{n}", std::process::id()))
}

/// Compiles the program with `gcc -O3` and runs its timing harness.
///
/// # Errors
///
/// See [`NativeError`]; [`NativeError::CompilerUnavailable`] when the host
/// has no `gcc`.
pub fn compile_and_run(
    program: &Program,
    style: GeneratorStyle,
    iters: usize,
) -> Result<NativeResult, NativeError> {
    compile_and_run_with(program, style, iters, CEmitOptions::default())
}

/// [`compile_and_run`] with explicit emission options.
///
/// # Errors
///
/// Same as [`compile_and_run`].
pub fn compile_and_run_with(
    program: &Program,
    style: GeneratorStyle,
    iters: usize,
    opts: CEmitOptions,
) -> Result<NativeResult, NativeError> {
    compile_and_run_inner(program, style, iters, opts, false).map(|(r, _)| r)
}

/// [`compile_and_run_with`] under self-profiling emission: forces
/// `opts.profile` on and additionally returns the harness's stderr — the
/// per-statement profile in the `frodo-obs` NDJSON export schema, ready
/// for [`frodo_obs::ndjson::snapshot`].
///
/// # Errors
///
/// Same as [`compile_and_run`].
pub fn compile_and_run_profiled(
    program: &Program,
    style: GeneratorStyle,
    iters: usize,
    mut opts: CEmitOptions,
) -> Result<(NativeResult, String), NativeError> {
    opts.profile = true;
    compile_and_run_inner(program, style, iters, opts, false)
}

/// [`compile_and_run_profiled`] under ASan/UBSan ([`SANITIZE_FLAGS`]): the
/// dynamic counterpart of the static `analyze` stage. Any heap overflow,
/// use-after-free, or undefined behavior in the generated step function or
/// its profiling instrumentation aborts the run and surfaces as
/// [`NativeError::RunFailed`] carrying the sanitizer report.
///
/// # Errors
///
/// [`NativeError::CompilerUnavailable`] when `gcc` is missing **or** lacks
/// sanitizer runtimes (check [`sanitizer_available`] first to distinguish);
/// otherwise same as [`compile_and_run`].
pub fn compile_and_run_sanitized(
    program: &Program,
    style: GeneratorStyle,
    iters: usize,
    mut opts: CEmitOptions,
) -> Result<(NativeResult, String), NativeError> {
    opts.profile = true;
    compile_and_run_inner(program, style, iters, opts, true)
}

fn compile_and_run_inner(
    program: &Program,
    style: GeneratorStyle,
    iters: usize,
    opts: CEmitOptions,
    sanitize: bool,
) -> Result<(NativeResult, String), NativeError> {
    if !gcc_available() || (sanitize && !sanitizer_available()) {
        return Err(NativeError::CompilerUnavailable);
    }
    let dir = stage_dir();
    std::fs::create_dir_all(&dir)?;
    let c_path = dir.join(format!(
        "{}_{}.c",
        program.name,
        style.label().to_lowercase()
    ));
    let bin_path = dir.join(format!("{}_{}", program.name, style.label().to_lowercase()));
    {
        let mut f = std::fs::File::create(&c_path)?;
        f.write_all(emit_c_harness_with(program, iters, opts).as_bytes())?;
    }
    let mut gcc = Command::new("gcc");
    if sanitize {
        gcc.args(SANITIZE_FLAGS);
    } else {
        gcc.arg("-O3").arg("-march=native");
    }
    let out = gcc
        .arg("-o")
        .arg(&bin_path)
        .arg(&c_path)
        .arg("-lm")
        .output()?;
    if !out.status.success() {
        return Err(NativeError::CompileFailed {
            stderr: String::from_utf8_lossy(&out.stderr).into_owned(),
        });
    }
    let run = Command::new(&bin_path).output()?;
    if !run.status.success() {
        // a sanitized binary aborts with its report on stderr — forward it
        let stderr = String::from_utf8_lossy(&run.stderr);
        return Err(NativeError::RunFailed {
            reason: format!(
                "exit status {:?}{}",
                run.status.code(),
                if stderr.trim().is_empty() {
                    String::new()
                } else {
                    format!(": {}", stderr.trim())
                }
            ),
        });
    }
    let text = String::from_utf8_lossy(&run.stdout);
    let mut parts = text.split_whitespace();
    let checksum: f64 =
        parts
            .next()
            .and_then(|s| s.parse().ok())
            .ok_or_else(|| NativeError::RunFailed {
                reason: format!("bad output: {text}"),
            })?;
    let ns_per_iter: f64 =
        parts
            .next()
            .and_then(|s| s.parse().ok())
            .ok_or_else(|| NativeError::RunFailed {
                reason: format!("bad output: {text}"),
            })?;
    let _ = std::fs::remove_dir_all(&dir);
    Ok((
        NativeResult {
            checksum,
            ns_per_iter,
        },
        String::from_utf8_lossy(&run.stderr).into_owned(),
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use frodo_codegen::generate;
    use frodo_core::Analysis;
    use frodo_model::{Block, BlockKind, Model, SelectorMode, Tensor};
    use frodo_ranges::Shape;

    fn figure1() -> Analysis {
        let mut m = Model::new("conv");
        let i = m.add(Block::new(
            "in",
            BlockKind::Inport {
                index: 0,
                shape: Shape::Vector(50),
            },
        ));
        let k = m.add(Block::new(
            "k",
            BlockKind::Constant {
                value: Tensor::vector(vec![0.1; 11]),
            },
        ));
        let c = m.add(Block::new("conv", BlockKind::Convolution));
        let s = m.add(Block::new(
            "sel",
            BlockKind::Selector {
                mode: SelectorMode::StartEnd { start: 5, end: 55 },
            },
        ));
        let o = m.add(Block::new("out", BlockKind::Outport { index: 0 }));
        m.connect(i, 0, c, 0).unwrap();
        m.connect(k, 0, c, 1).unwrap();
        m.connect(c, 0, s, 0).unwrap();
        m.connect(s, 0, o, 0).unwrap();
        Analysis::run(m).unwrap()
    }

    #[test]
    fn profiled_native_run_emits_parseable_ndjson() {
        if !gcc_available() {
            eprintln!("skipping: gcc not available");
            return;
        }
        let a = figure1();
        let p = generate(&a, GeneratorStyle::Frodo, &frodo_obs::Trace::noop());
        let (r, profile) =
            compile_and_run_profiled(&p, GeneratorStyle::Frodo, 50, CEmitOptions::default())
                .expect("profiled native run");
        assert!(r.ns_per_iter >= 0.0);
        let snap = frodo_obs::ndjson::snapshot(&profile).expect("profile parses");
        // one root span plus one span per statement
        assert_eq!(snap.spans.len(), p.stmts.len() + 1);
        assert!(snap.spans.iter().any(|s| s.name == "prof:conv"));
        // a calls and a flops counter per statement, counting every rep
        assert_eq!(snap.counters.len(), 2 * p.stmts.len());
        let conv_calls = snap
            .counters
            .iter()
            .find(|c| c.name.ends_with("_conv_calls"))
            .expect("conv calls counter");
        assert_eq!(conv_calls.value, 50);
        // the conv statement ran, so it has a latency histogram whose
        // count matches its calls counter
        let conv_hist = snap
            .histograms
            .iter()
            .find(|(name, _)| name.ends_with("_conv_ns"))
            .expect("conv latency histogram");
        assert_eq!(conv_hist.1.count(), 50);
        // measured flops match the static model exactly, per statement
        let ci = p
            .stmts
            .iter()
            .position(|s| s.kind_label() == "conv")
            .expect("conv statement");
        let conv_flops = snap
            .counters
            .iter()
            .find(|c| c.name == format!("stmt_{ci}_conv_flops"))
            .expect("conv flops counter");
        assert_eq!(conv_flops.value, 50 * p.stmts[ci].flops());
    }

    #[test]
    fn sanitized_profiled_run_is_clean_and_matches_plain_checksum() {
        if !sanitizer_available() {
            eprintln!("skipping: gcc sanitizer runtimes not available");
            return;
        }
        let a = figure1();
        let p = generate(&a, GeneratorStyle::Frodo, &frodo_obs::Trace::noop());
        let (san, profile) =
            compile_and_run_sanitized(&p, GeneratorStyle::Frodo, 5, CEmitOptions::default())
                .expect("sanitized run must be ASan/UBSan-clean");
        let plain = compile_and_run(&p, GeneratorStyle::Frodo, 5).expect("plain run");
        assert!(
            (san.checksum - plain.checksum).abs() < 1e-9,
            "sanitized vs plain checksum: {} vs {}",
            san.checksum,
            plain.checksum
        );
        // the profile dump still parses under instrumentation
        let snap = frodo_obs::ndjson::snapshot(&profile).expect("profile parses");
        assert_eq!(snap.spans.len(), p.stmts.len() + 1);
    }

    #[test]
    fn native_checksums_agree_across_styles() {
        if !gcc_available() {
            eprintln!("skipping: gcc not available");
            return;
        }
        let a = figure1();
        let mut checksums = Vec::new();
        for style in GeneratorStyle::ALL {
            let p = generate(&a, style, &frodo_obs::Trace::noop());
            let r = compile_and_run(&p, style, 3).expect("native run");
            checksums.push(r.checksum);
        }
        for w in checksums.windows(2) {
            assert!(
                (w[0] - w[1]).abs() < 1e-9,
                "checksum mismatch across styles: {checksums:?}"
            );
        }
    }
}
