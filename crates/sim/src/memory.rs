//! Static memory accounting (the paper's §5 memory study).
//!
//! The paper finds all generators "use the same quantity of variables and
//! abstain from memory allocation functions such as malloc", so memory is
//! identical across them. Our generators allocate the same buffer set for
//! every style; this module measures it.

use frodo_codegen::lir::{BufferRole, Program};

/// Static memory footprint of a generated program.
///
/// # Example
///
/// ```
/// use frodo_codegen::lir::{Buffer, BufferRole, Program};
/// use frodo_codegen::GeneratorStyle;
/// use frodo_sim::MemoryReport;
///
/// let p = Program {
///     name: "m".into(),
///     style: GeneratorStyle::Frodo,
///     buffers: vec![
///         Buffer { name: "t".into(), len: 4, role: BufferRole::Temp },
///         Buffer { name: "k".into(), len: 2, role: BufferRole::Const(vec![1.0, 2.0]) },
///     ],
///     stmts: vec![],
/// };
/// let r = MemoryReport::of(&p);
/// assert_eq!(r.static_bytes, 32);
/// assert_eq!(r.const_bytes, 16);
/// assert_eq!(r.total_bytes(), 48);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MemoryReport {
    /// Bytes of writable static data (temp + state buffers).
    pub static_bytes: usize,
    /// Bytes of read-only constant data.
    pub const_bytes: usize,
    /// Bytes moved through the step-function interface (inputs + outputs).
    pub interface_bytes: usize,
}

impl MemoryReport {
    /// Measures a program.
    pub fn of(program: &Program) -> Self {
        let mut static_bytes = 0;
        let mut const_bytes = 0;
        let mut interface_bytes = 0;
        for b in &program.buffers {
            let bytes = b.len * std::mem::size_of::<f64>();
            match b.role {
                BufferRole::Temp | BufferRole::State(_) => static_bytes += bytes,
                BufferRole::Const(_) => const_bytes += bytes,
                BufferRole::Input(_) | BufferRole::Output(_) => interface_bytes += bytes,
            }
        }
        MemoryReport {
            static_bytes,
            const_bytes,
            interface_bytes,
        }
    }

    /// Total bytes across all categories.
    pub fn total_bytes(&self) -> usize {
        self.static_bytes + self.const_bytes + self.interface_bytes
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use frodo_codegen::{generate, GeneratorStyle};
    use frodo_core::Analysis;
    use frodo_model::{Block, BlockKind, Model, SelectorMode, Tensor};
    use frodo_ranges::Shape;

    #[test]
    fn memory_is_identical_across_styles() {
        let mut m = Model::new("conv");
        let i = m.add(Block::new(
            "in",
            BlockKind::Inport {
                index: 0,
                shape: Shape::Vector(50),
            },
        ));
        let k = m.add(Block::new(
            "k",
            BlockKind::Constant {
                value: Tensor::vector(vec![0.1; 11]),
            },
        ));
        let c = m.add(Block::new("conv", BlockKind::Convolution));
        let s = m.add(Block::new(
            "sel",
            BlockKind::Selector {
                mode: SelectorMode::StartEnd { start: 5, end: 55 },
            },
        ));
        let o = m.add(Block::new("out", BlockKind::Outport { index: 0 }));
        m.connect(i, 0, c, 0).unwrap();
        m.connect(k, 0, c, 1).unwrap();
        m.connect(c, 0, s, 0).unwrap();
        m.connect(s, 0, o, 0).unwrap();
        let a = Analysis::run(m).unwrap();
        let reports: Vec<MemoryReport> = GeneratorStyle::ALL
            .iter()
            .map(|&st| MemoryReport::of(&generate(&a, st, &frodo_obs::Trace::noop())))
            .collect();
        assert!(reports.windows(2).all(|w| w[0] == w[1]), "{reports:?}");
        // figure1: conv(60) + sel(50) temps, kernel 11 consts, 50 in + 50 out
        assert_eq!(reports[0].static_bytes, (60 + 50) * 8);
        assert_eq!(reports[0].const_bytes, 11 * 8);
        assert_eq!(reports[0].interface_bytes, (50 + 50) * 8);
        assert_eq!(reports[0].total_bytes(), (60 + 50 + 11 + 100) * 8);
    }
}
