//! A small deterministic PRNG (SplitMix64), vendored so the workspace
//! builds with zero registry access.
//!
//! The evaluation needs reproducible pseudo-random *workloads* — "a large
//! number of random test cases" (paper §4) — not cryptographic quality.
//! SplitMix64 (Steele, Lea & Flood, *Fast Splittable Pseudorandom Number
//! Generators*, OOPSLA 2014) passes BigCrush, seeds well from any `u64`
//! (including 0), and is four lines of arithmetic. Every consumer of
//! randomness in the workspace — workload generation, random model
//! generation, the bench harness — goes through this one generator, so a
//! seed identifies a workload forever.
//!
//! # Example
//!
//! ```
//! use frodo_sim::rng::Rng;
//!
//! let mut a = Rng::seed_from_u64(42);
//! let mut b = Rng::seed_from_u64(42);
//! assert_eq!(a.next_u64(), b.next_u64()); // same seed, same stream
//! let x = a.uniform(-1.0, 1.0);
//! assert!((-1.0..1.0).contains(&x));
//! ```

/// A deterministic SplitMix64 generator.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Rng {
    state: u64,
}

impl Rng {
    /// Creates a generator whose stream depends only on `seed`.
    pub fn seed_from_u64(seed: u64) -> Self {
        Rng { state: seed }
    }

    /// The next 64 uniformly distributed bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// A uniform `f64` in `[0, 1)` with 53 bits of precision.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }

    /// A uniform `f64` in `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics if `lo >= hi`.
    pub fn uniform(&mut self, lo: f64, hi: f64) -> f64 {
        assert!(lo < hi, "uniform: empty range [{lo}, {hi})");
        lo + (hi - lo) * self.next_f64()
    }

    /// A uniform index in `[0, n)`.
    ///
    /// The modulo bias is below 2⁻⁵⁰ for every `n` in this codebase
    /// (workload sizes are far below 2¹⁴), so no rejection loop is needed.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn below(&mut self, n: usize) -> usize {
        assert!(n > 0, "below: empty range");
        (self.next_u64() % n as u64) as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reference_vector_seed_zero() {
        // First outputs of SplitMix64 with seed 0, from the reference
        // implementation (Vigna's splitmix64.c).
        let mut rng = Rng::seed_from_u64(0);
        assert_eq!(rng.next_u64(), 0xE220_A839_7B1D_CDAF);
        assert_eq!(rng.next_u64(), 0x6E78_9E6A_A1B9_65F4);
        assert_eq!(rng.next_u64(), 0x06C4_5D18_8009_454F);
    }

    #[test]
    fn deterministic_per_seed_and_seed_sensitive() {
        let a: Vec<u64> = (0..8)
            .map({
                let mut r = Rng::seed_from_u64(7);
                move |_| r.next_u64()
            })
            .collect();
        let b: Vec<u64> = (0..8)
            .map({
                let mut r = Rng::seed_from_u64(7);
                move |_| r.next_u64()
            })
            .collect();
        let c: Vec<u64> = (0..8)
            .map({
                let mut r = Rng::seed_from_u64(8);
                move |_| r.next_u64()
            })
            .collect();
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut rng = Rng::seed_from_u64(3);
        for _ in 0..1000 {
            let x = rng.next_f64();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn uniform_respects_bounds() {
        let mut rng = Rng::seed_from_u64(4);
        for _ in 0..1000 {
            let x = rng.uniform(-1.0, 1.0);
            assert!((-1.0..1.0).contains(&x));
        }
    }

    #[test]
    fn below_covers_all_residues() {
        let mut rng = Rng::seed_from_u64(5);
        let mut seen = [false; 7];
        for _ in 0..200 {
            seen[rng.below(7)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }
}
