//! Cross-run comparison and the CI regression gate: deterministic
//! counters must match *exactly* between two runs of the same input
//! (drift means the pipeline is non-deterministic or its behaviour
//! changed), while wall times get a tolerance band expressed as a
//! percentage (`--fail-over PCT`). A percentage of 0 disables wall
//! gating entirely, leaving the counters-only determinism check.

use crate::ledger::LedgerEntry;
use std::fmt::Write as _;

/// The outcome of comparing two runs.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Diff {
    /// Deterministic-counter mismatches: `(name, old, new)`. Any entry
    /// here fails the gate.
    pub drifts: Vec<(String, i64, i64)>,
    /// Wall-time regressions past the tolerance band:
    /// `(what, old_ns, new_ns, pct_over)`.
    pub regressions: Vec<(String, u64, u64, f64)>,
    /// Informational differences that do not fail the gate (engine or
    /// thread-count changes, counters present on one side only by
    /// design).
    pub notes: Vec<String>,
}

impl Diff {
    /// True when the gate passes: no counter drift and no wall-time
    /// regression past the band.
    pub fn ok(&self) -> bool {
        self.drifts.is_empty() && self.regressions.is_empty()
    }

    /// Renders the comparison for humans: verdict first, then drifts,
    /// regressions, and notes.
    pub fn render(&self) -> String {
        let mut out = String::new();
        if self.ok() {
            out.push_str("ok: no counter drift, no wall-time regressions\n");
        } else {
            let _ = writeln!(
                out,
                "FAIL: {} counter drift(s), {} wall-time regression(s)",
                self.drifts.len(),
                self.regressions.len()
            );
        }
        for (name, old, new) in &self.drifts {
            let _ = writeln!(out, "  drift   {name}: {old} -> {new}");
        }
        for (what, old, new, pct) in &self.regressions {
            let _ = writeln!(out, "  slower  {what}: {old} ns -> {new} ns (+{pct:.1}%)");
        }
        for note in &self.notes {
            let _ = writeln!(out, "  note    {note}");
        }
        out
    }
}

/// Compares two runs. Counters recorded in *both* entries must agree
/// exactly; a counter present on one side only is a drift too (the set
/// of counters a deterministic pipeline emits is itself deterministic).
/// When `fail_over_pct > 0`, per-stage wall sums and the total wall time
/// in `new` may exceed `old` by at most that percentage. Engine or
/// configuration differences are reported as notes, not failures — the
/// caller chose to compare those runs.
pub fn diff_entries(old: &LedgerEntry, new: &LedgerEntry, fail_over_pct: f64) -> Diff {
    let mut d = Diff::default();

    if old.engine != new.engine {
        d.notes
            .push(format!("engine changed: {} -> {}", old.engine, new.engine));
    }
    if old.threads != new.threads {
        d.notes.push(format!(
            "threads changed: {} -> {}",
            old.threads, new.threads
        ));
    }
    if old.workers != new.workers {
        d.notes.push(format!(
            "workers changed: {} -> {}",
            old.workers, new.workers
        ));
    }
    if old.jobs != new.jobs {
        d.drifts
            .push(("jobs".to_string(), old.jobs as i64, new.jobs as i64));
    }

    // walk the two sorted counter lists in lockstep
    let (mut i, mut j) = (0, 0);
    while i < old.counters.len() || j < new.counters.len() {
        let left = old.counters.get(i);
        let right = new.counters.get(j);
        match (left, right) {
            (Some((ln, lv)), Some((rn, rv))) if ln == rn => {
                if lv != rv {
                    d.drifts.push((ln.clone(), *lv, *rv));
                }
                i += 1;
                j += 1;
            }
            (Some((ln, lv)), Some((rn, _))) if ln < rn => {
                d.drifts.push((ln.clone(), *lv, 0));
                i += 1;
            }
            (Some(_), Some((rn, rv))) => {
                d.drifts.push((rn.clone(), 0, *rv));
                j += 1;
            }
            (Some((ln, lv)), None) => {
                d.drifts.push((ln.clone(), *lv, 0));
                i += 1;
            }
            (None, Some((rn, rv))) => {
                d.drifts.push((rn.clone(), 0, *rv));
                j += 1;
            }
            (None, None) => unreachable!(),
        }
    }

    if fail_over_pct > 0.0 {
        let band = 1.0 + fail_over_pct / 100.0;
        let mut gate = |what: &str, old_ns: u64, new_ns: u64| {
            if old_ns > 0 && new_ns as f64 > old_ns as f64 * band {
                let pct = (new_ns as f64 / old_ns as f64 - 1.0) * 100.0;
                d.regressions.push((what.to_string(), old_ns, new_ns, pct));
            }
        };
        for (name, s_old) in &old.stages {
            if let Some(s_new) = new.stage(name) {
                gate(&format!("stage {name}"), s_old.sum_ns, s_new.sum_ns);
            }
        }
        gate("wall", old.wall_ns, new.wall_ns);
    }

    d
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::agg::aggregate;
    use crate::trace::Trace;

    fn entry_with(counters: &[(&str, i64)], wall_ns: u64) -> LedgerEntry {
        let t = Trace::new();
        {
            let job = t.span("job:m");
            let e = job.child("emit");
            for &(name, v) in counters {
                e.count(name, v as u64);
            }
        }
        let agg = aggregate(&t.snapshot());
        let mut entry = LedgerEntry::from_agg(&agg, "m", "dense", 1, 1, wall_ns);
        // pin the measured stage times so the band assertions are exact
        for (_, s) in &mut entry.stages {
            *s = crate::agg::StageSummary::default();
        }
        entry
    }

    #[test]
    fn identical_runs_pass_the_gate() {
        let a = entry_with(&[("stmts", 10), ("bytes_emitted", 99)], 1000);
        let b = entry_with(&[("stmts", 10), ("bytes_emitted", 99)], 1000);
        let d = diff_entries(&a, &b, 0.0);
        assert!(d.ok(), "{}", d.render());
        assert!(d.render().starts_with("ok:"));
    }

    #[test]
    fn counter_drift_fails_regardless_of_band() {
        let a = entry_with(&[("stmts", 10)], 1000);
        let b = entry_with(&[("stmts", 11)], 1000);
        let d = diff_entries(&a, &b, 50.0);
        assert!(!d.ok());
        assert_eq!(d.drifts, vec![("stmts".to_string(), 10, 11)]);
        assert!(d.render().contains("drift   stmts: 10 -> 11"));
    }

    #[test]
    fn one_sided_counters_are_drift() {
        let a = entry_with(&[("stmts", 10), ("only_old", 1)], 1000);
        let b = entry_with(&[("only_new", 2), ("stmts", 10)], 1000);
        let d = diff_entries(&a, &b, 0.0);
        let names: Vec<&str> = d.drifts.iter().map(|(n, _, _)| n.as_str()).collect();
        assert_eq!(names, vec!["only_new", "only_old"]);
        assert_eq!(d.drifts[0], ("only_new".to_string(), 0, 2));
        assert_eq!(d.drifts[1], ("only_old".to_string(), 1, 0));
    }

    #[test]
    fn wall_band_gates_only_when_positive() {
        let a = entry_with(&[("stmts", 1)], 1000);
        let b = entry_with(&[("stmts", 1)], 1200);
        // 0 disables wall gating: counters-only determinism mode
        assert!(diff_entries(&a, &b, 0.0).ok());
        // +20% is inside a 25% band
        assert!(diff_entries(&a, &b, 25.0).ok());
        // ...but outside a 10% band
        let d = diff_entries(&a, &b, 10.0);
        assert!(!d.ok());
        assert_eq!(d.regressions.len(), 1);
        let (what, old_ns, new_ns, pct) = &d.regressions[0];
        assert_eq!(what, "wall");
        assert_eq!((*old_ns, *new_ns), (1000, 1200));
        assert!((pct - 20.0).abs() < 1e-9);
        // getting faster never fails
        assert!(diff_entries(&b, &a, 10.0).ok());
    }

    #[test]
    fn config_changes_are_notes_not_failures() {
        let a = entry_with(&[("stmts", 1)], 1000);
        let mut b = entry_with(&[("stmts", 1)], 1000);
        b.engine = "parallel".to_string();
        b.threads = 4;
        let d = diff_entries(&a, &b, 0.0);
        assert!(d.ok());
        assert_eq!(d.notes.len(), 2);
        assert!(d.render().contains("engine changed: dense -> parallel"));
    }

    #[test]
    fn missing_stage_on_one_side_is_skipped_by_the_wall_band() {
        // The band gate compares only stages present in BOTH entries: a
        // stage that vanished or appeared is neither a regression nor a
        // note, however slow it was. Pins current behavior — pipeline
        // stage renames would otherwise fail every historical diff.
        let mut a = entry_with(&[("stmts", 1)], 1000);
        let mut b = entry_with(&[("stmts", 1)], 1000);
        let slow = crate::agg::StageSummary {
            count: 1,
            sum_ns: 1_000_000,
            ..Default::default()
        };
        a.stages.push(("vanished".to_string(), slow.clone()));
        b.stages.push(("appeared".to_string(), slow));
        let d = diff_entries(&a, &b, 10.0);
        assert!(d.ok(), "{}", d.render());
        assert!(d.regressions.is_empty());
        assert!(d.notes.is_empty());
    }

    #[test]
    fn job_count_mismatch_is_drift() {
        let a = entry_with(&[("stmts", 1)], 1000);
        let mut b = entry_with(&[("stmts", 1)], 1000);
        b.jobs = 2;
        let d = diff_entries(&a, &b, 0.0);
        assert_eq!(d.drifts, vec![("jobs".to_string(), 1, 2)]);
    }
}
