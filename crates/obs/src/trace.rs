//! The trace recorder: hierarchical spans, named counters, histograms.

use crate::hist::Histogram;
use std::sync::atomic::{AtomicU32, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// Identifier of a recorded span. Ids are assigned per trace, starting at
/// 1; [`NO_PARENT`] (0) marks a root span.
pub type SpanId = u32;

/// The `parent` value of root spans.
pub const NO_PARENT: SpanId = 0;

/// One finished span: a named interval on the trace's monotonic timeline.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanRecord {
    /// The span's id (unique within its trace).
    pub id: SpanId,
    /// Id of the enclosing span, or [`NO_PARENT`].
    pub parent: SpanId,
    /// Span name (stage names are stable; see [`crate::STAGE_NAMES`]).
    pub name: String,
    /// Start offset from trace creation, nanoseconds (monotonic clock).
    pub start_ns: u64,
    /// Duration, nanoseconds.
    pub dur_ns: u64,
}

/// One named counter increment, attributed to a span ([`NO_PARENT`] when
/// recorded outside any span).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CounterRecord {
    /// The span the increment is attributed to.
    pub span: SpanId,
    /// Counter name.
    pub name: String,
    /// Increment value.
    pub value: u64,
}

/// A point-in-time copy of everything a trace has recorded, for rendering
/// and export. Spans are sorted by start time.
#[derive(Debug, Clone, Default)]
pub struct TraceSnapshot {
    /// Finished spans, sorted by `(start_ns, id)`.
    pub spans: Vec<SpanRecord>,
    /// Counter increments, in recording order.
    pub counters: Vec<CounterRecord>,
    /// Named histograms, in first-observation order.
    pub histograms: Vec<(String, Histogram)>,
}

#[derive(Debug, Default)]
struct State {
    spans: Vec<SpanRecord>,
    counters: Vec<CounterRecord>,
    histograms: Vec<(String, Histogram)>,
}

#[derive(Debug)]
struct Inner {
    origin: Instant,
    next_id: AtomicU32,
    state: Mutex<State>,
}

/// A thread-safe trace recorder, cheap to clone and to pass by reference
/// through the pipeline.
///
/// A `Trace` is either *enabled* ([`Trace::new`]) or a *no-op*
/// ([`Trace::noop`]). The no-op form carries no allocation and every
/// operation on it returns immediately without reading the clock or
/// taking a lock, so instrumented code paths stay paper-faithful when
/// nobody is listening.
///
/// Hierarchy: [`Trace::span`] opens a span under the trace handle's
/// ambient parent; [`Span::trace`] returns a handle scoped *inside* that
/// span, so `&Trace` can be threaded through call trees and nested stages
/// land under their caller's span.
#[derive(Debug, Clone, Default)]
pub struct Trace {
    inner: Option<Arc<Inner>>,
    parent: SpanId,
}

impl Trace {
    /// A fresh enabled trace; its creation instant is the timeline origin.
    pub fn new() -> Self {
        Trace {
            inner: Some(Arc::new(Inner {
                origin: Instant::now(),
                next_id: AtomicU32::new(1),
                state: Mutex::new(State::default()),
            })),
            parent: NO_PARENT,
        }
    }

    /// The disabled recorder: records nothing, costs (almost) nothing.
    pub fn noop() -> Self {
        Trace::default()
    }

    /// Whether this handle records anything.
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Opens a span named `name` under this handle's ambient parent. The
    /// span is recorded when dropped (or ended via [`Span::end`]).
    pub fn span(&self, name: &str) -> Span {
        match &self.inner {
            None => Span::disabled(),
            Some(inner) => {
                let id = inner.next_id.fetch_add(1, Ordering::Relaxed);
                Span {
                    inner: Some(Arc::clone(inner)),
                    id,
                    parent: self.parent,
                    name: name.to_string(),
                    start: Some(Instant::now()),
                    start_ns: inner.origin.elapsed().as_nanos() as u64,
                }
            }
        }
    }

    /// Records a counter increment, attributed to the ambient parent span.
    pub fn count(&self, name: &str, value: u64) {
        if let Some(inner) = &self.inner {
            inner.state.lock().unwrap().counters.push(CounterRecord {
                span: self.parent,
                name: name.to_string(),
                value,
            });
        }
    }

    /// Records one observation into the named histogram.
    pub fn observe(&self, name: &str, value: f64) {
        if let Some(inner) = &self.inner {
            let mut state = inner.state.lock().unwrap();
            match state.histograms.iter_mut().find(|(n, _)| n == name) {
                Some((_, h)) => h.record(value),
                None => {
                    let mut h = Histogram::new();
                    h.record(value);
                    state.histograms.push((name.to_string(), h));
                }
            }
        }
    }

    /// Sum of all increments of the named counter.
    pub fn counter_total(&self, name: &str) -> u64 {
        match &self.inner {
            None => 0,
            Some(inner) => inner
                .state
                .lock()
                .unwrap()
                .counters
                .iter()
                .filter(|c| c.name == name)
                .map(|c| c.value)
                .sum(),
        }
    }

    /// Number of finished spans recorded so far.
    pub fn span_count(&self) -> usize {
        match &self.inner {
            None => 0,
            Some(inner) => inner.state.lock().unwrap().spans.len(),
        }
    }

    /// Copies out everything recorded so far, spans sorted by start time.
    pub fn snapshot(&self) -> TraceSnapshot {
        match &self.inner {
            None => TraceSnapshot::default(),
            Some(inner) => {
                let state = inner.state.lock().unwrap();
                let mut spans = state.spans.clone();
                spans.sort_by_key(|s| (s.start_ns, s.id));
                TraceSnapshot {
                    spans,
                    counters: state.counters.clone(),
                    histograms: state.histograms.clone(),
                }
            }
        }
    }
}

/// An open span, ended (and recorded) on drop. Obtained from
/// [`Trace::span`] or [`Span::child`].
#[derive(Debug)]
pub struct Span {
    inner: Option<Arc<Inner>>,
    id: SpanId,
    parent: SpanId,
    name: String,
    start: Option<Instant>,
    start_ns: u64,
}

impl Span {
    fn disabled() -> Self {
        Span {
            inner: None,
            id: NO_PARENT,
            parent: NO_PARENT,
            name: String::new(),
            start: None,
            start_ns: 0,
        }
    }

    /// This span's id ([`NO_PARENT`] on a disabled span).
    pub fn id(&self) -> SpanId {
        self.id
    }

    /// Whether the span records anything.
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Opens a child span.
    pub fn child(&self, name: &str) -> Span {
        self.trace().span(name)
    }

    /// A trace handle scoped inside this span: spans and counters recorded
    /// through it are attributed to this span as their parent.
    pub fn trace(&self) -> Trace {
        Trace {
            inner: self.inner.clone(),
            parent: self.id,
        }
    }

    /// Records a counter increment attributed to this span.
    pub fn count(&self, name: &str, value: u64) {
        if let Some(inner) = &self.inner {
            inner.state.lock().unwrap().counters.push(CounterRecord {
                span: self.id,
                name: name.to_string(),
                value,
            });
        }
    }

    /// Ends the span now (equivalent to dropping it).
    pub fn end(self) {}
}

impl Drop for Span {
    fn drop(&mut self) {
        if let Some(inner) = self.inner.take() {
            let dur_ns = self
                .start
                .map(|s| s.elapsed().as_nanos() as u64)
                .unwrap_or(0);
            inner.state.lock().unwrap().spans.push(SpanRecord {
                id: self.id,
                parent: self.parent,
                name: std::mem::take(&mut self.name),
                start_ns: self.start_ns,
                dur_ns,
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn noop_records_nothing() {
        let t = Trace::noop();
        assert!(!t.is_enabled());
        {
            let s = t.span("parse");
            assert!(!s.is_enabled());
            assert_eq!(s.id(), NO_PARENT);
            s.count("bytes", 100);
            let c = s.child("inner");
            assert!(!c.is_enabled());
        }
        t.count("blocks", 7);
        t.observe("wall_ns", 1.0);
        assert_eq!(t.span_count(), 0);
        assert_eq!(t.counter_total("blocks"), 0);
        let snap = t.snapshot();
        assert!(snap.spans.is_empty());
        assert!(snap.counters.is_empty());
        assert!(snap.histograms.is_empty());
    }

    #[test]
    fn spans_nest_and_sort_by_start() {
        let t = Trace::new();
        let root = t.span("job");
        let root_id = root.id();
        {
            let a = root.child("parse");
            a.count("bytes", 42);
        }
        {
            let _b = root.child("emit");
        }
        drop(root);
        let snap = t.snapshot();
        assert_eq!(snap.spans.len(), 3);
        // sorted by start: the root opened first
        assert_eq!(snap.spans[0].name, "job");
        assert_eq!(snap.spans[1].name, "parse");
        assert_eq!(snap.spans[2].name, "emit");
        assert_eq!(snap.spans[1].parent, root_id);
        assert_eq!(snap.spans[2].parent, root_id);
        assert_eq!(snap.spans[0].parent, NO_PARENT);
        assert_eq!(snap.counters.len(), 1);
        assert_eq!(snap.counters[0].span, snap.spans[1].id);
        assert_eq!(t.counter_total("bytes"), 42);
    }

    #[test]
    fn scoped_handles_attribute_to_their_span() {
        let t = Trace::new();
        let job = t.span("job");
        let scoped = job.trace();
        scoped.count("cache_hits", 1);
        {
            let _inner = scoped.span("lookup");
        }
        let job_id = job.id();
        drop(job);
        let snap = t.snapshot();
        assert_eq!(snap.counters[0].span, job_id);
        let lookup = snap.spans.iter().find(|s| s.name == "lookup").unwrap();
        assert_eq!(lookup.parent, job_id);
    }

    #[test]
    fn counters_aggregate_and_histograms_accumulate() {
        let t = Trace::new();
        t.count("elims", 3);
        t.count("elims", 4);
        assert_eq!(t.counter_total("elims"), 7);
        t.observe("job_ns", 100.0);
        t.observe("job_ns", 300.0);
        let snap = t.snapshot();
        assert_eq!(snap.histograms.len(), 1);
        let (name, h) = &snap.histograms[0];
        assert_eq!(name, "job_ns");
        assert_eq!(h.count(), 2);
        assert_eq!(h.sum(), 400.0);
    }

    #[test]
    fn trace_is_shareable_across_threads() {
        let t = Trace::new();
        std::thread::scope(|scope| {
            for i in 0..4 {
                let t = t.clone();
                scope.spawn(move || {
                    let s = t.span(&format!("job{i}"));
                    s.count("done", 1);
                });
            }
        });
        assert_eq!(t.span_count(), 4);
        assert_eq!(t.counter_total("done"), 4);
    }
}
