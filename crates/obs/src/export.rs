//! Trace renderings: the human span tree and the machine NDJSON / JSON
//! exports. All JSON is emitted by hand — this crate depends on nothing.

use crate::stage::fmt_duration;
use crate::trace::{CounterRecord, SpanId, SpanRecord, Trace, TraceSnapshot, NO_PARENT};
use std::collections::HashMap;
use std::fmt::Write as _;
use std::time::Duration;

impl Trace {
    /// Renders the recorded spans as an indented tree with durations and
    /// per-span counters, followed by histogram summaries. Returns an
    /// empty string for a no-op or empty trace.
    pub fn render_tree(&self) -> String {
        render_tree(&self.snapshot())
    }

    /// Exports the trace as NDJSON: one flat JSON object per line — every
    /// span (`"type":"span"`), counter increment (`"type":"counter"`), and
    /// histogram (`"type":"hist"`). Field and stage names are stable (see
    /// [`crate::STAGE_NAMES`] and the golden schema test).
    pub fn to_ndjson(&self) -> String {
        ndjson_export(&self.snapshot())
    }

    /// Exports the trace in the chrome://tracing / Perfetto `trace_event`
    /// JSON format (see [`chrome_trace`]).
    pub fn to_chrome_trace(&self) -> String {
        chrome_trace(&self.snapshot())
    }

    /// Exports the trace as flamegraph collapsed-stack lines (see
    /// [`collapsed`]).
    pub fn to_collapsed(&self) -> String {
        collapsed(&self.snapshot())
    }
}

/// Serializes a snapshot in the NDJSON export format (the snapshot-level
/// form of [`Trace::to_ndjson`], for re-ingested traces).
pub fn ndjson_export(snap: &TraceSnapshot) -> String {
    let mut out = String::new();
    for s in &snap.spans {
        let _ = writeln!(
            out,
            "{{\"type\":\"span\",\"id\":{},\"parent\":{},\"name\":\"{}\",\"start_ns\":{},\"dur_ns\":{}}}",
            s.id,
            s.parent,
            json_escape(&s.name),
            s.start_ns,
            s.dur_ns
        );
    }
    for c in &snap.counters {
        let _ = writeln!(
            out,
            "{{\"type\":\"counter\",\"span\":{},\"name\":\"{}\",\"value\":{}}}",
            c.span,
            json_escape(&c.name),
            c.value
        );
    }
    for (name, h) in &snap.histograms {
        let (uppers, counts): (Vec<String>, Vec<String>) = h
            .nonzero_buckets()
            .into_iter()
            .map(|(u, n)| (u.to_string(), n.to_string()))
            .unzip();
        let _ = writeln!(
            out,
            "{{\"type\":\"hist\",\"name\":\"{}\",\"count\":{},\"sum\":{},\"min\":{},\"max\":{},\"bucket_upper\":[{}],\"bucket_count\":[{}]}}",
            json_escape(name),
            h.count(),
            json_number(h.sum()),
            json_number(h.min()),
            json_number(h.max()),
            uppers.join(","),
            counts.join(",")
        );
    }
    out
}

impl Trace {
    /// Exports the whole trace as one JSON object with `spans`,
    /// `counters`, and `histograms` arrays (same records as the NDJSON
    /// form, for consumers that prefer a single document).
    pub fn to_json(&self) -> String {
        let ndjson = self.to_ndjson();
        let mut spans = Vec::new();
        let mut counters = Vec::new();
        let mut hists = Vec::new();
        for line in ndjson.lines() {
            // the NDJSON lines are already valid JSON objects; sort them
            // into arrays by their type tag
            let stripped: String = line
                .replacen("\"type\":\"span\",", "", 1)
                .replacen("\"type\":\"counter\",", "", 1)
                .replacen("\"type\":\"hist\",", "", 1);
            if line.contains("\"type\":\"span\"") {
                spans.push(stripped);
            } else if line.contains("\"type\":\"counter\"") {
                counters.push(stripped);
            } else {
                hists.push(stripped);
            }
        }
        format!(
            "{{\"spans\":[{}],\"counters\":[{}],\"histograms\":[{}]}}",
            spans.join(","),
            counters.join(","),
            hists.join(",")
        )
    }
}

/// Renders a snapshot as a span tree (see [`Trace::render_tree`]).
pub fn render_tree(snap: &TraceSnapshot) -> String {
    if snap.spans.is_empty() && snap.counters.is_empty() && snap.histograms.is_empty() {
        return String::new();
    }
    let mut children: HashMap<SpanId, Vec<&SpanRecord>> = HashMap::new();
    let known: HashMap<SpanId, ()> = snap.spans.iter().map(|s| (s.id, ())).collect();
    let mut roots: Vec<&SpanRecord> = Vec::new();
    for s in &snap.spans {
        // a span whose parent never finished (or was recorded by a scoped
        // handle outside any span) renders as a root
        if s.parent == NO_PARENT || !known.contains_key(&s.parent) {
            roots.push(s);
        } else {
            children.entry(s.parent).or_default().push(s);
        }
    }
    let mut counters: HashMap<SpanId, Vec<&CounterRecord>> = HashMap::new();
    for c in &snap.counters {
        counters.entry(c.span).or_default().push(c);
    }

    let mut out = String::new();
    let _ = writeln!(
        out,
        "trace: {} span{}, {} counter record{}, {} histogram{}",
        snap.spans.len(),
        plural(snap.spans.len()),
        snap.counters.len(),
        plural(snap.counters.len()),
        snap.histograms.len(),
        plural(snap.histograms.len())
    );
    for (i, root) in roots.iter().enumerate() {
        render_span(
            &mut out,
            root,
            &children,
            &counters,
            "",
            i + 1 == roots.len(),
        );
    }
    if let Some(cs) = counters.get(&NO_PARENT) {
        for c in cs {
            let _ = writeln!(out, "counter {} = {}", c.name, c.value);
        }
    }
    for (name, h) in &snap.histograms {
        let _ = writeln!(
            out,
            "hist {name}: {} obs, mean {}, min {}, max {}",
            h.count(),
            fmt_duration(Duration::from_nanos(h.mean() as u64)),
            fmt_duration(Duration::from_nanos(h.min() as u64)),
            fmt_duration(Duration::from_nanos(h.max() as u64))
        );
    }
    out
}

fn render_span(
    out: &mut String,
    span: &SpanRecord,
    children: &HashMap<SpanId, Vec<&SpanRecord>>,
    counters: &HashMap<SpanId, Vec<&CounterRecord>>,
    prefix: &str,
    last: bool,
) {
    let branch = if last { "└─ " } else { "├─ " };
    let _ = write!(
        out,
        "{prefix}{branch}{} {}",
        span.name,
        fmt_duration(Duration::from_nanos(span.dur_ns))
    );
    if let Some(cs) = counters.get(&span.id) {
        let attrs: Vec<String> = cs
            .iter()
            .map(|c| format!("{}={}", c.name, c.value))
            .collect();
        let _ = write!(out, " [{}]", attrs.join(", "));
    }
    out.push('\n');
    let child_prefix = format!("{prefix}{}", if last { "   " } else { "│  " });
    if let Some(kids) = children.get(&span.id) {
        for (i, kid) in kids.iter().enumerate() {
            render_span(
                out,
                kid,
                children,
                counters,
                &child_prefix,
                i + 1 == kids.len(),
            );
        }
    }
}

fn plural(n: usize) -> &'static str {
    if n == 1 {
        ""
    } else {
        "s"
    }
}

/// Exports a snapshot in the chrome://tracing / Perfetto `trace_event`
/// JSON format: one document with a `traceEvents` array of complete
/// (`"ph":"X"`) events. Timestamps and durations are microseconds (the
/// format's unit), span counters ride along as each event's `args`, and
/// every span is grouped under the thread id of its root span, so the
/// jobs of a batch render as separate tracks. Load the file via
/// `chrome://tracing` or <https://ui.perfetto.dev>.
pub fn chrome_trace(snap: &TraceSnapshot) -> String {
    let parents: HashMap<SpanId, SpanId> = snap.spans.iter().map(|s| (s.id, s.parent)).collect();
    let root_of = |mut id: SpanId| -> SpanId {
        loop {
            match parents.get(&id) {
                Some(&NO_PARENT) | None => return id,
                Some(&p) => id = p,
            }
        }
    };
    let mut counters: HashMap<SpanId, Vec<&CounterRecord>> = HashMap::new();
    for c in &snap.counters {
        counters.entry(c.span).or_default().push(c);
    }
    let mut out = String::from("{\"traceEvents\":[");
    for (i, s) in snap.spans.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let cat = if crate::STAGE_NAMES.contains(&s.name.as_str()) {
            "stage"
        } else {
            "span"
        };
        let _ = write!(
            out,
            "\n{{\"name\":\"{}\",\"cat\":\"{cat}\",\"ph\":\"X\",\"ts\":{},\"dur\":{},\
             \"pid\":1,\"tid\":{}",
            json_escape(&s.name),
            json_number(s.start_ns as f64 / 1e3),
            json_number(s.dur_ns as f64 / 1e3),
            root_of(s.id)
        );
        if let Some(cs) = counters.get(&s.id) {
            out.push_str(",\"args\":{");
            for (j, c) in cs.iter().enumerate() {
                if j > 0 {
                    out.push(',');
                }
                let _ = write!(out, "\"{}\":{}", json_escape(&c.name), c.value);
            }
            out.push('}');
        }
        out.push('}');
    }
    out.push_str("\n],\"displayTimeUnit\":\"ms\"}\n");
    out
}

/// Exports a snapshot as flamegraph collapsed-stack lines: one
/// `root;child;leaf value` line per distinct span path, where `value` is
/// the path's *self* time in nanoseconds (duration minus child spans'
/// durations, so the flamegraph's widths nest correctly). Lines are
/// sorted; identical paths (e.g. two `parse` spans under one job) are
/// merged. Feed the output to `flamegraph.pl` or any collapsed-stack
/// viewer.
pub fn collapsed(snap: &TraceSnapshot) -> String {
    let by_id: HashMap<SpanId, &SpanRecord> = snap.spans.iter().map(|s| (s.id, s)).collect();
    let mut child_ns: HashMap<SpanId, u64> = HashMap::new();
    for s in &snap.spans {
        if s.parent != NO_PARENT && by_id.contains_key(&s.parent) {
            *child_ns.entry(s.parent).or_default() += s.dur_ns;
        }
    }
    let mut stacks: Vec<(String, u64)> = Vec::new();
    for s in &snap.spans {
        let mut path = vec![frame(&s.name)];
        let mut id = s.parent;
        while let Some(p) = by_id.get(&id) {
            path.push(frame(&p.name));
            id = p.parent;
        }
        path.reverse();
        let self_ns = s
            .dur_ns
            .saturating_sub(child_ns.get(&s.id).copied().unwrap_or(0));
        stacks.push((path.join(";"), self_ns));
    }
    stacks.sort();
    let mut out = String::new();
    let mut iter = stacks.into_iter().peekable();
    while let Some((stack, mut ns)) = iter.next() {
        while iter.peek().is_some_and(|(next, _)| *next == stack) {
            ns += iter.next().unwrap().1;
        }
        let _ = writeln!(out, "{stack} {ns}");
    }
    out
}

/// Sanitizes a span name into a collapsed-stack frame: the format's
/// separators (`;` joins frames, space ends the stack) must not appear
/// inside one.
fn frame(name: &str) -> String {
    name.replace([';', ' '], "_")
}

/// Escapes a string for inclusion inside a JSON string literal.
pub fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// Formats an `f64` as a JSON number (JSON has no NaN/Infinity; they
/// collapse to 0).
fn json_number(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "0".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_trace() -> Trace {
        let t = Trace::new();
        let job = t.span("job:demo");
        {
            let p = job.child("parse");
            p.count("bytes", 128);
        }
        {
            let _e = job.child("emit");
        }
        drop(job);
        t.observe("job_ns", 1500.0);
        t
    }

    #[test]
    fn tree_shows_hierarchy_counters_and_hists() {
        let tree = sample_trace().render_tree();
        assert!(tree.starts_with("trace: 3 spans, 1 counter record, 1 histogram"));
        assert!(tree.contains("└─ job:demo"));
        assert!(tree.contains("├─ parse"));
        assert!(tree.contains("[bytes=128]"));
        assert!(tree.contains("└─ emit"));
        assert!(tree.contains("hist job_ns: 1 obs"));
    }

    #[test]
    fn empty_and_noop_traces_render_empty() {
        assert_eq!(Trace::noop().render_tree(), "");
        assert_eq!(Trace::new().render_tree(), "");
        assert_eq!(Trace::noop().to_ndjson(), "");
    }

    #[test]
    fn ndjson_lines_are_flat_objects_with_stable_fields() {
        let text = sample_trace().to_ndjson();
        assert_eq!(text.lines().count(), 5); // 3 spans + 1 counter + 1 hist
        for line in text.lines() {
            let fields = crate::ndjson::parse_line(line).expect("parses");
            assert!(fields.iter().any(|(k, _)| k == "type"));
        }
        assert!(text.contains("\"type\":\"span\""));
        assert!(text.contains("\"name\":\"parse\""));
        assert!(text.contains("\"type\":\"counter\""));
        assert!(text.contains("\"value\":128"));
        assert!(text.contains("\"type\":\"hist\""));
    }

    #[test]
    fn json_document_wraps_the_same_records() {
        let doc = sample_trace().to_json();
        assert!(doc.starts_with("{\"spans\":["));
        assert!(doc.contains("\"counters\":["));
        assert!(doc.contains("\"histograms\":["));
        assert!(doc.contains("\"name\":\"emit\""));
    }

    #[test]
    fn escaping_handles_quotes_and_control_chars() {
        assert_eq!(json_escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(json_escape("\u{1}"), "\\u0001");
    }

    #[test]
    fn chrome_trace_is_valid_trace_event_json() {
        let doc = sample_trace().to_chrome_trace();
        // the whole document is one JSON object our own parser accepts
        // (newlines inside it are skippable whitespace)
        let fields = crate::ndjson::parse_line(&doc).expect("parses");
        let events = fields
            .iter()
            .find(|(k, _)| k == "traceEvents")
            .and_then(|(_, v)| v.as_arr())
            .expect("traceEvents array");
        assert_eq!(events.len(), 3);
        // span ids are deterministic per trace: the root job span of
        // sample_trace() is span 1, and every span of the job shares its tid
        let root_id = 1.0;
        for ev in events {
            assert_eq!(ev.field("ph").and_then(|v| v.as_str()), Some("X"));
            assert_eq!(ev.field("pid").and_then(|v| v.as_num()), Some(1.0));
            assert!(ev.field("ts").and_then(|v| v.as_num()).is_some());
            assert!(ev.field("dur").and_then(|v| v.as_num()).is_some());
            assert_eq!(ev.field("tid").and_then(|v| v.as_num()), Some(root_id));
        }
        let parse_ev = events
            .iter()
            .find(|e| e.field("name").and_then(|v| v.as_str()) == Some("parse"))
            .expect("parse event");
        assert_eq!(
            parse_ev.field("cat").and_then(|v| v.as_str()),
            Some("stage")
        );
        let args = parse_ev.field("args").expect("args");
        assert_eq!(args.field("bytes").and_then(|v| v.as_num()), Some(128.0));
    }

    #[test]
    fn collapsed_stacks_nest_and_merge() {
        let t = Trace::new();
        {
            let job = t.span("job:demo");
            {
                let _p = job.child("parse");
            }
            {
                let _p = job.child("parse");
            }
        }
        let text = t.to_collapsed();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2, "merged duplicate stacks: {text}");
        assert!(lines[0].starts_with("job:demo "));
        assert!(lines[1].starts_with("job:demo;parse "));
        // every line ends in an integer self-time
        for line in lines {
            let ns: u64 = line.rsplit(' ').next().unwrap().parse().expect("self ns");
            let _ = ns;
        }
    }

    #[test]
    fn collapsed_self_time_subtracts_children() {
        let t = Trace::new();
        {
            let job = t.span("outer name;weird");
            let _c = job.child("inner");
        }
        let text = t.to_collapsed();
        // separators in span names are sanitized so frames stay parseable
        assert!(text.contains("outer_name_weird "));
        assert!(text.contains("outer_name_weird;inner "));
        let snap = t.snapshot();
        let outer = snap
            .spans
            .iter()
            .find(|s| s.name.contains("outer"))
            .unwrap();
        let inner = snap.spans.iter().find(|s| s.name == "inner").unwrap();
        let outer_self: u64 = text
            .lines()
            .find(|l| !l.contains(";"))
            .and_then(|l| l.rsplit(' ').next())
            .and_then(|v| v.parse().ok())
            .unwrap();
        assert_eq!(outer_self, outer.dur_ns.saturating_sub(inner.dur_ns));
    }
}
