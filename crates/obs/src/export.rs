//! Trace renderings: the human span tree and the machine NDJSON / JSON
//! exports. All JSON is emitted by hand — this crate depends on nothing.

use crate::stage::fmt_duration;
use crate::trace::{CounterRecord, SpanId, SpanRecord, Trace, TraceSnapshot, NO_PARENT};
use std::collections::HashMap;
use std::fmt::Write as _;
use std::time::Duration;

impl Trace {
    /// Renders the recorded spans as an indented tree with durations and
    /// per-span counters, followed by histogram summaries. Returns an
    /// empty string for a no-op or empty trace.
    pub fn render_tree(&self) -> String {
        render_tree(&self.snapshot())
    }

    /// Exports the trace as NDJSON: one flat JSON object per line — every
    /// span (`"type":"span"`), counter increment (`"type":"counter"`), and
    /// histogram (`"type":"hist"`). Field and stage names are stable (see
    /// [`crate::STAGE_NAMES`] and the golden schema test).
    pub fn to_ndjson(&self) -> String {
        let snap = self.snapshot();
        let mut out = String::new();
        for s in &snap.spans {
            let _ = writeln!(
                out,
                "{{\"type\":\"span\",\"id\":{},\"parent\":{},\"name\":\"{}\",\"start_ns\":{},\"dur_ns\":{}}}",
                s.id,
                s.parent,
                json_escape(&s.name),
                s.start_ns,
                s.dur_ns
            );
        }
        for c in &snap.counters {
            let _ = writeln!(
                out,
                "{{\"type\":\"counter\",\"span\":{},\"name\":\"{}\",\"value\":{}}}",
                c.span,
                json_escape(&c.name),
                c.value
            );
        }
        for (name, h) in &snap.histograms {
            let (uppers, counts): (Vec<String>, Vec<String>) = h
                .nonzero_buckets()
                .into_iter()
                .map(|(u, n)| (u.to_string(), n.to_string()))
                .unzip();
            let _ = writeln!(
                out,
                "{{\"type\":\"hist\",\"name\":\"{}\",\"count\":{},\"sum\":{},\"min\":{},\"max\":{},\"bucket_upper\":[{}],\"bucket_count\":[{}]}}",
                json_escape(name),
                h.count(),
                json_number(h.sum()),
                json_number(h.min()),
                json_number(h.max()),
                uppers.join(","),
                counts.join(",")
            );
        }
        out
    }

    /// Exports the whole trace as one JSON object with `spans`,
    /// `counters`, and `histograms` arrays (same records as the NDJSON
    /// form, for consumers that prefer a single document).
    pub fn to_json(&self) -> String {
        let ndjson = self.to_ndjson();
        let mut spans = Vec::new();
        let mut counters = Vec::new();
        let mut hists = Vec::new();
        for line in ndjson.lines() {
            // the NDJSON lines are already valid JSON objects; sort them
            // into arrays by their type tag
            let stripped: String = line
                .replacen("\"type\":\"span\",", "", 1)
                .replacen("\"type\":\"counter\",", "", 1)
                .replacen("\"type\":\"hist\",", "", 1);
            if line.contains("\"type\":\"span\"") {
                spans.push(stripped);
            } else if line.contains("\"type\":\"counter\"") {
                counters.push(stripped);
            } else {
                hists.push(stripped);
            }
        }
        format!(
            "{{\"spans\":[{}],\"counters\":[{}],\"histograms\":[{}]}}",
            spans.join(","),
            counters.join(","),
            hists.join(",")
        )
    }
}

/// Renders a snapshot as a span tree (see [`Trace::render_tree`]).
pub fn render_tree(snap: &TraceSnapshot) -> String {
    if snap.spans.is_empty() && snap.counters.is_empty() && snap.histograms.is_empty() {
        return String::new();
    }
    let mut children: HashMap<SpanId, Vec<&SpanRecord>> = HashMap::new();
    let known: HashMap<SpanId, ()> = snap.spans.iter().map(|s| (s.id, ())).collect();
    let mut roots: Vec<&SpanRecord> = Vec::new();
    for s in &snap.spans {
        // a span whose parent never finished (or was recorded by a scoped
        // handle outside any span) renders as a root
        if s.parent == NO_PARENT || !known.contains_key(&s.parent) {
            roots.push(s);
        } else {
            children.entry(s.parent).or_default().push(s);
        }
    }
    let mut counters: HashMap<SpanId, Vec<&CounterRecord>> = HashMap::new();
    for c in &snap.counters {
        counters.entry(c.span).or_default().push(c);
    }

    let mut out = String::new();
    let _ = writeln!(
        out,
        "trace: {} span{}, {} counter record{}, {} histogram{}",
        snap.spans.len(),
        plural(snap.spans.len()),
        snap.counters.len(),
        plural(snap.counters.len()),
        snap.histograms.len(),
        plural(snap.histograms.len())
    );
    for (i, root) in roots.iter().enumerate() {
        render_span(&mut out, root, &children, &counters, "", i + 1 == roots.len());
    }
    if let Some(cs) = counters.get(&NO_PARENT) {
        for c in cs {
            let _ = writeln!(out, "counter {} = {}", c.name, c.value);
        }
    }
    for (name, h) in &snap.histograms {
        let _ = writeln!(
            out,
            "hist {name}: {} obs, mean {}, min {}, max {}",
            h.count(),
            fmt_duration(Duration::from_nanos(h.mean() as u64)),
            fmt_duration(Duration::from_nanos(h.min() as u64)),
            fmt_duration(Duration::from_nanos(h.max() as u64))
        );
    }
    out
}

fn render_span(
    out: &mut String,
    span: &SpanRecord,
    children: &HashMap<SpanId, Vec<&SpanRecord>>,
    counters: &HashMap<SpanId, Vec<&CounterRecord>>,
    prefix: &str,
    last: bool,
) {
    let branch = if last { "└─ " } else { "├─ " };
    let _ = write!(
        out,
        "{prefix}{branch}{} {}",
        span.name,
        fmt_duration(Duration::from_nanos(span.dur_ns))
    );
    if let Some(cs) = counters.get(&span.id) {
        let attrs: Vec<String> = cs.iter().map(|c| format!("{}={}", c.name, c.value)).collect();
        let _ = write!(out, " [{}]", attrs.join(", "));
    }
    out.push('\n');
    let child_prefix = format!("{prefix}{}", if last { "   " } else { "│  " });
    if let Some(kids) = children.get(&span.id) {
        for (i, kid) in kids.iter().enumerate() {
            render_span(out, kid, children, counters, &child_prefix, i + 1 == kids.len());
        }
    }
}

fn plural(n: usize) -> &'static str {
    if n == 1 {
        ""
    } else {
        "s"
    }
}

/// Escapes a string for inclusion inside a JSON string literal.
pub fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// Formats an `f64` as a JSON number (JSON has no NaN/Infinity; they
/// collapse to 0).
fn json_number(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "0".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_trace() -> Trace {
        let t = Trace::new();
        let job = t.span("job:demo");
        {
            let p = job.child("parse");
            p.count("bytes", 128);
        }
        {
            let _e = job.child("emit");
        }
        drop(job);
        t.observe("job_ns", 1500.0);
        t
    }

    #[test]
    fn tree_shows_hierarchy_counters_and_hists() {
        let tree = sample_trace().render_tree();
        assert!(tree.starts_with("trace: 3 spans, 1 counter record, 1 histogram"));
        assert!(tree.contains("└─ job:demo"));
        assert!(tree.contains("├─ parse"));
        assert!(tree.contains("[bytes=128]"));
        assert!(tree.contains("└─ emit"));
        assert!(tree.contains("hist job_ns: 1 obs"));
    }

    #[test]
    fn empty_and_noop_traces_render_empty() {
        assert_eq!(Trace::noop().render_tree(), "");
        assert_eq!(Trace::new().render_tree(), "");
        assert_eq!(Trace::noop().to_ndjson(), "");
    }

    #[test]
    fn ndjson_lines_are_flat_objects_with_stable_fields() {
        let text = sample_trace().to_ndjson();
        assert_eq!(text.lines().count(), 5); // 3 spans + 1 counter + 1 hist
        for line in text.lines() {
            let fields = crate::ndjson::parse_line(line).expect("parses");
            assert!(fields.iter().any(|(k, _)| k == "type"));
        }
        assert!(text.contains("\"type\":\"span\""));
        assert!(text.contains("\"name\":\"parse\""));
        assert!(text.contains("\"type\":\"counter\""));
        assert!(text.contains("\"value\":128"));
        assert!(text.contains("\"type\":\"hist\""));
    }

    #[test]
    fn json_document_wraps_the_same_records() {
        let doc = sample_trace().to_json();
        assert!(doc.starts_with("{\"spans\":["));
        assert!(doc.contains("\"counters\":["));
        assert!(doc.contains("\"histograms\":["));
        assert!(doc.contains("\"name\":\"emit\""));
    }

    #[test]
    fn escaping_handles_quotes_and_control_chars() {
        assert_eq!(json_escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(json_escape("\u{1}"), "\\u0001");
    }
}
