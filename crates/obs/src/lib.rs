//! # frodo-obs — the unified observability layer
//!
//! The paper's argument rests on attributing cost per pipeline stage
//! (model analysis → redundancy elimination → concise codegen) and per
//! block family. This crate is the one place that attribution lives:
//!
//! - **[`Trace`]** — a thread-safe recorder of hierarchical [`Span`]s on
//!   the monotonic clock, named counters (blocks flattened, elements
//!   eliminated, cache hits, bytes emitted, …), and log2-bucket
//!   [`Histogram`]s. [`Trace::noop`] is the disabled recorder: no
//!   allocation, no clock reads, no locks — instrumented code stays
//!   paper-faithful when nobody is listening.
//! - **[`StageTimings`]** — the single per-stage timing view of the
//!   workspace, *derived* from a trace by summing span durations per
//!   canonical stage name ([`STAGE_NAMES`]). Every crate that used to
//!   keep its own clocks (core's analysis timings, the driver's report
//!   counters, the bench harness) reads this type instead.
//! - **Exports** — [`Trace::render_tree`] for humans,
//!   [`Trace::to_ndjson`] / [`Trace::to_json`] for machines,
//!   [`Trace::to_chrome_trace`] (chrome://tracing / Perfetto
//!   `trace_event` JSON) and [`Trace::to_collapsed`] (flamegraph
//!   collapsed stacks) for profile viewers, and [`ndjson`] with a
//!   dependency-free validator/parser for the export format (used by the
//!   golden schema test and the CI gate).
//! - **Longitudinal view** — [`agg::aggregate`] folds a whole batch
//!   trace into per-stage [`agg::StageSummary`]s (count/sum/mean/p50/
//!   p95/max via [`Histogram::percentile`]) and totalled counters;
//!   [`ledger`] persists those as append-only NDJSON
//!   [`ledger::LedgerEntry`] lines; [`diff::diff_entries`] compares two
//!   runs — exact equality for deterministic counters, a tolerance band
//!   for wall times — and backs the `frodo obs diff` CI regression gate.
//!
//! This crate depends on **nothing** (ci.sh enforces it with `cargo
//! tree`), so every other crate in the workspace may depend on it.
//!
//! # Example
//!
//! ```
//! use frodo_obs::{StageTimings, Trace};
//!
//! let trace = Trace::new();
//! {
//!     let job = trace.span("job:demo");
//!     let parse = job.child("parse");
//!     parse.count("bytes", 1024);
//!     drop(parse);
//!     let _emit = job.child("emit");
//! }
//! let timings = StageTimings::from_trace(&trace);
//! assert!(timings.parse >= std::time::Duration::ZERO);
//! assert_eq!(trace.counter_total("bytes"), 1024);
//! assert!(trace.render_tree().contains("└─ job:demo"));
//!
//! // the disabled recorder records nothing
//! let off = Trace::noop();
//! let _span = off.span("parse");
//! assert_eq!(off.span_count(), 0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod agg;
pub mod diff;
mod export;
mod hist;
pub mod ledger;
pub mod ndjson;
pub mod rolling;
mod stage;
mod trace;

pub use agg::{aggregate, StageSummary, TraceAgg};
pub use diff::{diff_entries, Diff};
pub use export::{chrome_trace, collapsed, json_escape, ndjson_export, render_tree};
pub use hist::Histogram;
pub use ledger::{append_entry, git_rev, read_ledger, LedgerEntry, ServiceMetrics, LEDGER_SCHEMA};
pub use rolling::RollingWindow;
pub use stage::{fmt_duration, StageTimings, STAGE_NAMES};
pub use trace::{CounterRecord, Span, SpanId, SpanRecord, Trace, TraceSnapshot, NO_PARENT};
