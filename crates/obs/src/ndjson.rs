//! A minimal NDJSON reader for the trace export format: enough JSON to
//! parse the *flat* objects [`crate::Trace::to_ndjson`] emits, so tests
//! and CI gates can validate exported traces without a JSON crate.

/// A parsed JSON value in a flat trace object.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// A string literal (unescaped).
    Str(String),
    /// A number.
    Num(f64),
    /// An array of numbers.
    Arr(Vec<f64>),
}

/// Per-type line counts of a validated NDJSON document.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Stats {
    /// `"type":"span"` lines.
    pub spans: usize,
    /// `"type":"counter"` lines.
    pub counters: usize,
    /// `"type":"hist"` lines.
    pub hists: usize,
}

/// Parses one NDJSON line: a flat JSON object whose values are strings,
/// numbers, or arrays of numbers. Returns the fields in document order.
///
/// # Errors
///
/// Returns a description of the first syntax violation.
pub fn parse_line(line: &str) -> Result<Vec<(String, Value)>, String> {
    let mut p = Parser {
        bytes: line.trim().as_bytes(),
        pos: 0,
    };
    let fields = p.object()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(format!("trailing bytes at offset {}", p.pos));
    }
    Ok(fields)
}

/// Validates a whole NDJSON document: every non-empty line must parse and
/// carry a known `"type"` with that type's required fields.
///
/// # Errors
///
/// Returns `line number: problem` for the first invalid line.
pub fn validate(text: &str) -> Result<Stats, String> {
    let mut stats = Stats::default();
    for (i, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        let fields = parse_line(line).map_err(|e| format!("line {}: {e}", i + 1))?;
        let get = |key: &str| fields.iter().find(|(k, _)| k == key).map(|(_, v)| v);
        let require = |keys: &[&str]| -> Result<(), String> {
            for key in keys {
                match get(key) {
                    Some(_) => {}
                    None => return Err(format!("line {}: missing field {key:?}", i + 1)),
                }
            }
            Ok(())
        };
        match get("type") {
            Some(Value::Str(t)) if t == "span" => {
                require(&["id", "parent", "name", "start_ns", "dur_ns"])?;
                stats.spans += 1;
            }
            Some(Value::Str(t)) if t == "counter" => {
                require(&["span", "name", "value"])?;
                stats.counters += 1;
            }
            Some(Value::Str(t)) if t == "hist" => {
                require(&["name", "count", "sum", "min", "max"])?;
                stats.hists += 1;
            }
            Some(Value::Str(t)) => return Err(format!("line {}: unknown type {t:?}", i + 1)),
            _ => return Err(format!("line {}: missing \"type\"", i + 1)),
        }
    }
    Ok(stats)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while self.pos < self.bytes.len() && self.bytes[self.pos].is_ascii_whitespace() {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        self.skip_ws();
        if self.pos < self.bytes.len() && self.bytes[self.pos] == b {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!(
                "expected {:?} at offset {}",
                b as char, self.pos
            ))
        }
    }

    fn peek(&mut self) -> Option<u8> {
        self.skip_ws();
        self.bytes.get(self.pos).copied()
    }

    fn object(&mut self) -> Result<Vec<(String, Value)>, String> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(fields);
        }
        loop {
            let key = self.string()?;
            self.expect(b':')?;
            let value = self.value()?;
            fields.push((key, value));
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(fields);
                }
                _ => return Err(format!("expected ',' or '}}' at offset {}", self.pos)),
            }
        }
    }

    fn value(&mut self) -> Result<Value, String> {
        match self.peek() {
            Some(b'"') => Ok(Value::Str(self.string()?)),
            Some(b'[') => {
                self.pos += 1;
                let mut items = Vec::new();
                if self.peek() == Some(b']') {
                    self.pos += 1;
                    return Ok(Value::Arr(items));
                }
                loop {
                    items.push(self.number()?);
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b']') => {
                            self.pos += 1;
                            return Ok(Value::Arr(items));
                        }
                        _ => return Err(format!("expected ',' or ']' at offset {}", self.pos)),
                    }
                }
            }
            Some(_) => Ok(Value::Num(self.number()?)),
            None => Err("unexpected end of line".to_string()),
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.bytes.get(self.pos) {
                None => return Err("unterminated string".to_string()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.bytes.get(self.pos) {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or("truncated \\u escape")?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex).map_err(|_| "bad \\u escape")?,
                                16,
                            )
                            .map_err(|_| "bad \\u escape")?;
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        other => return Err(format!("bad escape {other:?}")),
                    }
                    self.pos += 1;
                }
                Some(&b) => {
                    // consume one UTF-8 code point
                    let s = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| "invalid UTF-8")?;
                    let c = s.chars().next().ok_or("unterminated string")?;
                    out.push(c);
                    self.pos += c.len_utf8();
                    let _ = b;
                }
            }
        }
    }

    fn number(&mut self) -> Result<f64, String> {
        self.skip_ws();
        let start = self.pos;
        while self
            .bytes
            .get(self.pos)
            .is_some_and(|b| b.is_ascii_digit() || matches!(b, b'-' | b'+' | b'.' | b'e' | b'E'))
        {
            self.pos += 1;
        }
        std::str::from_utf8(&self.bytes[start..self.pos])
            .ok()
            .and_then(|s| s.parse().ok())
            .ok_or_else(|| format!("bad number at offset {start}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_flat_objects() {
        let fields = parse_line(
            r#"{"type":"span","id":3,"parent":0,"name":"pa\"rse","start_ns":12,"dur_ns":34}"#,
        )
        .unwrap();
        assert_eq!(fields[0], ("type".to_string(), Value::Str("span".into())));
        assert_eq!(fields[1], ("id".to_string(), Value::Num(3.0)));
        assert_eq!(fields[3], ("name".to_string(), Value::Str("pa\"rse".into())));
    }

    #[test]
    fn parses_number_arrays() {
        let fields = parse_line(r#"{"bucket_upper":[1,2,4],"bucket_count":[]}"#).unwrap();
        assert_eq!(
            fields[0].1,
            Value::Arr(vec![1.0, 2.0, 4.0])
        );
        assert_eq!(fields[1].1, Value::Arr(vec![]));
    }

    #[test]
    fn rejects_malformed_lines() {
        assert!(parse_line("{").is_err());
        assert!(parse_line(r#"{"a":}"#).is_err());
        assert!(parse_line(r#"{"a":1} extra"#).is_err());
        assert!(parse_line(r#"{"a":"unterminated}"#).is_err());
    }

    #[test]
    fn validate_checks_required_fields_per_type() {
        let good = "\
{\"type\":\"span\",\"id\":1,\"parent\":0,\"name\":\"parse\",\"start_ns\":0,\"dur_ns\":5}\n\
{\"type\":\"counter\",\"span\":1,\"name\":\"bytes\",\"value\":9}\n\
{\"type\":\"hist\",\"name\":\"h\",\"count\":1,\"sum\":2,\"min\":2,\"max\":2,\"bucket_upper\":[2],\"bucket_count\":[1]}\n";
        let stats = validate(good).unwrap();
        assert_eq!(
            stats,
            Stats {
                spans: 1,
                counters: 1,
                hists: 1
            }
        );
        assert!(validate("{\"type\":\"span\",\"id\":1}\n").is_err());
        assert!(validate("{\"type\":\"mystery\"}\n").is_err());
        assert!(validate("not json\n").is_err());
        assert_eq!(validate("\n\n").unwrap(), Stats::default());
    }
}
