//! A minimal NDJSON reader and writer for the flat-object wire format:
//! enough JSON to parse the objects [`crate::Trace::to_ndjson`] emits —
//! so tests and CI gates can validate exported traces without a JSON
//! crate — plus [`ObjWriter`], the emitting counterpart used by the perf
//! ledger and the `frodo serve` request/response protocol so every
//! producer escapes strings the same way. Parse errors locate the fault
//! by 1-based line *and* byte offset, because wire documents span many
//! request/response lines.

use crate::export::json_escape;
use crate::hist::Histogram;
use crate::trace::{CounterRecord, SpanRecord, TraceSnapshot};
use std::fmt::Write as _;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// A string literal (unescaped).
    Str(String),
    /// A number.
    Num(f64),
    /// An array of values.
    Arr(Vec<Value>),
    /// A nested object, fields in document order.
    Obj(Vec<(String, Value)>),
}

impl Value {
    /// The number inside, or `None`.
    pub fn as_num(&self) -> Option<f64> {
        match self {
            Value::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The string inside, or `None`.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The array inside, or `None`.
    pub fn as_arr(&self) -> Option<&[Value]> {
        match self {
            Value::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// The object fields inside, or `None`.
    pub fn as_obj(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Obj(fields) => Some(fields),
            _ => None,
        }
    }

    /// Looks a field up in an object value.
    pub fn field(&self, key: &str) -> Option<&Value> {
        self.as_obj()?
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v)
    }
}

/// Looks a field up in a parsed field list ([`parse_line`]'s output).
pub fn get<'a>(fields: &'a [(String, Value)], key: &str) -> Option<&'a Value> {
    fields.iter().find(|(k, _)| k == key).map(|(_, v)| v)
}

/// The string field named `key`, or `None` when absent or non-string.
pub fn get_str<'a>(fields: &'a [(String, Value)], key: &str) -> Option<&'a str> {
    get(fields, key).and_then(Value::as_str)
}

/// The numeric field named `key`, or `None` when absent or non-numeric.
pub fn get_num(fields: &[(String, Value)], key: &str) -> Option<f64> {
    get(fields, key).and_then(Value::as_num)
}

/// Builds one flat JSON object line incrementally: the emitting
/// counterpart of [`parse_line`]. Strings are escaped with the same
/// rules the parser enforces (all control bytes below `0x20`), so a
/// written line always parses back. The request/response schema of the
/// compile daemon and the perf ledger are both built on this writer.
///
/// ```
/// use frodo_obs::ndjson;
/// let mut w = ndjson::ObjWriter::new();
/// w.field_str("type", "status").field_num("queue_depth", 3);
/// let line = w.finish();
/// assert_eq!(line, "{\"type\":\"status\",\"queue_depth\":3}");
/// assert!(ndjson::parse_line(&line).is_ok());
/// ```
#[derive(Debug, Clone, Default)]
pub struct ObjWriter {
    buf: String,
}

impl ObjWriter {
    /// An empty object writer.
    pub fn new() -> ObjWriter {
        ObjWriter::default()
    }

    fn key(&mut self, key: &str) {
        if !self.buf.is_empty() {
            self.buf.push(',');
        }
        let _ = write!(self.buf, "\"{}\":", json_escape(key));
    }

    /// Appends a string field (value escaped).
    pub fn field_str(&mut self, key: &str, value: &str) -> &mut Self {
        self.key(key);
        let _ = write!(self.buf, "\"{}\"", json_escape(value));
        self
    }

    /// Appends an unsigned integer field.
    pub fn field_num(&mut self, key: &str, value: u64) -> &mut Self {
        self.key(key);
        let _ = write!(self.buf, "{value}");
        self
    }

    /// Appends a signed integer field.
    pub fn field_int(&mut self, key: &str, value: i64) -> &mut Self {
        self.key(key);
        let _ = write!(self.buf, "{value}");
        self
    }

    /// Appends a float field with two decimals (rates, percentages).
    pub fn field_pct(&mut self, key: &str, value: f64) -> &mut Self {
        self.key(key);
        let _ = write!(
            self.buf,
            "{:.2}",
            if value.is_finite() { value } else { 0.0 }
        );
        self
    }

    /// Appends pre-rendered JSON (a nested array or object) verbatim.
    /// The caller is responsible for its validity.
    pub fn field_raw(&mut self, key: &str, raw_json: &str) -> &mut Self {
        self.key(key);
        self.buf.push_str(raw_json);
        self
    }

    /// Renders the complete object (no trailing newline).
    pub fn finish(&self) -> String {
        format!("{{{}}}", self.buf)
    }
}

/// Per-type line counts of a validated NDJSON document.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Stats {
    /// `"type":"span"` lines.
    pub spans: usize,
    /// `"type":"counter"` lines.
    pub counters: usize,
    /// `"type":"hist"` lines.
    pub hists: usize,
}

/// Parses one JSON object: the NDJSON export's flat lines, or a whole
/// nested document such as the chrome-trace export (insignificant
/// whitespace, including newlines, is skipped). Returns the top-level
/// fields in document order.
///
/// Strings must not contain raw (unescaped) control bytes below `0x20` —
/// RFC 8259 forbids them, and rejecting them here keeps one malformed
/// span name from corrupting a whole export.
///
/// # Errors
///
/// Returns a description of the first syntax violation.
pub fn parse_line(line: &str) -> Result<Vec<(String, Value)>, String> {
    let mut p = Parser {
        bytes: line.trim().as_bytes(),
        pos: 0,
    };
    let fields = p.object()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(format!("trailing bytes {}", p.at()));
    }
    Ok(fields)
}

/// Validates a whole NDJSON document: every non-empty line must parse and
/// carry a known `"type"` with that type's required fields.
///
/// # Errors
///
/// Returns `line number: problem` for the first invalid line.
pub fn validate(text: &str) -> Result<Stats, String> {
    let mut stats = Stats::default();
    for (i, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        let fields = parse_line(line).map_err(|e| format!("line {}: {e}", i + 1))?;
        let get = |key: &str| fields.iter().find(|(k, _)| k == key).map(|(_, v)| v);
        let require = |keys: &[&str]| -> Result<(), String> {
            for key in keys {
                match get(key) {
                    Some(_) => {}
                    None => return Err(format!("line {}: missing field {key:?}", i + 1)),
                }
            }
            Ok(())
        };
        match get("type") {
            Some(Value::Str(t)) if t == "span" => {
                require(&["id", "parent", "name", "start_ns", "dur_ns"])?;
                stats.spans += 1;
            }
            Some(Value::Str(t)) if t == "counter" => {
                require(&["span", "name", "value"])?;
                stats.counters += 1;
            }
            Some(Value::Str(t)) if t == "hist" => {
                require(&["name", "count", "sum", "min", "max"])?;
                stats.hists += 1;
            }
            Some(Value::Str(t)) => return Err(format!("line {}: unknown type {t:?}", i + 1)),
            _ => return Err(format!("line {}: missing \"type\"", i + 1)),
        }
    }
    Ok(stats)
}

/// Reconstructs a [`TraceSnapshot`] from its NDJSON export, so written
/// traces can be re-ingested (aggregated, diffed, re-exported as chrome
/// trace or collapsed stacks) without the original [`crate::Trace`].
///
/// # Errors
///
/// Returns `line number: problem` for the first line that fails to parse,
/// is missing a required field, or carries a field of the wrong type.
pub fn snapshot(text: &str) -> Result<TraceSnapshot, String> {
    let mut snap = TraceSnapshot::default();
    for (i, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        let at = |e: String| format!("line {}: {e}", i + 1);
        let fields = parse_line(line).map_err(at)?;
        let get = |key: &str| fields.iter().find(|(k, _)| k == key).map(|(_, v)| v);
        let num = |key: &str| -> Result<f64, String> {
            get(key)
                .and_then(Value::as_num)
                .ok_or_else(|| format!("line {}: missing number {key:?}", i + 1))
        };
        let string = |key: &str| -> Result<String, String> {
            get(key)
                .and_then(Value::as_str)
                .map(str::to_string)
                .ok_or_else(|| format!("line {}: missing string {key:?}", i + 1))
        };
        match get("type").and_then(Value::as_str) {
            Some("span") => snap.spans.push(SpanRecord {
                id: num("id")? as u32,
                parent: num("parent")? as u32,
                name: string("name")?,
                start_ns: num("start_ns")? as u64,
                dur_ns: num("dur_ns")? as u64,
            }),
            Some("counter") => snap.counters.push(CounterRecord {
                span: num("span")? as u32,
                name: string("name")?,
                value: num("value")? as u64,
            }),
            Some("hist") => {
                let nums = |key: &str| -> Result<Vec<u64>, String> {
                    get(key)
                        .and_then(Value::as_arr)
                        .and_then(|items| {
                            items
                                .iter()
                                .map(|v| v.as_num().map(|n| n as u64))
                                .collect::<Option<Vec<u64>>>()
                        })
                        .ok_or_else(|| format!("line {}: missing number array {key:?}", i + 1))
                };
                let uppers = nums("bucket_upper")?;
                let counts = nums("bucket_count")?;
                if uppers.len() != counts.len() {
                    return Err(format!("line {}: bucket arrays differ in length", i + 1));
                }
                let pairs: Vec<(u64, u64)> = uppers.into_iter().zip(counts).collect();
                let hist = Histogram::from_parts(
                    num("count")? as u64,
                    num("sum")?,
                    num("min")?,
                    num("max")?,
                    &pairs,
                )
                .map_err(at)?;
                snap.histograms.push((string("name")?, hist));
            }
            Some(other) => return Err(format!("line {}: unknown type {other:?}", i + 1)),
            None => return Err(format!("line {}: missing \"type\"", i + 1)),
        }
    }
    snap.spans.sort_by_key(|s| (s.start_ns, s.id));
    Ok(snap)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    /// Locates the current position for error messages: the 1-based line
    /// index (multi-line wire documents make a bare byte offset painful
    /// to chase) plus the byte offset within the parsed text.
    fn at(&self) -> String {
        let pos = self.pos.min(self.bytes.len());
        let line = 1 + self.bytes[..pos].iter().filter(|&&b| b == b'\n').count();
        format!("at line {line}, offset {pos}")
    }

    fn skip_ws(&mut self) {
        while self.pos < self.bytes.len() && self.bytes[self.pos].is_ascii_whitespace() {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        self.skip_ws();
        if self.pos < self.bytes.len() && self.bytes[self.pos] == b {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected {:?} {}", b as char, self.at()))
        }
    }

    fn peek(&mut self) -> Option<u8> {
        self.skip_ws();
        self.bytes.get(self.pos).copied()
    }

    fn object(&mut self) -> Result<Vec<(String, Value)>, String> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(fields);
        }
        loop {
            let key = self.string()?;
            self.expect(b':')?;
            let value = self.value()?;
            fields.push((key, value));
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(fields);
                }
                _ => return Err(format!("expected ',' or '}}' {}", self.at())),
            }
        }
    }

    fn value(&mut self) -> Result<Value, String> {
        match self.peek() {
            Some(b'"') => Ok(Value::Str(self.string()?)),
            Some(b'{') => Ok(Value::Obj(self.object()?)),
            Some(b'[') => {
                self.pos += 1;
                let mut items = Vec::new();
                if self.peek() == Some(b']') {
                    self.pos += 1;
                    return Ok(Value::Arr(items));
                }
                loop {
                    items.push(self.value()?);
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b']') => {
                            self.pos += 1;
                            return Ok(Value::Arr(items));
                        }
                        _ => return Err(format!("expected ',' or ']' {}", self.at())),
                    }
                }
            }
            Some(_) => Ok(Value::Num(self.number()?)),
            None => Err("unexpected end of line".to_string()),
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.bytes.get(self.pos) {
                None => return Err("unterminated string".to_string()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.bytes.get(self.pos) {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or("truncated \\u escape")?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex).map_err(|_| "bad \\u escape")?,
                                16,
                            )
                            .map_err(|_| "bad \\u escape")?;
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        other => return Err(format!("bad escape {other:?}")),
                    }
                    self.pos += 1;
                }
                Some(&b) if b < 0x20 => {
                    // RFC 8259: control characters must be escaped
                    return Err(format!(
                        "unescaped control byte 0x{b:02x} in string {}",
                        self.at()
                    ));
                }
                Some(_) => {
                    // consume one UTF-8 code point
                    let s = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| "invalid UTF-8")?;
                    let c = s.chars().next().ok_or("unterminated string")?;
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<f64, String> {
        self.skip_ws();
        let start = self.pos;
        while self
            .bytes
            .get(self.pos)
            .is_some_and(|b| b.is_ascii_digit() || matches!(b, b'-' | b'+' | b'.' | b'e' | b'E'))
        {
            self.pos += 1;
        }
        std::str::from_utf8(&self.bytes[start..self.pos])
            .ok()
            .and_then(|s| s.parse().ok())
            .ok_or_else(|| {
                let at = Parser {
                    bytes: self.bytes,
                    pos: start,
                }
                .at();
                format!("bad number {at}")
            })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_flat_objects() {
        let fields = parse_line(
            r#"{"type":"span","id":3,"parent":0,"name":"pa\"rse","start_ns":12,"dur_ns":34}"#,
        )
        .unwrap();
        assert_eq!(fields[0], ("type".to_string(), Value::Str("span".into())));
        assert_eq!(fields[1], ("id".to_string(), Value::Num(3.0)));
        assert_eq!(
            fields[3],
            ("name".to_string(), Value::Str("pa\"rse".into()))
        );
    }

    #[test]
    fn parses_number_arrays() {
        let fields = parse_line(r#"{"bucket_upper":[1,2,4],"bucket_count":[]}"#).unwrap();
        assert_eq!(
            fields[0].1,
            Value::Arr(vec![Value::Num(1.0), Value::Num(2.0), Value::Num(4.0)])
        );
        assert_eq!(fields[1].1, Value::Arr(vec![]));
    }

    #[test]
    fn parses_nested_objects_and_mixed_arrays() {
        let fields = parse_line(
            r#"{"traceEvents":[{"name":"parse","ph":"X","ts":0.5,"dur":1.2}],"meta":{"pid":1}}"#,
        )
        .unwrap();
        let events = fields[0].1.as_arr().unwrap();
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].field("ph"), Some(&Value::Str("X".into())));
        assert_eq!(events[0].field("dur").unwrap().as_num(), Some(1.2));
        assert_eq!(fields[1].1.field("pid").unwrap().as_num(), Some(1.0));
        // insignificant newlines are fine: whole documents parse too
        assert!(parse_line("{\n  \"a\": [1,\n 2]\n}").is_ok());
    }

    #[test]
    fn rejects_malformed_lines() {
        assert!(parse_line("{").is_err());
        assert!(parse_line(r#"{"a":}"#).is_err());
        assert!(parse_line(r#"{"a":1} extra"#).is_err());
        assert!(parse_line(r#"{"a":"unterminated}"#).is_err());
    }

    #[test]
    fn errors_locate_the_fault_by_line_and_offset() {
        // single-line wire request: line 1, with the byte offset
        let err = parse_line(r#"{"type":"compile","threads":x}"#).unwrap_err();
        assert!(err.contains("at line 1, offset 28"), "{err}");
        // a fault inside a multi-line document names the faulty line —
        // line 3 here, where the bad value sits
        let err = parse_line("{\n  \"a\": 1,\n  \"b\": ?\n}").unwrap_err();
        assert!(err.contains("at line 3"), "{err}");
        let err = parse_line("{\n  \"a\": [1,\n 2\n").unwrap_err();
        assert!(err.contains("at line 3, offset 15"), "{err}");
    }

    #[test]
    fn obj_writer_output_parses_back() {
        let mut w = ObjWriter::new();
        w.field_str("type", "result")
            .field_str("job", "a \"b\"\nc")
            .field_num("code_bytes", 123)
            .field_int("delta", -4)
            .field_pct("hit_rate", 66.666)
            .field_raw("diags", r#"[{"code":"F001"}]"#);
        let line = w.finish();
        assert!(!line.contains('\n'));
        let fields = parse_line(&line).unwrap();
        assert_eq!(get_str(&fields, "type"), Some("result"));
        assert_eq!(get_str(&fields, "job"), Some("a \"b\"\nc"));
        assert_eq!(get_num(&fields, "code_bytes"), Some(123.0));
        assert_eq!(get_num(&fields, "delta"), Some(-4.0));
        assert_eq!(get_num(&fields, "hit_rate"), Some(66.67));
        let diags = get(&fields, "diags").unwrap().as_arr().unwrap();
        assert_eq!(diags[0].field("code"), Some(&Value::Str("F001".into())));
        assert_eq!(get_str(&fields, "missing"), None);
        // empty object is valid too
        assert_eq!(ObjWriter::new().finish(), "{}");
    }

    #[test]
    fn rejects_unescaped_control_bytes_in_strings() {
        // a raw 0x01 / newline / NUL inside a string literal is invalid
        // JSON; the escaped forms parse fine
        assert!(parse_line("{\"a\":\"x\u{1}y\"}").is_err());
        assert!(parse_line("{\"a\":\"x\ny\"}").is_err());
        assert!(parse_line("{\"a\":\"x\u{0}y\"}").is_err());
        let fields = parse_line(r#"{"a":"x\u0001\n\u0000y"}"#).unwrap();
        assert_eq!(fields[0].1, Value::Str("x\u{1}\n\u{0}y".into()));
    }

    #[test]
    fn snapshot_reconstructs_the_export() {
        let text = "\
{\"type\":\"span\",\"id\":1,\"parent\":0,\"name\":\"job:m\",\"start_ns\":0,\"dur_ns\":90}\n\
{\"type\":\"span\",\"id\":2,\"parent\":1,\"name\":\"parse\",\"start_ns\":10,\"dur_ns\":30}\n\
{\"type\":\"counter\",\"span\":2,\"name\":\"bytes\",\"value\":128}\n\
{\"type\":\"hist\",\"name\":\"job_ns\",\"count\":2,\"sum\":60,\"min\":20,\"max\":40,\
\"bucket_upper\":[32,64],\"bucket_count\":[1,1]}\n";
        let snap = snapshot(text).unwrap();
        assert_eq!(snap.spans.len(), 2);
        assert_eq!(snap.spans[1].name, "parse");
        assert_eq!(snap.spans[1].parent, 1);
        assert_eq!(snap.counters[0].value, 128);
        let (name, h) = &snap.histograms[0];
        assert_eq!(name, "job_ns");
        assert_eq!(h.count(), 2);
        assert_eq!(h.max(), 40.0);

        assert!(snapshot("{\"type\":\"span\",\"id\":1}\n").is_err());
        assert!(snapshot("{\"type\":\"mystery\"}\n").is_err());
    }

    #[test]
    fn validate_checks_required_fields_per_type() {
        let good = "\
{\"type\":\"span\",\"id\":1,\"parent\":0,\"name\":\"parse\",\"start_ns\":0,\"dur_ns\":5}\n\
{\"type\":\"counter\",\"span\":1,\"name\":\"bytes\",\"value\":9}\n\
{\"type\":\"hist\",\"name\":\"h\",\"count\":1,\"sum\":2,\"min\":2,\"max\":2,\"bucket_upper\":[2],\"bucket_count\":[1]}\n";
        let stats = validate(good).unwrap();
        assert_eq!(
            stats,
            Stats {
                spans: 1,
                counters: 1,
                hists: 1
            }
        );
        assert!(validate("{\"type\":\"span\",\"id\":1}\n").is_err());
        assert!(validate("{\"type\":\"mystery\"}\n").is_err());
        assert!(validate("not json\n").is_err());
        assert_eq!(validate("\n\n").unwrap(), Stats::default());
    }
}
