//! Rolling time-window statistics: a ring of one-second [`Histogram`]
//! slots over a caller-supplied clock.
//!
//! The serve daemon's `metrics` verb reports per-verb request rates and
//! latency percentiles over "the last N seconds", not over the whole
//! process lifetime — a burst five minutes ago should not dominate the
//! p95 forever. A [`RollingWindow`] keeps one histogram per second in a
//! fixed ring; recording into the current second lazily evicts whatever
//! stale second previously occupied that slot, so there is no background
//! sweeper thread and no allocation after construction.
//!
//! The clock is an explicit `now_sec` argument (seconds from any fixed
//! origin, e.g. the daemon's start [`std::time::Instant`]). Keeping the
//! clock out of this type makes the ring deterministic under test and
//! keeps this crate free of time-source policy.

use crate::hist::Histogram;

/// A ring of per-second [`Histogram`] slots covering the last
/// `window_secs` seconds of observations.
#[derive(Debug, Clone)]
pub struct RollingWindow {
    /// `(stamp_sec, observations recorded during that second)`; a slot is
    /// live iff its stamp is within the window ending at `now_sec`.
    slots: Vec<(u64, Histogram)>,
    window_secs: u64,
    total: u64,
}

impl RollingWindow {
    /// A window covering the last `window_secs` seconds (clamped to at
    /// least 1). Allocates `window_secs` histogram slots up front.
    pub fn new(window_secs: u64) -> Self {
        let window_secs = window_secs.max(1);
        RollingWindow {
            slots: vec![(u64::MAX, Histogram::new()); window_secs as usize],
            window_secs,
            total: 0,
        }
    }

    /// The configured window width in seconds.
    pub fn window_secs(&self) -> u64 {
        self.window_secs
    }

    /// Lifetime observation count (never evicted, unlike the window).
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Records one observation at time `now_sec` (seconds since the
    /// caller's fixed origin). `now_sec` must not go backwards by more
    /// than the window width; a stale slot reached again after a full
    /// ring revolution is reset before recording.
    pub fn record(&mut self, now_sec: u64, value: f64) {
        self.total += 1;
        let idx = (now_sec % self.window_secs) as usize;
        let slot = &mut self.slots[idx];
        if slot.0 != now_sec {
            *slot = (now_sec, Histogram::new());
        }
        slot.1.record(value);
    }

    /// Merges every slot still inside the window ending at `now_sec`
    /// (i.e. stamped within the last `window_secs` seconds, inclusive of
    /// the current second) into one histogram.
    pub fn snapshot(&self, now_sec: u64) -> Histogram {
        let oldest = now_sec.saturating_sub(self.window_secs - 1);
        let mut merged = Histogram::new();
        for (stamp, hist) in &self.slots {
            if *stamp >= oldest && *stamp <= now_sec {
                merged.merge(hist);
            }
        }
        merged
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn window_keeps_only_recent_seconds() {
        let mut w = RollingWindow::new(3);
        w.record(0, 10.0);
        w.record(1, 20.0);
        w.record(2, 30.0);
        // all three seconds live at t=2
        let snap = w.snapshot(2);
        assert_eq!(snap.count(), 3);
        assert_eq!(snap.sum(), 60.0);
        // at t=3 the t=0 second has aged out
        let snap = w.snapshot(3);
        assert_eq!(snap.count(), 2);
        assert_eq!(snap.sum(), 50.0);
        // lifetime total is unaffected by eviction
        assert_eq!(w.total(), 3);
    }

    #[test]
    fn recording_reclaims_stale_ring_slots() {
        let mut w = RollingWindow::new(2);
        w.record(0, 1.0);
        w.record(1, 2.0);
        // t=2 maps onto t=0's slot; the stale histogram must be dropped,
        // not merged into
        w.record(2, 4.0);
        let snap = w.snapshot(2);
        assert_eq!(snap.count(), 2);
        assert_eq!(snap.sum(), 6.0);
        assert_eq!(w.total(), 3);
    }

    #[test]
    fn empty_and_far_future_snapshots_are_empty() {
        let mut w = RollingWindow::new(5);
        assert_eq!(w.snapshot(0).count(), 0);
        w.record(10, 7.0);
        assert_eq!(w.snapshot(10).count(), 1);
        assert_eq!(w.snapshot(1000).count(), 0);
    }

    #[test]
    fn merged_snapshot_preserves_percentiles() {
        let mut w = RollingWindow::new(60);
        for (sec, v) in [(0u64, 10.0), (1, 20.0), (2, 30.0)] {
            w.record(sec, v);
        }
        let snap = w.snapshot(2);
        let mut direct = Histogram::new();
        for v in [10.0, 20.0, 30.0] {
            direct.record(v);
        }
        assert_eq!(snap, direct);
        assert_eq!(snap.percentile(50.0), direct.percentile(50.0));
    }
}
