//! The unified per-stage timing view — the one `StageTimings` type in the
//! workspace. It is not measured directly: it is *derived* from a
//! [`Trace`] by summing span durations per canonical stage name.

use crate::trace::{SpanId, SpanRecord, Trace, NO_PARENT};
use std::collections::HashMap;
use std::time::Duration;

/// Canonical pipeline stage names, in pipeline order. Span names equal to
/// one of these contribute to the matching [`StageTimings`] field; the
/// NDJSON export uses the same names, and they are covered by a golden
/// schema test — treat them as a stable interface.
pub const STAGE_NAMES: [&str; 12] = [
    "parse", "flatten", "hash", "cache", "dfg", "iomap", "ranges", "classify", "lower", "verify",
    "analyze", "emit",
];

/// Wall-clock cost of each pipeline stage (monotonic clock), derived from
/// a trace via [`StageTimings::from_trace`] / [`StageTimings::for_span`].
///
/// Stages a path skips (e.g. everything from `dfg` on, for a cache hit)
/// stay at zero. Stage spans are disjoint by construction, except that a
/// driver job re-flattens an already-flat model inside graph
/// construction; that re-flatten is real (tiny) work and is counted.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StageTimings {
    /// Model acquisition: file read + `.slx`/`.mdl` parse, or running a
    /// programmatic builder.
    pub parse: Duration,
    /// Subsystem flattening of the parsed model.
    pub flatten: Duration,
    /// Content-digest computation over the flattened model + options.
    pub hash: Duration,
    /// Artifact-cache lookup (memory and disk layers).
    pub cache: Duration,
    /// Graph construction: validation, shape inference, adjacency.
    pub dfg: Duration,
    /// I/O-mapping derivation.
    pub iomap: Duration,
    /// Algorithm 1: calculation range determination.
    pub ranges: Duration,
    /// Optimizable-block classification and report construction.
    pub classify: Duration,
    /// Lowering to the loop IR.
    pub lower: Duration,
    /// Range-soundness verification of the lowered IR (opt-in; zero when
    /// the compile did not run with `--verify`).
    pub verify: Duration,
    /// Dataflow analyses over the lowered IR — value ranges, residual
    /// redundancy, schedule races, lifetimes (opt-in; zero when the
    /// compile did not run with `--analyze`).
    pub analyze: Duration,
    /// C emission.
    pub emit: Duration,
}

impl StageTimings {
    /// Stage names and durations in pipeline order (names match
    /// [`STAGE_NAMES`]).
    pub fn rows(&self) -> [(&'static str, Duration); 12] {
        [
            ("parse", self.parse),
            ("flatten", self.flatten),
            ("hash", self.hash),
            ("cache", self.cache),
            ("dfg", self.dfg),
            ("iomap", self.iomap),
            ("ranges", self.ranges),
            ("classify", self.classify),
            ("lower", self.lower),
            ("verify", self.verify),
            ("analyze", self.analyze),
            ("emit", self.emit),
        ]
    }

    /// Sum of all stages.
    pub fn total(&self) -> Duration {
        self.rows().iter().map(|&(_, d)| d).sum()
    }

    /// The paper's "Algorithm 1" cost: range determination plus
    /// optimizable-block classification.
    pub fn algorithm1(&self) -> Duration {
        self.ranges + self.classify
    }

    /// Derives stage timings from every span in the trace.
    pub fn from_trace(trace: &Trace) -> Self {
        Self::from_spans(&trace.snapshot().spans, None)
    }

    /// Derives stage timings from the subtree rooted at `root` (the root
    /// span itself included, should its name be a stage name). This is how
    /// a batch driver extracts per-job timings out of a shared trace.
    pub fn for_span(trace: &Trace, root: SpanId) -> Self {
        Self::from_spans(&trace.snapshot().spans, Some(root))
    }

    fn from_spans(spans: &[SpanRecord], root: Option<SpanId>) -> Self {
        let parents: HashMap<SpanId, SpanId> = spans.iter().map(|s| (s.id, s.parent)).collect();
        let in_subtree = |mut id: SpanId| -> bool {
            let Some(root) = root else { return true };
            loop {
                if id == root {
                    return true;
                }
                if id == NO_PARENT {
                    return false;
                }
                id = parents.get(&id).copied().unwrap_or(NO_PARENT);
            }
        };
        let mut t = StageTimings::default();
        for span in spans {
            if !in_subtree(span.id) {
                continue;
            }
            let d = Duration::from_nanos(span.dur_ns);
            match span.name.as_str() {
                "parse" => t.parse += d,
                "flatten" => t.flatten += d,
                "hash" => t.hash += d,
                "cache" => t.cache += d,
                "dfg" => t.dfg += d,
                "iomap" => t.iomap += d,
                "ranges" => t.ranges += d,
                "classify" => t.classify += d,
                "lower" => t.lower += d,
                "verify" => t.verify += d,
                "analyze" => t.analyze += d,
                "emit" => t.emit += d,
                _ => {}
            }
        }
        t
    }
}

/// Formats a duration compactly for human tables (ns/us/ms/s).
pub fn fmt_duration(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns < 1_000 {
        format!("{ns}ns")
    } else if ns < 1_000_000 {
        format!("{:.1}us", ns as f64 / 1e3)
    } else if ns < 1_000_000_000 {
        format!("{:.1}ms", ns as f64 / 1e6)
    } else {
        format!("{:.2}s", ns as f64 / 1e9)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rows_cover_the_canonical_stage_names_in_order() {
        let t = StageTimings::default();
        let names: Vec<&str> = t.rows().iter().map(|&(n, _)| n).collect();
        assert_eq!(names, STAGE_NAMES);
    }

    #[test]
    fn total_and_algorithm1_sum_fields() {
        let t = StageTimings {
            parse: Duration::from_nanos(1),
            flatten: Duration::from_nanos(2),
            hash: Duration::from_nanos(3),
            cache: Duration::from_nanos(4),
            dfg: Duration::from_nanos(5),
            iomap: Duration::from_nanos(6),
            ranges: Duration::from_nanos(7),
            classify: Duration::from_nanos(8),
            lower: Duration::from_nanos(9),
            verify: Duration::from_nanos(10),
            analyze: Duration::from_nanos(11),
            emit: Duration::from_nanos(12),
        };
        assert_eq!(t.total(), Duration::from_nanos(78));
        assert_eq!(t.algorithm1(), Duration::from_nanos(15));
    }

    #[test]
    fn derived_from_trace_and_scoped_to_subtrees() {
        let trace = Trace::new();
        let job_a = trace.span("job:a");
        let a_id = job_a.id();
        {
            let _p = job_a.child("parse");
            std::thread::sleep(Duration::from_millis(1));
        }
        drop(job_a);
        let job_b = trace.span("job:b");
        let b_id = job_b.id();
        {
            let _e = job_b.child("emit");
        }
        drop(job_b);

        let whole = StageTimings::from_trace(&trace);
        assert!(whole.parse > Duration::ZERO);
        let only_a = StageTimings::for_span(&trace, a_id);
        assert!(only_a.parse > Duration::ZERO);
        assert_eq!(only_a.emit, Duration::ZERO);
        let only_b = StageTimings::for_span(&trace, b_id);
        assert_eq!(only_b.parse, Duration::ZERO);
    }

    #[test]
    fn noop_trace_yields_zero_timings() {
        let t = StageTimings::from_trace(&Trace::noop());
        assert_eq!(t, StageTimings::default());
        assert_eq!(t.total(), Duration::ZERO);
    }

    #[test]
    fn duration_formatting_scales() {
        assert_eq!(fmt_duration(Duration::from_nanos(17)), "17ns");
        assert_eq!(fmt_duration(Duration::from_micros(17)), "17.0us");
        assert_eq!(fmt_duration(Duration::from_millis(17)), "17.0ms");
        assert_eq!(fmt_duration(Duration::from_secs(17)), "17.00s");
    }
}
