//! The append-only perf ledger: one flat NDJSON line per run, recording
//! git revision, engine, thread/worker counts, per-stage summaries,
//! deterministic counters, and optional service-level metrics. The flat
//! key scheme (`stage_<name>_<stat>`, `counter_<name>`, `svc_*`) keeps
//! entries round-trippable through the same zero-dependency parser that
//! validates trace exports ([`crate::ndjson::parse_line`]).

use crate::agg::{StageSummary, TraceAgg};
use crate::export::json_escape;
use crate::ndjson;
use crate::stage::STAGE_NAMES;
use std::fmt::Write as _;
use std::io::Write as _;
use std::path::Path;

/// Current ledger line schema version.
pub const LEDGER_SCHEMA: u64 = 1;

/// Service-level metrics from the batch driver: artifact-cache traffic,
/// queue wait, and worker utilization.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct ServiceMetrics {
    /// Artifact-cache hits (memory + disk) across the run.
    pub cache_hits: u64,
    /// Artifact-cache misses (full compiles) across the run.
    pub cache_misses: u64,
    /// Median nanoseconds a job waited in the queue before a worker
    /// picked it up.
    pub queue_wait_p50_ns: u64,
    /// Longest queue wait in nanoseconds.
    pub queue_wait_max_ns: u64,
    /// Total nanoseconds workers spent executing jobs (summed across
    /// workers).
    pub worker_busy_ns: u64,
    /// Worker utilization in percent: busy time over `workers × wall`.
    pub utilization_pct: f64,
    /// Artifact-cache evictions (memory + disk layers) forced by the
    /// configured byte-size cap.
    pub cache_evictions: u64,
    /// Jobs that exceeded their `timeout_ms` budget and were failed with
    /// `JobError::Timeout`.
    pub job_timeouts: u64,
    /// Requests the daemon served across every verb (`frodo serve` runs
    /// only; zero for one-shot batch runs).
    pub requests_total: u64,
    /// Median request latency in nanoseconds across every verb, over the
    /// daemon's whole lifetime.
    pub request_p50_ns: u64,
    /// Slowest request in nanoseconds over the daemon's whole lifetime.
    pub request_max_ns: u64,
}

impl ServiceMetrics {
    /// Artifact-cache hit rate in percent (0 when the cache saw no
    /// traffic).
    pub fn cache_hit_rate_pct(&self) -> f64 {
        let total = self.cache_hits + self.cache_misses;
        if total == 0 {
            0.0
        } else {
            self.cache_hits as f64 / total as f64 * 100.0
        }
    }
}

/// One run of the pipeline, as persisted in the ledger.
#[derive(Debug, Clone, PartialEq)]
pub struct LedgerEntry {
    /// Seconds since the Unix epoch when the entry was written.
    pub ts_unix: u64,
    /// Short git revision of the working tree (or `unknown`).
    pub git_rev: String,
    /// What ran: a model name, `batch:<n>`, or `bench:hotpath`.
    pub label: String,
    /// Range-analysis engine used (`dense`, `worklist`, `parallel`, or
    /// `auto`).
    pub engine: String,
    /// Intra-model analysis threads requested (0 = auto).
    pub threads: u64,
    /// Batch worker threads.
    pub workers: u64,
    /// Jobs (models) compiled in the run.
    pub jobs: u64,
    /// End-to-end wall time of the run in nanoseconds.
    pub wall_ns: u64,
    /// Per-stage summaries, every canonical stage always present.
    pub stages: Vec<(String, StageSummary)>,
    /// Deterministic counter totals, sorted by name.
    pub counters: Vec<(String, i64)>,
    /// Driver service metrics, when the run went through the batch
    /// service.
    pub svc: Option<ServiceMetrics>,
}

impl LedgerEntry {
    /// Builds an entry from an aggregated trace plus run identity. The
    /// timestamp is sampled now; the git revision via [`git_rev`].
    pub fn from_agg(
        agg: &TraceAgg,
        label: &str,
        engine: &str,
        threads: u64,
        workers: u64,
        wall_ns: u64,
    ) -> LedgerEntry {
        LedgerEntry {
            ts_unix: unix_now(),
            git_rev: git_rev(),
            label: label.to_string(),
            engine: engine.to_string(),
            threads,
            workers,
            jobs: agg.jobs,
            wall_ns,
            stages: agg.stages.clone(),
            counters: agg.counters.clone(),
            svc: None,
        }
    }

    /// Looks up a counter total by name (0 when absent).
    pub fn counter(&self, name: &str) -> i64 {
        self.counters
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| *v)
            .unwrap_or(0)
    }

    /// Looks up a stage summary by canonical name.
    pub fn stage(&self, name: &str) -> Option<&StageSummary> {
        self.stages.iter().find(|(n, _)| n == name).map(|(_, s)| s)
    }

    /// Region-cache hit rate in percent, from the incremental-compile
    /// counters (`counter_region_hits` / `counter_region_total`). `None`
    /// for runs that did not go through an incremental session — the
    /// counters only exist on that path, so old ledgers and one-shot
    /// entries read back unchanged.
    pub fn region_hit_rate_pct(&self) -> Option<f64> {
        let total = self.counter("region_total");
        if total <= 0 {
            return None;
        }
        Some(self.counter("region_hits") as f64 / total as f64 * 100.0)
    }

    /// Serializes the entry as one flat NDJSON line (no trailing
    /// newline).
    pub fn to_line(&self) -> String {
        let mut out = String::with_capacity(1024);
        let _ = write!(
            out,
            "{{\"type\":\"ledger\",\"schema\":{LEDGER_SCHEMA},\"ts_unix\":{},\"git_rev\":\"{}\",\
             \"label\":\"{}\",\"engine\":\"{}\",\"threads\":{},\"workers\":{},\"jobs\":{},\
             \"wall_ns\":{}",
            self.ts_unix,
            json_escape(&self.git_rev),
            json_escape(&self.label),
            json_escape(&self.engine),
            self.threads,
            self.workers,
            self.jobs,
            self.wall_ns
        );
        for (name, s) in &self.stages {
            let _ = write!(
                out,
                ",\"stage_{name}_count\":{},\"stage_{name}_sum_ns\":{},\"stage_{name}_mean_ns\":{},\
                 \"stage_{name}_p50_ns\":{},\"stage_{name}_p95_ns\":{},\"stage_{name}_max_ns\":{}",
                s.count, s.sum_ns, s.mean_ns, s.p50_ns, s.p95_ns, s.max_ns
            );
        }
        for (name, v) in &self.counters {
            let _ = write!(out, ",\"counter_{}\":{v}", json_escape(name));
        }
        if let Some(svc) = &self.svc {
            let _ = write!(
                out,
                ",\"svc_cache_hits\":{},\"svc_cache_misses\":{},\"svc_queue_wait_p50_ns\":{},\
                 \"svc_queue_wait_max_ns\":{},\"svc_worker_busy_ns\":{},\"svc_utilization_pct\":{:.2},\
                 \"svc_cache_evictions\":{},\"svc_job_timeouts\":{},\
                 \"svc_requests_total\":{},\"svc_request_p50_ns\":{},\"svc_request_max_ns\":{}",
                svc.cache_hits,
                svc.cache_misses,
                svc.queue_wait_p50_ns,
                svc.queue_wait_max_ns,
                svc.worker_busy_ns,
                svc.utilization_pct,
                svc.cache_evictions,
                svc.job_timeouts,
                svc.requests_total,
                svc.request_p50_ns,
                svc.request_max_ns
            );
        }
        out.push('}');
        out
    }

    /// Parses one ledger line back into an entry.
    ///
    /// # Errors
    ///
    /// Rejects lines that are not `"type":"ledger"`, carry an unknown
    /// schema version, or fail to parse as flat JSON.
    pub fn from_line(line: &str) -> Result<LedgerEntry, String> {
        let fields = ndjson::parse_line(line)?;
        let get = |key: &str| fields.iter().find(|(k, _)| k == key).map(|(_, v)| v);
        let num = |key: &str| -> Result<u64, String> {
            get(key)
                .and_then(|v| v.as_num())
                .map(|n| n as u64)
                .ok_or_else(|| format!("ledger line missing numeric field {key:?}"))
        };
        let text = |key: &str| -> Result<String, String> {
            get(key)
                .and_then(|v| v.as_str())
                .map(str::to_string)
                .ok_or_else(|| format!("ledger line missing string field {key:?}"))
        };
        if text("type")? != "ledger" {
            return Err("not a ledger line (type != \"ledger\")".into());
        }
        let schema = num("schema")?;
        if schema != LEDGER_SCHEMA {
            return Err(format!(
                "unsupported ledger schema {schema} (this build reads {LEDGER_SCHEMA})"
            ));
        }
        let mut stages = Vec::with_capacity(STAGE_NAMES.len());
        for stage in STAGE_NAMES {
            let stat = |name: &str| num(&format!("stage_{stage}_{name}"));
            stages.push((
                stage.to_string(),
                StageSummary {
                    count: stat("count")?,
                    sum_ns: stat("sum_ns")?,
                    mean_ns: stat("mean_ns")?,
                    p50_ns: stat("p50_ns")?,
                    p95_ns: stat("p95_ns")?,
                    max_ns: stat("max_ns")?,
                },
            ));
        }
        let mut counters = Vec::new();
        for (k, v) in &fields {
            if let Some(name) = k.strip_prefix("counter_") {
                let n = v
                    .as_num()
                    .ok_or_else(|| format!("counter field {k:?} is not a number"))?;
                counters.push((name.to_string(), n as i64));
            }
        }
        counters.sort();
        let svc = if get("svc_cache_hits").is_some() {
            Some(ServiceMetrics {
                cache_hits: num("svc_cache_hits")?,
                cache_misses: num("svc_cache_misses")?,
                queue_wait_p50_ns: num("svc_queue_wait_p50_ns")?,
                queue_wait_max_ns: num("svc_queue_wait_max_ns")?,
                worker_busy_ns: num("svc_worker_busy_ns")?,
                utilization_pct: get("svc_utilization_pct")
                    .and_then(|v| v.as_num())
                    .unwrap_or(0.0),
                // introduced after schema-1 entries existed; absent in
                // old ledgers, so they read back as zero
                cache_evictions: num("svc_cache_evictions").unwrap_or(0),
                job_timeouts: num("svc_job_timeouts").unwrap_or(0),
                requests_total: num("svc_requests_total").unwrap_or(0),
                request_p50_ns: num("svc_request_p50_ns").unwrap_or(0),
                request_max_ns: num("svc_request_max_ns").unwrap_or(0),
            })
        } else {
            None
        };
        Ok(LedgerEntry {
            ts_unix: num("ts_unix")?,
            git_rev: text("git_rev")?,
            label: text("label")?,
            engine: text("engine")?,
            threads: num("threads")?,
            workers: num("workers")?,
            jobs: num("jobs")?,
            wall_ns: num("wall_ns")?,
            stages,
            counters,
            svc,
        })
    }
}

/// Parses every ledger line in `text`, skipping blank lines. Fails on the
/// first malformed line, reporting its 1-based number.
pub fn read_ledger(text: &str) -> Result<Vec<LedgerEntry>, String> {
    let mut entries = Vec::new();
    for (i, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        entries
            .push(LedgerEntry::from_line(line).map_err(|e| format!("ledger line {}: {e}", i + 1))?);
    }
    Ok(entries)
}

/// Appends one entry to the ledger file at `path`, creating parent
/// directories and the file as needed.
///
/// # Errors
///
/// Propagates filesystem errors as strings.
pub fn append_entry(path: &Path, entry: &LedgerEntry) -> Result<(), String> {
    if let Some(dir) = path.parent() {
        if !dir.as_os_str().is_empty() {
            std::fs::create_dir_all(dir).map_err(|e| format!("creating {}: {e}", dir.display()))?;
        }
    }
    let mut f = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(path)
        .map_err(|e| format!("opening {}: {e}", path.display()))?;
    writeln!(f, "{}", entry.to_line()).map_err(|e| format!("writing {}: {e}", path.display()))
}

/// The short git revision of the current working tree: `git rev-parse
/// --short HEAD`, falling back to the `FRODO_GIT_REV` environment
/// variable, then `"unknown"`.
pub fn git_rev() -> String {
    if let Ok(out) = std::process::Command::new("git")
        .args(["rev-parse", "--short", "HEAD"])
        .output()
    {
        if out.status.success() {
            let rev = String::from_utf8_lossy(&out.stdout).trim().to_string();
            if !rev.is_empty() {
                return rev;
            }
        }
    }
    std::env::var("FRODO_GIT_REV").unwrap_or_else(|_| "unknown".to_string())
}

fn unix_now() -> u64 {
    std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_secs())
        .unwrap_or(0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::agg::aggregate;
    use crate::trace::Trace;

    fn sample_entry() -> LedgerEntry {
        let t = Trace::new();
        {
            let job = t.span("job:Kalman \"v2\"");
            {
                let p = job.child("parse");
                p.count("mdl_bytes", 4096);
            }
            {
                let e = job.child("emit");
                e.count("stmts", 42);
                e.count("bytes_emitted", 1337);
            }
        }
        let agg = aggregate(&t.snapshot());
        let mut entry = LedgerEntry::from_agg(&agg, "batch:1", "parallel", 2, 4, 123_456_789);
        entry.svc = Some(ServiceMetrics {
            cache_hits: 3,
            cache_misses: 1,
            queue_wait_p50_ns: 500,
            queue_wait_max_ns: 900,
            worker_busy_ns: 100_000,
            utilization_pct: 81.25,
            cache_evictions: 2,
            job_timeouts: 1,
            requests_total: 17,
            request_p50_ns: 2_000,
            request_max_ns: 9_000,
        });
        entry
    }

    #[test]
    fn ledger_line_roundtrips() {
        let entry = sample_entry();
        let line = entry.to_line();
        assert!(line.starts_with("{\"type\":\"ledger\",\"schema\":1,"));
        assert!(!line.contains('\n'));
        let back = LedgerEntry::from_line(&line).expect("parses");
        // utilization survives only to 2 decimals; compare the rest exactly
        assert_eq!(back.label, entry.label);
        assert_eq!(back.engine, entry.engine);
        assert_eq!(back.threads, entry.threads);
        assert_eq!(back.workers, entry.workers);
        assert_eq!(back.jobs, 1);
        assert_eq!(back.wall_ns, entry.wall_ns);
        assert_eq!(back.stages, entry.stages);
        assert_eq!(back.counters, entry.counters);
        assert_eq!(back.counter("stmts"), 42);
        assert_eq!(back.counter("bytes_emitted"), 1337);
        let svc = back.svc.expect("svc metrics");
        assert_eq!(svc.cache_hits, 3);
        assert_eq!(svc.cache_misses, 1);
        assert_eq!(svc.cache_hit_rate_pct(), 75.0);
        assert!((svc.utilization_pct - 81.25).abs() < 1e-9);
        assert_eq!(svc.cache_evictions, 2);
        assert_eq!(svc.job_timeouts, 1);
        assert_eq!(svc.requests_total, 17);
        assert_eq!(svc.request_p50_ns, 2_000);
        assert_eq!(svc.request_max_ns, 9_000);
    }

    #[test]
    fn pre_eviction_ledger_lines_read_back_with_zeroes() {
        // entries written before the eviction/timeout fields (and the
        // later daemon request rollups) existed lack those svc keys;
        // they must still parse
        let line = sample_entry().to_line();
        let old = line
            .replace(",\"svc_cache_evictions\":2", "")
            .replace(",\"svc_job_timeouts\":1", "")
            .replace(",\"svc_requests_total\":17", "")
            .replace(",\"svc_request_p50_ns\":2000", "")
            .replace(",\"svc_request_max_ns\":9000", "");
        let back = LedgerEntry::from_line(&old).expect("parses");
        let svc = back.svc.expect("svc metrics");
        assert_eq!(svc.cache_evictions, 0);
        assert_eq!(svc.job_timeouts, 0);
        assert_eq!(svc.requests_total, 0);
        assert_eq!(svc.request_p50_ns, 0);
        assert_eq!(svc.request_max_ns, 0);
    }

    #[test]
    fn region_hit_rate_comes_from_the_incremental_counters() {
        let mut entry = sample_entry();
        assert_eq!(
            entry.region_hit_rate_pct(),
            None,
            "one-shot runs have no rate"
        );
        entry.counters.push(("region_hits".into(), 36));
        entry.counters.push(("region_total".into(), 40));
        let back = LedgerEntry::from_line(&entry.to_line()).expect("parses");
        assert_eq!(back.region_hit_rate_pct(), Some(90.0));
    }

    #[test]
    fn entries_without_service_metrics_roundtrip_too() {
        let mut entry = sample_entry();
        entry.svc = None;
        let back = LedgerEntry::from_line(&entry.to_line()).expect("parses");
        assert_eq!(back.svc, None);
        assert_eq!(back.stages, entry.stages);
    }

    #[test]
    fn from_line_rejects_foreign_and_stale_lines() {
        assert!(LedgerEntry::from_line("{\"type\":\"span\",\"id\":1}").is_err());
        assert!(LedgerEntry::from_line("not json").is_err());
        let stale = sample_entry()
            .to_line()
            .replacen("\"schema\":1", "\"schema\":99", 1);
        let err = LedgerEntry::from_line(&stale).unwrap_err();
        assert!(err.contains("schema 99"), "{err}");
    }

    #[test]
    fn read_ledger_skips_blanks_and_reports_line_numbers() {
        let line = sample_entry().to_line();
        let text = format!("{line}\n\n{line}\n");
        let entries = read_ledger(&text).expect("parses");
        assert_eq!(entries.len(), 2);
        let bad = format!("{line}\nbroken\n");
        let err = read_ledger(&bad).unwrap_err();
        assert!(err.starts_with("ledger line 2:"), "{err}");
    }

    #[test]
    fn append_creates_dirs_and_appends() {
        let dir = std::env::temp_dir().join(format!(
            "frodo-ledger-test-{}-{}",
            std::process::id(),
            unix_now()
        ));
        let path = dir.join("nested/ledger.ndjson");
        let entry = sample_entry();
        append_entry(&path, &entry).expect("first append");
        append_entry(&path, &entry).expect("second append");
        let text = std::fs::read_to_string(&path).expect("readable");
        assert_eq!(read_ledger(&text).expect("parses").len(), 2);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn git_rev_is_never_empty() {
        assert!(!git_rev().is_empty());
    }
}
