//! Longitudinal aggregation: folds the many per-job span subtrees of one
//! trace (a whole `frodo batch`, a bench sweep) into per-stage summary
//! statistics and totalled counters — the shape the perf ledger persists
//! and `obs diff` compares.

use crate::hist::Histogram;
use crate::stage::STAGE_NAMES;
use crate::trace::TraceSnapshot;

/// Summary statistics for one pipeline stage across every span in a
/// snapshot that carries the stage's canonical name.
///
/// Percentiles are estimated from a log2-bucket [`Histogram`] over the
/// span durations (see [`Histogram::percentile`]); `count == 0` means the
/// stage never ran and every field is zero.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct StageSummary {
    /// Spans observed for this stage.
    pub count: u64,
    /// Total nanoseconds across those spans.
    pub sum_ns: u64,
    /// Mean span duration in nanoseconds.
    pub mean_ns: u64,
    /// Median span duration in nanoseconds (interpolated).
    pub p50_ns: u64,
    /// 95th-percentile span duration in nanoseconds (interpolated).
    pub p95_ns: u64,
    /// Longest span in nanoseconds.
    pub max_ns: u64,
}

impl StageSummary {
    /// Derives the summary statistics from a histogram of span
    /// durations (in nanoseconds).
    pub fn from_histogram(h: &Histogram) -> StageSummary {
        StageSummary {
            count: h.count(),
            sum_ns: h.sum() as u64,
            mean_ns: h.mean() as u64,
            p50_ns: h.percentile(50.0) as u64,
            p95_ns: h.percentile(95.0) as u64,
            max_ns: h.max() as u64,
        }
    }
}

/// The aggregate view of one trace: per-stage summaries plus totalled
/// counters, ready to persist as a ledger entry or diff against another
/// run.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct TraceAgg {
    /// One summary per canonical stage, in [`STAGE_NAMES`] order. Every
    /// stage is always present (zeroed when it never ran) so the ledger
    /// schema stays stable across engines and model mixes.
    pub stages: Vec<(String, StageSummary)>,
    /// Counter totals summed across all spans, sorted by name. These are
    /// the deterministic signals (`elements_eliminated`, `set_ops_*`,
    /// `stmts`, `bytes_emitted`, …) that `obs diff` compares exactly.
    pub counters: Vec<(String, i64)>,
    /// Number of per-model jobs in the trace (spans named `job:*`).
    pub jobs: u64,
}

impl TraceAgg {
    /// Looks up a stage summary by canonical name.
    pub fn stage(&self, name: &str) -> Option<&StageSummary> {
        self.stages.iter().find(|(n, _)| n == name).map(|(_, s)| s)
    }

    /// Looks up a counter total by name (0 when never recorded).
    pub fn counter(&self, name: &str) -> i64 {
        self.counters
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| *v)
            .unwrap_or(0)
    }
}

/// Folds a snapshot into its aggregate view: span durations bucketed per
/// canonical stage name, counters totalled by name, jobs counted by their
/// `job:` span prefix.
pub fn aggregate(snap: &TraceSnapshot) -> TraceAgg {
    let mut hists: Vec<Histogram> = vec![Histogram::new(); STAGE_NAMES.len()];
    let mut jobs = 0u64;
    for s in &snap.spans {
        if let Some(i) = STAGE_NAMES.iter().position(|&n| n == s.name) {
            hists[i].record(s.dur_ns as f64);
        } else if s.name.starts_with("job:") {
            jobs += 1;
        }
    }
    let stages = STAGE_NAMES
        .iter()
        .zip(&hists)
        .map(|(&name, h)| (name.to_string(), StageSummary::from_histogram(h)))
        .collect();

    let mut counters: Vec<(String, i64)> = Vec::new();
    for c in &snap.counters {
        match counters.binary_search_by(|(n, _)| n.as_str().cmp(&c.name)) {
            Ok(i) => counters[i].1 += c.value as i64,
            Err(i) => counters.insert(i, (c.name.clone(), c.value as i64)),
        }
    }

    TraceAgg {
        stages,
        counters,
        jobs,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::Trace;

    #[test]
    fn aggregates_stages_counters_and_jobs() {
        let t = Trace::new();
        for model in ["a", "b"] {
            let job = t.span(&format!("job:{model}"));
            {
                let p = job.child("parse");
                p.count("mdl_bytes", 100);
            }
            {
                let e = job.child("emit");
                e.count("stmts", 7);
            }
        }
        let agg = aggregate(&t.snapshot());
        assert_eq!(agg.jobs, 2);
        // every canonical stage is present, ran or not, in order
        assert_eq!(agg.stages.len(), crate::STAGE_NAMES.len());
        for ((name, _), &want) in agg.stages.iter().zip(crate::STAGE_NAMES.iter()) {
            assert_eq!(name, want);
        }
        let parse = agg.stage("parse").unwrap();
        assert_eq!(parse.count, 2);
        assert!(parse.sum_ns >= parse.max_ns);
        assert!(parse.max_ns >= parse.p95_ns);
        let dfg = agg.stage("dfg").unwrap();
        assert_eq!(*dfg, StageSummary::default());
        // counters sum across jobs and come back sorted
        assert_eq!(agg.counter("mdl_bytes"), 200);
        assert_eq!(agg.counter("stmts"), 14);
        assert_eq!(agg.counter("never_recorded"), 0);
        let names: Vec<&str> = agg.counters.iter().map(|(n, _)| n.as_str()).collect();
        let mut sorted = names.clone();
        sorted.sort();
        assert_eq!(names, sorted);
    }

    #[test]
    fn empty_trace_aggregates_to_zeroes() {
        let agg = aggregate(&Trace::new().snapshot());
        assert_eq!(agg.jobs, 0);
        assert!(agg.counters.is_empty());
        assert!(agg
            .stages
            .iter()
            .all(|(_, s)| *s == StageSummary::default()));
    }

    #[test]
    fn summary_percentiles_track_the_histogram() {
        let t = Trace::new();
        {
            let job = t.span("job:x");
            for _ in 0..3 {
                let _p = job.child("ranges");
            }
        }
        let agg = aggregate(&t.snapshot());
        let r = agg.stage("ranges").unwrap();
        assert_eq!(r.count, 3);
        assert!(r.p50_ns <= r.p95_ns);
        assert!(r.p95_ns <= r.max_ns);
        assert!(r.mean_ns * 3 <= r.sum_ns + 3);
    }
}
