//! A small fixed-footprint histogram: count/sum/min/max plus power-of-two
//! buckets, enough to characterize latency distributions without any
//! external metrics crate.

/// Log2-bucketed histogram over non-negative observations.
///
/// Bucket `i` covers values in `[2^(i-1), 2^i)` (bucket 0 covers `< 1`);
/// the last bucket absorbs everything larger.
#[derive(Debug, Clone, PartialEq)]
pub struct Histogram {
    count: u64,
    sum: f64,
    min: f64,
    max: f64,
    buckets: [u64; Histogram::BUCKETS],
}

impl Histogram {
    /// Number of power-of-two buckets.
    pub const BUCKETS: usize = 48;

    /// An empty histogram.
    pub fn new() -> Self {
        Histogram {
            count: 0,
            sum: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
            buckets: [0; Histogram::BUCKETS],
        }
    }

    /// Records one observation (negative values clamp to zero).
    pub fn record(&mut self, value: f64) {
        let v = value.max(0.0);
        self.count += 1;
        self.sum += v;
        self.min = self.min.min(v);
        self.max = self.max.max(v);
        self.buckets[Self::bucket_index(v)] += 1;
    }

    fn bucket_index(v: f64) -> usize {
        if v < 1.0 {
            0
        } else {
            // number of bits of floor(v): 1 for [1,2), 2 for [2,4), ...
            let bits = 64 - (v as u64).leading_zeros() as usize;
            bits.min(Histogram::BUCKETS - 1)
        }
    }

    /// Observations recorded.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all observations.
    pub fn sum(&self) -> f64 {
        self.sum
    }

    /// Smallest observation (0 when empty).
    pub fn min(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.min
        }
    }

    /// Largest observation (0 when empty).
    pub fn max(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.max
        }
    }

    /// Mean observation (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum / self.count as f64
        }
    }

    /// Non-empty buckets as `(exclusive upper bound, count)` pairs.
    pub fn nonzero_buckets(&self) -> Vec<(u64, u64)> {
        self.buckets
            .iter()
            .enumerate()
            .filter(|&(_, &n)| n > 0)
            .map(|(i, &n)| (1u64 << i, n))
            .collect()
    }

    /// The `q`-th percentile (`q` in `[0, 100]`), estimated by linear
    /// interpolation inside the log2 bucket holding the target rank and
    /// clamped to the exact observed `[min, max]`. Distributions narrower
    /// than one bucket therefore come back exact; `percentile(100.0)` is
    /// always exactly [`Histogram::max`]. Returns 0 when empty.
    pub fn percentile(&self, q: f64) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        let q = if q.is_finite() {
            q.clamp(0.0, 100.0)
        } else {
            100.0
        };
        let target = q / 100.0 * self.count as f64;
        let mut cum = 0u64;
        for (i, &n) in self.buckets.iter().enumerate() {
            if n == 0 {
                continue;
            }
            if (cum + n) as f64 >= target {
                let lower = if i == 0 {
                    0.0
                } else {
                    (1u64 << (i - 1)) as f64
                };
                let upper = (1u64 << i) as f64;
                let frac = ((target - cum as f64) / n as f64).clamp(0.0, 1.0);
                return (lower + frac * (upper - lower)).clamp(self.min, self.max);
            }
            cum += n;
        }
        self.max()
    }

    /// Folds another histogram into this one bucket-by-bucket; the result
    /// is exactly what recording both observation streams into one
    /// histogram would have produced.
    pub fn merge(&mut self, other: &Histogram) {
        if other.count == 0 {
            return;
        }
        self.count += other.count;
        self.sum += other.sum;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
        for (dst, src) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *dst += src;
        }
    }

    /// Rebuilds a histogram from its exported parts (the `hist` NDJSON
    /// line's fields): summary stats plus `(exclusive upper bound, count)`
    /// bucket pairs as produced by [`Histogram::nonzero_buckets`].
    ///
    /// # Errors
    ///
    /// Rejects bucket bounds that are not powers of two, bounds past the
    /// last bucket, and bucket counts that do not sum to `count`.
    pub fn from_parts(
        count: u64,
        sum: f64,
        min: f64,
        max: f64,
        buckets: &[(u64, u64)],
    ) -> Result<Self, String> {
        let mut h = Histogram::new();
        h.count = count;
        h.sum = sum;
        h.min = if count == 0 { f64::INFINITY } else { min };
        h.max = if count == 0 { f64::NEG_INFINITY } else { max };
        let mut total = 0u64;
        for &(upper, n) in buckets {
            if !upper.is_power_of_two() {
                return Err(format!("bucket upper bound {upper} is not a power of two"));
            }
            let idx = upper.trailing_zeros() as usize;
            if idx >= Histogram::BUCKETS {
                return Err(format!("bucket upper bound {upper} out of range"));
            }
            h.buckets[idx] += n;
            total += n;
        }
        if total != count {
            return Err(format!("bucket counts sum to {total}, expected {count}"));
        }
        Ok(h)
    }
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_histogram_reports_zeros() {
        let h = Histogram::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.min(), 0.0);
        assert_eq!(h.max(), 0.0);
        assert_eq!(h.mean(), 0.0);
        assert!(h.nonzero_buckets().is_empty());
    }

    #[test]
    fn observations_land_in_log2_buckets() {
        let mut h = Histogram::new();
        h.record(0.5); // bucket 0: < 1
        h.record(1.0); // bucket 1: [1, 2)
        h.record(3.0); // bucket 2: [2, 4)
        h.record(3.9);
        h.record(-7.0); // clamps to 0 -> bucket 0
        assert_eq!(h.count(), 5);
        assert_eq!(h.min(), 0.0);
        assert_eq!(h.max(), 3.9);
        assert_eq!(h.nonzero_buckets(), vec![(1, 2), (2, 1), (4, 2)],);
    }

    #[test]
    fn huge_values_saturate_the_last_bucket() {
        let mut h = Histogram::new();
        h.record(f64::MAX);
        let buckets = h.nonzero_buckets();
        assert_eq!(buckets.len(), 1);
        assert_eq!(buckets[0], (1u64 << (Histogram::BUCKETS - 1), 1));
    }

    #[test]
    fn percentiles_pin_known_distributions() {
        // [10, 20, 30]: 10 in [8,16), {20, 30} in [16,32). p50 lands at
        // rank 1.5 -> 1/4 into [16,32) = exactly 20; p95 interpolates to
        // 30.8 and clamps to the exact max; p100 is the exact max.
        let mut h = Histogram::new();
        for v in [10.0, 20.0, 30.0] {
            h.record(v);
        }
        assert_eq!(h.percentile(50.0), 20.0);
        assert_eq!(h.percentile(95.0), 30.0);
        assert_eq!(h.percentile(100.0), 30.0);
        // p0 interpolates to the first bucket's lower bound (8) and clamps
        // up to the exact min
        assert_eq!(h.percentile(0.0), 10.0);

        // a constant distribution is exact at every percentile: the
        // min==max clamp collapses the bucket interpolation
        let mut c = Histogram::new();
        for _ in 0..5 {
            c.record(42.0);
        }
        for q in [0.0, 25.0, 50.0, 95.0, 99.9, 100.0] {
            assert_eq!(c.percentile(q), 42.0, "q={q}");
        }

        // empty and out-of-range inputs stay tame
        assert_eq!(Histogram::new().percentile(50.0), 0.0);
        assert_eq!(h.percentile(-3.0), 10.0);
        assert_eq!(h.percentile(250.0), 30.0);
        assert_eq!(h.percentile(f64::NAN), 30.0);
    }

    #[test]
    fn percentile_of_a_single_observation_is_exact_everywhere() {
        // count == 1: the min==max clamp makes every percentile the one
        // observed value, with no bucket interpolation leaking through
        let mut h = Histogram::new();
        h.record(7.0);
        for q in [0.0, 1.0, 50.0, 99.0, 100.0] {
            assert_eq!(h.percentile(q), 7.0, "q={q}");
        }
    }

    #[test]
    fn percentile_interpolates_inside_one_bucket() {
        // 4 observations all inside [16,32): ranks split the bucket into
        // quarters, so p50 -> 16 + 0.5*16 = 24 exactly
        let mut h = Histogram::new();
        for v in [16.0, 20.0, 28.0, 31.0] {
            h.record(v);
        }
        assert_eq!(h.percentile(50.0), 24.0);
        assert_eq!(h.percentile(100.0), 31.0);
    }

    #[test]
    fn merge_matches_recording_both_streams() {
        let mut a = Histogram::new();
        let mut b = Histogram::new();
        let mut both = Histogram::new();
        for v in [0.5, 10.0, 300.0] {
            a.record(v);
            both.record(v);
        }
        for v in [2.0, 4096.0] {
            b.record(v);
            both.record(v);
        }
        a.merge(&b);
        assert_eq!(a, both);

        // merging an empty histogram is a no-op, including min/max
        let before = a.clone();
        a.merge(&Histogram::new());
        assert_eq!(a, before);

        // merging into an empty histogram copies the other side
        let mut empty = Histogram::new();
        empty.merge(&both);
        assert_eq!(empty, both);
    }

    #[test]
    fn from_parts_roundtrips_the_export() {
        let mut h = Histogram::new();
        for v in [0.5, 1.0, 3.0, 3.9, 100.0] {
            h.record(v);
        }
        let back =
            Histogram::from_parts(h.count(), h.sum(), h.min(), h.max(), &h.nonzero_buckets())
                .unwrap();
        assert_eq!(back, h);
        assert_eq!(back.percentile(50.0), h.percentile(50.0));

        // an empty histogram round-trips to the canonical empty state
        let empty = Histogram::from_parts(0, 0.0, 0.0, 0.0, &[]).unwrap();
        assert_eq!(empty, Histogram::new());

        assert!(Histogram::from_parts(1, 3.0, 3.0, 3.0, &[(3, 1)]).is_err());
        assert!(Histogram::from_parts(2, 3.0, 3.0, 3.0, &[(4, 1)]).is_err());
        assert!(Histogram::from_parts(1, 3.0, 3.0, 3.0, &[(1u64 << 63, 1)]).is_err());
    }

    #[test]
    fn stats_accumulate() {
        let mut h = Histogram::new();
        for v in [10.0, 20.0, 30.0] {
            h.record(v);
        }
        assert_eq!(h.mean(), 20.0);
        assert_eq!(h.sum(), 60.0);
        assert_eq!(h.min(), 10.0);
        assert_eq!(h.max(), 30.0);
    }
}
