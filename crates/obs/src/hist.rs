//! A small fixed-footprint histogram: count/sum/min/max plus power-of-two
//! buckets, enough to characterize latency distributions without any
//! external metrics crate.

/// Log2-bucketed histogram over non-negative observations.
///
/// Bucket `i` covers values in `[2^(i-1), 2^i)` (bucket 0 covers `< 1`);
/// the last bucket absorbs everything larger.
#[derive(Debug, Clone, PartialEq)]
pub struct Histogram {
    count: u64,
    sum: f64,
    min: f64,
    max: f64,
    buckets: [u64; Histogram::BUCKETS],
}

impl Histogram {
    /// Number of power-of-two buckets.
    pub const BUCKETS: usize = 48;

    /// An empty histogram.
    pub fn new() -> Self {
        Histogram {
            count: 0,
            sum: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
            buckets: [0; Histogram::BUCKETS],
        }
    }

    /// Records one observation (negative values clamp to zero).
    pub fn record(&mut self, value: f64) {
        let v = value.max(0.0);
        self.count += 1;
        self.sum += v;
        self.min = self.min.min(v);
        self.max = self.max.max(v);
        self.buckets[Self::bucket_index(v)] += 1;
    }

    fn bucket_index(v: f64) -> usize {
        if v < 1.0 {
            0
        } else {
            // number of bits of floor(v): 1 for [1,2), 2 for [2,4), ...
            let bits = 64 - (v as u64).leading_zeros() as usize;
            bits.min(Histogram::BUCKETS - 1)
        }
    }

    /// Observations recorded.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all observations.
    pub fn sum(&self) -> f64 {
        self.sum
    }

    /// Smallest observation (0 when empty).
    pub fn min(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.min
        }
    }

    /// Largest observation (0 when empty).
    pub fn max(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.max
        }
    }

    /// Mean observation (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum / self.count as f64
        }
    }

    /// Non-empty buckets as `(exclusive upper bound, count)` pairs.
    pub fn nonzero_buckets(&self) -> Vec<(u64, u64)> {
        self.buckets
            .iter()
            .enumerate()
            .filter(|&(_, &n)| n > 0)
            .map(|(i, &n)| (1u64 << i, n))
            .collect()
    }
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_histogram_reports_zeros() {
        let h = Histogram::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.min(), 0.0);
        assert_eq!(h.max(), 0.0);
        assert_eq!(h.mean(), 0.0);
        assert!(h.nonzero_buckets().is_empty());
    }

    #[test]
    fn observations_land_in_log2_buckets() {
        let mut h = Histogram::new();
        h.record(0.5); // bucket 0: < 1
        h.record(1.0); // bucket 1: [1, 2)
        h.record(3.0); // bucket 2: [2, 4)
        h.record(3.9);
        h.record(-7.0); // clamps to 0 -> bucket 0
        assert_eq!(h.count(), 5);
        assert_eq!(h.min(), 0.0);
        assert_eq!(h.max(), 3.9);
        assert_eq!(
            h.nonzero_buckets(),
            vec![(1, 2), (2, 1), (4, 2)],
        );
    }

    #[test]
    fn huge_values_saturate_the_last_bucket() {
        let mut h = Histogram::new();
        h.record(f64::MAX);
        let buckets = h.nonzero_buckets();
        assert_eq!(buckets.len(), 1);
        assert_eq!(buckets[0], (1u64 << (Histogram::BUCKETS - 1), 1));
    }

    #[test]
    fn stats_accumulate() {
        let mut h = Histogram::new();
        for v in [10.0, 20.0, 30.0] {
            h.record(v);
        }
        assert_eq!(h.mean(), 20.0);
        assert_eq!(h.sum(), 60.0);
        assert_eq!(h.min(), 10.0);
        assert_eq!(h.max(), 30.0);
    }
}
