//! Half-open index intervals.

use std::fmt;

/// A half-open interval `[start, end)` over flattened element indices.
///
/// Intervals are the building blocks of [`IndexSet`](crate::IndexSet); an
/// empty interval (`start >= end`) is permitted as a transient value but is
/// never stored inside a canonical `IndexSet`.
///
/// # Example
///
/// ```
/// use frodo_ranges::Interval;
///
/// let iv = Interval::new(5, 55);
/// assert_eq!(iv.len(), 50);
/// assert!(iv.contains(5));
/// assert!(!iv.contains(55));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Interval {
    /// Inclusive lower bound.
    pub start: usize,
    /// Exclusive upper bound.
    pub end: usize,
}

impl Interval {
    /// Creates the interval `[start, end)`.
    ///
    /// `start > end` is normalized to the canonical empty interval at `start`.
    pub fn new(start: usize, end: usize) -> Self {
        Interval {
            start,
            end: end.max(start),
        }
    }

    /// The interval covering a single index.
    pub fn point(idx: usize) -> Self {
        Interval::new(idx, idx + 1)
    }

    /// Number of indices contained.
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    /// Whether the interval contains no indices.
    pub fn is_empty(&self) -> bool {
        self.start >= self.end
    }

    /// Whether `idx` lies inside the interval.
    pub fn contains(&self, idx: usize) -> bool {
        self.start <= idx && idx < self.end
    }

    /// Whether `other` is fully contained in `self`.
    pub fn contains_interval(&self, other: &Interval) -> bool {
        other.is_empty() || (self.start <= other.start && other.end <= self.end)
    }

    /// Intersection of two intervals (possibly empty).
    pub fn intersect(&self, other: &Interval) -> Interval {
        Interval::new(self.start.max(other.start), self.end.min(other.end))
    }

    /// Whether the two intervals share at least one index.
    pub fn overlaps(&self, other: &Interval) -> bool {
        !self.intersect(other).is_empty()
    }

    /// Whether the two intervals overlap or touch (so their union is one interval).
    pub fn touches(&self, other: &Interval) -> bool {
        self.start <= other.end && other.start <= self.end
    }

    /// Translates by a signed offset, saturating at zero.
    ///
    /// Indices that would become negative are dropped (the interval is clipped
    /// at zero), matching the clamping behaviour of boundary-sensitive blocks
    /// such as `Pad`.
    pub fn shift(&self, offset: isize) -> Interval {
        if offset >= 0 {
            let off = offset as usize;
            Interval::new(self.start + off, self.end + off)
        } else {
            let off = (-offset) as usize;
            Interval::new(self.start.saturating_sub(off), self.end.saturating_sub(off))
        }
    }

    /// Clamps the interval into `[0, len)`.
    pub fn clamp_to(&self, len: usize) -> Interval {
        Interval::new(self.start.min(len), self.end.min(len))
    }
}

impl fmt::Display for Interval {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{}, {})", self.start, self.end)
    }
}

impl From<std::ops::Range<usize>> for Interval {
    fn from(r: std::ops::Range<usize>) -> Self {
        Interval::new(r.start, r.end)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_normalizes_inverted_bounds() {
        let iv = Interval::new(10, 3);
        assert!(iv.is_empty());
        assert_eq!(iv.len(), 0);
    }

    #[test]
    fn point_has_len_one() {
        let iv = Interval::point(7);
        assert_eq!(iv.len(), 1);
        assert!(iv.contains(7));
        assert!(!iv.contains(8));
    }

    #[test]
    fn contains_is_half_open() {
        let iv = Interval::new(2, 5);
        assert!(!iv.contains(1));
        assert!(iv.contains(2));
        assert!(iv.contains(4));
        assert!(!iv.contains(5));
    }

    #[test]
    fn intersect_overlapping() {
        let a = Interval::new(0, 10);
        let b = Interval::new(5, 15);
        assert_eq!(a.intersect(&b), Interval::new(5, 10));
    }

    #[test]
    fn intersect_disjoint_is_empty() {
        let a = Interval::new(0, 3);
        let b = Interval::new(5, 9);
        assert!(a.intersect(&b).is_empty());
        assert!(!a.overlaps(&b));
    }

    #[test]
    fn touching_but_not_overlapping() {
        let a = Interval::new(0, 5);
        let b = Interval::new(5, 9);
        assert!(a.touches(&b));
        assert!(!a.overlaps(&b));
    }

    #[test]
    fn shift_positive_and_negative() {
        let iv = Interval::new(3, 8);
        assert_eq!(iv.shift(4), Interval::new(7, 12));
        assert_eq!(iv.shift(-2), Interval::new(1, 6));
    }

    #[test]
    fn shift_negative_clips_at_zero() {
        let iv = Interval::new(2, 6);
        assert_eq!(iv.shift(-4), Interval::new(0, 2));
        assert!(iv.shift(-10).is_empty());
    }

    #[test]
    fn clamp_to_truncates() {
        let iv = Interval::new(3, 20);
        assert_eq!(iv.clamp_to(10), Interval::new(3, 10));
        assert!(iv.clamp_to(2).is_empty());
    }

    #[test]
    fn contains_interval_handles_empty() {
        let big = Interval::new(0, 10);
        assert!(big.contains_interval(&Interval::new(7, 7)));
        assert!(big.contains_interval(&Interval::new(2, 9)));
        assert!(!big.contains_interval(&Interval::new(5, 11)));
    }

    #[test]
    fn display_formats_half_open() {
        assert_eq!(Interval::new(1, 4).to_string(), "[1, 4)");
    }

    #[test]
    fn from_range() {
        let iv: Interval = (3..9).into();
        assert_eq!(iv, Interval::new(3, 9));
    }
}
