//! Per-port I/O mappings from the block property library.
//!
//! An I/O mapping answers: *given that a block must produce the output
//! elements in some [`IndexSet`], which elements of one particular input does
//! it need to read?* Every mapping here is **pointwise** — the requirement of
//! a set of output elements is the union of the requirements of its members —
//! which is what makes calculation-range determination exact and monotone.

use crate::{IndexSet, Interval, Scratch};

/// The I/O mapping of one (output port → input port) dependency of a block.
///
/// Instances are produced by the block property library
/// (`frodo_model::proplib`) from a block's type and parameters; the paper's
/// Figure 3 corresponds to [`PortMap::Shift`] for the `Selector` block.
///
/// # Example
///
/// ```
/// use frodo_ranges::{IndexSet, PortMap};
///
/// // A same-convolution consumer needs a window of the producer's output:
/// let conv = PortMap::window(4, 5, 60);
/// let need = conv.apply(&IndexSet::from_range(10, 12));
/// assert_eq!(need, IndexSet::from_range(6, 17));
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum PortMap {
    /// Output element `i` reads exactly input element `i`
    /// (elementwise math: `Add`, `Gain`, `Abs`, …).
    Elementwise,
    /// Any non-empty output request needs the *entire* input
    /// (reductions, `MatrixMultiply`, `DotProduct`, scalar broadcast).
    All {
        /// Number of elements of the input signal.
        input_len: usize,
    },
    /// No output element ever reads this input (unused port).
    None,
    /// Output element `i` reads input element `i + offset`
    /// (`Selector` Start–End, `Pad` with `offset = -pad_left`).
    Shift {
        /// Signed displacement from output index to input index.
        offset: isize,
        /// Number of elements of the input signal (for clamping).
        input_len: usize,
    },
    /// Output element `k` reads the input window `[k - left, k + right]`,
    /// clipped to the input (convolution, FIR filtering, moving averages).
    Window {
        /// Window extent below the output index.
        left: usize,
        /// Window extent above the output index.
        right: usize,
        /// Number of elements of the input signal (for clamping).
        input_len: usize,
    },
    /// Output element `i` reads input element `i * stride + phase`
    /// (downsampling / decimation).
    Stride {
        /// Decimation factor (≥ 1).
        stride: usize,
        /// Offset of the first sample.
        phase: usize,
        /// Number of elements of the input signal (for clamping).
        input_len: usize,
    },
    /// 2-D transpose: output `(i, j)` of an `out_rows × out_cols` result reads
    /// input `(j, i)` of the `out_cols × out_rows` operand.
    Transpose {
        /// Rows of the *output* matrix.
        out_rows: usize,
        /// Columns of the *output* matrix.
        out_cols: usize,
    },
    /// This input occupies the contiguous output segment
    /// `[start_in_output, start_in_output + len)` (`Mux` / `Concatenate`).
    Segment {
        /// First output index produced from this input.
        start_in_output: usize,
        /// Number of output elements produced from this input (= input length).
        len: usize,
    },
    /// Pass-through except for a replaced segment: output element `i` reads
    /// input element `i` unless `i ∈ [start, end)` (the `Assignment` block's
    /// base operand, whose segment is overwritten by the other input).
    ExceptSegment {
        /// First replaced output index.
        start: usize,
        /// One past the last replaced output index.
        end: usize,
    },
    /// Row-granular dependency: output element `(r, c)` of an
    /// `out_rows × out_cols` result reads the whole row `r` of an
    /// `out_rows × in_cols` operand — the left operand of a matrix multiply.
    RowsOf {
        /// Columns of the output matrix.
        out_cols: usize,
        /// Columns of the input operand (its rows align with output rows).
        in_cols: usize,
    },
    /// Arbitrary table lookup: output `i` reads input `table[i]`
    /// (`Selector` with an index vector, permutations).
    Gather(Vec<usize>),
    /// The mapping depends on a runtime value (`Selector` in IndexPort mode,
    /// `Switch` data ports); statically we must assume the whole input.
    Dynamic {
        /// Number of elements of the input signal.
        input_len: usize,
    },
}

impl PortMap {
    /// Convenience constructor for [`PortMap::Shift`].
    pub fn shift(offset: isize, input_len: usize) -> Self {
        PortMap::Shift { offset, input_len }
    }

    /// Convenience constructor for [`PortMap::Window`].
    pub fn window(left: usize, right: usize, input_len: usize) -> Self {
        PortMap::Window {
            left,
            right,
            input_len,
        }
    }

    /// Convenience constructor for [`PortMap::All`].
    pub fn all(input_len: usize) -> Self {
        PortMap::All { input_len }
    }

    /// Derives the input elements needed to produce the requested output
    /// elements.
    ///
    /// The result is always clamped to the valid input index range, and an
    /// empty request always yields an empty requirement.
    pub fn apply(&self, request: &IndexSet) -> IndexSet {
        if request.is_empty() {
            return IndexSet::new();
        }
        match self {
            PortMap::Elementwise => request.clone(),
            PortMap::All { input_len } | PortMap::Dynamic { input_len } => {
                IndexSet::full(*input_len)
            }
            PortMap::None => IndexSet::new(),
            PortMap::Shift { offset, input_len } => request.shift(*offset).clamp_to(*input_len),
            PortMap::Window {
                left,
                right,
                input_len,
            } => request.dilate(*left, *right).clamp_to(*input_len),
            PortMap::Stride {
                stride,
                phase,
                input_len,
            } => {
                let s = (*stride).max(1);
                IndexSet::from_indices(
                    request
                        .iter()
                        .map(|i| i * s + phase)
                        .filter(|&i| i < *input_len),
                )
            }
            PortMap::Transpose { out_rows, out_cols } => {
                let (r, c) = (*out_rows, *out_cols);
                let mut ivs = Vec::new();
                for iv in request.intervals() {
                    for out_idx in iv.start..iv.end {
                        let (i, j) = (out_idx / c, out_idx % c);
                        // input is c × r, element (j, i)
                        ivs.push(Interval::point(j * r + i));
                    }
                }
                IndexSet::from_intervals(ivs)
            }
            PortMap::Segment {
                start_in_output,
                len,
            } => {
                let seg = IndexSet::from_range(*start_in_output, start_in_output + len);
                request.intersect(&seg).shift(-(*start_in_output as isize))
            }
            PortMap::ExceptSegment { start, end } => {
                request.difference(&IndexSet::from_range(*start, *end))
            }
            PortMap::RowsOf { out_cols, in_cols } => {
                let mut rows = IndexSet::new();
                for iv in request.intervals() {
                    let r0 = iv.start / out_cols;
                    let r1 = (iv.end - 1) / out_cols + 1;
                    rows = rows.union(&IndexSet::from_range(r0, r1));
                }
                IndexSet::from_intervals(
                    rows.intervals()
                        .iter()
                        .map(|iv| Interval::new(iv.start * in_cols, iv.end * in_cols)),
                )
            }
            PortMap::Gather(table) => {
                IndexSet::from_indices(request.iter().filter_map(|i| table.get(i).copied()))
            }
        }
    }

    /// [`PortMap::apply`] writing its result into an existing set.
    ///
    /// Reuses `out`'s buffers, so the frequent mappings (`Elementwise`,
    /// `Shift`, `Window`, `Segment`, …) derive their requirement without
    /// heap allocation once the destination has warmed up. The rare
    /// order-scrambling mappings (`Transpose`, `Gather`) fall back to
    /// [`PortMap::apply`]. The result is always identical to `apply`.
    pub fn apply_into(&self, request: &IndexSet, out: &mut IndexSet, scratch: &mut Scratch) {
        if request.is_empty() {
            out.clear();
            return;
        }
        match self {
            PortMap::Elementwise => out.clone_from(request),
            PortMap::All { input_len } | PortMap::Dynamic { input_len } => {
                out.assign_merged([Interval::new(0, *input_len)]);
            }
            PortMap::None => out.clear(),
            PortMap::Shift { offset, input_len } => {
                // a saturating left shift keeps starts non-decreasing, so
                // the merging assignment stays canonical
                out.assign_merged(
                    request
                        .intervals()
                        .iter()
                        .map(|iv| iv.shift(*offset).clamp_to(*input_len)),
                );
            }
            PortMap::Window {
                left,
                right,
                input_len,
            } => {
                out.assign_merged(request.intervals().iter().map(|iv| {
                    Interval::new(iv.start.saturating_sub(*left), iv.end + *right)
                        .clamp_to(*input_len)
                }));
            }
            PortMap::Stride {
                stride,
                phase,
                input_len,
            } => {
                let s = (*stride).max(1);
                let len = *input_len;
                out.assign_merged(
                    request
                        .iter()
                        .map(move |i| i * s + phase)
                        .filter(move |&i| i < len)
                        .map(Interval::point),
                );
            }
            PortMap::Segment {
                start_in_output,
                len,
            } => {
                let seg = Interval::new(*start_in_output, start_in_output + len);
                let down = -(*start_in_output as isize);
                out.assign_merged(
                    request
                        .intervals()
                        .iter()
                        .map(|iv| iv.intersect(&seg).shift(down)),
                );
            }
            PortMap::ExceptSegment { start, end } => {
                out.clone_from(request);
                out.subtract_with(&IndexSet::from_range(*start, *end), scratch);
            }
            PortMap::RowsOf { out_cols, in_cols } => {
                // per-interval row spans are non-decreasing in start, and
                // touching spans merge exactly like the row-set union
                out.assign_merged(request.intervals().iter().map(|iv| {
                    let r0 = iv.start / out_cols;
                    let r1 = (iv.end - 1) / out_cols + 1;
                    Interval::new(r0 * in_cols, r1 * in_cols)
                }));
            }
            // index tables and transposes scramble interval order; the
            // allocating path's sort is the simplest correct answer
            PortMap::Transpose { .. } | PortMap::Gather(_) => *out = self.apply(request),
        }
    }

    /// Whether this mapping can ever shrink a request (i.e. whether a block
    /// behind it is a candidate for redundancy elimination).
    ///
    /// [`PortMap::All`] and [`PortMap::Dynamic`] always demand the full
    /// input, so upstream ranges cannot be reduced through them.
    pub fn is_range_transparent(&self) -> bool {
        !matches!(self, PortMap::All { .. } | PortMap::Dynamic { .. })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn elementwise_is_identity() {
        let req = IndexSet::from_range(3, 9);
        assert_eq!(PortMap::Elementwise.apply(&req), req);
    }

    #[test]
    fn all_needs_everything_for_any_request() {
        let m = PortMap::all(40);
        assert_eq!(m.apply(&IndexSet::point(0)), IndexSet::full(40));
        assert_eq!(m.apply(&IndexSet::new()), IndexSet::new());
    }

    #[test]
    fn none_needs_nothing() {
        assert_eq!(PortMap::None.apply(&IndexSet::full(10)), IndexSet::new());
    }

    #[test]
    fn shift_models_selector_start_end() {
        // Paper Figure 3: Selector picks U[5..55]; O[0]=U[5], O[49]=U[54].
        let sel = PortMap::shift(5, 60);
        assert_eq!(sel.apply(&IndexSet::point(0)), IndexSet::point(5));
        assert_eq!(sel.apply(&IndexSet::point(49)), IndexSet::point(54));
        assert_eq!(
            sel.apply(&IndexSet::from_range(0, 50)),
            IndexSet::from_range(5, 55)
        );
    }

    #[test]
    fn shift_models_pad_left() {
        // Pad with 3 zeros on the left: out[i] = in[i-3].
        let pad = PortMap::shift(-3, 10);
        // Outputs 0..3 are padding; they need no input.
        assert_eq!(pad.apply(&IndexSet::from_range(0, 3)), IndexSet::new());
        assert_eq!(
            pad.apply(&IndexSet::from_range(3, 13)),
            IndexSet::from_range(0, 10)
        );
    }

    #[test]
    fn shift_clamps_to_input() {
        let m = PortMap::shift(5, 8);
        assert_eq!(
            m.apply(&IndexSet::from_range(0, 10)),
            IndexSet::from_range(5, 8)
        );
    }

    #[test]
    fn window_models_full_convolution() {
        // Full conv of n=60 input with m=11 kernel: out[k] uses in[k-10 .. k].
        let conv = PortMap::window(10, 0, 60);
        assert_eq!(conv.apply(&IndexSet::point(0)), IndexSet::point(0));
        assert_eq!(
            conv.apply(&IndexSet::from_range(5, 55)),
            IndexSet::from_range(0, 55)
        );
        assert_eq!(
            conv.apply(&IndexSet::point(69)),
            IndexSet::from_range(59, 60)
        );
    }

    #[test]
    fn stride_models_downsample() {
        let ds = PortMap::Stride {
            stride: 3,
            phase: 1,
            input_len: 20,
        };
        assert_eq!(
            ds.apply(&IndexSet::from_range(0, 4)),
            IndexSet::from_indices([1, 4, 7, 10])
        );
        // requests past the input are dropped
        assert_eq!(ds.apply(&IndexSet::point(7)), IndexSet::new());
    }

    #[test]
    fn transpose_maps_rows_to_columns() {
        // output 2x3 ← input 3x2; out (0,1) (flat 1) ← in (1,0) (flat 2)
        let t = PortMap::Transpose {
            out_rows: 2,
            out_cols: 3,
        };
        assert_eq!(t.apply(&IndexSet::point(1)), IndexSet::point(2));
        // full output needs full input
        assert_eq!(t.apply(&IndexSet::full(6)), IndexSet::full(6));
        // one output row needs one input column (strided points)
        assert_eq!(
            t.apply(&IndexSet::from_range(0, 3)),
            IndexSet::from_indices([0, 2, 4])
        );
    }

    #[test]
    fn segment_models_concatenate() {
        // second input of a concat occupies outputs [10, 25)
        let seg = PortMap::Segment {
            start_in_output: 10,
            len: 15,
        };
        assert_eq!(seg.apply(&IndexSet::from_range(0, 10)), IndexSet::new());
        assert_eq!(
            seg.apply(&IndexSet::from_range(12, 18)),
            IndexSet::from_range(2, 8)
        );
        assert_eq!(
            seg.apply(&IndexSet::from_range(0, 100)),
            IndexSet::from_range(0, 15)
        );
    }

    #[test]
    fn except_segment_models_assignment_base() {
        let m = PortMap::ExceptSegment { start: 3, end: 6 };
        // requests inside the replaced zone need nothing from the base
        assert_eq!(m.apply(&IndexSet::from_range(3, 6)), IndexSet::new());
        // requests spanning it need only the outside parts
        assert_eq!(
            m.apply(&IndexSet::from_range(0, 10)),
            IndexSet::from_range(0, 3).union(&IndexSet::from_range(6, 10))
        );
    }

    #[test]
    fn rows_of_models_matmul_left_operand() {
        // C(4x3) = A(4x5)·B(5x3): requesting C row 1 needs A row 1 only
        let m = PortMap::RowsOf {
            out_cols: 3,
            in_cols: 5,
        };
        assert_eq!(
            m.apply(&IndexSet::from_range(3, 6)),
            IndexSet::from_range(5, 10)
        );
        // a request spanning rows 1-2 needs A rows 1-2
        assert_eq!(
            m.apply(&IndexSet::from_range(5, 7)),
            IndexSet::from_range(5, 15)
        );
        // the full output needs the full operand
        assert_eq!(m.apply(&IndexSet::full(12)), IndexSet::full(20));
    }

    #[test]
    fn gather_follows_table() {
        let g = PortMap::Gather(vec![4, 2, 0, 2]);
        assert_eq!(
            g.apply(&IndexSet::from_range(0, 4)),
            IndexSet::from_indices([0, 2, 4])
        );
        assert_eq!(g.apply(&IndexSet::point(3)), IndexSet::point(2));
        // out-of-table requests map to nothing
        assert_eq!(g.apply(&IndexSet::point(9)), IndexSet::new());
    }

    #[test]
    fn apply_into_matches_apply_for_every_variant() {
        let maps = [
            PortMap::Elementwise,
            PortMap::all(17),
            PortMap::None,
            PortMap::shift(5, 60),
            PortMap::shift(-3, 10),
            PortMap::window(10, 0, 60),
            PortMap::Stride {
                stride: 3,
                phase: 1,
                input_len: 20,
            },
            PortMap::Transpose {
                out_rows: 2,
                out_cols: 3,
            },
            PortMap::Segment {
                start_in_output: 10,
                len: 15,
            },
            PortMap::ExceptSegment { start: 3, end: 6 },
            PortMap::RowsOf {
                out_cols: 3,
                in_cols: 5,
            },
            PortMap::Gather(vec![4, 2, 0, 2]),
            PortMap::Dynamic { input_len: 12 },
        ];
        let requests = [
            IndexSet::new(),
            IndexSet::point(0),
            IndexSet::point(3),
            IndexSet::from_range(0, 6),
            IndexSet::from_range(2, 30),
            IndexSet::from_indices([0, 2, 5, 11, 12, 40]),
        ];
        let mut scratch = Scratch::new();
        let mut out = IndexSet::new();
        for m in &maps {
            for req in &requests {
                m.apply_into(req, &mut out, &mut scratch);
                assert_eq!(out, m.apply(req), "{m:?} applied to {req}");
            }
        }
    }

    #[test]
    fn dynamic_is_conservative() {
        let d = PortMap::Dynamic { input_len: 12 };
        assert_eq!(d.apply(&IndexSet::point(3)), IndexSet::full(12));
        assert!(!d.is_range_transparent());
        assert!(PortMap::Elementwise.is_range_transparent());
    }

    /// Property tests (gated: the `proptest` crate is not vendored, so the
    /// default offline build compiles these out; re-add the dev-dependency
    /// and run `cargo test --features proptest` to enable them).
    #[cfg(feature = "proptest")]
    mod props {
        use super::*;
        use proptest::prelude::*;
        fn arb_request(max: usize) -> impl Strategy<Value = IndexSet> {
            prop::collection::vec((0..max, 0..max), 0..6).prop_map(|pairs| {
                IndexSet::from_intervals(
                    pairs
                        .into_iter()
                        .map(|(a, b)| Interval::new(a.min(b), a.max(b))),
                )
            })
        }

        fn arb_map() -> impl Strategy<Value = PortMap> {
            prop_oneof![
                Just(PortMap::Elementwise),
                (1usize..64).prop_map(|n| PortMap::all(n)),
                Just(PortMap::None),
                (-20isize..20, 1usize..64).prop_map(|(o, n)| PortMap::shift(o, n)),
                (0usize..8, 0usize..8, 1usize..64).prop_map(|(l, r, n)| PortMap::window(l, r, n)),
                (1usize..5, 0usize..4, 1usize..64).prop_map(|(s, p, n)| PortMap::Stride {
                    stride: s,
                    phase: p,
                    input_len: n
                }),
                (1usize..8, 1usize..8).prop_map(|(r, c)| PortMap::Transpose {
                    out_rows: r,
                    out_cols: c
                }),
                (0usize..32, 1usize..32).prop_map(|(s, l)| PortMap::Segment {
                    start_in_output: s,
                    len: l
                }),
                (1usize..8, 1usize..8).prop_map(|(oc, ic)| PortMap::RowsOf {
                    out_cols: oc,
                    in_cols: ic
                }),
                (0usize..24, 0usize..24).prop_map(|(a, b)| PortMap::ExceptSegment {
                    start: a.min(b),
                    end: a.max(b)
                }),
                prop::collection::vec(0usize..48, 0..32).prop_map(PortMap::Gather),
            ]
        }

        proptest! {
            #[test]
            fn prop_empty_request_empty_need(m in arb_map()) {
                prop_assert!(m.apply(&IndexSet::new()).is_empty());
            }

            #[test]
            fn prop_monotone(m in arb_map(), a in arb_request(64), b in arb_request(64)) {
                // a ⊆ a∪b  ⇒  apply(a) ⊆ apply(a∪b)
                let u = a.union(&b);
                prop_assert!(m.apply(&a).is_subset(&m.apply(&u)));
            }

            #[test]
            fn prop_union_distributes(m in arb_map(), a in arb_request(64), b in arb_request(64)) {
                // pointwise mappings: need(a ∪ b) = need(a) ∪ need(b)
                // (All/Dynamic satisfy this too since both sides are the full set
                //  whenever either request is non-empty.)
                let lhs = m.apply(&a.union(&b));
                let rhs = m.apply(&a).union(&m.apply(&b));
                prop_assert_eq!(lhs, rhs);
            }

            #[test]
            fn prop_apply_into_matches_apply(m in arb_map(), a in arb_request(64), w in arb_request(64)) {
                let mut scratch = Scratch::new();
                let mut out = w; // arbitrary pre-existing destination state
                m.apply_into(&a, &mut out, &mut scratch);
                prop_assert_eq!(out, m.apply(&a));
            }

            #[test]
            fn prop_transpose_involution(r in 1usize..8, c in 1usize..8, a in arb_request(64)) {
                // transposing a request twice through matching maps is identity
                // on requests limited to the matrix
                let fwd = PortMap::Transpose { out_rows: r, out_cols: c };
                let bwd = PortMap::Transpose { out_rows: c, out_cols: r };
                let req = a.clamp_to(r * c);
                prop_assert_eq!(bwd.apply(&fwd.apply(&req)), req);
            }
        }
    }
}
