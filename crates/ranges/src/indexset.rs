//! Canonical unions of disjoint index intervals.

use crate::Interval;
use std::fmt;
use std::hash::{Hash, Hasher};

/// The canonical empty interval used by the inline representation.
const EMPTY: Interval = Interval { start: 0, end: 0 };

/// Storage behind an [`IndexSet`].
///
/// Calculation ranges are overwhelmingly a single contiguous run (the
/// paper's Figure 5 ranges are all one interval), so the dominant case is
/// stored inline and never touches the heap.
#[derive(Debug, Clone)]
enum Repr {
    /// Zero or one interval stored inline; an empty interval encodes the
    /// empty set.
    Inline(Interval),
    /// Intervals on the heap. The list is always canonical (sorted,
    /// disjoint, non-adjacent, non-empty) but its *length* may drop to 0
    /// or 1 after in-place operations so accumulator capacity survives
    /// reuse; equality and hashing therefore go through
    /// [`IndexSet::intervals`], never the representation.
    Heap(Vec<Interval>),
}

/// A set of flattened element indices, stored as sorted, disjoint,
/// non-adjacent half-open intervals.
///
/// `IndexSet` is the currency of FRODO's calculation-range determination:
/// every block's *calculation range* and every I/O-mapping request is one of
/// these. The representation is canonical — two sets containing the same
/// indices always compare equal — which the constructors and operators
/// maintain by merging overlapping or touching intervals. Sets of at most
/// one interval are stored inline (no heap allocation); the in-place
/// operators ([`IndexSet::union_with`] and friends) together with a
/// [`Scratch`] workspace keep hot loops allocation-free in steady state.
///
/// # Example
///
/// ```
/// use frodo_ranges::IndexSet;
///
/// let a = IndexSet::from_range(0, 10);
/// let b = IndexSet::from_range(20, 30);
/// let u = a.union(&b);
/// assert_eq!(u.count(), 20);
/// assert_eq!(u.intervals().len(), 2);
/// assert!(u.contains(5) && u.contains(25) && !u.contains(15));
/// ```
#[derive(Debug)]
pub struct IndexSet {
    repr: Repr,
}

/// Reusable workspace for the in-place [`IndexSet`] operations.
///
/// The multi-interval merge paths build their result here and then *swap*
/// buffers with the destination set, so a long-lived accumulator plus one
/// scratch reach a steady state where no operation allocates. The
/// workspace also tallies how each operation resolved ([`SetOpStats`]),
/// which the analysis engines surface as observability counters.
///
/// # Example
///
/// ```
/// use frodo_ranges::{IndexSet, Scratch};
///
/// let mut scratch = Scratch::new();
/// let mut acc = IndexSet::new();
/// acc.union_with(&IndexSet::from_range(0, 5), &mut scratch);
/// acc.union_with(&IndexSet::from_range(5, 9), &mut scratch);
/// assert_eq!(acc, IndexSet::from_range(0, 9));
/// assert_eq!(scratch.stats.inline, 2);
/// ```
#[derive(Debug, Default)]
pub struct Scratch {
    buf: Vec<Interval>,
    /// Running tallies of how the in-place operations resolved.
    pub stats: SetOpStats,
}

impl Scratch {
    /// A fresh workspace with empty buffers and zeroed stats.
    pub fn new() -> Self {
        Scratch::default()
    }
}

/// How in-place set operations resolved: entirely inline (the ≤ 1-interval
/// fast path, no heap traffic) or through the heap merge path.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct SetOpStats {
    /// Operations resolved in the inline fast path.
    pub inline: u64,
    /// Operations that went through the multi-interval merge path.
    pub spilled: u64,
}

/// Appends `iv` to a canonical interval list under construction, merging
/// it into the last entry when they overlap or touch. Callers must append
/// in non-decreasing `start` order.
fn push_merge(out: &mut Vec<Interval>, iv: Interval) {
    if iv.is_empty() {
        return;
    }
    match out.last_mut() {
        Some(last) if last.touches(&iv) => last.end = last.end.max(iv.end),
        _ => out.push(iv),
    }
}

/// Union of two canonical lists into `out` (cleared first).
fn merge_union(a: &[Interval], b: &[Interval], out: &mut Vec<Interval>) {
    out.clear();
    let (mut i, mut j) = (0, 0);
    while i < a.len() || j < b.len() {
        let take_a = j >= b.len() || (i < a.len() && a[i].start <= b[j].start);
        let iv = if take_a {
            i += 1;
            a[i - 1]
        } else {
            j += 1;
            b[j - 1]
        };
        push_merge(out, iv);
    }
}

/// Intersection of two canonical lists into `out` (cleared first).
fn merge_intersect(a: &[Interval], b: &[Interval], out: &mut Vec<Interval>) {
    out.clear();
    let (mut i, mut j) = (0, 0);
    while i < a.len() && j < b.len() {
        let x = a[i].intersect(&b[j]);
        if !x.is_empty() {
            out.push(x);
        }
        if a[i].end <= b[j].end {
            i += 1;
        } else {
            j += 1;
        }
    }
}

/// Difference `a \ b` of two canonical lists into `out` (cleared first).
fn merge_difference(a: &[Interval], b: &[Interval], out: &mut Vec<Interval>) {
    out.clear();
    let mut j = 0;
    for &iv in a {
        let mut cur = iv.start;
        while j < b.len() && b[j].end <= cur {
            j += 1;
        }
        let mut k = j;
        while k < b.len() && b[k].start < iv.end {
            let hole = b[k];
            if hole.start > cur {
                out.push(Interval::new(cur, hole.start.min(iv.end)));
            }
            cur = cur.max(hole.end);
            if cur >= iv.end {
                break;
            }
            k += 1;
        }
        if cur < iv.end {
            out.push(Interval::new(cur, iv.end));
        }
    }
}

impl IndexSet {
    /// The empty set.
    pub fn new() -> Self {
        IndexSet {
            repr: Repr::Inline(EMPTY),
        }
    }

    /// The empty set (alias of [`IndexSet::new`]).
    pub fn empty() -> Self {
        IndexSet::new()
    }

    /// The full range `[0, len)`.
    pub fn full(len: usize) -> Self {
        IndexSet::from_range(0, len)
    }

    /// The single interval `[start, end)`; empty if `start >= end`.
    pub fn from_range(start: usize, end: usize) -> Self {
        let iv = Interval::new(start, end);
        IndexSet {
            repr: Repr::Inline(if iv.is_empty() { EMPTY } else { iv }),
        }
    }

    /// The set containing exactly `idx`.
    pub fn point(idx: usize) -> Self {
        IndexSet::from_range(idx, idx + 1)
    }

    /// Wraps an already-canonical interval list (sorted, disjoint,
    /// non-adjacent, non-empty), demoting short lists to the inline form.
    fn from_canonical(v: Vec<Interval>) -> Self {
        match v.as_slice() {
            [] => IndexSet::new(),
            [iv] => IndexSet {
                repr: Repr::Inline(*iv),
            },
            _ => IndexSet {
                repr: Repr::Heap(v),
            },
        }
    }

    /// Builds a set from an arbitrary iterator of intervals
    /// (they may overlap, touch, be empty, or arrive unsorted).
    pub fn from_intervals<I: IntoIterator<Item = Interval>>(ivs: I) -> Self {
        let mut v: Vec<Interval> = ivs.into_iter().filter(|iv| !iv.is_empty()).collect();
        if v.len() <= 1 {
            return IndexSet::from_canonical(v);
        }
        v.sort();
        let mut out: Vec<Interval> = Vec::with_capacity(v.len());
        for iv in v {
            push_merge(&mut out, iv);
        }
        IndexSet::from_canonical(out)
    }

    /// Builds a set from individual indices (duplicates allowed, any order).
    pub fn from_indices<I: IntoIterator<Item = usize>>(idxs: I) -> Self {
        IndexSet::from_intervals(idxs.into_iter().map(Interval::point))
    }

    /// The canonical intervals, sorted and disjoint.
    pub fn intervals(&self) -> &[Interval] {
        match &self.repr {
            Repr::Inline(iv) if iv.is_empty() => &[],
            Repr::Inline(iv) => std::slice::from_ref(iv),
            Repr::Heap(v) => v,
        }
    }

    /// The sole interval, if the set is exactly one interval.
    fn as_single(&self) -> Option<Interval> {
        match self.intervals() {
            [iv] => Some(*iv),
            _ => None,
        }
    }

    /// Empties the set, retaining any heap capacity for reuse.
    pub fn clear(&mut self) {
        match &mut self.repr {
            Repr::Inline(iv) => *iv = EMPTY,
            Repr::Heap(v) => v.clear(),
        }
    }

    /// Overwrites the set with a single interval (or empties it), without
    /// giving up heap capacity.
    pub fn set_single(&mut self, iv: Interval) {
        let iv = if iv.is_empty() { EMPTY } else { iv };
        match &mut self.repr {
            Repr::Inline(slot) => *slot = iv,
            Repr::Heap(v) => {
                v.clear();
                if !iv.is_empty() {
                    v.push(iv);
                }
            }
        }
    }

    /// Overwrites the set from intervals arriving in non-decreasing `start`
    /// order (they may overlap, touch, or be empty), merging as it goes.
    /// Reuses existing heap capacity; stays inline for ≤ 1-interval results.
    pub(crate) fn assign_merged<I: IntoIterator<Item = Interval>>(&mut self, ivs: I) {
        match &mut self.repr {
            Repr::Heap(v) => {
                v.clear();
                for iv in ivs {
                    push_merge(v, iv);
                }
            }
            repr => {
                let mut acc = EMPTY;
                let mut heap: Vec<Interval> = Vec::new();
                for iv in ivs {
                    if iv.is_empty() {
                        continue;
                    }
                    if acc.is_empty() {
                        acc = iv;
                    } else if acc.touches(&iv) {
                        acc.end = acc.end.max(iv.end);
                    } else {
                        heap.push(acc);
                        acc = iv;
                    }
                }
                if heap.is_empty() {
                    *repr = Repr::Inline(acc);
                } else {
                    heap.push(acc);
                    *repr = Repr::Heap(heap);
                }
            }
        }
    }

    /// Moves a merge result out of the scratch buffer into `self`. When
    /// `self` already owns heap storage the buffers are swapped, so the
    /// displaced capacity returns to the scratch for the next operation.
    fn adopt(&mut self, scratch: &mut Scratch) {
        match (&mut self.repr, scratch.buf.len()) {
            (Repr::Heap(v), _) => std::mem::swap(v, &mut scratch.buf),
            (repr, 0) => *repr = Repr::Inline(EMPTY),
            (repr, 1) => *repr = Repr::Inline(scratch.buf[0]),
            (repr, _) => *repr = Repr::Heap(std::mem::take(&mut scratch.buf)),
        }
    }

    /// Whether the set contains no indices.
    pub fn is_empty(&self) -> bool {
        self.intervals().is_empty()
    }

    /// Total number of indices in the set.
    pub fn count(&self) -> usize {
        self.intervals().iter().map(Interval::len).sum()
    }

    /// Whether `idx` is a member.
    pub fn contains(&self, idx: usize) -> bool {
        let ivs = self.intervals();
        // Binary search on interval starts, then check the candidate.
        match ivs.binary_search_by(|iv| iv.start.cmp(&idx)) {
            Ok(_) => true,
            Err(0) => false,
            Err(pos) => ivs[pos - 1].contains(idx),
        }
    }

    /// Smallest contained index, if any.
    pub fn min(&self) -> Option<usize> {
        self.intervals().first().map(|iv| iv.start)
    }

    /// Largest contained index, if any.
    pub fn max(&self) -> Option<usize> {
        self.intervals().last().map(|iv| iv.end - 1)
    }

    /// Smallest single interval covering every member (empty set ⇒ `None`).
    pub fn bounding(&self) -> Option<Interval> {
        match (self.min(), self.max()) {
            (Some(lo), Some(hi)) => Some(Interval::new(lo, hi + 1)),
            _ => None,
        }
    }

    /// Set union.
    pub fn union(&self, other: &IndexSet) -> IndexSet {
        if other.is_empty() {
            return self.clone();
        }
        if self.is_empty() {
            return other.clone();
        }
        if let (Some(a), Some(b)) = (self.as_single(), other.as_single()) {
            if a.touches(&b) {
                return IndexSet::from_range(a.start.min(b.start), a.end.max(b.end));
            }
        }
        let mut out = Vec::new();
        merge_union(self.intervals(), other.intervals(), &mut out);
        IndexSet::from_canonical(out)
    }

    /// Set intersection.
    pub fn intersect(&self, other: &IndexSet) -> IndexSet {
        if let (Some(a), Some(b)) = (self.as_single(), other.as_single()) {
            let x = a.intersect(&b);
            return IndexSet {
                repr: Repr::Inline(if x.is_empty() { EMPTY } else { x }),
            };
        }
        let mut out = Vec::new();
        merge_intersect(self.intervals(), other.intervals(), &mut out);
        IndexSet::from_canonical(out)
    }

    /// Set difference `self \ other`.
    pub fn difference(&self, other: &IndexSet) -> IndexSet {
        let mut out = Vec::new();
        merge_difference(self.intervals(), other.intervals(), &mut out);
        IndexSet::from_canonical(out)
    }

    /// Debug-build check that the set is canonical: every interval non-empty,
    /// sorted by start, and with a strict gap between neighbours (touching
    /// intervals must have been merged). Compiled out of release builds.
    #[inline]
    fn debug_assert_canonical(&self, op: &str) {
        if cfg!(debug_assertions) {
            let ivs = self.intervals();
            for iv in ivs {
                debug_assert!(!iv.is_empty(), "{op}: empty interval in {self:?}");
            }
            for w in ivs.windows(2) {
                debug_assert!(
                    w[0].end < w[1].start,
                    "{op}: intervals [{}, {}) and [{}, {}) out of order, overlapping, \
                     or unmerged in {self:?}",
                    w[0].start,
                    w[0].end,
                    w[1].start,
                    w[1].end
                );
            }
        }
    }

    /// In-place union: `self ∪= other`, allocation-free whenever both sides
    /// are ≤ 1 interval that overlap or touch (the dominant case), or once
    /// `self` and `scratch` have grown their buffers.
    pub fn union_with(&mut self, other: &IndexSet, scratch: &mut Scratch) {
        if other.is_empty() {
            scratch.stats.inline += 1;
            return;
        }
        if self.is_empty() {
            scratch.stats.inline += 1;
            self.clone_from(other);
            self.debug_assert_canonical("union_with");
            return;
        }
        if let (Some(a), Some(b)) = (self.as_single(), other.as_single()) {
            if a.touches(&b) {
                scratch.stats.inline += 1;
                self.set_single(Interval::new(a.start.min(b.start), a.end.max(b.end)));
                self.debug_assert_canonical("union_with");
                return;
            }
        }
        scratch.stats.spilled += 1;
        merge_union(self.intervals(), other.intervals(), &mut scratch.buf);
        self.adopt(scratch);
        self.debug_assert_canonical("union_with");
    }

    /// In-place intersection: `self ∩= other`.
    pub fn intersect_with(&mut self, other: &IndexSet, scratch: &mut Scratch) {
        if self.is_empty() {
            scratch.stats.inline += 1;
            return;
        }
        if other.is_empty() {
            scratch.stats.inline += 1;
            self.clear();
            return;
        }
        if let (Some(a), Some(b)) = (self.as_single(), other.as_single()) {
            scratch.stats.inline += 1;
            self.set_single(a.intersect(&b));
            self.debug_assert_canonical("intersect_with");
            return;
        }
        scratch.stats.spilled += 1;
        merge_intersect(self.intervals(), other.intervals(), &mut scratch.buf);
        self.adopt(scratch);
        self.debug_assert_canonical("intersect_with");
    }

    /// In-place difference: `self \= other`.
    pub fn subtract_with(&mut self, other: &IndexSet, scratch: &mut Scratch) {
        if self.is_empty() || other.is_empty() {
            scratch.stats.inline += 1;
            return;
        }
        if let (Some(a), Some(b)) = (self.as_single(), other.as_single()) {
            if !a.overlaps(&b) {
                scratch.stats.inline += 1;
                return;
            }
            let left = Interval::new(a.start, a.end.min(b.start));
            let right = Interval::new(a.start.max(b.end), a.end);
            match (left.is_empty(), right.is_empty()) {
                (false, false) => {
                    // the subtrahend punches a hole: two pieces, heap needed
                    scratch.stats.spilled += 1;
                    scratch.buf.clear();
                    scratch.buf.push(left);
                    scratch.buf.push(right);
                    self.adopt(scratch);
                }
                (false, true) => {
                    scratch.stats.inline += 1;
                    self.set_single(left);
                }
                (true, false) => {
                    scratch.stats.inline += 1;
                    self.set_single(right);
                }
                (true, true) => {
                    scratch.stats.inline += 1;
                    self.clear();
                }
            }
            self.debug_assert_canonical("subtract_with");
            return;
        }
        scratch.stats.spilled += 1;
        merge_difference(self.intervals(), other.intervals(), &mut scratch.buf);
        self.adopt(scratch);
        self.debug_assert_canonical("subtract_with");
    }

    /// Complement within the universe `[0, len)`.
    pub fn complement(&self, len: usize) -> IndexSet {
        IndexSet::full(len).difference(self)
    }

    /// Whether every member of `self` is also in `other`.
    pub fn is_subset(&self, other: &IndexSet) -> bool {
        self.difference(other).is_empty()
    }

    /// Translates every index by `offset`, dropping indices that would become
    /// negative (saturating clip at zero, per boundary-clamping block semantics).
    pub fn shift(&self, offset: isize) -> IndexSet {
        IndexSet::from_intervals(self.intervals().iter().map(|iv| iv.shift(offset)))
    }

    /// Restricts the set to `[0, len)`.
    pub fn clamp_to(&self, len: usize) -> IndexSet {
        IndexSet::from_intervals(self.intervals().iter().map(|iv| iv.clamp_to(len)))
    }

    /// Dilates each member index `k` to the window `[k - left, k + right]`
    /// (clipped at zero), then unions: the exact input requirement of
    /// sliding-window blocks such as convolution and FIR filters.
    pub fn dilate(&self, left: usize, right: usize) -> IndexSet {
        IndexSet::from_intervals(
            self.intervals()
                .iter()
                .map(|iv| Interval::new(iv.start.saturating_sub(left), iv.end + right)),
        )
    }

    /// Merges intervals separated by gaps of at most `max_gap` indices,
    /// producing a superset with fewer, longer runs.
    ///
    /// # Example
    ///
    /// ```
    /// use frodo_ranges::IndexSet;
    ///
    /// let sparse = IndexSet::from_indices([0, 4, 8, 40]);
    /// let coalesced = sparse.coalesce(8);
    /// assert_eq!(coalesced, IndexSet::from_range(0, 9).union(&IndexSet::point(40)));
    /// ```
    ///
    /// Used by concise code generation to avoid the discontinuous-range
    /// pathology the paper's §5 discusses: emitting one loop per tiny run
    /// costs more than computing a few redundant elements to keep runs
    /// contiguous. `max_gap = 0` is the identity.
    pub fn coalesce(&self, max_gap: usize) -> IndexSet {
        let ivs = self.intervals();
        let mut out: Vec<Interval> = Vec::with_capacity(ivs.len());
        for &iv in ivs {
            match out.last_mut() {
                Some(last) if iv.start <= last.end + max_gap => {
                    last.end = last.end.max(iv.end);
                }
                _ => out.push(iv),
            }
        }
        IndexSet::from_canonical(out)
    }

    /// Iterates over every member index in increasing order.
    pub fn iter(&self) -> Iter<'_> {
        let intervals = self.intervals();
        Iter {
            intervals,
            pos: 0,
            next: intervals.first().map(|iv| iv.start).unwrap_or(0),
        }
    }

    /// Fraction of `[0, len)` covered by the set (1.0 for the full range).
    ///
    /// Used to report how much calculation a block's range elimination saved.
    pub fn coverage(&self, len: usize) -> f64 {
        if len == 0 {
            return 1.0;
        }
        self.clamp_to(len).count() as f64 / len as f64
    }
}

impl Default for IndexSet {
    fn default() -> Self {
        IndexSet::new()
    }
}

impl Clone for IndexSet {
    fn clone(&self) -> Self {
        // normalizes: a 0/1-interval heap set clones to the inline form
        match self.intervals() {
            [] => IndexSet::new(),
            [iv] => IndexSet {
                repr: Repr::Inline(*iv),
            },
            many => IndexSet {
                repr: Repr::Heap(many.to_vec()),
            },
        }
    }

    fn clone_from(&mut self, source: &Self) {
        match &mut self.repr {
            // keep the existing buffer: no allocation when it already fits
            Repr::Heap(v) => {
                v.clear();
                v.extend_from_slice(source.intervals());
            }
            repr => match source.intervals() {
                [] => *repr = Repr::Inline(EMPTY),
                [iv] => *repr = Repr::Inline(*iv),
                many => *repr = Repr::Heap(many.to_vec()),
            },
        }
    }
}

// Equality, ordering-insensitive hashing, and friends are defined over the
// canonical interval *sequence*, so inline and heap representations of the
// same set are indistinguishable.
impl PartialEq for IndexSet {
    fn eq(&self, other: &Self) -> bool {
        self.intervals() == other.intervals()
    }
}

impl Eq for IndexSet {}

impl Hash for IndexSet {
    fn hash<H: Hasher>(&self, state: &mut H) {
        self.intervals().hash(state);
    }
}

impl fmt::Display for IndexSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let ivs = self.intervals();
        if ivs.is_empty() {
            return write!(f, "{{}}");
        }
        let parts: Vec<String> = ivs.iter().map(|iv| iv.to_string()).collect();
        write!(f, "{}", parts.join(" ∪ "))
    }
}

impl FromIterator<Interval> for IndexSet {
    fn from_iter<T: IntoIterator<Item = Interval>>(iter: T) -> Self {
        IndexSet::from_intervals(iter)
    }
}

impl FromIterator<usize> for IndexSet {
    fn from_iter<T: IntoIterator<Item = usize>>(iter: T) -> Self {
        IndexSet::from_indices(iter)
    }
}

impl Extend<Interval> for IndexSet {
    fn extend<T: IntoIterator<Item = Interval>>(&mut self, iter: T) {
        let merged = IndexSet::from_intervals(self.intervals().iter().copied().chain(iter));
        *self = merged;
    }
}

/// Iterator over the member indices of an [`IndexSet`], in increasing order.
#[derive(Debug, Clone)]
pub struct Iter<'a> {
    intervals: &'a [Interval],
    pos: usize,
    next: usize,
}

impl Iterator for Iter<'_> {
    type Item = usize;

    fn next(&mut self) -> Option<usize> {
        loop {
            let iv = self.intervals.get(self.pos)?;
            if self.next < iv.start {
                self.next = iv.start;
            }
            if self.next < iv.end {
                let out = self.next;
                self.next += 1;
                return Some(out);
            }
            self.pos += 1;
        }
    }
}

impl<'a> IntoIterator for &'a IndexSet {
    type Item = usize;
    type IntoIter = Iter<'a>;

    fn into_iter(self) -> Iter<'a> {
        self.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_set_properties() {
        let s = IndexSet::new();
        assert!(s.is_empty());
        assert_eq!(s.count(), 0);
        assert_eq!(s.min(), None);
        assert_eq!(s.max(), None);
        assert_eq!(s.bounding(), None);
        assert_eq!(s.to_string(), "{}");
    }

    #[test]
    fn from_intervals_merges_overlaps_and_touches() {
        let s = IndexSet::from_intervals([
            Interval::new(5, 10),
            Interval::new(0, 5),
            Interval::new(8, 12),
            Interval::new(20, 25),
        ]);
        assert_eq!(
            s.intervals(),
            &[Interval::new(0, 12), Interval::new(20, 25)]
        );
    }

    #[test]
    fn from_indices_collapses_runs() {
        let s = IndexSet::from_indices([3, 1, 2, 2, 7]);
        assert_eq!(s.intervals(), &[Interval::new(1, 4), Interval::new(7, 8)]);
    }

    #[test]
    fn contains_uses_binary_search_correctly() {
        let s = IndexSet::from_intervals([Interval::new(2, 4), Interval::new(10, 13)]);
        for i in 0..16 {
            let expected = (2..4).contains(&i) || (10..13).contains(&i);
            assert_eq!(s.contains(i), expected, "index {i}");
        }
    }

    #[test]
    fn union_of_disjoint_keeps_both() {
        let a = IndexSet::from_range(0, 3);
        let b = IndexSet::from_range(5, 8);
        assert_eq!(a.union(&b).count(), 6);
    }

    #[test]
    fn intersect_basic() {
        let a = IndexSet::from_intervals([Interval::new(0, 10), Interval::new(20, 30)]);
        let b = IndexSet::from_range(5, 25);
        assert_eq!(
            a.intersect(&b).intervals(),
            &[Interval::new(5, 10), Interval::new(20, 25)]
        );
    }

    #[test]
    fn difference_punches_holes() {
        let a = IndexSet::from_range(0, 10);
        let b = IndexSet::from_intervals([Interval::new(2, 4), Interval::new(6, 7)]);
        assert_eq!(
            a.difference(&b).intervals(),
            &[
                Interval::new(0, 2),
                Interval::new(4, 6),
                Interval::new(7, 10)
            ]
        );
    }

    #[test]
    fn complement_of_full_is_empty() {
        assert!(IndexSet::full(10).complement(10).is_empty());
        assert_eq!(IndexSet::new().complement(5), IndexSet::full(5));
    }

    #[test]
    fn shift_and_clamp() {
        let s = IndexSet::from_range(2, 6);
        assert_eq!(s.shift(3), IndexSet::from_range(5, 9));
        assert_eq!(s.shift(-3), IndexSet::from_range(0, 3));
        assert_eq!(s.shift(3).clamp_to(7), IndexSet::from_range(5, 7));
    }

    #[test]
    fn dilate_models_conv_window() {
        // out index k needs inputs [k-2, k+1]
        let s = IndexSet::from_range(10, 12);
        assert_eq!(s.dilate(2, 1), IndexSet::from_range(8, 13));
        // clipped at zero
        let t = IndexSet::point(1);
        assert_eq!(t.dilate(3, 0), IndexSet::from_range(0, 2));
    }

    #[test]
    fn dilate_merges_adjacent_windows() {
        let s = IndexSet::from_indices([0, 4, 8]);
        assert_eq!(s.dilate(2, 2), IndexSet::from_range(0, 11));
    }

    #[test]
    fn iter_yields_sorted_members() {
        let s = IndexSet::from_intervals([Interval::new(1, 3), Interval::new(6, 8)]);
        let v: Vec<usize> = s.iter().collect();
        assert_eq!(v, vec![1, 2, 6, 7]);
    }

    #[test]
    fn subset_checks() {
        let a = IndexSet::from_range(2, 5);
        let b = IndexSet::from_range(0, 10);
        assert!(a.is_subset(&b));
        assert!(!b.is_subset(&a));
        assert!(IndexSet::new().is_subset(&a));
    }

    #[test]
    fn coverage_reports_fraction() {
        let s = IndexSet::from_range(0, 25);
        assert!((s.coverage(100) - 0.25).abs() < 1e-12);
        assert!((IndexSet::full(10).coverage(10) - 1.0).abs() < 1e-12);
        assert!((IndexSet::new().coverage(0) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn display_shows_union() {
        let s = IndexSet::from_intervals([Interval::new(0, 2), Interval::new(5, 6)]);
        assert_eq!(s.to_string(), "[0, 2) ∪ [5, 6)");
    }

    #[test]
    fn extend_merges_in_place() {
        let mut s = IndexSet::from_range(0, 3);
        s.extend([Interval::new(3, 6)]);
        assert_eq!(s, IndexSet::from_range(0, 6));
    }

    #[test]
    fn inline_representation_for_single_intervals() {
        // 0- and 1-interval sets never touch the heap
        assert!(matches!(IndexSet::new().repr, Repr::Inline(_)));
        assert!(matches!(IndexSet::from_range(3, 9).repr, Repr::Inline(_)));
        assert!(matches!(IndexSet::full(100).repr, Repr::Inline(_)));
        // two disjoint intervals spill
        let two = IndexSet::from_range(0, 2).union(&IndexSet::from_range(5, 7));
        assert!(matches!(two.repr, Repr::Heap(_)));
        // a union collapsing to one interval stays inline
        let one = IndexSet::from_range(0, 5).union(&IndexSet::from_range(3, 9));
        assert!(matches!(one.repr, Repr::Inline(_)));
    }

    #[test]
    fn representations_compare_and_hash_equal() {
        use std::collections::hash_map::DefaultHasher;
        // construct the same set inline and on the heap
        let inline = IndexSet::from_range(2, 8);
        let mut heap = IndexSet::from_range(0, 1).union(&IndexSet::from_range(4, 8));
        let mut scratch = Scratch::new();
        heap.intersect_with(&IndexSet::from_range(2, 8), &mut scratch);
        heap.union_with(&IndexSet::from_range(2, 5), &mut scratch);
        assert!(matches!(heap.repr, Repr::Heap(_)));
        assert_eq!(inline, heap);
        let digest = |s: &IndexSet| {
            let mut h = DefaultHasher::new();
            s.hash(&mut h);
            h.finish()
        };
        assert_eq!(digest(&inline), digest(&heap));
    }

    #[test]
    fn union_with_matches_union() {
        let cases = [
            (IndexSet::new(), IndexSet::from_range(1, 4)),
            (IndexSet::from_range(1, 4), IndexSet::new()),
            (IndexSet::from_range(0, 5), IndexSet::from_range(5, 9)),
            (IndexSet::from_range(0, 5), IndexSet::from_range(7, 9)),
            (
                IndexSet::from_indices([0, 2, 4, 6]),
                IndexSet::from_indices([1, 2, 9]),
            ),
        ];
        let mut scratch = Scratch::new();
        for (a, b) in cases {
            let mut acc = a.clone();
            acc.union_with(&b, &mut scratch);
            assert_eq!(acc, a.union(&b), "{a} ∪ {b}");
        }
        assert!(scratch.stats.inline + scratch.stats.spilled >= 5);
    }

    #[test]
    fn intersect_with_matches_intersect() {
        let cases = [
            (IndexSet::from_range(0, 5), IndexSet::from_range(3, 9)),
            (IndexSet::from_range(0, 5), IndexSet::from_range(7, 9)),
            (
                IndexSet::from_indices([0, 2, 4, 6]),
                IndexSet::from_range(1, 5),
            ),
            (IndexSet::new(), IndexSet::from_range(1, 4)),
        ];
        let mut scratch = Scratch::new();
        for (a, b) in cases {
            let mut acc = a.clone();
            acc.intersect_with(&b, &mut scratch);
            assert_eq!(acc, a.intersect(&b), "{a} ∩ {b}");
        }
    }

    #[test]
    fn subtract_with_matches_difference() {
        let cases = [
            // hole punched in the middle: 1 → 2 intervals
            (IndexSet::from_range(0, 10), IndexSet::from_range(3, 6)),
            // prefix and suffix trims
            (IndexSet::from_range(0, 10), IndexSet::from_range(0, 4)),
            (IndexSet::from_range(0, 10), IndexSet::from_range(6, 12)),
            // disjoint, covering, empty
            (IndexSet::from_range(0, 4), IndexSet::from_range(6, 8)),
            (IndexSet::from_range(2, 4), IndexSet::from_range(0, 8)),
            (IndexSet::from_range(2, 4), IndexSet::new()),
            (
                IndexSet::from_indices([0, 2, 4, 6, 8]),
                IndexSet::from_range(2, 7),
            ),
        ];
        let mut scratch = Scratch::new();
        for (a, b) in cases {
            let mut acc = a.clone();
            acc.subtract_with(&b, &mut scratch);
            assert_eq!(acc, a.difference(&b), "{a} \\ {b}");
        }
    }

    #[test]
    fn scratch_reaches_allocation_free_steady_state() {
        // after warm-up, a heap accumulator and its scratch swap buffers:
        // capacities persist, so repeated spills stop allocating
        let mut scratch = Scratch::new();
        let mut acc = IndexSet::new();
        for round in 0..3 {
            acc.clear();
            for i in 0..6 {
                acc.union_with(&IndexSet::point(i * 3), &mut scratch);
            }
            assert_eq!(acc.count(), 6, "round {round}");
        }
        assert!(scratch.stats.spilled > 0);
    }

    #[test]
    fn clear_preserves_heap_capacity() {
        let mut s = IndexSet::from_indices([0, 2, 4, 6]);
        let cap_before = match &s.repr {
            Repr::Heap(v) => v.capacity(),
            _ => panic!("expected heap"),
        };
        s.clear();
        assert!(s.is_empty());
        match &s.repr {
            Repr::Heap(v) => assert_eq!(v.capacity(), cap_before),
            _ => panic!("clear must not drop the buffer"),
        }
    }

    /// Property tests (gated: the `proptest` crate is not vendored, so the
    /// default offline build compiles these out; re-add the dev-dependency
    /// and run `cargo test --features proptest` to enable them).
    #[cfg(feature = "proptest")]
    mod props {
        use super::*;
        use proptest::prelude::*;
        fn arb_indexset(max: usize) -> impl Strategy<Value = IndexSet> {
            prop::collection::vec((0..max, 0..max), 0..8).prop_map(|pairs| {
                IndexSet::from_intervals(
                    pairs
                        .into_iter()
                        .map(|(a, b)| Interval::new(a.min(b), a.max(b))),
                )
            })
        }

        proptest! {
            #[test]
            fn prop_canonical_form(s in arb_indexset(64)) {
                // intervals sorted, disjoint, non-adjacent, non-empty
                for w in s.intervals().windows(2) {
                    prop_assert!(w[0].end < w[1].start);
                }
                for iv in s.intervals() {
                    prop_assert!(!iv.is_empty());
                }
            }

            #[test]
            fn prop_union_commutative(a in arb_indexset(64), b in arb_indexset(64)) {
                prop_assert_eq!(a.union(&b), b.union(&a));
            }

            #[test]
            fn prop_intersect_commutative(a in arb_indexset(64), b in arb_indexset(64)) {
                prop_assert_eq!(a.intersect(&b), b.intersect(&a));
            }

            #[test]
            fn prop_union_intersect_absorption(a in arb_indexset(64), b in arb_indexset(64)) {
                prop_assert_eq!(a.union(&a.intersect(&b)), a.clone());
                prop_assert_eq!(a.intersect(&a.union(&b)), a);
            }

            #[test]
            fn prop_difference_disjoint_from_subtrahend(a in arb_indexset(64), b in arb_indexset(64)) {
                prop_assert!(a.difference(&b).intersect(&b).is_empty());
            }

            #[test]
            fn prop_difference_union_restores(a in arb_indexset(64), b in arb_indexset(64)) {
                prop_assert_eq!(a.difference(&b).union(&a.intersect(&b)), a);
            }

            #[test]
            fn prop_demorgan(a in arb_indexset(64), b in arb_indexset(64)) {
                let n = 64;
                let lhs = a.union(&b).complement(n);
                let rhs = a.complement(n).intersect(&b.complement(n));
                prop_assert_eq!(lhs, rhs);
            }

            #[test]
            fn prop_count_inclusion_exclusion(a in arb_indexset(64), b in arb_indexset(64)) {
                prop_assert_eq!(
                    a.union(&b).count() + a.intersect(&b).count(),
                    a.count() + b.count()
                );
            }

            #[test]
            fn prop_membership_matches_setops(a in arb_indexset(32), b in arb_indexset(32), idx in 0usize..40) {
                prop_assert_eq!(a.union(&b).contains(idx), a.contains(idx) || b.contains(idx));
                prop_assert_eq!(a.intersect(&b).contains(idx), a.contains(idx) && b.contains(idx));
                prop_assert_eq!(a.difference(&b).contains(idx), a.contains(idx) && !b.contains(idx));
            }

            #[test]
            fn prop_iter_matches_contains(s in arb_indexset(48)) {
                let collected: Vec<usize> = s.iter().collect();
                prop_assert_eq!(collected.len(), s.count());
                for &i in &collected {
                    prop_assert!(s.contains(i));
                }
                let mut sorted = collected.clone();
                sorted.sort_unstable();
                sorted.dedup();
                prop_assert_eq!(collected, sorted);
            }

            #[test]
            fn prop_shift_roundtrip(s in arb_indexset(48), off in 0isize..16) {
                // shifting right then left is identity (no clipping when going right first)
                prop_assert_eq!(s.shift(off).shift(-off), s);
            }

            #[test]
            fn prop_dilate_superset(s in arb_indexset(48), l in 0usize..4, r in 0usize..4) {
                prop_assert!(s.is_subset(&s.dilate(l, r)));
            }

            #[test]
            fn prop_coalesce_monotone_in_gap(s in arb_indexset(64), g1 in 0usize..8, g2 in 0usize..8) {
                let (lo, hi) = (g1.min(g2), g1.max(g2));
                prop_assert!(s.coalesce(lo).is_subset(&s.coalesce(hi)));
            }

            #[test]
            fn prop_coalesce_superset_and_bounded(s in arb_indexset(64), gap in 0usize..12) {
                let c = s.coalesce(gap);
                prop_assert!(s.is_subset(&c));
                // never grows past the bounding interval
                if let Some(b) = s.bounding() {
                    prop_assert!(c.is_subset(&IndexSet::from_intervals([b])));
                }
                // gap 0 is the identity
                prop_assert_eq!(s.coalesce(0), s);
            }

            // The in-place operators must agree with the allocating
            // reference implementations on arbitrary inputs, for any
            // (possibly warm) scratch state.
            #[test]
            fn prop_union_with_matches_union(a in arb_indexset(64), b in arb_indexset(64), w in arb_indexset(64)) {
                let mut scratch = Scratch::new();
                let mut warm = w.clone();
                warm.union_with(&b, &mut scratch); // dirty the scratch buffer
                let mut acc = a.clone();
                acc.union_with(&b, &mut scratch);
                prop_assert_eq!(acc, a.union(&b));
            }

            #[test]
            fn prop_intersect_with_matches_intersect(a in arb_indexset(64), b in arb_indexset(64), w in arb_indexset(64)) {
                let mut scratch = Scratch::new();
                let mut warm = w.clone();
                warm.subtract_with(&b, &mut scratch);
                let mut acc = a.clone();
                acc.intersect_with(&b, &mut scratch);
                prop_assert_eq!(acc, a.intersect(&b));
            }

            #[test]
            fn prop_subtract_with_matches_difference(a in arb_indexset(64), b in arb_indexset(64), w in arb_indexset(64)) {
                let mut scratch = Scratch::new();
                let mut warm = w.clone();
                warm.union_with(&a, &mut scratch);
                let mut acc = a.clone();
                acc.subtract_with(&b, &mut scratch);
                prop_assert_eq!(acc, a.difference(&b));
            }

            #[test]
            fn prop_inplace_chain_matches_allocating_chain(
                a in arb_indexset(64), b in arb_indexset(64), c in arb_indexset(64)
            ) {
                // a realistic accumulator pattern: (a ∪ b) ∩ c, then \ b
                let reference = a.union(&b).intersect(&c).difference(&b);
                let mut scratch = Scratch::new();
                let mut acc = a.clone();
                acc.union_with(&b, &mut scratch);
                acc.intersect_with(&c, &mut scratch);
                acc.subtract_with(&b, &mut scratch);
                prop_assert_eq!(acc, reference);
            }
        }
    }
}
