//! Canonical unions of disjoint index intervals.

use crate::Interval;
use std::fmt;

/// A set of flattened element indices, stored as sorted, disjoint,
/// non-adjacent half-open intervals.
///
/// `IndexSet` is the currency of FRODO's calculation-range determination:
/// every block's *calculation range* and every I/O-mapping request is one of
/// these. The representation is canonical — two sets containing the same
/// indices always compare equal — which the constructors and operators
/// maintain by merging overlapping or touching intervals.
///
/// # Example
///
/// ```
/// use frodo_ranges::IndexSet;
///
/// let a = IndexSet::from_range(0, 10);
/// let b = IndexSet::from_range(20, 30);
/// let u = a.union(&b);
/// assert_eq!(u.count(), 20);
/// assert_eq!(u.intervals().len(), 2);
/// assert!(u.contains(5) && u.contains(25) && !u.contains(15));
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash, Default)]
pub struct IndexSet {
    intervals: Vec<Interval>,
}

impl IndexSet {
    /// The empty set.
    pub fn new() -> Self {
        IndexSet::default()
    }

    /// The empty set (alias of [`IndexSet::new`]).
    pub fn empty() -> Self {
        IndexSet::default()
    }

    /// The full range `[0, len)`.
    pub fn full(len: usize) -> Self {
        IndexSet::from_range(0, len)
    }

    /// The single interval `[start, end)`; empty if `start >= end`.
    pub fn from_range(start: usize, end: usize) -> Self {
        let iv = Interval::new(start, end);
        if iv.is_empty() {
            IndexSet::new()
        } else {
            IndexSet {
                intervals: vec![iv],
            }
        }
    }

    /// The set containing exactly `idx`.
    pub fn point(idx: usize) -> Self {
        IndexSet::from_range(idx, idx + 1)
    }

    /// Builds a set from an arbitrary iterator of intervals
    /// (they may overlap, touch, be empty, or arrive unsorted).
    pub fn from_intervals<I: IntoIterator<Item = Interval>>(ivs: I) -> Self {
        let mut v: Vec<Interval> = ivs.into_iter().filter(|iv| !iv.is_empty()).collect();
        v.sort();
        let mut out: Vec<Interval> = Vec::with_capacity(v.len());
        for iv in v {
            match out.last_mut() {
                Some(last) if last.touches(&iv) => last.end = last.end.max(iv.end),
                _ => out.push(iv),
            }
        }
        IndexSet { intervals: out }
    }

    /// Builds a set from individual indices (duplicates allowed, any order).
    pub fn from_indices<I: IntoIterator<Item = usize>>(idxs: I) -> Self {
        IndexSet::from_intervals(idxs.into_iter().map(Interval::point))
    }

    /// The canonical intervals, sorted and disjoint.
    pub fn intervals(&self) -> &[Interval] {
        &self.intervals
    }

    /// Whether the set contains no indices.
    pub fn is_empty(&self) -> bool {
        self.intervals.is_empty()
    }

    /// Total number of indices in the set.
    pub fn count(&self) -> usize {
        self.intervals.iter().map(Interval::len).sum()
    }

    /// Whether `idx` is a member.
    pub fn contains(&self, idx: usize) -> bool {
        // Binary search on interval starts, then check the candidate.
        match self.intervals.binary_search_by(|iv| iv.start.cmp(&idx)) {
            Ok(_) => true,
            Err(0) => false,
            Err(pos) => self.intervals[pos - 1].contains(idx),
        }
    }

    /// Smallest contained index, if any.
    pub fn min(&self) -> Option<usize> {
        self.intervals.first().map(|iv| iv.start)
    }

    /// Largest contained index, if any.
    pub fn max(&self) -> Option<usize> {
        self.intervals.last().map(|iv| iv.end - 1)
    }

    /// Smallest single interval covering every member (empty set ⇒ `None`).
    pub fn bounding(&self) -> Option<Interval> {
        match (self.min(), self.max()) {
            (Some(lo), Some(hi)) => Some(Interval::new(lo, hi + 1)),
            _ => None,
        }
    }

    /// Set union.
    pub fn union(&self, other: &IndexSet) -> IndexSet {
        IndexSet::from_intervals(self.intervals.iter().chain(other.intervals.iter()).copied())
    }

    /// Set intersection.
    pub fn intersect(&self, other: &IndexSet) -> IndexSet {
        let mut out = Vec::new();
        let (mut i, mut j) = (0, 0);
        while i < self.intervals.len() && j < other.intervals.len() {
            let a = self.intervals[i];
            let b = other.intervals[j];
            let x = a.intersect(&b);
            if !x.is_empty() {
                out.push(x);
            }
            if a.end <= b.end {
                i += 1;
            } else {
                j += 1;
            }
        }
        IndexSet { intervals: out }
    }

    /// Set difference `self \ other`.
    pub fn difference(&self, other: &IndexSet) -> IndexSet {
        let mut out = Vec::new();
        let mut j = 0;
        for &a in &self.intervals {
            let mut cur = a.start;
            while j < other.intervals.len() && other.intervals[j].end <= cur {
                j += 1;
            }
            let mut k = j;
            while k < other.intervals.len() && other.intervals[k].start < a.end {
                let b = other.intervals[k];
                if b.start > cur {
                    out.push(Interval::new(cur, b.start.min(a.end)));
                }
                cur = cur.max(b.end);
                if cur >= a.end {
                    break;
                }
                k += 1;
            }
            if cur < a.end {
                out.push(Interval::new(cur, a.end));
            }
        }
        IndexSet { intervals: out }
    }

    /// Complement within the universe `[0, len)`.
    pub fn complement(&self, len: usize) -> IndexSet {
        IndexSet::full(len).difference(self)
    }

    /// Whether every member of `self` is also in `other`.
    pub fn is_subset(&self, other: &IndexSet) -> bool {
        self.difference(other).is_empty()
    }

    /// Translates every index by `offset`, dropping indices that would become
    /// negative (saturating clip at zero, per boundary-clamping block semantics).
    pub fn shift(&self, offset: isize) -> IndexSet {
        IndexSet::from_intervals(self.intervals.iter().map(|iv| iv.shift(offset)))
    }

    /// Restricts the set to `[0, len)`.
    pub fn clamp_to(&self, len: usize) -> IndexSet {
        IndexSet::from_intervals(self.intervals.iter().map(|iv| iv.clamp_to(len)))
    }

    /// Dilates each member index `k` to the window `[k - left, k + right]`
    /// (clipped at zero), then unions: the exact input requirement of
    /// sliding-window blocks such as convolution and FIR filters.
    pub fn dilate(&self, left: usize, right: usize) -> IndexSet {
        IndexSet::from_intervals(
            self.intervals
                .iter()
                .map(|iv| Interval::new(iv.start.saturating_sub(left), iv.end + right)),
        )
    }

    /// Merges intervals separated by gaps of at most `max_gap` indices,
    /// producing a superset with fewer, longer runs.
    ///
    /// # Example
    ///
    /// ```
    /// use frodo_ranges::IndexSet;
    ///
    /// let sparse = IndexSet::from_indices([0, 4, 8, 40]);
    /// let coalesced = sparse.coalesce(8);
    /// assert_eq!(coalesced, IndexSet::from_range(0, 9).union(&IndexSet::point(40)));
    /// ```
    ///
    /// Used by concise code generation to avoid the discontinuous-range
    /// pathology the paper's §5 discusses: emitting one loop per tiny run
    /// costs more than computing a few redundant elements to keep runs
    /// contiguous. `max_gap = 0` is the identity.
    pub fn coalesce(&self, max_gap: usize) -> IndexSet {
        let mut out: Vec<Interval> = Vec::with_capacity(self.intervals.len());
        for &iv in &self.intervals {
            match out.last_mut() {
                Some(last) if iv.start <= last.end + max_gap => {
                    last.end = last.end.max(iv.end);
                }
                _ => out.push(iv),
            }
        }
        IndexSet { intervals: out }
    }

    /// Iterates over every member index in increasing order.
    pub fn iter(&self) -> Iter<'_> {
        Iter {
            intervals: &self.intervals,
            pos: 0,
            next: self.intervals.first().map(|iv| iv.start).unwrap_or(0),
        }
    }

    /// Fraction of `[0, len)` covered by the set (1.0 for the full range).
    ///
    /// Used to report how much calculation a block's range elimination saved.
    pub fn coverage(&self, len: usize) -> f64 {
        if len == 0 {
            return 1.0;
        }
        self.clamp_to(len).count() as f64 / len as f64
    }
}

impl fmt::Display for IndexSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.intervals.is_empty() {
            return write!(f, "{{}}");
        }
        let parts: Vec<String> = self.intervals.iter().map(|iv| iv.to_string()).collect();
        write!(f, "{}", parts.join(" ∪ "))
    }
}

impl FromIterator<Interval> for IndexSet {
    fn from_iter<T: IntoIterator<Item = Interval>>(iter: T) -> Self {
        IndexSet::from_intervals(iter)
    }
}

impl FromIterator<usize> for IndexSet {
    fn from_iter<T: IntoIterator<Item = usize>>(iter: T) -> Self {
        IndexSet::from_indices(iter)
    }
}

impl Extend<Interval> for IndexSet {
    fn extend<T: IntoIterator<Item = Interval>>(&mut self, iter: T) {
        let merged = IndexSet::from_intervals(self.intervals.iter().copied().chain(iter));
        *self = merged;
    }
}

/// Iterator over the member indices of an [`IndexSet`], in increasing order.
#[derive(Debug, Clone)]
pub struct Iter<'a> {
    intervals: &'a [Interval],
    pos: usize,
    next: usize,
}

impl Iterator for Iter<'_> {
    type Item = usize;

    fn next(&mut self) -> Option<usize> {
        loop {
            let iv = self.intervals.get(self.pos)?;
            if self.next < iv.start {
                self.next = iv.start;
            }
            if self.next < iv.end {
                let out = self.next;
                self.next += 1;
                return Some(out);
            }
            self.pos += 1;
        }
    }
}

impl<'a> IntoIterator for &'a IndexSet {
    type Item = usize;
    type IntoIter = Iter<'a>;

    fn into_iter(self) -> Iter<'a> {
        self.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_set_properties() {
        let s = IndexSet::new();
        assert!(s.is_empty());
        assert_eq!(s.count(), 0);
        assert_eq!(s.min(), None);
        assert_eq!(s.max(), None);
        assert_eq!(s.bounding(), None);
        assert_eq!(s.to_string(), "{}");
    }

    #[test]
    fn from_intervals_merges_overlaps_and_touches() {
        let s = IndexSet::from_intervals([
            Interval::new(5, 10),
            Interval::new(0, 5),
            Interval::new(8, 12),
            Interval::new(20, 25),
        ]);
        assert_eq!(
            s.intervals(),
            &[Interval::new(0, 12), Interval::new(20, 25)]
        );
    }

    #[test]
    fn from_indices_collapses_runs() {
        let s = IndexSet::from_indices([3, 1, 2, 2, 7]);
        assert_eq!(s.intervals(), &[Interval::new(1, 4), Interval::new(7, 8)]);
    }

    #[test]
    fn contains_uses_binary_search_correctly() {
        let s = IndexSet::from_intervals([Interval::new(2, 4), Interval::new(10, 13)]);
        for i in 0..16 {
            let expected = (2..4).contains(&i) || (10..13).contains(&i);
            assert_eq!(s.contains(i), expected, "index {i}");
        }
    }

    #[test]
    fn union_of_disjoint_keeps_both() {
        let a = IndexSet::from_range(0, 3);
        let b = IndexSet::from_range(5, 8);
        assert_eq!(a.union(&b).count(), 6);
    }

    #[test]
    fn intersect_basic() {
        let a = IndexSet::from_intervals([Interval::new(0, 10), Interval::new(20, 30)]);
        let b = IndexSet::from_range(5, 25);
        assert_eq!(
            a.intersect(&b).intervals(),
            &[Interval::new(5, 10), Interval::new(20, 25)]
        );
    }

    #[test]
    fn difference_punches_holes() {
        let a = IndexSet::from_range(0, 10);
        let b = IndexSet::from_intervals([Interval::new(2, 4), Interval::new(6, 7)]);
        assert_eq!(
            a.difference(&b).intervals(),
            &[
                Interval::new(0, 2),
                Interval::new(4, 6),
                Interval::new(7, 10)
            ]
        );
    }

    #[test]
    fn complement_of_full_is_empty() {
        assert!(IndexSet::full(10).complement(10).is_empty());
        assert_eq!(IndexSet::new().complement(5), IndexSet::full(5));
    }

    #[test]
    fn shift_and_clamp() {
        let s = IndexSet::from_range(2, 6);
        assert_eq!(s.shift(3), IndexSet::from_range(5, 9));
        assert_eq!(s.shift(-3), IndexSet::from_range(0, 3));
        assert_eq!(s.shift(3).clamp_to(7), IndexSet::from_range(5, 7));
    }

    #[test]
    fn dilate_models_conv_window() {
        // out index k needs inputs [k-2, k+1]
        let s = IndexSet::from_range(10, 12);
        assert_eq!(s.dilate(2, 1), IndexSet::from_range(8, 13));
        // clipped at zero
        let t = IndexSet::point(1);
        assert_eq!(t.dilate(3, 0), IndexSet::from_range(0, 2));
    }

    #[test]
    fn dilate_merges_adjacent_windows() {
        let s = IndexSet::from_indices([0, 4, 8]);
        assert_eq!(s.dilate(2, 2), IndexSet::from_range(0, 11));
    }

    #[test]
    fn iter_yields_sorted_members() {
        let s = IndexSet::from_intervals([Interval::new(1, 3), Interval::new(6, 8)]);
        let v: Vec<usize> = s.iter().collect();
        assert_eq!(v, vec![1, 2, 6, 7]);
    }

    #[test]
    fn subset_checks() {
        let a = IndexSet::from_range(2, 5);
        let b = IndexSet::from_range(0, 10);
        assert!(a.is_subset(&b));
        assert!(!b.is_subset(&a));
        assert!(IndexSet::new().is_subset(&a));
    }

    #[test]
    fn coverage_reports_fraction() {
        let s = IndexSet::from_range(0, 25);
        assert!((s.coverage(100) - 0.25).abs() < 1e-12);
        assert!((IndexSet::full(10).coverage(10) - 1.0).abs() < 1e-12);
        assert!((IndexSet::new().coverage(0) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn display_shows_union() {
        let s = IndexSet::from_intervals([Interval::new(0, 2), Interval::new(5, 6)]);
        assert_eq!(s.to_string(), "[0, 2) ∪ [5, 6)");
    }

    #[test]
    fn extend_merges_in_place() {
        let mut s = IndexSet::from_range(0, 3);
        s.extend([Interval::new(3, 6)]);
        assert_eq!(s, IndexSet::from_range(0, 6));
    }

    /// Property tests (gated: the `proptest` crate is not vendored, so the
    /// default offline build compiles these out; re-add the dev-dependency
    /// and run `cargo test --features proptest` to enable them).
    #[cfg(feature = "proptest")]
    mod props {
        use super::*;
        use proptest::prelude::*;
        fn arb_indexset(max: usize) -> impl Strategy<Value = IndexSet> {
            prop::collection::vec((0..max, 0..max), 0..8).prop_map(|pairs| {
                IndexSet::from_intervals(
                    pairs
                        .into_iter()
                        .map(|(a, b)| Interval::new(a.min(b), a.max(b))),
                )
            })
        }

        proptest! {
            #[test]
            fn prop_canonical_form(s in arb_indexset(64)) {
                // intervals sorted, disjoint, non-adjacent, non-empty
                for w in s.intervals().windows(2) {
                    prop_assert!(w[0].end < w[1].start);
                }
                for iv in s.intervals() {
                    prop_assert!(!iv.is_empty());
                }
            }

            #[test]
            fn prop_union_commutative(a in arb_indexset(64), b in arb_indexset(64)) {
                prop_assert_eq!(a.union(&b), b.union(&a));
            }

            #[test]
            fn prop_intersect_commutative(a in arb_indexset(64), b in arb_indexset(64)) {
                prop_assert_eq!(a.intersect(&b), b.intersect(&a));
            }

            #[test]
            fn prop_union_intersect_absorption(a in arb_indexset(64), b in arb_indexset(64)) {
                prop_assert_eq!(a.union(&a.intersect(&b)), a.clone());
                prop_assert_eq!(a.intersect(&a.union(&b)), a);
            }

            #[test]
            fn prop_difference_disjoint_from_subtrahend(a in arb_indexset(64), b in arb_indexset(64)) {
                prop_assert!(a.difference(&b).intersect(&b).is_empty());
            }

            #[test]
            fn prop_difference_union_restores(a in arb_indexset(64), b in arb_indexset(64)) {
                prop_assert_eq!(a.difference(&b).union(&a.intersect(&b)), a);
            }

            #[test]
            fn prop_demorgan(a in arb_indexset(64), b in arb_indexset(64)) {
                let n = 64;
                let lhs = a.union(&b).complement(n);
                let rhs = a.complement(n).intersect(&b.complement(n));
                prop_assert_eq!(lhs, rhs);
            }

            #[test]
            fn prop_count_inclusion_exclusion(a in arb_indexset(64), b in arb_indexset(64)) {
                prop_assert_eq!(
                    a.union(&b).count() + a.intersect(&b).count(),
                    a.count() + b.count()
                );
            }

            #[test]
            fn prop_membership_matches_setops(a in arb_indexset(32), b in arb_indexset(32), idx in 0usize..40) {
                prop_assert_eq!(a.union(&b).contains(idx), a.contains(idx) || b.contains(idx));
                prop_assert_eq!(a.intersect(&b).contains(idx), a.contains(idx) && b.contains(idx));
                prop_assert_eq!(a.difference(&b).contains(idx), a.contains(idx) && !b.contains(idx));
            }

            #[test]
            fn prop_iter_matches_contains(s in arb_indexset(48)) {
                let collected: Vec<usize> = s.iter().collect();
                prop_assert_eq!(collected.len(), s.count());
                for &i in &collected {
                    prop_assert!(s.contains(i));
                }
                let mut sorted = collected.clone();
                sorted.sort_unstable();
                sorted.dedup();
                prop_assert_eq!(collected, sorted);
            }

            #[test]
            fn prop_shift_roundtrip(s in arb_indexset(48), off in 0isize..16) {
                // shifting right then left is identity (no clipping when going right first)
                prop_assert_eq!(s.shift(off).shift(-off), s);
            }

            #[test]
            fn prop_dilate_superset(s in arb_indexset(48), l in 0usize..4, r in 0usize..4) {
                prop_assert!(s.is_subset(&s.dilate(l, r)));
            }

            #[test]
            fn prop_coalesce_monotone_in_gap(s in arb_indexset(64), g1 in 0usize..8, g2 in 0usize..8) {
                let (lo, hi) = (g1.min(g2), g1.max(g2));
                prop_assert!(s.coalesce(lo).is_subset(&s.coalesce(hi)));
            }

            #[test]
            fn prop_coalesce_superset_and_bounded(s in arb_indexset(64), gap in 0usize..12) {
                let c = s.coalesce(gap);
                prop_assert!(s.is_subset(&c));
                // never grows past the bounding interval
                if let Some(b) = s.bounding() {
                    prop_assert!(c.is_subset(&IndexSet::from_intervals([b])));
                }
                // gap 0 is the identity
                prop_assert_eq!(s.coalesce(0), s);
            }
        }
    }
}
