//! Index-range algebra for FRODO's I/O mapping derivation.
//!
//! Data-intensive Simulink blocks operate on dense tensors. FRODO's central
//! analysis asks, for each block: *which elements of my output are actually
//! consumed downstream, and therefore which elements of my inputs do I need?*
//! This crate provides the machinery to answer that question exactly:
//!
//! - [`Interval`] — a half-open index range `[start, end)`.
//! - [`IndexSet`] — a canonical union of disjoint intervals over flattened
//!   (row-major) element indices, with the usual set algebra.
//! - [`Shape`] — scalar / vector / matrix tensor shapes.
//! - [`PortMap`] — the *I/O mapping* of one (output-request → input-requirement)
//!   edge of a block, as recorded in the block property library.
//!
//! # Example
//!
//! Deriving the input requirement of a `Selector` block that extracts
//! elements `5..55` of a 60-element signal, when the downstream consumers
//! need its full 50-element output:
//!
//! ```
//! use frodo_ranges::{IndexSet, PortMap};
//!
//! let selector = PortMap::shift(5, 60);
//! let request = IndexSet::from_range(0, 50);
//! let needed = selector.apply(&request);
//! assert_eq!(needed, IndexSet::from_range(5, 55));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod indexset;
mod interval;
mod mapping;
mod shape;

pub use indexset::{IndexSet, Scratch, SetOpStats};
pub use interval::Interval;
pub use mapping::PortMap;
pub use shape::Shape;
