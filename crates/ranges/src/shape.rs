//! Tensor shapes carried by Simulink signals.

use std::fmt;

/// The shape of a signal: scalar, 1-D vector, or 2-D matrix (row-major).
///
/// All index algebra in this crate operates on *flattened* element indices;
/// `Shape` provides the flattening and unflattening conventions.
///
/// # Example
///
/// ```
/// use frodo_ranges::Shape;
///
/// let m = Shape::matrix(3, 4);
/// assert_eq!(m.numel(), 12);
/// assert_eq!(m.flatten(1, 2), 6);
/// assert_eq!(m.unflatten(6), (1, 2));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Shape {
    /// A single value.
    #[default]
    Scalar,
    /// A vector of `n` elements.
    Vector(usize),
    /// A `rows × cols` matrix stored row-major.
    Matrix(usize, usize),
}

impl Shape {
    /// Constructs a matrix shape.
    pub fn matrix(rows: usize, cols: usize) -> Self {
        Shape::Matrix(rows, cols)
    }

    /// Constructs a vector shape.
    pub fn vector(n: usize) -> Self {
        Shape::Vector(n)
    }

    /// Total number of elements.
    pub fn numel(&self) -> usize {
        match *self {
            Shape::Scalar => 1,
            Shape::Vector(n) => n,
            Shape::Matrix(r, c) => r * c,
        }
    }

    /// Whether the shape is a scalar.
    pub fn is_scalar(&self) -> bool {
        matches!(self, Shape::Scalar)
    }

    /// Rows of the 2-D view (vectors are a single row; scalars are 1×1).
    pub fn rows(&self) -> usize {
        match *self {
            Shape::Scalar | Shape::Vector(_) => 1,
            Shape::Matrix(r, _) => r,
        }
    }

    /// Columns of the 2-D view.
    pub fn cols(&self) -> usize {
        match *self {
            Shape::Scalar => 1,
            Shape::Vector(n) => n,
            Shape::Matrix(_, c) => c,
        }
    }

    /// Row-major flattened index of element `(row, col)`.
    ///
    /// # Panics
    ///
    /// Panics if `(row, col)` is out of bounds for the shape.
    pub fn flatten(&self, row: usize, col: usize) -> usize {
        assert!(
            row < self.rows() && col < self.cols(),
            "index ({row}, {col}) out of bounds for {self}"
        );
        row * self.cols() + col
    }

    /// Inverse of [`Shape::flatten`].
    ///
    /// # Panics
    ///
    /// Panics if `idx >= self.numel()`.
    pub fn unflatten(&self, idx: usize) -> (usize, usize) {
        assert!(idx < self.numel(), "index {idx} out of bounds for {self}");
        (idx / self.cols(), idx % self.cols())
    }

    /// The transposed shape (scalars and vectors transpose to themselves
    /// and to column matrices respectively).
    pub fn transposed(&self) -> Shape {
        match *self {
            Shape::Scalar => Shape::Scalar,
            Shape::Vector(n) => Shape::Matrix(n, 1),
            Shape::Matrix(r, c) => Shape::Matrix(c, r),
        }
    }

    /// Whether two shapes hold the same number of elements (reshape-compatible).
    pub fn same_numel(&self, other: &Shape) -> bool {
        self.numel() == other.numel()
    }
}

impl fmt::Display for Shape {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            Shape::Scalar => write!(f, "scalar"),
            Shape::Vector(n) => write!(f, "[{n}]"),
            Shape::Matrix(r, c) => write!(f, "[{r}x{c}]"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn numel_by_kind() {
        assert_eq!(Shape::Scalar.numel(), 1);
        assert_eq!(Shape::Vector(7).numel(), 7);
        assert_eq!(Shape::matrix(3, 5).numel(), 15);
    }

    #[test]
    fn flatten_unflatten_roundtrip() {
        let s = Shape::matrix(4, 6);
        for r in 0..4 {
            for c in 0..6 {
                let idx = s.flatten(r, c);
                assert_eq!(s.unflatten(idx), (r, c));
            }
        }
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn flatten_rejects_out_of_bounds() {
        Shape::matrix(2, 2).flatten(2, 0);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn unflatten_rejects_out_of_bounds() {
        Shape::Vector(3).unflatten(3);
    }

    #[test]
    fn vector_is_one_row() {
        let s = Shape::Vector(5);
        assert_eq!(s.rows(), 1);
        assert_eq!(s.cols(), 5);
        assert_eq!(s.flatten(0, 3), 3);
    }

    #[test]
    fn transposed_shapes() {
        assert_eq!(Shape::matrix(3, 4).transposed(), Shape::matrix(4, 3));
        assert_eq!(Shape::Vector(4).transposed(), Shape::matrix(4, 1));
        assert_eq!(Shape::Scalar.transposed(), Shape::Scalar);
    }

    #[test]
    fn display_formats() {
        assert_eq!(Shape::Scalar.to_string(), "scalar");
        assert_eq!(Shape::Vector(8).to_string(), "[8]");
        assert_eq!(Shape::matrix(2, 3).to_string(), "[2x3]");
    }

    #[test]
    fn same_numel_for_reshape() {
        assert!(Shape::Vector(12).same_numel(&Shape::matrix(3, 4)));
        assert!(!Shape::Vector(12).same_numel(&Shape::matrix(3, 5)));
    }
}
