//! Dataflow-graph construction and scheduling for FRODO.
//!
//! The second and third steps of code generation (paper §2): *dataflow
//! analysis* derives the connectivity between blocks, and *scheduling* infers
//! the translation sequence. [`Dfg`] bundles a flattened model, its inferred
//! shapes, and the adjacency structure; [`Dfg::schedule`] produces the
//! topological translation order used by code synthesis, treating stateful
//! blocks (`UnitDelay`) as sequence points so feedback loops remain valid.
//!
//! # Example
//!
//! ```
//! use frodo_graph::Dfg;
//! use frodo_model::{Block, BlockKind, Model};
//! use frodo_ranges::Shape;
//!
//! # fn main() -> Result<(), frodo_model::ModelError> {
//! let mut m = Model::new("chain");
//! let i = m.add(Block::new("i", BlockKind::Inport { index: 0, shape: Shape::Vector(8) }));
//! let g = m.add(Block::new("g", BlockKind::Gain { gain: 2.0 }));
//! let o = m.add(Block::new("o", BlockKind::Outport { index: 0 }));
//! m.connect(i, 0, g, 0)?;
//! m.connect(g, 0, o, 0)?;
//! let dfg = Dfg::new(m, &frodo_obs::Trace::noop())?;
//! assert_eq!(dfg.roots().len(), 1);
//! let order = dfg.schedule()?;
//! assert_eq!(order.len(), 3);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod dfg;
mod region;
mod topo;

pub use dfg::Dfg;
pub use region::{partition_regions, RegionPartition};
pub use topo::{analysis_levels, topo_levels, toposort};
