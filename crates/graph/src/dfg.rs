//! The analyzed dataflow graph.

use crate::{analysis_levels, topo_levels, toposort};
use frodo_model::{BlockId, BlockKind, InPort, Model, ModelError, OutPort, ShapeTable};

/// A flattened model together with its inferred shapes and adjacency
/// structure — the artifact FRODO's *model analysis* stage hands to
/// redundancy elimination and code synthesis.
///
/// Construction flattens subsystems, validates connectivity, and runs shape
/// inference; a `Dfg` is therefore always well-formed.
#[derive(Debug, Clone)]
pub struct Dfg {
    model: Model,
    shapes: ShapeTable,
    children: Vec<Vec<BlockId>>,
    parents: Vec<Vec<BlockId>>,
    /// Offset of each block's first output port in the dense port index
    /// space (prefix sums of `num_outputs`); the final entry is the total.
    port_offsets: Vec<usize>,
    /// Consumer input ports of every output port, indexed by
    /// [`Dfg::out_port_index`] — the reverse adjacency that makes
    /// [`Dfg::consumers_of`] an O(1) lookup instead of a connection scan.
    port_consumers: Vec<Vec<InPort>>,
}

impl Dfg {
    /// Analyzes a model: flatten, validate, infer shapes, build adjacency.
    /// Recorded on the given trace: a `flatten` span for subsystem
    /// flattening and a `dfg` span (with nested `validate` and
    /// `shape_infer` child spans and block/connection counters) for graph
    /// construction proper. Pass `&Trace::noop()` when no instrumentation
    /// is wanted.
    ///
    /// # Errors
    ///
    /// Propagates any [`ModelError`] from flattening, validation, or shape
    /// inference.
    pub fn new(model: Model, trace: &frodo_obs::Trace) -> Result<Self, ModelError> {
        let flat = model.flattened(trace)?;
        let span = trace.span("dfg");
        let inner = span.trace();
        {
            let _v = inner.span("validate");
            flat.validate()?;
        }
        let shapes = {
            let _s = inner.span("shape_infer");
            flat.infer_shapes()?
        };
        let n = flat.len();
        let mut children: Vec<Vec<BlockId>> = vec![Vec::new(); n];
        let mut parents: Vec<Vec<BlockId>> = vec![Vec::new(); n];
        for c in flat.connections() {
            let (s, d) = (c.from.block, c.to.block);
            if !children[s.index()].contains(&d) {
                children[s.index()].push(d);
            }
            if !parents[d.index()].contains(&s) {
                parents[d.index()].push(s);
            }
        }
        let mut port_offsets = Vec::with_capacity(n + 1);
        let mut total = 0usize;
        for (_, block) in flat.iter() {
            port_offsets.push(total);
            total += block.kind.num_outputs();
        }
        port_offsets.push(total);
        let mut port_consumers: Vec<Vec<InPort>> = vec![Vec::new(); total];
        for c in flat.connections() {
            port_consumers[port_offsets[c.from.block.index()] + c.from.port].push(c.to);
        }
        span.count("blocks", n as u64);
        span.count("connections", flat.connections().len() as u64);
        Ok(Dfg {
            model: flat,
            shapes,
            children,
            parents,
            port_offsets,
            port_consumers,
        })
    }

    /// Deprecated alias of [`Dfg::new`], kept one release for callers of
    /// the old split traced/untraced entry points.
    ///
    /// # Errors
    ///
    /// Propagates any [`ModelError`] from flattening, validation, or shape
    /// inference.
    #[deprecated(since = "0.7.0", note = "use `Dfg::new(model, trace)` instead")]
    pub fn new_traced(model: Model, trace: &frodo_obs::Trace) -> Result<Self, ModelError> {
        Dfg::new(model, trace)
    }

    /// The flattened model.
    pub fn model(&self) -> &Model {
        &self.model
    }

    /// Inferred shapes of every port.
    pub fn shapes(&self) -> &ShapeTable {
        &self.shapes
    }

    /// Blocks consuming any output of `id` (deduplicated).
    pub fn children(&self, id: BlockId) -> &[BlockId] {
        &self.children[id.index()]
    }

    /// Blocks producing any input of `id` (deduplicated).
    pub fn parents(&self, id: BlockId) -> &[BlockId] {
        &self.parents[id.index()]
    }

    /// The 0-in-degree *root blocks* of the paper's Algorithm 1 — the blocks
    /// that "provide the source data for all calculations".
    pub fn roots(&self) -> Vec<BlockId> {
        self.model
            .ids()
            .filter(|id| self.parents[id.index()].is_empty())
            .collect()
    }

    /// The 0-out-degree blocks (sinks).
    pub fn sinks(&self) -> Vec<BlockId> {
        self.model
            .ids()
            .filter(|id| self.children[id.index()].is_empty())
            .collect()
    }

    /// The translation sequence: a topological order of the blocks, with
    /// `UnitDelay` outputs treated as step-boundary state reads so feedback
    /// loops through delays schedule correctly.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::AlgebraicLoop`] if a delay-free cycle remains.
    pub fn schedule(&self) -> Result<Vec<BlockId>, ModelError> {
        toposort(&self.model)
    }

    /// The producer feeding an input port (always present in a valid `Dfg`).
    ///
    /// # Panics
    ///
    /// Panics if the port does not exist — validation guarantees every real
    /// input port is connected.
    pub fn source_of(&self, port: InPort) -> OutPort {
        self.model
            .source_of(port)
            .expect("validated models have fully connected inputs")
    }

    /// All consumer input ports of an output port — a precomputed O(1)
    /// lookup (connection order, like `Model::consumers_of`).
    pub fn consumers_of(&self, port: OutPort) -> &[InPort] {
        &self.port_consumers[self.out_port_index(port)]
    }

    /// Dense index of an output port in `[0, num_out_ports())`: ports are
    /// numbered block by block in id order. Used to key flat per-port
    /// tables (e.g. the parallel range engine's result slots).
    pub fn out_port_index(&self, port: OutPort) -> usize {
        self.port_offsets[port.block.index()] + port.port
    }

    /// Total number of output ports in the graph.
    pub fn num_out_ports(&self) -> usize {
        *self
            .port_offsets
            .last()
            .expect("offsets always has a total")
    }

    /// The blocks grouped into topological levels (see
    /// [`topo_levels`]): blocks within a level have no scheduling path
    /// between them.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::AlgebraicLoop`] if a delay-free cycle remains.
    pub fn levels(&self) -> Result<Vec<Vec<BlockId>>, ModelError> {
        topo_levels(&self.model)
    }

    /// The blocks grouped into the reverse levels of Algorithm 1's
    /// dependency structure (see [`analysis_levels`]): a block's
    /// calculation range only reads ranges finalized in earlier levels.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::AlgebraicLoop`] if the dependency graph is
    /// cyclic (implies a delay-free model cycle).
    pub fn analysis_levels(&self) -> Result<Vec<Vec<BlockId>>, ModelError> {
        analysis_levels(&self.model)
    }

    /// Number of data-truncation blocks in the graph (diagnostic used by the
    /// evaluation to characterize models).
    pub fn truncation_count(&self) -> usize {
        self.model
            .blocks()
            .iter()
            .filter(|b| b.kind.is_truncation())
            .count()
    }

    /// Whether a block's outputs are consumed by anything.
    pub fn is_dead_end(&self, id: BlockId) -> bool {
        self.children[id.index()].is_empty() && self.model.block(id).kind.num_outputs() > 0
    }

    /// Blocks in the graph, convenience passthrough.
    pub fn ids(&self) -> impl Iterator<Item = BlockId> + '_ {
        self.model.ids()
    }

    /// Whether the given block is stateful (`UnitDelay`).
    pub fn is_stateful(&self, id: BlockId) -> bool {
        matches!(self.model.block(id).kind, BlockKind::UnitDelay { .. })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use frodo_model::{Block, Tensor};
    use frodo_ranges::Shape;

    fn diamond() -> (Model, [BlockId; 5]) {
        // i -> g1 -> add -> o
        //   \-> g2 --^
        let mut m = Model::new("diamond");
        let i = m.add(Block::new(
            "i",
            BlockKind::Inport {
                index: 0,
                shape: Shape::Vector(4),
            },
        ));
        let g1 = m.add(Block::new("g1", BlockKind::Gain { gain: 2.0 }));
        let g2 = m.add(Block::new("g2", BlockKind::Gain { gain: 3.0 }));
        let add = m.add(Block::new("add", BlockKind::Add));
        let o = m.add(Block::new("o", BlockKind::Outport { index: 0 }));
        m.connect(i, 0, g1, 0).unwrap();
        m.connect(i, 0, g2, 0).unwrap();
        m.connect(g1, 0, add, 0).unwrap();
        m.connect(g2, 0, add, 1).unwrap();
        m.connect(add, 0, o, 0).unwrap();
        (m, [i, g1, g2, add, o])
    }

    #[test]
    #[allow(deprecated)]
    fn deprecated_traced_shim_still_works() {
        let (m, _) = diamond();
        let via_shim = Dfg::new_traced(m.clone(), &frodo_obs::Trace::noop()).unwrap();
        let direct = Dfg::new(m, &frodo_obs::Trace::noop()).unwrap();
        assert_eq!(via_shim.model(), direct.model());
    }

    #[test]
    fn adjacency_of_diamond() {
        let (m, [i, g1, g2, add, o]) = diamond();
        let dfg = Dfg::new(m, &frodo_obs::Trace::noop()).unwrap();
        assert_eq!(dfg.children(i), &[g1, g2]);
        assert_eq!(dfg.parents(add), &[g1, g2]);
        assert_eq!(dfg.children(add), &[o]);
        assert_eq!(dfg.roots(), vec![i]);
        assert_eq!(dfg.sinks(), vec![o]);
    }

    #[test]
    fn port_consumers_match_model_scan() {
        let (m, ids) = diamond();
        let dfg = Dfg::new(m, &frodo_obs::Trace::noop()).unwrap();
        for id in ids {
            for o in 0..dfg.model().block(id).kind.num_outputs() {
                let port = OutPort::new(id, o);
                assert_eq!(
                    dfg.consumers_of(port),
                    dfg.model().consumers_of(port).as_slice(),
                    "port {id:?}:{o}"
                );
            }
        }
    }

    #[test]
    fn out_port_indices_are_dense_and_distinct() {
        let (m, ids) = diamond();
        let dfg = Dfg::new(m, &frodo_obs::Trace::noop()).unwrap();
        let mut seen = vec![false; dfg.num_out_ports()];
        for id in ids {
            for o in 0..dfg.model().block(id).kind.num_outputs() {
                let idx = dfg.out_port_index(OutPort::new(id, o));
                assert!(!seen[idx]);
                seen[idx] = true;
            }
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn dfg_levels_partition_the_blocks() {
        let (m, _) = diamond();
        let dfg = Dfg::new(m, &frodo_obs::Trace::noop()).unwrap();
        let n = dfg.model().len();
        assert_eq!(dfg.levels().unwrap().iter().map(Vec::len).sum::<usize>(), n);
        assert_eq!(
            dfg.analysis_levels()
                .unwrap()
                .iter()
                .map(Vec::len)
                .sum::<usize>(),
            n
        );
    }

    #[test]
    fn schedule_respects_dependencies() {
        let (m, ids) = diamond();
        let dfg = Dfg::new(m, &frodo_obs::Trace::noop()).unwrap();
        let order = dfg.schedule().unwrap();
        let pos = |b: BlockId| order.iter().position(|&x| x == b).unwrap();
        assert!(pos(ids[0]) < pos(ids[1]));
        assert!(pos(ids[1]) < pos(ids[3]));
        assert!(pos(ids[2]) < pos(ids[3]));
        assert!(pos(ids[3]) < pos(ids[4]));
    }

    #[test]
    fn fan_out_children_are_deduplicated() {
        // one block feeding two ports of the same consumer
        let mut m = Model::new("dup");
        let c = m.add(Block::new(
            "c",
            BlockKind::Constant {
                value: Tensor::vector(vec![1.0; 3]),
            },
        ));
        let add = m.add(Block::new("add", BlockKind::Add));
        let o = m.add(Block::new("o", BlockKind::Outport { index: 0 }));
        m.connect(c, 0, add, 0).unwrap();
        m.connect(c, 0, add, 1).unwrap();
        m.connect(add, 0, o, 0).unwrap();
        let dfg = Dfg::new(m, &frodo_obs::Trace::noop()).unwrap();
        assert_eq!(dfg.children(c).len(), 1);
        assert_eq!(dfg.parents(add).len(), 1);
    }

    #[test]
    fn truncation_count_spots_selectors() {
        let mut m = Model::new("t");
        let i = m.add(Block::new(
            "i",
            BlockKind::Inport {
                index: 0,
                shape: Shape::Vector(10),
            },
        ));
        let s = m.add(Block::new(
            "s",
            BlockKind::Selector {
                mode: frodo_model::SelectorMode::StartEnd { start: 0, end: 5 },
            },
        ));
        let o = m.add(Block::new("o", BlockKind::Outport { index: 0 }));
        m.connect(i, 0, s, 0).unwrap();
        m.connect(s, 0, o, 0).unwrap();
        let dfg = Dfg::new(m, &frodo_obs::Trace::noop()).unwrap();
        assert_eq!(dfg.truncation_count(), 1);
    }

    #[test]
    fn dfg_flattens_subsystems() {
        let mut inner = Model::new("inner");
        let i = inner.add(Block::new(
            "i",
            BlockKind::Inport {
                index: 0,
                shape: Shape::Scalar,
            },
        ));
        let g = inner.add(Block::new("g", BlockKind::Gain { gain: 2.0 }));
        let o = inner.add(Block::new("o", BlockKind::Outport { index: 0 }));
        inner.connect(i, 0, g, 0).unwrap();
        inner.connect(g, 0, o, 0).unwrap();

        let mut m = Model::new("outer");
        let x = m.add(Block::new(
            "x",
            BlockKind::Inport {
                index: 0,
                shape: Shape::Scalar,
            },
        ));
        let s = m.add(Block::new("s", BlockKind::Subsystem(Box::new(inner))));
        let y = m.add(Block::new("y", BlockKind::Outport { index: 0 }));
        m.connect(x, 0, s, 0).unwrap();
        m.connect(s, 0, y, 0).unwrap();

        let dfg = Dfg::new(m, &frodo_obs::Trace::noop()).unwrap();
        assert!(dfg
            .model()
            .blocks()
            .iter()
            .all(|b| !matches!(b.kind, BlockKind::Subsystem(_))));
        assert_eq!(dfg.model().len(), 3);
    }

    #[test]
    fn sink_and_dead_end_classification() {
        let mut m = Model::new("cls");
        let i = m.add(Block::new(
            "i",
            BlockKind::Inport {
                index: 0,
                shape: Shape::Vector(4),
            },
        ));
        let g = m.add(Block::new("g", BlockKind::Gain { gain: 1.0 }));
        let o = m.add(Block::new("o", BlockKind::Outport { index: 0 }));
        let dangling = m.add(Block::new("dangling", BlockKind::Abs));
        m.connect(i, 0, g, 0).unwrap();
        m.connect(g, 0, o, 0).unwrap();
        m.connect(i, 0, dangling, 0).unwrap();
        let dfg = Dfg::new(m, &frodo_obs::Trace::noop()).unwrap();
        // the outport is a sink but not a dead end (it has no outputs at all)
        assert!(dfg.sinks().contains(&o));
        assert!(!dfg.is_dead_end(o));
        // the dangling Abs has an unconsumed output
        assert!(dfg.is_dead_end(dangling));
        assert!(!dfg.is_dead_end(g));
    }

    #[test]
    fn stateful_classification_after_flattening() {
        let mut m = Model::new("st");
        let i = m.add(Block::new(
            "i",
            BlockKind::Inport {
                index: 0,
                shape: Shape::Scalar,
            },
        ));
        let z = m.add(Block::new(
            "z",
            BlockKind::UnitDelay {
                initial: Tensor::scalar(0.0),
            },
        ));
        let o = m.add(Block::new("o", BlockKind::Outport { index: 0 }));
        m.connect(i, 0, z, 0).unwrap();
        m.connect(z, 0, o, 0).unwrap();
        let dfg = Dfg::new(m, &frodo_obs::Trace::noop()).unwrap();
        assert!(dfg.is_stateful(z));
        assert!(!dfg.is_stateful(i));
    }

    #[test]
    fn invalid_model_is_rejected() {
        let mut m = Model::new("bad");
        m.add(Block::new("g", BlockKind::Gain { gain: 1.0 }));
        assert!(Dfg::new(m, &frodo_obs::Trace::noop()).is_err());
    }
}
