//! Topological scheduling of blocks.

use frodo_model::{BlockId, BlockKind, Model, ModelError};

/// Computes a deterministic topological translation order of the blocks.
///
/// Kahn's algorithm with a twist from dataflow semantics: edges *leaving* a
/// `UnitDelay` block impose no ordering constraint, because a delay's output
/// is the state written on the *previous* step — it is available before any
/// block executes. This makes feedback loops broken by delays schedulable.
/// Ties are broken by ascending block id, so the order is reproducible.
///
/// # Errors
///
/// Returns [`ModelError::AlgebraicLoop`] listing the blocks on a delay-free
/// cycle.
pub fn toposort(model: &Model) -> Result<Vec<BlockId>, ModelError> {
    let n = model.len();
    let mut indegree = vec![0usize; n];
    let mut succs: Vec<Vec<usize>> = vec![Vec::new(); n];
    for c in model.connections() {
        let src = c.from.block.index();
        let dst = c.to.block.index();
        if matches!(model.block(c.from.block).kind, BlockKind::UnitDelay { .. }) {
            continue; // state read: no ordering constraint
        }
        succs[src].push(dst);
        indegree[dst] += 1;
    }

    let mut order = Vec::with_capacity(n);
    let mut placed = vec![false; n];
    loop {
        // deterministic: smallest ready id first
        let next = (0..n).find(|&i| !placed[i] && indegree[i] == 0);
        match next {
            Some(i) => {
                placed[i] = true;
                order.push(BlockId::from_index(i));
                for &d in &succs[i] {
                    indegree[d] -= 1;
                }
            }
            None => break,
        }
    }

    if order.len() != n {
        let cycle: Vec<BlockId> = (0..n)
            .filter(|&i| !placed[i])
            .map(BlockId::from_index)
            .collect();
        return Err(ModelError::AlgebraicLoop { cycle });
    }
    Ok(order)
}

#[cfg(test)]
mod tests {
    use super::*;
    use frodo_model::{Block, Tensor};
    use frodo_ranges::Shape;

    #[test]
    fn chain_orders_linearly() {
        let mut m = Model::new("chain");
        let a = m.add(Block::new(
            "a",
            BlockKind::Inport {
                index: 0,
                shape: Shape::Scalar,
            },
        ));
        let b = m.add(Block::new("b", BlockKind::Abs));
        let c = m.add(Block::new("c", BlockKind::Outport { index: 0 }));
        m.connect(a, 0, b, 0).unwrap();
        m.connect(b, 0, c, 0).unwrap();
        assert_eq!(toposort(&m).unwrap(), vec![a, b, c]);
    }

    #[test]
    fn ties_broken_by_id() {
        let mut m = Model::new("par");
        let a = m.add(Block::new(
            "a",
            BlockKind::Inport {
                index: 0,
                shape: Shape::Scalar,
            },
        ));
        let b = m.add(Block::new(
            "b",
            BlockKind::Inport {
                index: 1,
                shape: Shape::Scalar,
            },
        ));
        // both roots; a (lower id) must come first
        let order = toposort(&m).unwrap();
        assert_eq!(order, vec![a, b]);
    }

    #[test]
    fn delay_breaks_cycles() {
        // add -> delay -> add (feedback accumulator)
        let mut m = Model::new("acc");
        let i = m.add(Block::new(
            "i",
            BlockKind::Inport {
                index: 0,
                shape: Shape::Scalar,
            },
        ));
        let add = m.add(Block::new("add", BlockKind::Add));
        let z = m.add(Block::new(
            "z",
            BlockKind::UnitDelay {
                initial: Tensor::scalar(0.0),
            },
        ));
        let o = m.add(Block::new("o", BlockKind::Outport { index: 0 }));
        m.connect(i, 0, add, 0).unwrap();
        m.connect(z, 0, add, 1).unwrap();
        m.connect(add, 0, z, 0).unwrap();
        m.connect(add, 0, o, 0).unwrap();
        let order = toposort(&m).unwrap();
        let pos = |b: BlockId| order.iter().position(|&x| x == b).unwrap();
        // the delay's *input* (add) must be scheduled before the delay's
        // state update, but the delay imposes nothing on its consumers
        assert!(pos(add) < pos(z));
    }

    #[test]
    fn delay_free_cycle_is_reported() {
        let mut m = Model::new("loop");
        let a = m.add(Block::new("a", BlockKind::Abs));
        let b = m.add(Block::new("b", BlockKind::Negate));
        m.connect(a, 0, b, 0).unwrap();
        m.connect(b, 0, a, 0).unwrap();
        match toposort(&m).unwrap_err() {
            ModelError::AlgebraicLoop { cycle } => {
                assert_eq!(cycle.len(), 2);
            }
            e => panic!("unexpected {e}"),
        }
    }

    #[test]
    fn empty_model_is_trivially_sorted() {
        let m = Model::new("empty");
        assert!(toposort(&m).unwrap().is_empty());
    }
}
