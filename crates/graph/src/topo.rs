//! Topological scheduling of blocks.

use frodo_model::{BlockId, BlockKind, Model, ModelError};

/// Computes a deterministic topological translation order of the blocks.
///
/// Kahn's algorithm with a twist from dataflow semantics: edges *leaving* a
/// `UnitDelay` block impose no ordering constraint, because a delay's output
/// is the state written on the *previous* step — it is available before any
/// block executes. This makes feedback loops broken by delays schedulable.
/// Ties are broken by ascending block id, so the order is reproducible.
///
/// # Errors
///
/// Returns [`ModelError::AlgebraicLoop`] listing the blocks on a delay-free
/// cycle.
pub fn toposort(model: &Model) -> Result<Vec<BlockId>, ModelError> {
    let n = model.len();
    let mut indegree = vec![0usize; n];
    let mut succs: Vec<Vec<usize>> = vec![Vec::new(); n];
    for c in model.connections() {
        let src = c.from.block.index();
        let dst = c.to.block.index();
        if matches!(model.block(c.from.block).kind, BlockKind::UnitDelay { .. }) {
            continue; // state read: no ordering constraint
        }
        succs[src].push(dst);
        indegree[dst] += 1;
    }

    let mut order = Vec::with_capacity(n);
    let mut placed = vec![false; n];
    loop {
        // deterministic: smallest ready id first
        let next = (0..n).find(|&i| !placed[i] && indegree[i] == 0);
        match next {
            Some(i) => {
                placed[i] = true;
                order.push(BlockId::from_index(i));
                for &d in &succs[i] {
                    indegree[d] -= 1;
                }
            }
            None => break,
        }
    }

    if order.len() != n {
        let cycle: Vec<BlockId> = (0..n)
            .filter(|&i| !placed[i])
            .map(BlockId::from_index)
            .collect();
        return Err(ModelError::AlgebraicLoop { cycle });
    }
    Ok(order)
}

/// Groups the blocks of a valid model into *topological levels*: level 0
/// holds the blocks with no scheduling predecessors, and every block sits
/// one past its deepest predecessor. Blocks within a level are mutually
/// data-independent (no scheduling path connects them), so they may be
/// translated — or analyzed — concurrently. Edges leaving a `UnitDelay`
/// are ignored exactly as in [`toposort`]; levels are sorted by block id.
///
/// # Errors
///
/// Returns [`ModelError::AlgebraicLoop`] if a delay-free cycle remains.
pub fn topo_levels(model: &Model) -> Result<Vec<Vec<BlockId>>, ModelError> {
    let order = toposort(model)?;
    let n = model.len();
    let mut succs: Vec<Vec<usize>> = vec![Vec::new(); n];
    for c in model.connections() {
        if matches!(model.block(c.from.block).kind, BlockKind::UnitDelay { .. }) {
            continue; // state read: no ordering constraint
        }
        succs[c.from.block.index()].push(c.to.block.index());
    }
    let mut level = vec![0usize; n];
    for &id in &order {
        let i = id.index();
        for &d in &succs[i] {
            level[d] = level[d].max(level[i] + 1);
        }
    }
    Ok(group_by_level(&level, n))
}

/// Groups the blocks into the *reverse* levels of Algorithm 1's dependency
/// structure: a block's calculation range reads the ranges of its consumer
/// blocks, **except** consumers whose input requirement is constant — model
/// sinks (`Outport`, `Terminator`) and stateful blocks, whose needs do not
/// depend on their own ranges (that independence is also what breaks
/// delay feedback cycles).
///
/// Level 0 therefore holds the blocks whose ranges depend on nothing;
/// every later level only reads ranges finalized in earlier levels, so the
/// blocks of one level can be range-analyzed concurrently. Levels are
/// sorted by block id.
///
/// # Errors
///
/// Returns [`ModelError::AlgebraicLoop`] listing the blocks on a cycle of
/// the dependency graph (possible only if the model also fails
/// [`toposort`], since any connection cycle must pass through a delay and
/// delays are independent consumers).
pub fn analysis_levels(model: &Model) -> Result<Vec<Vec<BlockId>>, ModelError> {
    let n = model.len();
    // deps: b -> consumers whose ranges b's range computation reads
    let mut indeg = vec![0usize; n];
    let mut rdeps: Vec<Vec<usize>> = vec![Vec::new(); n];
    for c in model.connections() {
        let consumer = c.to.block;
        let kind = &model.block(consumer).kind;
        let independent =
            matches!(kind, BlockKind::Outport { .. } | BlockKind::Terminator) || kind.is_stateful();
        if independent {
            continue;
        }
        indeg[c.from.block.index()] += 1;
        rdeps[consumer.index()].push(c.from.block.index());
    }

    let mut level = vec![0usize; n];
    let mut placed = vec![false; n];
    let mut queue: Vec<usize> = (0..n).filter(|&i| indeg[i] == 0).collect();
    let mut done = 0;
    while let Some(i) = queue.pop() {
        placed[i] = true;
        done += 1;
        for &b in &rdeps[i] {
            level[b] = level[b].max(level[i] + 1);
            indeg[b] -= 1;
            if indeg[b] == 0 {
                queue.push(b);
            }
        }
    }
    if done != n {
        let cycle: Vec<BlockId> = (0..n)
            .filter(|&i| !placed[i])
            .map(BlockId::from_index)
            .collect();
        return Err(ModelError::AlgebraicLoop { cycle });
    }
    Ok(group_by_level(&level, n))
}

/// Buckets block indices by their level, each bucket sorted ascending.
fn group_by_level(level: &[usize], n: usize) -> Vec<Vec<BlockId>> {
    let depth = level.iter().max().map_or(0, |&d| d + 1);
    let mut out: Vec<Vec<BlockId>> = vec![Vec::new(); if n == 0 { 0 } else { depth }];
    for i in 0..n {
        out[level[i]].push(BlockId::from_index(i));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use frodo_model::{Block, Tensor};
    use frodo_ranges::Shape;

    #[test]
    fn chain_orders_linearly() {
        let mut m = Model::new("chain");
        let a = m.add(Block::new(
            "a",
            BlockKind::Inport {
                index: 0,
                shape: Shape::Scalar,
            },
        ));
        let b = m.add(Block::new("b", BlockKind::Abs));
        let c = m.add(Block::new("c", BlockKind::Outport { index: 0 }));
        m.connect(a, 0, b, 0).unwrap();
        m.connect(b, 0, c, 0).unwrap();
        assert_eq!(toposort(&m).unwrap(), vec![a, b, c]);
    }

    #[test]
    fn ties_broken_by_id() {
        let mut m = Model::new("par");
        let a = m.add(Block::new(
            "a",
            BlockKind::Inport {
                index: 0,
                shape: Shape::Scalar,
            },
        ));
        let b = m.add(Block::new(
            "b",
            BlockKind::Inport {
                index: 1,
                shape: Shape::Scalar,
            },
        ));
        // both roots; a (lower id) must come first
        let order = toposort(&m).unwrap();
        assert_eq!(order, vec![a, b]);
    }

    #[test]
    fn delay_breaks_cycles() {
        // add -> delay -> add (feedback accumulator)
        let mut m = Model::new("acc");
        let i = m.add(Block::new(
            "i",
            BlockKind::Inport {
                index: 0,
                shape: Shape::Scalar,
            },
        ));
        let add = m.add(Block::new("add", BlockKind::Add));
        let z = m.add(Block::new(
            "z",
            BlockKind::UnitDelay {
                initial: Tensor::scalar(0.0),
            },
        ));
        let o = m.add(Block::new("o", BlockKind::Outport { index: 0 }));
        m.connect(i, 0, add, 0).unwrap();
        m.connect(z, 0, add, 1).unwrap();
        m.connect(add, 0, z, 0).unwrap();
        m.connect(add, 0, o, 0).unwrap();
        let order = toposort(&m).unwrap();
        let pos = |b: BlockId| order.iter().position(|&x| x == b).unwrap();
        // the delay's *input* (add) must be scheduled before the delay's
        // state update, but the delay imposes nothing on its consumers
        assert!(pos(add) < pos(z));
    }

    #[test]
    fn delay_free_cycle_is_reported() {
        let mut m = Model::new("loop");
        let a = m.add(Block::new("a", BlockKind::Abs));
        let b = m.add(Block::new("b", BlockKind::Negate));
        m.connect(a, 0, b, 0).unwrap();
        m.connect(b, 0, a, 0).unwrap();
        match toposort(&m).unwrap_err() {
            ModelError::AlgebraicLoop { cycle } => {
                assert_eq!(cycle.len(), 2);
            }
            e => panic!("unexpected {e}"),
        }
    }

    #[test]
    fn empty_model_is_trivially_sorted() {
        let m = Model::new("empty");
        assert!(toposort(&m).unwrap().is_empty());
        assert!(topo_levels(&m).unwrap().is_empty());
        assert!(analysis_levels(&m).unwrap().is_empty());
    }

    /// i -> g1 -> add -> o, i -> g2 -> add: the two gains share a level.
    fn diamond() -> (Model, [BlockId; 5]) {
        let mut m = Model::new("diamond");
        let i = m.add(Block::new(
            "i",
            BlockKind::Inport {
                index: 0,
                shape: Shape::Vector(4),
            },
        ));
        let g1 = m.add(Block::new("g1", BlockKind::Gain { gain: 2.0 }));
        let g2 = m.add(Block::new("g2", BlockKind::Gain { gain: 3.0 }));
        let add = m.add(Block::new("add", BlockKind::Add));
        let o = m.add(Block::new("o", BlockKind::Outport { index: 0 }));
        m.connect(i, 0, g1, 0).unwrap();
        m.connect(i, 0, g2, 0).unwrap();
        m.connect(g1, 0, add, 0).unwrap();
        m.connect(g2, 0, add, 1).unwrap();
        m.connect(add, 0, o, 0).unwrap();
        (m, [i, g1, g2, add, o])
    }

    #[test]
    fn topo_levels_group_independent_blocks() {
        let (m, [i, g1, g2, add, o]) = diamond();
        let levels = topo_levels(&m).unwrap();
        assert_eq!(levels, vec![vec![i], vec![g1, g2], vec![add], vec![o]],);
        // levels partition the model and refine the topological order
        assert_eq!(levels.iter().map(Vec::len).sum::<usize>(), m.len());
    }

    #[test]
    fn analysis_levels_run_from_the_sinks() {
        // range dependencies point downstream: add (whose only consumer is
        // the independent outport) resolves first, the gains next, the
        // sources last
        let (m, [i, g1, g2, add, o]) = diamond();
        let levels = analysis_levels(&m).unwrap();
        let depth_of = |b: BlockId| levels.iter().position(|l| l.contains(&b)).unwrap();
        assert_eq!(depth_of(o), 0); // no dependencies at all
        assert_eq!(depth_of(add), 0);
        assert_eq!(depth_of(g1), 1);
        assert_eq!(depth_of(g2), 1);
        assert_eq!(depth_of(i), 2);
        assert_eq!(levels.iter().map(Vec::len).sum::<usize>(), m.len());
    }

    #[test]
    fn analysis_levels_break_delay_feedback() {
        // accumulator: add -> delay -> add; the delay is an independent
        // consumer, so the dependency graph stays acyclic
        let mut m = Model::new("acc");
        let i = m.add(Block::new(
            "i",
            BlockKind::Inport {
                index: 0,
                shape: Shape::Scalar,
            },
        ));
        let add = m.add(Block::new("add", BlockKind::Add));
        let z = m.add(Block::new(
            "z",
            BlockKind::UnitDelay {
                initial: Tensor::scalar(0.0),
            },
        ));
        let o = m.add(Block::new("o", BlockKind::Outport { index: 0 }));
        m.connect(i, 0, add, 0).unwrap();
        m.connect(z, 0, add, 1).unwrap();
        m.connect(add, 0, z, 0).unwrap();
        m.connect(add, 0, o, 0).unwrap();
        let levels = analysis_levels(&m).unwrap();
        let depth_of = |b: BlockId| levels.iter().position(|l| l.contains(&b)).unwrap();
        // add depends on nothing (its consumers z and o are independent);
        // the delay's range reads add's, and the source reads add's too
        assert_eq!(depth_of(add), 0);
        assert!(depth_of(z) > depth_of(add));
        assert!(depth_of(i) > depth_of(add));
    }

    #[test]
    fn analysis_levels_report_delay_free_cycles() {
        let mut m = Model::new("loop");
        let a = m.add(Block::new("a", BlockKind::Abs));
        let b = m.add(Block::new("b", BlockKind::Negate));
        m.connect(a, 0, b, 0).unwrap();
        m.connect(b, 0, a, 0).unwrap();
        assert!(matches!(
            analysis_levels(&m),
            Err(ModelError::AlgebraicLoop { .. })
        ));
        assert!(matches!(
            topo_levels(&m),
            Err(ModelError::AlgebraicLoop { .. })
        ));
    }
}
