//! Region partitioning for incremental recompilation.
//!
//! A **region** is a dependency-closed chunk of the range-dependency DAG:
//! the connected components of the undirected graph whose edges are the
//! producer→consumer connections that Algorithm 1 actually follows (a
//! consumer participates unless it is *independent* — an `Outport`, a
//! `Terminator`, or a stateful block, whose input requirement never reads
//! its own ranges), split into chunks of at most `max_blocks` blocks along
//! the analysis-level order.
//!
//! The partition is what makes per-region caching sound: a region's
//! calculation ranges are a pure function of its own content plus the
//! demand arriving at its boundary, and the emission order below
//! guarantees that demand is final before the region is processed.
//!
//! Two ordering invariants, relied on by `frodo-core`'s incremental
//! analysis:
//!
//! 1. **Cross-region**: if block `C` is a non-independent consumer of a
//!    port of block `B`, then `C`'s region appears at the same or an
//!    earlier position than `B`'s region in [`RegionPartition::regions`]
//!    (both blocks share a component by construction, and `C`'s analysis
//!    level is strictly lower, so `C` lands in an earlier-or-equal chunk).
//! 2. **Intra-region**: within one region the blocks are sorted by
//!    `(analysis_level, id)`, so walking a region front to back always
//!    finalizes consumer ranges before their producers read them.

use crate::Dfg;
use frodo_model::{BlockId, BlockKind, ModelError};

/// A partition of a [`Dfg`]'s blocks into dependency-ordered regions.
/// Produced by [`partition_regions`]; every block belongs to exactly one
/// region.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RegionPartition {
    regions: Vec<Vec<BlockId>>,
    region_of: Vec<usize>,
}

impl RegionPartition {
    /// The regions in dependency-safe processing order (see the module
    /// docs for the two ordering invariants).
    pub fn regions(&self) -> &[Vec<BlockId>] {
        &self.regions
    }

    /// The index (into [`RegionPartition::regions`]) of the region a block
    /// belongs to.
    pub fn region_of(&self, id: BlockId) -> usize {
        self.region_of[id.index()]
    }

    /// Number of regions.
    pub fn len(&self) -> usize {
        self.regions.len()
    }

    /// Whether the partition has no regions (empty model).
    pub fn is_empty(&self) -> bool {
        self.regions.is_empty()
    }
}

/// Whether a consumer's input requirement ignores its own calculation
/// ranges — the blocks Algorithm 1 treats as recursion anchors.
fn independent(kind: &BlockKind) -> bool {
    matches!(kind, BlockKind::Outport { .. } | BlockKind::Terminator) || kind.is_stateful()
}

struct UnionFind {
    parent: Vec<usize>,
}

impl UnionFind {
    fn new(n: usize) -> Self {
        UnionFind {
            parent: (0..n).collect(),
        }
    }

    fn find(&mut self, mut x: usize) -> usize {
        while self.parent[x] != x {
            self.parent[x] = self.parent[self.parent[x]];
            x = self.parent[x];
        }
        x
    }

    fn union(&mut self, a: usize, b: usize) {
        let (ra, rb) = (self.find(a), self.find(b));
        if ra != rb {
            // union by smaller root keeps roots deterministic
            let (lo, hi) = if ra < rb { (ra, rb) } else { (rb, ra) };
            self.parent[hi] = lo;
        }
    }
}

/// Partitions a graph's blocks into regions of at most `max_blocks` blocks
/// (`0` means unbounded — one region per connected component).
///
/// Deterministic: the same graph and `max_blocks` always produce the same
/// partition. Components are emitted in order of their smallest block id;
/// each component's blocks are sorted by `(analysis_level, id)` and cut
/// into consecutive chunks.
///
/// # Errors
///
/// Returns [`ModelError::AlgebraicLoop`] if the range-dependency graph is
/// cyclic (implies a delay-free model cycle).
pub fn partition_regions(dfg: &Dfg, max_blocks: usize) -> Result<RegionPartition, ModelError> {
    let model = dfg.model();
    let n = model.len();
    let levels = dfg.analysis_levels()?;
    let mut level_of = vec![0usize; n];
    for (lvl, blocks) in levels.iter().enumerate() {
        for &b in blocks {
            level_of[b.index()] = lvl;
        }
    }

    let mut uf = UnionFind::new(n);
    for c in model.connections() {
        if !independent(&model.block(c.to.block).kind) {
            uf.union(c.from.block.index(), c.to.block.index());
        }
    }

    // components keyed by root, in order of first (smallest-id) member
    let mut component_of_root: Vec<Option<usize>> = vec![None; n];
    let mut components: Vec<Vec<BlockId>> = Vec::new();
    for id in model.ids() {
        let root = uf.find(id.index());
        let slot = match component_of_root[root] {
            Some(slot) => slot,
            None => {
                component_of_root[root] = Some(components.len());
                components.push(Vec::new());
                components.len() - 1
            }
        };
        components[slot].push(id);
    }

    let mut regions: Vec<Vec<BlockId>> = Vec::new();
    let mut region_of = vec![0usize; n];
    for mut component in components {
        component.sort_by_key(|&b| (level_of[b.index()], b));
        let chunk = if max_blocks == 0 {
            component.len().max(1)
        } else {
            max_blocks
        };
        for piece in component.chunks(chunk) {
            for &b in piece {
                region_of[b.index()] = regions.len();
            }
            regions.push(piece.to_vec());
        }
    }

    Ok(RegionPartition { regions, region_of })
}

#[cfg(test)]
mod tests {
    use super::*;
    use frodo_model::{Block, Model};
    use frodo_ranges::Shape;

    fn chain(len: usize) -> Model {
        let mut m = Model::new("chain");
        let mut prev = m.add(Block::new(
            "in",
            BlockKind::Inport {
                index: 0,
                shape: Shape::Vector(8),
            },
        ));
        for k in 0..len {
            let g = m.add(Block::new(format!("g{k}"), BlockKind::Gain { gain: 2.0 }));
            m.connect(prev, 0, g, 0).unwrap();
            prev = g;
        }
        let o = m.add(Block::new("out", BlockKind::Outport { index: 0 }));
        m.connect(prev, 0, o, 0).unwrap();
        m
    }

    #[test]
    fn partition_covers_every_block_exactly_once() {
        let dfg = Dfg::new(chain(10), &frodo_obs::Trace::noop()).unwrap();
        let p = partition_regions(&dfg, 4).unwrap();
        let mut seen = vec![false; dfg.model().len()];
        for (r, region) in p.regions().iter().enumerate() {
            for &b in region {
                assert!(!seen[b.index()], "block {b:?} in two regions");
                seen[b.index()] = true;
                assert_eq!(p.region_of(b), r);
            }
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn max_blocks_bounds_every_region() {
        let dfg = Dfg::new(chain(23), &frodo_obs::Trace::noop()).unwrap();
        for max in [1, 3, 8] {
            let p = partition_regions(&dfg, max).unwrap();
            assert!(p.regions().iter().all(|r| r.len() <= max), "max={max}");
        }
        // unbounded: the chain plus its outport = two components
        let p = partition_regions(&dfg, 0).unwrap();
        assert_eq!(p.len(), 2);
    }

    #[test]
    fn consumers_never_land_after_their_producers() {
        let dfg = Dfg::new(chain(17), &frodo_obs::Trace::noop()).unwrap();
        let p = partition_regions(&dfg, 5).unwrap();
        let position = |id: BlockId| {
            let r = p.region_of(id);
            let within = p.regions()[r].iter().position(|&b| b == id).unwrap();
            (r, within)
        };
        for c in dfg.model().connections() {
            if independent(&dfg.model().block(c.to.block).kind) {
                continue;
            }
            assert!(
                position(c.to.block) < position(c.from.block),
                "consumer {:?} must precede producer {:?}",
                c.to.block,
                c.from.block
            );
        }
    }

    #[test]
    fn partition_is_deterministic() {
        let a =
            partition_regions(&Dfg::new(chain(12), &frodo_obs::Trace::noop()).unwrap(), 4).unwrap();
        let b =
            partition_regions(&Dfg::new(chain(12), &frodo_obs::Trace::noop()).unwrap(), 4).unwrap();
        assert_eq!(a, b);
    }
}
