//! Raw DEFLATE (RFC 1951): a from-scratch decompressor plus a simple
//! fixed-Huffman compressor.
//!
//! The decompressor supports all three block types — stored, fixed-Huffman,
//! and dynamic-Huffman — which covers every `.slx` ZIP entry a real tool
//! produces. The compressor emits literal-only fixed-Huffman blocks: always
//! valid DEFLATE, adequate for writing test archives, and an independent
//! roundtrip oracle for the decompressor.

use crate::FormatError;

// ---------------------------------------------------------------------------
// bit I/O
// ---------------------------------------------------------------------------

struct BitReader<'a> {
    data: &'a [u8],
    pos: usize,
    bit: u32,
}

impl<'a> BitReader<'a> {
    fn new(data: &'a [u8]) -> Self {
        BitReader {
            data,
            pos: 0,
            bit: 0,
        }
    }

    fn read_bit(&mut self) -> Result<u32, FormatError> {
        let byte = *self
            .data
            .get(self.pos)
            .ok_or_else(|| FormatError::Deflate("unexpected end of stream".into()))?;
        let v = (byte >> self.bit) & 1;
        self.bit += 1;
        if self.bit == 8 {
            self.bit = 0;
            self.pos += 1;
        }
        Ok(v as u32)
    }

    /// Reads `n` bits LSB-first (header fields, extra bits).
    fn read_bits(&mut self, n: u32) -> Result<u32, FormatError> {
        let mut v = 0;
        for i in 0..n {
            v |= self.read_bit()? << i;
        }
        Ok(v)
    }

    fn align_byte(&mut self) {
        if self.bit != 0 {
            self.bit = 0;
            self.pos += 1;
        }
    }

    fn read_u16(&mut self) -> Result<u16, FormatError> {
        self.align_byte();
        if self.pos + 2 > self.data.len() {
            return Err(FormatError::Deflate("truncated stored header".into()));
        }
        let v = u16::from_le_bytes([self.data[self.pos], self.data[self.pos + 1]]);
        self.pos += 2;
        Ok(v)
    }
}

struct BitWriter {
    out: Vec<u8>,
    cur: u8,
    bit: u32,
}

impl BitWriter {
    fn new() -> Self {
        BitWriter {
            out: Vec::new(),
            cur: 0,
            bit: 0,
        }
    }

    fn write_bit(&mut self, v: u32) {
        if v != 0 {
            self.cur |= 1 << self.bit;
        }
        self.bit += 1;
        if self.bit == 8 {
            self.out.push(self.cur);
            self.cur = 0;
            self.bit = 0;
        }
    }

    /// Writes `n` bits LSB-first.
    fn write_bits(&mut self, v: u32, n: u32) {
        for i in 0..n {
            self.write_bit((v >> i) & 1);
        }
    }

    /// Writes a Huffman code (MSB of the code emitted first).
    fn write_code(&mut self, code: u32, len: u32) {
        for i in (0..len).rev() {
            self.write_bit((code >> i) & 1);
        }
    }

    fn finish(mut self) -> Vec<u8> {
        if self.bit > 0 {
            self.out.push(self.cur);
        }
        self.out
    }
}

// ---------------------------------------------------------------------------
// Huffman tables
// ---------------------------------------------------------------------------

/// Canonical Huffman decoder built from code lengths (RFC 1951 §3.2.2).
struct Huffman {
    /// `counts[len]` = number of codes of that length.
    counts: [u16; 16],
    /// Symbols sorted by (length, symbol order).
    symbols: Vec<u16>,
}

impl Huffman {
    fn from_lengths(lengths: &[u8]) -> Result<Self, FormatError> {
        let mut counts = [0u16; 16];
        for &l in lengths {
            if l > 15 {
                return Err(FormatError::Deflate("code length > 15".into()));
            }
            counts[l as usize] += 1;
        }
        counts[0] = 0;
        // over-subscription check
        let mut left = 1i32;
        for &count in counts.iter().skip(1) {
            left <<= 1;
            left -= count as i32;
            if left < 0 {
                return Err(FormatError::Deflate("over-subscribed huffman code".into()));
            }
        }
        let mut offsets = [0u16; 16];
        for len in 1..15 {
            offsets[len + 1] = offsets[len] + counts[len];
        }
        let mut symbols = vec![0u16; lengths.iter().filter(|&&l| l > 0).count()];
        for (sym, &l) in lengths.iter().enumerate() {
            if l > 0 {
                symbols[offsets[l as usize] as usize] = sym as u16;
                offsets[l as usize] += 1;
            }
        }
        Ok(Huffman { counts, symbols })
    }

    fn decode(&self, r: &mut BitReader<'_>) -> Result<u16, FormatError> {
        let mut code = 0i32;
        let mut first = 0i32;
        let mut index = 0i32;
        for len in 1..16 {
            code |= r.read_bit()? as i32;
            let count = self.counts[len] as i32;
            if code - first < count {
                return Ok(self.symbols[(index + (code - first)) as usize]);
            }
            index += count;
            first = (first + count) << 1;
            code <<= 1;
        }
        Err(FormatError::Deflate("invalid huffman code".into()))
    }
}

const LENGTH_BASE: [u16; 29] = [
    3, 4, 5, 6, 7, 8, 9, 10, 11, 13, 15, 17, 19, 23, 27, 31, 35, 43, 51, 59, 67, 83, 99, 115, 131,
    163, 195, 227, 258,
];
const LENGTH_EXTRA: [u8; 29] = [
    0, 0, 0, 0, 0, 0, 0, 0, 1, 1, 1, 1, 2, 2, 2, 2, 3, 3, 3, 3, 4, 4, 4, 4, 5, 5, 5, 5, 0,
];
const DIST_BASE: [u16; 30] = [
    1, 2, 3, 4, 5, 7, 9, 13, 17, 25, 33, 49, 65, 97, 129, 193, 257, 385, 513, 769, 1025, 1537,
    2049, 3073, 4097, 6145, 8193, 12289, 16385, 24577,
];
const DIST_EXTRA: [u8; 30] = [
    0, 0, 0, 0, 1, 1, 2, 2, 3, 3, 4, 4, 5, 5, 6, 6, 7, 7, 8, 8, 9, 9, 10, 10, 11, 11, 12, 12, 13,
    13,
];

fn fixed_literal_lengths() -> Vec<u8> {
    let mut l = vec![8u8; 288];
    for x in l.iter_mut().take(256).skip(144) {
        *x = 9;
    }
    for x in l.iter_mut().take(280).skip(256) {
        *x = 7;
    }
    l
}

// ---------------------------------------------------------------------------
// inflate
// ---------------------------------------------------------------------------

/// Decompresses a raw DEFLATE stream.
///
/// # Errors
///
/// Returns [`FormatError::Deflate`] on any malformed input (truncation,
/// invalid codes, out-of-window distances).
pub fn inflate(data: &[u8]) -> Result<Vec<u8>, FormatError> {
    let mut r = BitReader::new(data);
    let mut out = Vec::new();
    loop {
        let bfinal = r.read_bits(1)?;
        let btype = r.read_bits(2)?;
        match btype {
            0 => {
                let len = r.read_u16()? as usize;
                let nlen = r.read_u16()? as usize;
                if len != (!nlen & 0xFFFF) {
                    return Err(FormatError::Deflate("stored LEN/NLEN mismatch".into()));
                }
                if r.pos + len > r.data.len() {
                    return Err(FormatError::Deflate("truncated stored block".into()));
                }
                out.extend_from_slice(&r.data[r.pos..r.pos + len]);
                r.pos += len;
            }
            1 => {
                let lit = Huffman::from_lengths(&fixed_literal_lengths())?;
                let dist = Huffman::from_lengths(&[5u8; 30])?;
                inflate_block(&mut r, &lit, &dist, &mut out)?;
            }
            2 => {
                let (lit, dist) = read_dynamic_tables(&mut r)?;
                inflate_block(&mut r, &lit, &dist, &mut out)?;
            }
            _ => return Err(FormatError::Deflate("reserved block type".into())),
        }
        if bfinal == 1 {
            return Ok(out);
        }
    }
}

fn read_dynamic_tables(r: &mut BitReader<'_>) -> Result<(Huffman, Huffman), FormatError> {
    const ORDER: [usize; 19] = [
        16, 17, 18, 0, 8, 7, 9, 6, 10, 5, 11, 4, 12, 3, 13, 2, 14, 1, 15,
    ];
    let hlit = r.read_bits(5)? as usize + 257;
    let hdist = r.read_bits(5)? as usize + 1;
    let hclen = r.read_bits(4)? as usize + 4;
    let mut cl_lengths = [0u8; 19];
    for &idx in ORDER.iter().take(hclen) {
        cl_lengths[idx] = r.read_bits(3)? as u8;
    }
    let cl = Huffman::from_lengths(&cl_lengths)?;
    let mut lengths = Vec::with_capacity(hlit + hdist);
    while lengths.len() < hlit + hdist {
        let sym = cl.decode(r)?;
        match sym {
            0..=15 => lengths.push(sym as u8),
            16 => {
                let prev = *lengths
                    .last()
                    .ok_or_else(|| FormatError::Deflate("repeat with no previous length".into()))?;
                let n = r.read_bits(2)? + 3;
                lengths.extend(std::iter::repeat_n(prev, n as usize));
            }
            17 => {
                let n = r.read_bits(3)? + 3;
                lengths.extend(std::iter::repeat_n(0, n as usize));
            }
            18 => {
                let n = r.read_bits(7)? + 11;
                lengths.extend(std::iter::repeat_n(0, n as usize));
            }
            _ => return Err(FormatError::Deflate("invalid code-length symbol".into())),
        }
    }
    if lengths.len() != hlit + hdist {
        return Err(FormatError::Deflate("code lengths overflow".into()));
    }
    let lit = Huffman::from_lengths(&lengths[..hlit])?;
    let dist = Huffman::from_lengths(&lengths[hlit..])?;
    Ok((lit, dist))
}

fn inflate_block(
    r: &mut BitReader<'_>,
    lit: &Huffman,
    dist: &Huffman,
    out: &mut Vec<u8>,
) -> Result<(), FormatError> {
    loop {
        let sym = lit.decode(r)?;
        match sym {
            0..=255 => out.push(sym as u8),
            256 => return Ok(()),
            257..=285 => {
                let li = (sym - 257) as usize;
                let len = LENGTH_BASE[li] as usize + r.read_bits(LENGTH_EXTRA[li] as u32)? as usize;
                let dsym = dist.decode(r)? as usize;
                if dsym >= 30 {
                    return Err(FormatError::Deflate("invalid distance symbol".into()));
                }
                let d = DIST_BASE[dsym] as usize + r.read_bits(DIST_EXTRA[dsym] as u32)? as usize;
                if d > out.len() {
                    return Err(FormatError::Deflate("distance beyond window".into()));
                }
                let start = out.len() - d;
                for i in 0..len {
                    let b = out[start + i];
                    out.push(b);
                }
            }
            _ => return Err(FormatError::Deflate("invalid literal/length symbol".into())),
        }
    }
}

// ---------------------------------------------------------------------------
// fixed-Huffman compressor (literal-only)
// ---------------------------------------------------------------------------

/// Compresses bytes as one fixed-Huffman DEFLATE block with literals only.
///
/// Never smaller than ~`8/8` of the input for random data (no LZ matching),
/// but always a valid stream; used by the ZIP writer and as the roundtrip
/// oracle for [`inflate`].
pub fn deflate_fixed(data: &[u8]) -> Vec<u8> {
    let mut w = BitWriter::new();
    w.write_bits(1, 1); // BFINAL
    w.write_bits(1, 2); // fixed Huffman
    for &b in data {
        let (code, len) = fixed_literal_code(b as u16);
        w.write_code(code, len);
    }
    let (code, len) = fixed_literal_code(256);
    w.write_code(code, len);
    w.finish()
}

fn fixed_literal_code(sym: u16) -> (u32, u32) {
    match sym {
        0..=143 => (0x30 + sym as u32, 8),
        144..=255 => (0x190 + (sym as u32 - 144), 9),
        256..=279 => (sym as u32 - 256, 7),
        _ => (0xC0 + (sym as u32 - 280), 8),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stored_block_roundtrip() {
        // hand-built stored block: BFINAL=1, BTYPE=00
        let payload = b"hello stored";
        let mut raw = vec![0x01]; // bfinal=1, btype=00, then align
        raw.extend_from_slice(&(payload.len() as u16).to_le_bytes());
        raw.extend_from_slice(&(!(payload.len() as u16)).to_le_bytes());
        raw.extend_from_slice(payload);
        assert_eq!(inflate(&raw).unwrap(), payload);
    }

    #[test]
    fn fixed_huffman_roundtrip() {
        let data = b"the paper proposes FRODO, an efficient code generator";
        let compressed = deflate_fixed(data);
        assert_eq!(inflate(&compressed).unwrap(), data);
    }

    #[test]
    fn fixed_huffman_all_byte_values() {
        let data: Vec<u8> = (0..=255u8).collect();
        assert_eq!(inflate(&deflate_fixed(&data)).unwrap(), data);
    }

    #[test]
    fn empty_input_roundtrip() {
        assert_eq!(inflate(&deflate_fixed(b"")).unwrap(), b"");
    }

    #[test]
    fn back_reference_copies_window() {
        // hand-assemble: fixed block with "ab" then a length-3 distance-2
        // match → "ababa"
        let mut w = BitWriter::new();
        w.write_bits(1, 1);
        w.write_bits(1, 2);
        for &b in b"ab" {
            let (c, l) = fixed_literal_code(b as u16);
            w.write_code(c, l);
        }
        // length 3 = symbol 257, no extra; distance 2 = code 1, no extra
        let (c, l) = fixed_literal_code(257);
        w.write_code(c, l);
        w.write_code(1, 5);
        let (c, l) = fixed_literal_code(256);
        w.write_code(c, l);
        assert_eq!(inflate(&w.finish()).unwrap(), b"ababa");
    }

    #[test]
    fn overlapping_back_reference() {
        // "a" then length-4 distance-1 → "aaaaa"
        let mut w = BitWriter::new();
        w.write_bits(1, 1);
        w.write_bits(1, 2);
        let (c, l) = fixed_literal_code(b'a' as u16);
        w.write_code(c, l);
        let (c, l) = fixed_literal_code(258); // length 4
        w.write_code(c, l);
        w.write_code(0, 5); // distance 1
        let (c, l) = fixed_literal_code(256);
        w.write_code(c, l);
        assert_eq!(inflate(&w.finish()).unwrap(), b"aaaaa");
    }

    #[test]
    fn truncated_stream_is_rejected() {
        let compressed = deflate_fixed(b"some data");
        let truncated = &compressed[..compressed.len() - 2];
        assert!(inflate(truncated).is_err());
    }

    #[test]
    fn reserved_block_type_is_rejected() {
        // bfinal=1, btype=11
        assert!(matches!(inflate(&[0x07]), Err(FormatError::Deflate(_))));
    }

    #[test]
    fn stored_len_mismatch_is_rejected() {
        let raw = [0x01, 0x05, 0x00, 0x00, 0x00, b'x'];
        assert!(inflate(&raw).is_err());
    }

    #[test]
    fn distance_beyond_window_is_rejected() {
        // immediate match with nothing in the window
        let mut w = BitWriter::new();
        w.write_bits(1, 1);
        w.write_bits(1, 2);
        let (c, l) = fixed_literal_code(257);
        w.write_code(c, l);
        w.write_code(0, 5);
        let (c, l) = fixed_literal_code(256);
        w.write_code(c, l);
        assert!(inflate(&w.finish()).is_err());
    }

    #[test]
    fn multi_block_streams_concatenate() {
        // two stored blocks
        let mut raw = vec![0x00]; // bfinal=0 stored
        raw.extend_from_slice(&2u16.to_le_bytes());
        raw.extend_from_slice(&(!2u16).to_le_bytes());
        raw.extend_from_slice(b"ab");
        raw.push(0x01); // bfinal=1 stored
        raw.extend_from_slice(&2u16.to_le_bytes());
        raw.extend_from_slice(&(!2u16).to_le_bytes());
        raw.extend_from_slice(b"cd");
        assert_eq!(inflate(&raw).unwrap(), b"abcd");
    }

    #[test]
    fn dynamic_huffman_stream_decodes() {
        // A tiny dynamic-Huffman stream hand-assembled to encode "aab" with
        // a three-symbol literal alphabet: 'a' (len 1), 'b' (len 2), EOB
        // (len 2), plus one unused 1-bit distance code.
        const ORDER: [usize; 19] = [
            16, 17, 18, 0, 8, 7, 9, 6, 10, 5, 11, 4, 12, 3, 13, 2, 14, 1, 15,
        ];
        // code-length-code lengths: symbol 18 (zero run) -> 1 bit,
        // symbols 1 and 2 (literal lengths) -> 2 bits each
        let mut cl = [0u8; 19];
        cl[18] = 1;
        cl[1] = 2;
        cl[2] = 2;
        let mut w = BitWriter::new();
        w.write_bits(1, 1); // BFINAL
        w.write_bits(2, 2); // dynamic
        w.write_bits(0, 5); // hlit = 257
        w.write_bits(0, 5); // hdist = 1
        w.write_bits(15, 4); // hclen = 19
        for &idx in &ORDER {
            w.write_bits(cl[idx] as u32, 3);
        }
        // canonical cl codes: 18 -> 0 (1 bit); 1 -> 10, 2 -> 11 (2 bits)
        let put18 = |w: &mut BitWriter, run: u32| {
            w.write_code(0, 1);
            w.write_bits(run - 11, 7);
        };
        let put1 = |w: &mut BitWriter| w.write_code(2, 2);
        let put2 = |w: &mut BitWriter| w.write_code(3, 2);
        put18(&mut w, 97); // symbols 0..97: zero
        put1(&mut w); // 'a' (97): len 1
        put2(&mut w); // 'b' (98): len 2
        put18(&mut w, 138); // symbols 99..237: zero
        put18(&mut w, 19); // symbols 237..256: zero
        put2(&mut w); // EOB (256): len 2
        put1(&mut w); // the single (unused) distance code: len 1
                      // canonical literal codes: 'a' -> 0; 'b' -> 10; EOB -> 11
        w.write_code(0, 1); // 'a'
        w.write_code(0, 1); // 'a'
        w.write_code(2, 2); // 'b'
        w.write_code(3, 2); // EOB
        assert_eq!(inflate(&w.finish()).unwrap(), b"aab");
    }

    /// Property tests (gated: the `proptest` crate is not vendored, so the
    /// default offline build compiles these out; re-add the dev-dependency
    /// and run `cargo test --features proptest` to enable them).
    #[cfg(feature = "proptest")]
    mod props {
        use super::*;
        use proptest::prelude::*;
        proptest! {
            #[test]
            fn prop_fixed_roundtrip(data in prop::collection::vec(any::<u8>(), 0..600)) {
                prop_assert_eq!(inflate(&deflate_fixed(&data)).unwrap(), data);
            }
        }
    }
}
