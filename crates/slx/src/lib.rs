//! Model file formats: `.slx` containers and `.mdl` text.
//!
//! The paper's model parse stage reads real Simulink `.slx` files: "the
//! Simulink model is wrapped by a ZIP file that contains different
//! components … recorded in the XML files. FRODO interprets these files to
//! parse the dataflow information" (§3.1). This crate implements that whole
//! stack from scratch — no external compression or XML crates:
//!
//! - [`crc32`] — CRC-32 (IEEE 802.3), as ZIP requires;
//! - [`fnv`] — FNV-1a 64 and the combined content digest the compilation
//!   driver uses for content-addressed artifact caching;
//! - [`inflate`] — a raw-DEFLATE (RFC 1951) decompressor (stored, fixed-
//!   and dynamic-Huffman blocks) plus a fixed-Huffman compressor;
//! - [`zip`] — ZIP archive reader/writer (methods *stored* and *deflate*);
//! - [`xml`] — a minimal XML tree parser and writer;
//! - [`slx`] — the Simulink-model ⇄ XML-in-ZIP mapping
//!   ([`read_slx`], [`write_slx`]);
//! - [`mdl`] — a classic `.mdl`-style textual format
//!   ([`read_mdl`], [`write_mdl`]), the "external file" representation the
//!   paper uses for its libraries.
//!
//! # Example
//!
//! ```
//! use frodo_model::{Block, BlockKind, Model};
//! use frodo_ranges::Shape;
//! use frodo_slx::{read_slx, write_slx};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut m = Model::new("roundtrip");
//! let i = m.add(Block::new("in", BlockKind::Inport { index: 0, shape: Shape::Vector(8) }));
//! let g = m.add(Block::new("g", BlockKind::Gain { gain: 2.0 }));
//! let o = m.add(Block::new("out", BlockKind::Outport { index: 0 }));
//! m.connect(i, 0, g, 0)?;
//! m.connect(g, 0, o, 0)?;
//!
//! let bytes = write_slx(&m)?;
//! let back = read_slx(&bytes, &frodo_obs::Trace::noop())?;
//! assert_eq!(back, m);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod crc32;
mod error;
pub mod fnv;
pub mod inflate;
pub mod mdl;
mod params;
pub mod slx;
pub mod xml;
pub mod zip;

pub use error::FormatError;
#[allow(deprecated)]
pub use mdl::read_mdl_traced;
pub use mdl::{read_mdl, write_mdl};
#[allow(deprecated)]
pub use slx::read_slx_traced;
pub use slx::{read_slx, write_slx};
