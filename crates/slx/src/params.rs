//! Shared block-parameter codec used by both the `.slx` XML mapping and the
//! `.mdl` text format: every [`BlockKind`] is flattened to a stable
//! `type name + key/value parameters` form and rebuilt from it.

use crate::FormatError;
use frodo_model::{BlockKind, LogicOp, Model, RelOp, RoundMode, SelectorMode, Tensor};
use frodo_ranges::Shape;

/// Formats an `f64` in shortest round-trip form.
pub fn fmt_f64(v: f64) -> String {
    format!("{v:?}")
}

/// Formats a vector MATLAB-style: `[1.0 2.0 3.0]`.
pub fn fmt_vec(v: &[f64]) -> String {
    let parts: Vec<String> = v.iter().map(|x| fmt_f64(*x)).collect();
    format!("[{}]", parts.join(" "))
}

/// Formats a vector of indices: `[5 6 7]`.
pub fn fmt_usizes(v: &[usize]) -> String {
    let parts: Vec<String> = v.iter().map(|x| x.to_string()).collect();
    format!("[{}]", parts.join(" "))
}

/// Formats a shape: `scalar`, `[8]`, or `[3x4]`.
pub fn fmt_shape(s: Shape) -> String {
    match s {
        Shape::Scalar => "scalar".into(),
        Shape::Vector(n) => format!("[{n}]"),
        Shape::Matrix(r, c) => format!("[{r}x{c}]"),
    }
}

/// Parses [`fmt_shape`] output.
pub fn parse_shape(s: &str) -> Result<Shape, String> {
    let s = s.trim();
    if s == "scalar" {
        return Ok(Shape::Scalar);
    }
    let inner = s
        .strip_prefix('[')
        .and_then(|t| t.strip_suffix(']'))
        .ok_or_else(|| format!("bad shape '{s}'"))?;
    if let Some((r, c)) = inner.split_once('x') {
        let r: usize = r.trim().parse().map_err(|_| format!("bad shape '{s}'"))?;
        let c: usize = c.trim().parse().map_err(|_| format!("bad shape '{s}'"))?;
        Ok(Shape::Matrix(r, c))
    } else {
        let n: usize = inner
            .trim()
            .parse()
            .map_err(|_| format!("bad shape '{s}'"))?;
        Ok(Shape::Vector(n))
    }
}

/// Parses [`fmt_vec`] output (spaces and/or commas as separators).
pub fn parse_vec(s: &str) -> Result<Vec<f64>, String> {
    let inner = s
        .trim()
        .strip_prefix('[')
        .and_then(|t| t.strip_suffix(']'))
        .ok_or_else(|| format!("bad vector '{s}'"))?;
    inner
        .split(|c: char| c.is_whitespace() || c == ',')
        .filter(|t| !t.is_empty())
        .map(|t| t.parse::<f64>().map_err(|_| format!("bad number '{t}'")))
        .collect()
}

/// Parses [`fmt_usizes`] output.
pub fn parse_usizes(s: &str) -> Result<Vec<usize>, String> {
    let inner = s
        .trim()
        .strip_prefix('[')
        .and_then(|t| t.strip_suffix(']'))
        .ok_or_else(|| format!("bad index vector '{s}'"))?;
    inner
        .split(|c: char| c.is_whitespace() || c == ',')
        .filter(|t| !t.is_empty())
        .map(|t| t.parse::<usize>().map_err(|_| format!("bad index '{t}'")))
        .collect()
}

/// The flattened form of one block: parameters plus, for subsystems, the
/// nested model (which the caller serializes recursively).
#[derive(Debug, Clone, PartialEq)]
pub struct BlockParams {
    /// Stable type name ([`BlockKind::type_name`]).
    pub type_name: &'static str,
    /// Key/value parameters, in a canonical order.
    pub params: Vec<(&'static str, String)>,
    /// The nested model of a subsystem block.
    pub subsystem: Option<Model>,
}

/// Flattens a block kind to its parameter form.
pub fn encode(kind: &BlockKind) -> BlockParams {
    let mut params: Vec<(&'static str, String)> = Vec::new();
    let mut subsystem = None;
    match kind {
        BlockKind::Inport { index, shape } => {
            params.push(("Port", index.to_string()));
            params.push(("Shape", fmt_shape(*shape)));
        }
        BlockKind::Constant { value } => {
            params.push(("Shape", fmt_shape(value.shape())));
            params.push(("Value", fmt_vec(value.data())));
        }
        BlockKind::Outport { index } => params.push(("Port", index.to_string())),
        BlockKind::Gain { gain } => params.push(("Gain", fmt_f64(*gain))),
        BlockKind::Bias { bias } => params.push(("Bias", fmt_f64(*bias))),
        BlockKind::Saturation { lower, upper } => {
            params.push(("Lower", fmt_f64(*lower)));
            params.push(("Upper", fmt_f64(*upper)));
        }
        BlockKind::Rounding { mode } => params.push((
            "Mode",
            match mode {
                RoundMode::Floor => "floor",
                RoundMode::Ceil => "ceil",
                RoundMode::Round => "round",
                RoundMode::Fix => "fix",
            }
            .into(),
        )),
        BlockKind::Relational { op } => params.push((
            "Operator",
            match op {
                RelOp::Lt => "lt",
                RelOp::Le => "le",
                RelOp::Gt => "gt",
                RelOp::Ge => "ge",
                RelOp::Eq => "eq",
                RelOp::Ne => "ne",
            }
            .into(),
        )),
        BlockKind::Logical { op } => params.push((
            "Operator",
            match op {
                LogicOp::And => "and",
                LogicOp::Or => "or",
                LogicOp::Xor => "xor",
                LogicOp::Not => "not",
            }
            .into(),
        )),
        BlockKind::Switch { threshold } => params.push(("Threshold", fmt_f64(*threshold))),
        BlockKind::Reshape { shape } => params.push(("Shape", fmt_shape(*shape))),
        BlockKind::Selector { mode } => match mode {
            SelectorMode::StartEnd { start, end } => {
                params.push(("Mode", "start_end".into()));
                params.push(("Start", start.to_string()));
                params.push(("End", end.to_string()));
            }
            SelectorMode::IndexVector(idxs) => {
                params.push(("Mode", "index_vector".into()));
                params.push(("Indices", fmt_usizes(idxs)));
            }
            SelectorMode::IndexPort { output_len } => {
                params.push(("Mode", "index_port".into()));
                params.push(("OutputLen", output_len.to_string()));
            }
        },
        BlockKind::Pad { left, right, value } => {
            params.push(("Left", left.to_string()));
            params.push(("Right", right.to_string()));
            params.push(("Value", fmt_f64(*value)));
        }
        BlockKind::Submatrix {
            row_start,
            row_end,
            col_start,
            col_end,
        } => {
            params.push(("RowStart", row_start.to_string()));
            params.push(("RowEnd", row_end.to_string()));
            params.push(("ColStart", col_start.to_string()));
            params.push(("ColEnd", col_end.to_string()));
        }
        BlockKind::Assignment { start } => params.push(("Start", start.to_string())),
        BlockKind::Mux { inputs } | BlockKind::Concatenate { inputs } => {
            params.push(("Inputs", inputs.to_string()));
        }
        BlockKind::Demux { sizes } => params.push(("Sizes", fmt_usizes(sizes))),
        BlockKind::FirFilter { coeffs } => params.push(("Coeffs", fmt_vec(coeffs))),
        BlockKind::MovingAverage { window } => params.push(("Window", window.to_string())),
        BlockKind::Downsample { factor, phase } => {
            params.push(("Factor", factor.to_string()));
            params.push(("Phase", phase.to_string()));
        }
        BlockKind::UnitDelay { initial } => {
            params.push(("Shape", fmt_shape(initial.shape())));
            params.push(("InitialCondition", fmt_vec(initial.data())));
        }
        BlockKind::Subsystem(model) => subsystem = Some((**model).clone()),
        // parameterless blocks
        BlockKind::Terminator
        | BlockKind::Abs
        | BlockKind::Sqrt
        | BlockKind::Square
        | BlockKind::Exp
        | BlockKind::Log
        | BlockKind::Sin
        | BlockKind::Cos
        | BlockKind::Tanh
        | BlockKind::Negate
        | BlockKind::Reciprocal
        | BlockKind::Add
        | BlockKind::Subtract
        | BlockKind::Multiply
        | BlockKind::Divide
        | BlockKind::Min
        | BlockKind::Max
        | BlockKind::Mod
        | BlockKind::SumOfElements
        | BlockKind::MeanOfElements
        | BlockKind::MinOfElements
        | BlockKind::MaxOfElements
        | BlockKind::DotProduct
        | BlockKind::MatrixMultiply
        | BlockKind::Transpose
        | BlockKind::Convolution
        | BlockKind::CumulativeSum
        | BlockKind::Difference => {}
    }
    BlockParams {
        type_name: kind.type_name(),
        params,
        subsystem,
    }
}

/// Rebuilds a block kind from its parameter form.
///
/// # Errors
///
/// Returns [`FormatError::Schema`] for unknown types, missing parameters,
/// or malformed values.
pub fn decode(
    type_name: &str,
    get: &dyn Fn(&str) -> Option<String>,
    subsystem: Option<Model>,
) -> Result<BlockKind, FormatError> {
    let want = |key: &str| -> Result<String, FormatError> {
        get(key).ok_or_else(|| {
            FormatError::Schema(format!(
                "block type '{type_name}' missing parameter '{key}'"
            ))
        })
    };
    let bad = |reason: String| FormatError::Schema(reason);
    let f64_p = |key: &str| -> Result<f64, FormatError> {
        want(key)?.trim().parse().map_err(|_| {
            FormatError::Schema(format!("bad number in parameter '{key}' of '{type_name}'"))
        })
    };
    let usize_p = |key: &str| -> Result<usize, FormatError> {
        want(key)?.trim().parse().map_err(|_| {
            FormatError::Schema(format!("bad integer in parameter '{key}' of '{type_name}'"))
        })
    };
    Ok(match type_name {
        "inport" => BlockKind::Inport {
            index: usize_p("Port")?,
            shape: parse_shape(&want("Shape")?).map_err(bad)?,
        },
        "constant" => {
            let shape = parse_shape(&want("Shape")?).map_err(bad)?;
            let data = parse_vec(&want("Value")?).map_err(bad)?;
            if data.len() != shape.numel() {
                return Err(FormatError::Schema(format!(
                    "constant value has {} elements for shape {shape}",
                    data.len()
                )));
            }
            BlockKind::Constant {
                value: Tensor::new(shape, data),
            }
        }
        "outport" => BlockKind::Outport {
            index: usize_p("Port")?,
        },
        "terminator" => BlockKind::Terminator,
        "gain" => BlockKind::Gain {
            gain: f64_p("Gain")?,
        },
        "bias" => BlockKind::Bias {
            bias: f64_p("Bias")?,
        },
        "abs" => BlockKind::Abs,
        "sqrt" => BlockKind::Sqrt,
        "square" => BlockKind::Square,
        "exp" => BlockKind::Exp,
        "log" => BlockKind::Log,
        "sin" => BlockKind::Sin,
        "cos" => BlockKind::Cos,
        "tanh" => BlockKind::Tanh,
        "negate" => BlockKind::Negate,
        "reciprocal" => BlockKind::Reciprocal,
        "saturation" => BlockKind::Saturation {
            lower: f64_p("Lower")?,
            upper: f64_p("Upper")?,
        },
        "rounding" => BlockKind::Rounding {
            mode: match want("Mode")?.as_str() {
                "floor" => RoundMode::Floor,
                "ceil" => RoundMode::Ceil,
                "round" => RoundMode::Round,
                "fix" => RoundMode::Fix,
                m => return Err(FormatError::Schema(format!("unknown rounding mode '{m}'"))),
            },
        },
        "add" => BlockKind::Add,
        "subtract" => BlockKind::Subtract,
        "multiply" => BlockKind::Multiply,
        "divide" => BlockKind::Divide,
        "min" => BlockKind::Min,
        "max" => BlockKind::Max,
        "mod" => BlockKind::Mod,
        "relational" => BlockKind::Relational {
            op: match want("Operator")?.as_str() {
                "lt" => RelOp::Lt,
                "le" => RelOp::Le,
                "gt" => RelOp::Gt,
                "ge" => RelOp::Ge,
                "eq" => RelOp::Eq,
                "ne" => RelOp::Ne,
                o => return Err(FormatError::Schema(format!("unknown relational op '{o}'"))),
            },
        },
        "logical" => BlockKind::Logical {
            op: match want("Operator")?.as_str() {
                "and" => LogicOp::And,
                "or" => LogicOp::Or,
                "xor" => LogicOp::Xor,
                "not" => LogicOp::Not,
                o => return Err(FormatError::Schema(format!("unknown logical op '{o}'"))),
            },
        },
        "switch" => BlockKind::Switch {
            threshold: f64_p("Threshold")?,
        },
        "sum_of_elements" => BlockKind::SumOfElements,
        "mean_of_elements" => BlockKind::MeanOfElements,
        "min_of_elements" => BlockKind::MinOfElements,
        "max_of_elements" => BlockKind::MaxOfElements,
        "dot_product" => BlockKind::DotProduct,
        "matrix_multiply" => BlockKind::MatrixMultiply,
        "transpose" => BlockKind::Transpose,
        "reshape" => BlockKind::Reshape {
            shape: parse_shape(&want("Shape")?).map_err(bad)?,
        },
        "selector" => BlockKind::Selector {
            mode: match want("Mode")?.as_str() {
                "start_end" => SelectorMode::StartEnd {
                    start: usize_p("Start")?,
                    end: usize_p("End")?,
                },
                "index_vector" => {
                    SelectorMode::IndexVector(parse_usizes(&want("Indices")?).map_err(bad)?)
                }
                "index_port" => SelectorMode::IndexPort {
                    output_len: usize_p("OutputLen")?,
                },
                m => return Err(FormatError::Schema(format!("unknown selector mode '{m}'"))),
            },
        },
        "pad" => BlockKind::Pad {
            left: usize_p("Left")?,
            right: usize_p("Right")?,
            value: f64_p("Value")?,
        },
        "submatrix" => BlockKind::Submatrix {
            row_start: usize_p("RowStart")?,
            row_end: usize_p("RowEnd")?,
            col_start: usize_p("ColStart")?,
            col_end: usize_p("ColEnd")?,
        },
        "assignment" => BlockKind::Assignment {
            start: usize_p("Start")?,
        },
        "mux" => BlockKind::Mux {
            inputs: usize_p("Inputs")?,
        },
        "concatenate" => BlockKind::Concatenate {
            inputs: usize_p("Inputs")?,
        },
        "demux" => BlockKind::Demux {
            sizes: parse_usizes(&want("Sizes")?).map_err(bad)?,
        },
        "convolution" => BlockKind::Convolution,
        "fir_filter" => BlockKind::FirFilter {
            coeffs: parse_vec(&want("Coeffs")?).map_err(bad)?,
        },
        "moving_average" => BlockKind::MovingAverage {
            window: usize_p("Window")?,
        },
        "downsample" => BlockKind::Downsample {
            factor: usize_p("Factor")?,
            phase: usize_p("Phase")?,
        },
        "cumulative_sum" => BlockKind::CumulativeSum,
        "difference" => BlockKind::Difference,
        "unit_delay" => {
            let shape = parse_shape(&want("Shape")?).map_err(bad)?;
            let data = parse_vec(&want("InitialCondition")?).map_err(bad)?;
            if data.len() != shape.numel() {
                return Err(FormatError::Schema(
                    "unit delay initial condition does not match its shape".into(),
                ));
            }
            BlockKind::UnitDelay {
                initial: Tensor::new(shape, data),
            }
        }
        "subsystem" => BlockKind::Subsystem(Box::new(subsystem.ok_or_else(|| {
            FormatError::Schema("subsystem block without a nested System".into())
        })?)),
        other => return Err(FormatError::Schema(format!("unknown block type '{other}'"))),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(kind: BlockKind) {
        let enc = encode(&kind);
        let get = |key: &str| -> Option<String> {
            enc.params
                .iter()
                .find(|(k, _)| *k == key)
                .map(|(_, v)| v.clone())
        };
        let back = decode(enc.type_name, &get, enc.subsystem.clone()).unwrap();
        assert_eq!(back, kind);
    }

    #[test]
    fn every_parameterized_kind_roundtrips() {
        roundtrip(BlockKind::Inport {
            index: 3,
            shape: Shape::Matrix(2, 5),
        });
        roundtrip(BlockKind::Constant {
            value: Tensor::vector(vec![1.5, -2.25, 1e-9]),
        });
        roundtrip(BlockKind::Outport { index: 1 });
        roundtrip(BlockKind::Gain { gain: -0.125 });
        roundtrip(BlockKind::Bias { bias: 7.5 });
        roundtrip(BlockKind::Saturation {
            lower: -1.0,
            upper: 1.0,
        });
        roundtrip(BlockKind::Rounding {
            mode: RoundMode::Fix,
        });
        roundtrip(BlockKind::Relational { op: RelOp::Ge });
        roundtrip(BlockKind::Logical { op: LogicOp::Not });
        roundtrip(BlockKind::Switch { threshold: 0.5 });
        roundtrip(BlockKind::Reshape {
            shape: Shape::Matrix(3, 4),
        });
        roundtrip(BlockKind::Selector {
            mode: SelectorMode::StartEnd { start: 5, end: 55 },
        });
        roundtrip(BlockKind::Selector {
            mode: SelectorMode::IndexVector(vec![9, 0, 3]),
        });
        roundtrip(BlockKind::Selector {
            mode: SelectorMode::IndexPort { output_len: 7 },
        });
        roundtrip(BlockKind::Pad {
            left: 2,
            right: 3,
            value: -0.5,
        });
        roundtrip(BlockKind::Submatrix {
            row_start: 1,
            row_end: 4,
            col_start: 0,
            col_end: 2,
        });
        roundtrip(BlockKind::Mux { inputs: 5 });
        roundtrip(BlockKind::Concatenate { inputs: 2 });
        roundtrip(BlockKind::Demux {
            sizes: vec![2, 3, 4],
        });
        roundtrip(BlockKind::FirFilter {
            coeffs: vec![0.5, 0.25, 0.125],
        });
        roundtrip(BlockKind::MovingAverage { window: 9 });
        roundtrip(BlockKind::Downsample {
            factor: 4,
            phase: 1,
        });
        roundtrip(BlockKind::Assignment { start: 7 });
        roundtrip(BlockKind::UnitDelay {
            initial: Tensor::matrix(2, 1, vec![1.0, 2.0]),
        });
    }

    #[test]
    fn parameterless_kinds_roundtrip() {
        for kind in [
            BlockKind::Terminator,
            BlockKind::Abs,
            BlockKind::Sqrt,
            BlockKind::Square,
            BlockKind::Exp,
            BlockKind::Log,
            BlockKind::Sin,
            BlockKind::Cos,
            BlockKind::Tanh,
            BlockKind::Negate,
            BlockKind::Reciprocal,
            BlockKind::Add,
            BlockKind::Subtract,
            BlockKind::Multiply,
            BlockKind::Divide,
            BlockKind::Min,
            BlockKind::Max,
            BlockKind::Mod,
            BlockKind::SumOfElements,
            BlockKind::MeanOfElements,
            BlockKind::MinOfElements,
            BlockKind::MaxOfElements,
            BlockKind::DotProduct,
            BlockKind::MatrixMultiply,
            BlockKind::Transpose,
            BlockKind::Convolution,
            BlockKind::CumulativeSum,
            BlockKind::Difference,
        ] {
            roundtrip(kind);
        }
    }

    #[test]
    fn shape_codec() {
        for s in [Shape::Scalar, Shape::Vector(17), Shape::Matrix(3, 9)] {
            assert_eq!(parse_shape(&fmt_shape(s)).unwrap(), s);
        }
        assert!(parse_shape("[-3]").is_err());
        assert!(parse_shape("nope").is_err());
    }

    #[test]
    fn vec_codec_accepts_commas() {
        assert_eq!(parse_vec("[1, 2.5, -3]").unwrap(), vec![1.0, 2.5, -3.0]);
        assert_eq!(parse_vec("[]").unwrap(), Vec::<f64>::new());
        assert!(parse_vec("1 2 3").is_err());
    }

    #[test]
    fn unknown_type_is_rejected() {
        let err = decode("warpdrive", &|_| None, None).unwrap_err();
        assert!(err.to_string().contains("warpdrive"));
    }

    #[test]
    fn missing_parameter_is_reported() {
        let err = decode("gain", &|_| None, None).unwrap_err();
        assert!(err.to_string().contains("Gain"));
    }
}
