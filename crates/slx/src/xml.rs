//! A minimal XML tree: parser and writer.
//!
//! Covers the subset `.slx` block-diagram documents use — elements,
//! attributes, character data, comments, processing instructions, and the
//! five predefined entities plus numeric character references. No DTDs or
//! namespaces (Simulink documents do not rely on them for the dataflow
//! information FRODO extracts).

use crate::FormatError;
use std::fmt::Write as _;

/// A child of an element: nested element or character data.
#[derive(Debug, Clone, PartialEq)]
pub enum Node {
    /// A nested element.
    Element(Element),
    /// Decoded character data.
    Text(String),
}

/// An XML element: name, attributes in document order, and children.
///
/// # Example
///
/// ```
/// use frodo_slx::xml::{parse, Element};
///
/// # fn main() -> Result<(), frodo_slx::FormatError> {
/// let doc = parse(r#"<Block BlockType="Gain"><P Name="Gain">2.5</P></Block>"#)?;
/// assert_eq!(doc.attr("BlockType"), Some("Gain"));
/// let p = doc.child("P").unwrap();
/// assert_eq!(p.text(), "2.5");
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Element {
    /// Tag name.
    pub name: String,
    /// Attributes in document order.
    pub attrs: Vec<(String, String)>,
    /// Child nodes in document order.
    pub children: Vec<Node>,
}

impl Element {
    /// Creates an element with no attributes or children.
    pub fn new(name: impl Into<String>) -> Self {
        Element {
            name: name.into(),
            attrs: Vec::new(),
            children: Vec::new(),
        }
    }

    /// Adds or replaces an attribute, returning `self` for chaining.
    pub fn with_attr(mut self, key: impl Into<String>, value: impl Into<String>) -> Self {
        self.set_attr(key, value);
        self
    }

    /// Adds or replaces an attribute.
    pub fn set_attr(&mut self, key: impl Into<String>, value: impl Into<String>) {
        let key = key.into();
        let value = value.into();
        if let Some(a) = self.attrs.iter_mut().find(|(k, _)| *k == key) {
            a.1 = value;
        } else {
            self.attrs.push((key, value));
        }
    }

    /// Attribute value by name.
    pub fn attr(&self, key: &str) -> Option<&str> {
        self.attrs
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v.as_str())
    }

    /// Appends a child element.
    pub fn push(&mut self, child: Element) {
        self.children.push(Node::Element(child));
    }

    /// Appends character data.
    pub fn push_text(&mut self, text: impl Into<String>) {
        self.children.push(Node::Text(text.into()));
    }

    /// First child element with the given name.
    pub fn child(&self, name: &str) -> Option<&Element> {
        self.elements().find(|e| e.name == name)
    }

    /// All child elements.
    pub fn elements(&self) -> impl Iterator<Item = &Element> {
        self.children.iter().filter_map(|n| match n {
            Node::Element(e) => Some(e),
            Node::Text(_) => None,
        })
    }

    /// All child elements with a given name.
    pub fn children_named<'a>(&'a self, name: &'a str) -> impl Iterator<Item = &'a Element> + 'a {
        self.elements().filter(move |e| e.name == name)
    }

    /// Concatenated direct character data, whitespace-trimmed.
    pub fn text(&self) -> String {
        let mut out = String::new();
        for n in &self.children {
            if let Node::Text(t) = n {
                out.push_str(t);
            }
        }
        out.trim().to_string()
    }
}

// ---------------------------------------------------------------------------
// writer
// ---------------------------------------------------------------------------

fn escape(s: &str, quote: bool) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '<' => out.push_str("&lt;"),
            '>' => out.push_str("&gt;"),
            '&' => out.push_str("&amp;"),
            '"' if quote => out.push_str("&quot;"),
            c => out.push(c),
        }
    }
    out
}

/// Serializes an element tree with two-space indentation and an XML
/// declaration, matching the look of real `.slx` documents.
pub fn write(root: &Element) -> String {
    let mut out = String::from("<?xml version=\"1.0\" encoding=\"UTF-8\"?>\n");
    write_element(root, 0, &mut out);
    out
}

fn write_element(e: &Element, depth: usize, out: &mut String) {
    let pad = "  ".repeat(depth);
    let _ = write!(out, "{pad}<{}", e.name);
    for (k, v) in &e.attrs {
        let _ = write!(out, " {k}=\"{}\"", escape(v, true));
    }
    if e.children.is_empty() {
        out.push_str("/>\n");
        return;
    }
    // text-only elements print inline
    let text_only = e.children.iter().all(|n| matches!(n, Node::Text(_)));
    if text_only {
        let _ = writeln!(out, ">{}</{}>", escape(&e.text(), false), e.name);
        return;
    }
    out.push_str(">\n");
    for n in &e.children {
        match n {
            Node::Element(c) => write_element(c, depth + 1, out),
            Node::Text(t) => {
                let t = t.trim();
                if !t.is_empty() {
                    let _ = writeln!(out, "{pad}  {}", escape(t, false));
                }
            }
        }
    }
    let _ = writeln!(out, "{pad}</{}>", e.name);
}

// ---------------------------------------------------------------------------
// parser
// ---------------------------------------------------------------------------

/// Parses a document into its root element.
///
/// # Errors
///
/// Returns [`FormatError::Xml`] with a byte offset for malformed input:
/// mismatched tags, bad entities, attribute syntax errors, or trailing
/// garbage after the root element.
pub fn parse(input: &str) -> Result<Element, FormatError> {
    let mut p = Parser {
        b: input.as_bytes(),
        pos: 0,
    };
    p.skip_misc()?;
    let root = p.parse_element()?;
    p.skip_misc()?;
    if p.pos != p.b.len() {
        return Err(p.err("content after document root"));
    }
    Ok(root)
}

struct Parser<'a> {
    b: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, reason: impl Into<String>) -> FormatError {
        FormatError::Xml {
            offset: self.pos,
            reason: reason.into(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.b.get(self.pos).copied()
    }

    fn starts_with(&self, s: &str) -> bool {
        self.b[self.pos..].starts_with(s.as_bytes())
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\r' | b'\n')) {
            self.pos += 1;
        }
    }

    /// Skips whitespace, comments, PIs, and the XML declaration.
    fn skip_misc(&mut self) -> Result<(), FormatError> {
        loop {
            self.skip_ws();
            if self.starts_with("<!--") {
                let end = self.find("-->")?;
                self.pos = end + 3;
            } else if self.starts_with("<?") {
                let end = self.find("?>")?;
                self.pos = end + 2;
            } else {
                return Ok(());
            }
        }
    }

    fn find(&self, needle: &str) -> Result<usize, FormatError> {
        let hay = &self.b[self.pos..];
        hay.windows(needle.len())
            .position(|w| w == needle.as_bytes())
            .map(|i| self.pos + i)
            .ok_or_else(|| self.err(format!("unterminated '{needle}' construct")))
    }

    fn parse_name(&mut self) -> Result<String, FormatError> {
        let start = self.pos;
        while let Some(c) = self.peek() {
            if c.is_ascii_alphanumeric() || matches!(c, b'_' | b'-' | b'.' | b':') {
                self.pos += 1;
            } else {
                break;
            }
        }
        if self.pos == start {
            return Err(self.err("expected a name"));
        }
        Ok(String::from_utf8_lossy(&self.b[start..self.pos]).into_owned())
    }

    fn expect(&mut self, c: u8) -> Result<(), FormatError> {
        if self.peek() == Some(c) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(format!("expected '{}'", c as char)))
        }
    }

    fn parse_element(&mut self) -> Result<Element, FormatError> {
        self.expect(b'<')?;
        let name = self.parse_name()?;
        let mut element = Element::new(name);
        loop {
            self.skip_ws();
            match self.peek() {
                Some(b'/') => {
                    self.pos += 1;
                    self.expect(b'>')?;
                    return Ok(element);
                }
                Some(b'>') => {
                    self.pos += 1;
                    break;
                }
                Some(_) => {
                    let key = self.parse_name()?;
                    self.skip_ws();
                    self.expect(b'=')?;
                    self.skip_ws();
                    let quote = self.peek().ok_or_else(|| self.err("truncated attribute"))?;
                    if quote != b'"' && quote != b'\'' {
                        return Err(self.err("attribute value must be quoted"));
                    }
                    self.pos += 1;
                    let start = self.pos;
                    while self.peek() != Some(quote) {
                        if self.peek().is_none() {
                            return Err(self.err("unterminated attribute value"));
                        }
                        self.pos += 1;
                    }
                    let raw = String::from_utf8_lossy(&self.b[start..self.pos]).into_owned();
                    self.pos += 1;
                    element.attrs.push((key, self.decode_entities(&raw)?));
                }
                None => return Err(self.err("truncated start tag")),
            }
        }
        // content
        loop {
            if self.starts_with("<!--") {
                let end = self.find("-->")?;
                self.pos = end + 3;
            } else if self.starts_with("<![CDATA[") {
                self.pos += 9;
                let end = self.find("]]>")?;
                let raw = String::from_utf8_lossy(&self.b[self.pos..end]).into_owned();
                // CDATA is literal: no entity decoding
                if !raw.is_empty() {
                    element.push_text(raw);
                }
                self.pos = end + 3;
            } else if self.starts_with("</") {
                self.pos += 2;
                let close = self.parse_name()?;
                if close != element.name {
                    return Err(self.err(format!(
                        "mismatched close tag </{close}> for <{}>",
                        element.name
                    )));
                }
                self.skip_ws();
                self.expect(b'>')?;
                return Ok(element);
            } else if self.peek() == Some(b'<') {
                let child = self.parse_element()?;
                element.push(child);
            } else if self.peek().is_none() {
                return Err(self.err(format!("unclosed element <{}>", element.name)));
            } else {
                let start = self.pos;
                while !matches!(self.peek(), Some(b'<') | None) {
                    self.pos += 1;
                }
                let raw = String::from_utf8_lossy(&self.b[start..self.pos]).into_owned();
                let text = self.decode_entities(&raw)?;
                if !text.trim().is_empty() {
                    element.push_text(text);
                }
            }
        }
    }

    fn decode_entities(&self, raw: &str) -> Result<String, FormatError> {
        if !raw.contains('&') {
            return Ok(raw.to_string());
        }
        let mut out = String::with_capacity(raw.len());
        let mut rest = raw;
        while let Some(i) = rest.find('&') {
            out.push_str(&rest[..i]);
            rest = &rest[i + 1..];
            let semi = rest
                .find(';')
                .ok_or_else(|| self.err("unterminated entity"))?;
            let ent = &rest[..semi];
            match ent {
                "lt" => out.push('<'),
                "gt" => out.push('>'),
                "amp" => out.push('&'),
                "quot" => out.push('"'),
                "apos" => out.push('\''),
                _ if ent.starts_with("#x") || ent.starts_with("#X") => {
                    let code = u32::from_str_radix(&ent[2..], 16)
                        .map_err(|_| self.err(format!("bad character reference &{ent};")))?;
                    out.push(
                        char::from_u32(code)
                            .ok_or_else(|| self.err("invalid character reference"))?,
                    );
                }
                _ if ent.starts_with('#') => {
                    let code: u32 = ent[1..]
                        .parse()
                        .map_err(|_| self.err(format!("bad character reference &{ent};")))?;
                    out.push(
                        char::from_u32(code)
                            .ok_or_else(|| self.err("invalid character reference"))?,
                    );
                }
                _ => return Err(self.err(format!("unknown entity &{ent};"))),
            }
            rest = &rest[semi + 1..];
        }
        out.push_str(rest);
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_simple_document() {
        let doc = parse(
            r#"<?xml version="1.0"?>
            <!-- a comment -->
            <Model Name="conv">
              <System>
                <Block BlockType="Gain" Name="g"><P Name="Gain">2.0</P></Block>
              </System>
            </Model>"#,
        )
        .unwrap();
        assert_eq!(doc.name, "Model");
        assert_eq!(doc.attr("Name"), Some("conv"));
        let block = doc.child("System").unwrap().child("Block").unwrap();
        assert_eq!(block.attr("BlockType"), Some("Gain"));
        assert_eq!(block.child("P").unwrap().text(), "2.0");
    }

    #[test]
    fn self_closing_and_empty_elements() {
        let doc = parse("<A><B/><C></C></A>").unwrap();
        assert_eq!(doc.elements().count(), 2);
        assert!(doc.child("B").unwrap().children.is_empty());
    }

    #[test]
    fn entities_decode_in_text_and_attrs() {
        let doc = parse(r#"<A v="a&lt;b&amp;c&quot;d">&#65;&#x42;&apos;</A>"#).unwrap();
        assert_eq!(doc.attr("v"), Some(r#"a<b&c"d"#));
        assert_eq!(doc.text(), "AB'");
    }

    #[test]
    fn mismatched_tags_are_rejected() {
        let err = parse("<A><B></A></B>").unwrap_err();
        assert!(matches!(err, FormatError::Xml { .. }));
        assert!(err.to_string().contains("mismatched"));
    }

    #[test]
    fn trailing_garbage_is_rejected() {
        assert!(parse("<A/><B/>").is_err());
        assert!(parse("<A/>junk").is_err());
    }

    #[test]
    fn unknown_entity_is_rejected() {
        assert!(parse("<A>&nope;</A>").is_err());
    }

    #[test]
    fn write_then_parse_roundtrips() {
        let mut root = Element::new("Model").with_attr("Name", "m<&>");
        let mut sys = Element::new("System");
        let mut b = Element::new("Block")
            .with_attr("BlockType", "Selector")
            .with_attr("Name", "weird \"name\"");
        let mut p = Element::new("P").with_attr("Name", "Indices");
        p.push_text("[5 6 7]");
        b.push(p);
        sys.push(b);
        root.push(sys);
        let text = write(&root);
        let back = parse(&text).unwrap();
        assert_eq!(back, root);
    }

    #[test]
    fn cdata_sections_are_literal() {
        let doc = parse("<A><![CDATA[1 < 2 && \"x\"]]></A>").unwrap();
        assert_eq!(doc.text(), "1 < 2 && \"x\"");
        let doc = parse("<A><![CDATA[]]><B/></A>").unwrap();
        assert_eq!(doc.elements().count(), 1);
    }

    #[test]
    fn comments_inside_content_are_skipped() {
        let doc = parse("<A><!-- hi --><B/></A>").unwrap();
        assert_eq!(doc.elements().count(), 1);
    }

    #[test]
    fn attribute_duplicate_set_replaces() {
        let mut e = Element::new("E");
        e.set_attr("k", "1");
        e.set_attr("k", "2");
        assert_eq!(e.attr("k"), Some("2"));
        assert_eq!(e.attrs.len(), 1);
    }

    #[test]
    fn single_quoted_attributes_parse() {
        let doc = parse("<A v='x'/>").unwrap();
        assert_eq!(doc.attr("v"), Some("x"));
    }
}
