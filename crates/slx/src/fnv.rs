//! FNV-1a hashing and content digests.
//!
//! The compilation driver addresses cached artifacts by the *content* of a
//! flattened model plus its generation options. A digest combines a 64-bit
//! FNV-1a hash with the ZIP stack's CRC-32 ([`crate::crc32`]): the two
//! functions mix bytes independently, so a collision must defeat both at
//! once — ample for cache addressing, with zero dependencies and fully
//! deterministic output across platforms.
//!
//! # Example
//!
//! ```
//! use frodo_slx::fnv::{fnv1a_64, ContentDigest};
//!
//! // the classic FNV-1a check values
//! assert_eq!(fnv1a_64(b""), 0xCBF2_9CE4_8422_2325);
//! assert_eq!(fnv1a_64(b"a"), 0xAF63_DC4C_8601_EC8C);
//!
//! let d = ContentDigest::of(b"hello");
//! assert_eq!(d, ContentDigest::of(b"hello"));
//! assert_ne!(d, ContentDigest::of(b"hello!"));
//! assert_eq!(d.to_hex().len(), 24); // 16 FNV chars + 8 CRC chars
//! ```

use crate::crc32::Crc32;

const FNV_OFFSET: u64 = 0xCBF2_9CE4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01B3;

/// Computes the 64-bit FNV-1a hash of a byte slice.
pub fn fnv1a_64(data: &[u8]) -> u64 {
    let mut h = Fnv64::new();
    h.update(data);
    h.finish()
}

/// Incremental 64-bit FNV-1a hasher.
#[derive(Debug, Clone)]
pub struct Fnv64 {
    state: u64,
}

impl Fnv64 {
    /// Starts a new hash.
    pub fn new() -> Self {
        Fnv64 { state: FNV_OFFSET }
    }

    /// Feeds bytes into the hash.
    pub fn update(&mut self, data: &[u8]) {
        for &b in data {
            self.state ^= b as u64;
            self.state = self.state.wrapping_mul(FNV_PRIME);
        }
    }

    /// Finishes and returns the hash value.
    pub fn finish(&self) -> u64 {
        self.state
    }
}

impl Default for Fnv64 {
    fn default() -> Self {
        Fnv64::new()
    }
}

/// A 96-bit content digest: FNV-1a 64 plus CRC-32, both over the same
/// bytes. Rendered as 24 lowercase hex characters, suitable as a cache
/// file name.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ContentDigest {
    /// The FNV-1a 64 component.
    pub fnv: u64,
    /// The CRC-32 component.
    pub crc: u32,
}

impl ContentDigest {
    /// Digests a byte slice in one call.
    pub fn of(data: &[u8]) -> Self {
        let mut d = DigestWriter::new();
        d.update(data);
        d.finish()
    }

    /// The 24-character lowercase hex form (`<fnv:016x><crc:08x>`).
    pub fn to_hex(self) -> String {
        format!("{:016x}{:08x}", self.fnv, self.crc)
    }
}

impl std::fmt::Display for ContentDigest {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{:016x}{:08x}", self.fnv, self.crc)
    }
}

/// Incrementally digests a byte stream into a [`ContentDigest`].
#[derive(Debug, Clone)]
pub struct DigestWriter {
    fnv: Fnv64,
    crc: Crc32,
}

impl DigestWriter {
    /// Starts a new digest.
    pub fn new() -> Self {
        DigestWriter {
            fnv: Fnv64::new(),
            crc: Crc32::new(),
        }
    }

    /// Feeds bytes into both component hashes.
    pub fn update(&mut self, data: &[u8]) {
        self.fnv.update(data);
        self.crc.update(data);
    }

    /// Finishes and returns the combined digest.
    pub fn finish(&self) -> ContentDigest {
        ContentDigest {
            fnv: self.fnv.finish(),
            crc: self.crc.finish(),
        }
    }
}

impl Default for DigestWriter {
    fn default() -> Self {
        DigestWriter::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fnv_reference_values() {
        // From the FNV reference test vectors (Noll).
        assert_eq!(fnv1a_64(b""), 0xCBF2_9CE4_8422_2325);
        assert_eq!(fnv1a_64(b"a"), 0xAF63_DC4C_8601_EC8C);
        assert_eq!(fnv1a_64(b"foobar"), 0x85944171F73967E8);
    }

    #[test]
    fn incremental_matches_oneshot() {
        let mut h = Fnv64::new();
        h.update(b"foo");
        h.update(b"bar");
        assert_eq!(h.finish(), fnv1a_64(b"foobar"));

        let mut d = DigestWriter::new();
        d.update(b"split ");
        d.update(b"input");
        assert_eq!(d.finish(), ContentDigest::of(b"split input"));
    }

    #[test]
    fn digest_hex_is_stable_and_parseable_width() {
        let d = ContentDigest::of(b"123456789");
        assert_eq!(d.crc, 0xCBF4_3926); // CRC-32 check value
        let hex = d.to_hex();
        assert_eq!(hex.len(), 24);
        assert!(hex.chars().all(|c| c.is_ascii_hexdigit()));
        assert_eq!(hex, d.to_string());
    }

    #[test]
    fn distinct_content_distinct_digest() {
        assert_ne!(ContentDigest::of(b"model-a"), ContentDigest::of(b"model-b"));
    }
}
