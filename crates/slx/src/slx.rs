//! The `.slx` container mapping: Simulink models as XML inside ZIP.
//!
//! Mirrors the real `.slx` layout the paper's parser handles: the archive
//! contains `[Content_Types].xml`, package metadata, and the block diagram
//! at `simulink/blockdiagram.xml`; the diagram is a `<Model>` wrapping a
//! `<System>` of `<Block>` and `<Line>` elements, with blocks addressed by
//! `SID` and parameters in `<P Name="…">` children. Subsystems nest a
//! `<System>` inside their `<Block>`.

use crate::params::{decode, encode};
use crate::xml::{parse as parse_xml, write as write_xml, Element};
use crate::zip::{Archive, Method};
use crate::FormatError;
use frodo_model::{Block, BlockId, Model};

/// Archive path of the block diagram.
pub const BLOCKDIAGRAM_PATH: &str = "simulink/blockdiagram.xml";

/// Serializes a model as `.slx` bytes.
///
/// # Errors
///
/// Currently infallible for well-formed models; the `Result` is kept for
/// forward compatibility with size limits.
pub fn write_slx(model: &Model) -> Result<Vec<u8>, FormatError> {
    let mut ar = Archive::new();
    ar.add(
        "[Content_Types].xml",
        write_xml(&content_types()).into_bytes(),
        Method::Stored,
    );
    ar.add(
        "metadata/coreProperties.xml",
        write_xml(&core_properties(model.name())).into_bytes(),
        Method::Stored,
    );
    // the diagram itself travels deflated, like real .slx entries
    ar.add(
        BLOCKDIAGRAM_PATH,
        write_xml(&model_to_xml(model)).into_bytes(),
        Method::Deflate,
    );
    Ok(ar.to_bytes())
}

/// Parses `.slx` bytes back into a model, recorded on the given trace:
/// an `unzip` span for container decompression (with
/// `slx_bytes`/`inflated_bytes` counters), an `xml_parse` span, and a
/// `build_model` span for the XML→model mapping. Pass
/// `&Trace::noop()` when no instrumentation is wanted.
///
/// # Errors
///
/// Propagates container ([`FormatError::Zip`]), decompression, XML, and
/// schema errors.
pub fn read_slx(bytes: &[u8], trace: &frodo_obs::Trace) -> Result<Model, FormatError> {
    let text = {
        let span = trace.span("unzip");
        let ar = Archive::from_bytes(bytes)?;
        let diagram = ar
            .get(BLOCKDIAGRAM_PATH)
            .ok_or_else(|| FormatError::Schema(format!("archive has no {BLOCKDIAGRAM_PATH}")))?;
        span.count("slx_bytes", bytes.len() as u64);
        span.count("inflated_bytes", diagram.len() as u64);
        std::str::from_utf8(diagram)
            .map_err(|_| FormatError::Schema("block diagram is not UTF-8".into()))?
            .to_string()
    };
    let parsed = {
        let _x = trace.span("xml_parse");
        parse_xml(&text)?
    };
    let _b = trace.span("build_model");
    model_from_xml(&parsed)
}

/// Deprecated alias of [`read_slx`], kept one release for callers of the
/// old split traced/untraced entry points.
///
/// # Errors
///
/// Propagates container ([`FormatError::Zip`]), decompression, XML, and
/// schema errors.
#[deprecated(since = "0.7.0", note = "use `read_slx(bytes, trace)` instead")]
pub fn read_slx_traced(bytes: &[u8], trace: &frodo_obs::Trace) -> Result<Model, FormatError> {
    read_slx(bytes, trace)
}

fn content_types() -> Element {
    let mut root = Element::new("Types").with_attr(
        "xmlns",
        "http://schemas.openxmlformats.org/package/2006/content-types",
    );
    root.push(
        Element::new("Default")
            .with_attr("Extension", "xml")
            .with_attr("ContentType", "application/xml"),
    );
    root
}

fn core_properties(name: &str) -> Element {
    let mut root = Element::new("coreProperties");
    let mut title = Element::new("title");
    title.push_text(name);
    root.push(title);
    let mut generator = Element::new("generator");
    generator.push_text("frodo-slx");
    root.push(generator);
    root
}

/// Converts a model to its `<Model>` element.
pub fn model_to_xml(model: &Model) -> Element {
    let mut root = Element::new("Model").with_attr("Name", model.name());
    root.push(system_to_xml(model));
    root
}

fn system_to_xml(model: &Model) -> Element {
    let mut system = Element::new("System").with_attr("Name", model.name());
    for (id, block) in model.iter() {
        let enc = encode(&block.kind);
        let mut e = Element::new("Block")
            .with_attr("BlockType", enc.type_name)
            .with_attr("Name", block.name.clone())
            .with_attr("SID", id.index().to_string());
        for (k, v) in &enc.params {
            let mut p = Element::new("P").with_attr("Name", *k);
            p.push_text(v.clone());
            e.push(p);
        }
        if let Some(inner) = &enc.subsystem {
            e.push(system_to_xml(inner));
        }
        system.push(e);
    }
    for c in model.connections() {
        let mut line = Element::new("Line");
        let mut src = Element::new("P").with_attr("Name", "Src");
        src.push_text(format!("{}#out:{}", c.from.block.index(), c.from.port));
        let mut dst = Element::new("P").with_attr("Name", "Dst");
        dst.push_text(format!("{}#in:{}", c.to.block.index(), c.to.port));
        line.push(src);
        line.push(dst);
        system.push(line);
    }
    system
}

/// Converts a parsed `<Model>` element back to a model.
///
/// # Errors
///
/// Returns [`FormatError::Schema`] when required elements/attributes are
/// missing or endpoints are malformed.
pub fn model_from_xml(root: &Element) -> Result<Model, FormatError> {
    if root.name != "Model" {
        return Err(FormatError::Schema(format!(
            "expected <Model> root, found <{}>",
            root.name
        )));
    }
    let name = root
        .attr("Name")
        .ok_or_else(|| FormatError::Schema("<Model> missing Name".into()))?;
    let system = root
        .child("System")
        .ok_or_else(|| FormatError::Schema("<Model> missing <System>".into()))?;
    system_from_xml(name, system)
}

fn system_from_xml(name: &str, system: &Element) -> Result<Model, FormatError> {
    let mut model = Model::new(name);
    let mut sid_of = Vec::new(); // declared SID per insertion order
    for e in system.children_named("Block") {
        let type_name = e
            .attr("BlockType")
            .ok_or_else(|| FormatError::Schema("<Block> missing BlockType".into()))?;
        let block_name = e
            .attr("Name")
            .ok_or_else(|| FormatError::Schema("<Block> missing Name".into()))?;
        let sid: usize = e
            .attr("SID")
            .ok_or_else(|| FormatError::Schema("<Block> missing SID".into()))?
            .parse()
            .map_err(|_| FormatError::Schema("non-numeric SID".into()))?;
        let get = |key: &str| -> Option<String> {
            e.children_named("P")
                .find(|p| p.attr("Name") == Some(key))
                .map(|p| p.text())
        };
        let subsystem = match e.child("System") {
            Some(inner) => {
                let inner_name = inner.attr("Name").unwrap_or(block_name);
                Some(system_from_xml(inner_name, inner)?)
            }
            None => None,
        };
        let kind = decode(type_name, &get, subsystem)?;
        model.add(Block::new(block_name, kind));
        sid_of.push(sid);
    }
    // SIDs must identify blocks uniquely; map SID → insertion index
    let lookup = |sid: usize| -> Result<BlockId, FormatError> {
        sid_of
            .iter()
            .position(|&s| s == sid)
            .map(BlockId::from_index)
            .ok_or_else(|| FormatError::Schema(format!("line references unknown SID {sid}")))
    };
    for line in system.children_named("Line") {
        let get = |key: &str| -> Result<String, FormatError> {
            line.children_named("P")
                .find(|p| p.attr("Name") == Some(key))
                .map(|p| p.text())
                .ok_or_else(|| FormatError::Schema(format!("<Line> missing {key}")))
        };
        let (src_block, src_port) = parse_endpoint(&get("Src")?, "out")?;
        let (dst_block, dst_port) = parse_endpoint(&get("Dst")?, "in")?;
        model
            .connect(lookup(src_block)?, src_port, lookup(dst_block)?, dst_port)
            .map_err(|e| FormatError::Model(e.to_string()))?;
    }
    Ok(model)
}

fn parse_endpoint(text: &str, dir: &str) -> Result<(usize, usize), FormatError> {
    let (sid, rest) = text
        .split_once('#')
        .ok_or_else(|| FormatError::Schema(format!("bad endpoint '{text}'")))?;
    let (kind, port) = rest
        .split_once(':')
        .ok_or_else(|| FormatError::Schema(format!("bad endpoint '{text}'")))?;
    if kind != dir {
        return Err(FormatError::Schema(format!(
            "endpoint '{text}' should be an '{dir}' port"
        )));
    }
    let sid = sid
        .trim()
        .parse()
        .map_err(|_| FormatError::Schema(format!("bad endpoint '{text}'")))?;
    let port = port
        .trim()
        .parse()
        .map_err(|_| FormatError::Schema(format!("bad endpoint '{text}'")))?;
    Ok((sid, port))
}

#[cfg(test)]
mod tests {
    use super::*;
    use frodo_model::{BlockKind, SelectorMode, Tensor};
    use frodo_ranges::Shape;

    fn figure1() -> Model {
        let mut m = Model::new("Convolution");
        let i = m.add(Block::new(
            "in",
            BlockKind::Inport {
                index: 0,
                shape: Shape::Vector(50),
            },
        ));
        let k = m.add(Block::new(
            "k",
            BlockKind::Constant {
                value: Tensor::vector(vec![0.1; 11]),
            },
        ));
        let c = m.add(Block::new("conv", BlockKind::Convolution));
        let s = m.add(Block::new(
            "sel",
            BlockKind::Selector {
                mode: SelectorMode::StartEnd { start: 5, end: 55 },
            },
        ));
        let o = m.add(Block::new("out", BlockKind::Outport { index: 0 }));
        m.connect(i, 0, c, 0).unwrap();
        m.connect(k, 0, c, 1).unwrap();
        m.connect(c, 0, s, 0).unwrap();
        m.connect(s, 0, o, 0).unwrap();
        m
    }

    #[test]
    fn figure1_roundtrips_through_slx() {
        let m = figure1();
        let bytes = write_slx(&m).unwrap();
        let back = read_slx(&bytes, &frodo_obs::Trace::noop()).unwrap();
        assert_eq!(back, m);
    }

    #[test]
    fn archive_layout_matches_slx_conventions() {
        let bytes = write_slx(&figure1()).unwrap();
        let ar = Archive::from_bytes(&bytes).unwrap();
        assert!(ar.get("[Content_Types].xml").is_some());
        assert!(ar.get("metadata/coreProperties.xml").is_some());
        assert!(ar.get(BLOCKDIAGRAM_PATH).is_some());
    }

    #[test]
    fn subsystems_nest_as_inner_systems() {
        let mut inner = Model::new("inner");
        let i = inner.add(Block::new(
            "i",
            BlockKind::Inport {
                index: 0,
                shape: Shape::Vector(4),
            },
        ));
        let g = inner.add(Block::new("g", BlockKind::Gain { gain: 2.0 }));
        let o = inner.add(Block::new("o", BlockKind::Outport { index: 0 }));
        inner.connect(i, 0, g, 0).unwrap();
        inner.connect(g, 0, o, 0).unwrap();
        let mut m = Model::new("outer");
        let x = m.add(Block::new(
            "x",
            BlockKind::Inport {
                index: 0,
                shape: Shape::Vector(4),
            },
        ));
        let s = m.add(Block::new("sub", BlockKind::Subsystem(Box::new(inner))));
        let y = m.add(Block::new("y", BlockKind::Outport { index: 0 }));
        m.connect(x, 0, s, 0).unwrap();
        m.connect(s, 0, y, 0).unwrap();
        let back = read_slx(&write_slx(&m).unwrap(), &frodo_obs::Trace::noop()).unwrap();
        assert_eq!(back, m);
    }

    #[test]
    fn every_benchmark_model_roundtrips() {
        for bench in frodo_benchmodels_proxy() {
            let bytes = write_slx(&bench).unwrap();
            let back = read_slx(&bytes, &frodo_obs::Trace::noop()).unwrap();
            assert_eq!(back, bench);
        }
    }

    /// A few structurally diverse models standing in for the full suite
    /// (the complete suite roundtrip lives in the integration tests, where
    /// `frodo-benchmodels` is available without a dependency cycle).
    fn frodo_benchmodels_proxy() -> Vec<Model> {
        let mut with_delay = Model::new("delay");
        let i = with_delay.add(Block::new(
            "i",
            BlockKind::Inport {
                index: 0,
                shape: Shape::Scalar,
            },
        ));
        let z = with_delay.add(Block::new(
            "z",
            BlockKind::UnitDelay {
                initial: Tensor::scalar(1.5),
            },
        ));
        let o = with_delay.add(Block::new("o", BlockKind::Outport { index: 0 }));
        with_delay.connect(i, 0, z, 0).unwrap();
        with_delay.connect(z, 0, o, 0).unwrap();

        let mut with_names = Model::new("names & <specials>");
        let a = with_names.add(Block::new(
            "weird \"name\" <here>",
            BlockKind::Constant {
                value: Tensor::scalar(1.0),
            },
        ));
        let t = with_names.add(Block::new("sink & done", BlockKind::Terminator));
        with_names.connect(a, 0, t, 0).unwrap();

        vec![figure1(), with_delay, with_names]
    }

    #[test]
    #[allow(deprecated)]
    fn deprecated_traced_shim_still_works() {
        let m = figure1();
        let bytes = write_slx(&m).unwrap();
        let via_shim = read_slx_traced(&bytes, &frodo_obs::Trace::noop()).unwrap();
        assert_eq!(
            via_shim,
            read_slx(&bytes, &frodo_obs::Trace::noop()).unwrap()
        );
    }

    #[test]
    fn missing_diagram_is_reported() {
        let ar = Archive::new();
        let err = read_slx(&ar.to_bytes(), &frodo_obs::Trace::noop()).unwrap_err();
        assert!(err.to_string().contains("blockdiagram"));
    }

    #[test]
    fn bad_endpoint_is_reported() {
        let text = r#"<Model Name="m"><System>
            <Block BlockType="terminator" Name="t" SID="0"/>
            <Line><P Name="Src">zero#out:0</P><P Name="Dst">0#in:0</P></Line>
        </System></Model>"#;
        let root = parse_xml(text).unwrap();
        assert!(model_from_xml(&root).is_err());
    }
}
