//! Errors shared by the file-format modules.

use std::fmt;

/// Errors raised while reading or writing model files.
#[derive(Debug, Clone, PartialEq)]
pub enum FormatError {
    /// The ZIP container structure is invalid.
    Zip(String),
    /// A DEFLATE stream is malformed.
    Deflate(String),
    /// A stored CRC-32 does not match the decompressed data.
    CrcMismatch {
        /// Entry name whose checksum failed.
        entry: String,
    },
    /// The XML document is malformed.
    Xml {
        /// Byte offset of the problem.
        offset: usize,
        /// Explanation.
        reason: String,
    },
    /// The document parses but does not describe a valid model.
    Schema(String),
    /// The `.mdl` text is malformed.
    Mdl {
        /// Line number (1-based) of the problem.
        line: usize,
        /// Explanation.
        reason: String,
    },
    /// A model-level error (bad ports, shapes) while rebuilding the model.
    Model(String),
}

impl fmt::Display for FormatError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FormatError::Zip(r) => write!(f, "invalid zip archive: {r}"),
            FormatError::Deflate(r) => write!(f, "invalid deflate stream: {r}"),
            FormatError::CrcMismatch { entry } => {
                write!(f, "crc mismatch in zip entry '{entry}'")
            }
            FormatError::Xml { offset, reason } => {
                write!(f, "invalid xml at byte {offset}: {reason}")
            }
            FormatError::Schema(r) => write!(f, "invalid model document: {r}"),
            FormatError::Mdl { line, reason } => {
                write!(f, "invalid mdl at line {line}: {reason}")
            }
            FormatError::Model(r) => write!(f, "invalid model: {r}"),
        }
    }
}

impl std::error::Error for FormatError {}

impl From<frodo_model::ModelError> for FormatError {
    fn from(e: frodo_model::ModelError) -> Self {
        FormatError::Model(e.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = FormatError::Xml {
            offset: 42,
            reason: "unexpected '<'".into(),
        };
        assert!(e.to_string().contains("42"));
        assert!(e.to_string().contains("unexpected"));
    }
}
