//! A classic `.mdl`-style textual model format.
//!
//! Simulink's original text format uses nested braced sections with
//! `Key value` properties. This module implements a faithful-in-spirit
//! subset:
//!
//! ```text
//! Model {
//!   Name "Convolution"
//!   System {
//!     Block {
//!       BlockType selector
//!       Name "sel"
//!       SID 3
//!       Mode start_end
//!       Start 5
//!       End 55
//!     }
//!     Line {
//!       Src "2#out:0"
//!       Dst "3#in:0"
//!     }
//!   }
//! }
//! ```

use crate::params::{decode, encode};
use crate::FormatError;
use frodo_model::{Block, BlockId, Model};
use std::fmt::Write as _;

// ---------------------------------------------------------------------------
// generic section tree
// ---------------------------------------------------------------------------

#[derive(Debug, Clone, PartialEq, Default)]
struct Section {
    name: String,
    props: Vec<(String, String)>,
    subs: Vec<Section>,
}

impl Section {
    fn prop(&self, key: &str) -> Option<&str> {
        self.props
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v.as_str())
    }

    fn subs_named<'a>(&'a self, name: &'a str) -> impl Iterator<Item = &'a Section> + 'a {
        self.subs.iter().filter(move |s| s.name == name)
    }
}

fn quote(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

fn unquote(s: &str, line: usize) -> Result<String, FormatError> {
    let inner = s
        .strip_prefix('"')
        .and_then(|t| t.strip_suffix('"'))
        .ok_or(FormatError::Mdl {
            line,
            reason: "unterminated string".into(),
        })?;
    let mut out = String::with_capacity(inner.len());
    let mut chars = inner.chars();
    while let Some(c) = chars.next() {
        if c == '\\' {
            match chars.next() {
                Some('"') => out.push('"'),
                Some('\\') => out.push('\\'),
                Some('n') => out.push('\n'),
                _ => {
                    return Err(FormatError::Mdl {
                        line,
                        reason: "bad escape".into(),
                    });
                }
            }
        } else {
            out.push(c);
        }
    }
    Ok(out)
}

fn write_section(s: &Section, depth: usize, out: &mut String) {
    let pad = "  ".repeat(depth);
    let _ = writeln!(out, "{pad}{} {{", s.name);
    for (k, v) in &s.props {
        let _ = writeln!(out, "{pad}  {k} {v}");
    }
    for sub in &s.subs {
        write_section(sub, depth + 1, out);
    }
    let _ = writeln!(out, "{pad}}}");
}

fn parse_sections(text: &str) -> Result<Section, FormatError> {
    let mut stack: Vec<Section> = Vec::new();
    let mut root: Option<Section> = None;
    for (idx, raw) in text.lines().enumerate() {
        let line_no = idx + 1;
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        if let Some(name) = line.strip_suffix('{') {
            let name = name.trim();
            if name.is_empty() || name.contains(char::is_whitespace) {
                return Err(FormatError::Mdl {
                    line: line_no,
                    reason: format!("bad section header '{line}'"),
                });
            }
            stack.push(Section {
                name: name.to_string(),
                ..Section::default()
            });
        } else if line == "}" {
            let done = stack.pop().ok_or(FormatError::Mdl {
                line: line_no,
                reason: "unmatched '}'".into(),
            })?;
            match stack.last_mut() {
                Some(parent) => parent.subs.push(done),
                None => {
                    if root.is_some() {
                        return Err(FormatError::Mdl {
                            line: line_no,
                            reason: "multiple top-level sections".into(),
                        });
                    }
                    root = Some(done);
                }
            }
        } else {
            let (key, value) = line
                .split_once(char::is_whitespace)
                .ok_or(FormatError::Mdl {
                    line: line_no,
                    reason: format!("property '{line}' has no value"),
                })?;
            let value = value.trim();
            let decoded = if value.starts_with('"') {
                unquote(value, line_no)?
            } else {
                value.to_string()
            };
            let section = stack.last_mut().ok_or(FormatError::Mdl {
                line: line_no,
                reason: "property outside any section".into(),
            })?;
            section.props.push((key.to_string(), decoded));
        }
    }
    if !stack.is_empty() {
        return Err(FormatError::Mdl {
            line: text.lines().count(),
            reason: "unclosed section".into(),
        });
    }
    root.ok_or(FormatError::Mdl {
        line: 1,
        reason: "empty document".into(),
    })
}

// ---------------------------------------------------------------------------
// model mapping
// ---------------------------------------------------------------------------

/// Serializes a model to `.mdl` text.
pub fn write_mdl(model: &Model) -> String {
    let mut out = String::new();
    write_section(&model_to_section(model), 0, &mut out);
    out
}

fn model_to_section(model: &Model) -> Section {
    Section {
        name: "Model".into(),
        props: vec![("Name".into(), quote(model.name()))],
        subs: vec![system_to_section(model)],
    }
}

fn system_to_section(model: &Model) -> Section {
    let mut system = Section {
        name: "System".into(),
        props: vec![("Name".into(), quote(model.name()))],
        ..Section::default()
    };
    for (id, block) in model.iter() {
        let enc = encode(&block.kind);
        let mut props = vec![
            ("BlockType".to_string(), enc.type_name.to_string()),
            ("Name".to_string(), quote(&block.name)),
            ("SID".to_string(), id.index().to_string()),
        ];
        for (k, v) in &enc.params {
            props.push((k.to_string(), v.clone()));
        }
        let subs = match &enc.subsystem {
            Some(inner) => vec![system_to_section(inner)],
            None => Vec::new(),
        };
        system.subs.push(Section {
            name: "Block".into(),
            props,
            subs,
        });
    }
    for c in model.connections() {
        system.subs.push(Section {
            name: "Line".into(),
            props: vec![
                (
                    "Src".into(),
                    quote(&format!("{}#out:{}", c.from.block.index(), c.from.port)),
                ),
                (
                    "Dst".into(),
                    quote(&format!("{}#in:{}", c.to.block.index(), c.to.port)),
                ),
            ],
            subs: Vec::new(),
        });
    }
    system
}

/// Parses `.mdl` text back into a model, recorded as an `mdl_parse`
/// span (with an `mdl_bytes` counter) on the given trace. Pass
/// `&Trace::noop()` when no instrumentation is wanted.
///
/// # Errors
///
/// Returns [`FormatError::Mdl`] for syntax problems and
/// [`FormatError::Schema`] for semantic ones.
pub fn read_mdl(text: &str, trace: &frodo_obs::Trace) -> Result<Model, FormatError> {
    let span = trace.span("mdl_parse");
    span.count("mdl_bytes", text.len() as u64);
    let root = parse_sections(text)?;
    if root.name != "Model" {
        return Err(FormatError::Schema(format!(
            "expected Model section, found {}",
            root.name
        )));
    }
    let name = root
        .prop("Name")
        .ok_or_else(|| FormatError::Schema("Model missing Name".into()))?;
    let system = root
        .subs_named("System")
        .next()
        .ok_or_else(|| FormatError::Schema("Model missing System".into()))?;
    system_to_model(name, system)
}

/// Deprecated alias of [`read_mdl`], kept one release for callers of the
/// old split traced/untraced entry points.
///
/// # Errors
///
/// Returns [`FormatError::Mdl`] for syntax problems and
/// [`FormatError::Schema`] for semantic ones.
#[deprecated(since = "0.7.0", note = "use `read_mdl(text, trace)` instead")]
pub fn read_mdl_traced(text: &str, trace: &frodo_obs::Trace) -> Result<Model, FormatError> {
    read_mdl(text, trace)
}

fn system_to_model(name: &str, system: &Section) -> Result<Model, FormatError> {
    let mut model = Model::new(name);
    let mut sid_of = Vec::new();
    for b in system.subs_named("Block") {
        let type_name = b
            .prop("BlockType")
            .ok_or_else(|| FormatError::Schema("Block missing BlockType".into()))?;
        let block_name = b
            .prop("Name")
            .ok_or_else(|| FormatError::Schema("Block missing Name".into()))?;
        let sid: usize = b
            .prop("SID")
            .ok_or_else(|| FormatError::Schema("Block missing SID".into()))?
            .parse()
            .map_err(|_| FormatError::Schema("non-numeric SID".into()))?;
        let get = |key: &str| -> Option<String> { b.prop(key).map(str::to_string) };
        let subsystem = match b.subs_named("System").next() {
            Some(inner) => {
                let inner_name = inner.prop("Name").unwrap_or(block_name);
                Some(system_to_model(inner_name, inner)?)
            }
            None => None,
        };
        model.add(Block::new(block_name, decode(type_name, &get, subsystem)?));
        sid_of.push(sid);
    }
    let lookup = |sid: usize| -> Result<BlockId, FormatError> {
        sid_of
            .iter()
            .position(|&s| s == sid)
            .map(BlockId::from_index)
            .ok_or_else(|| FormatError::Schema(format!("line references unknown SID {sid}")))
    };
    for line in system.subs_named("Line") {
        let endpoint = |key: &str| -> Result<(usize, usize), FormatError> {
            let raw = line
                .prop(key)
                .ok_or_else(|| FormatError::Schema(format!("Line missing {key}")))?;
            let (sid, rest) = raw
                .split_once('#')
                .ok_or_else(|| FormatError::Schema(format!("bad endpoint '{raw}'")))?;
            let (_, port) = rest
                .split_once(':')
                .ok_or_else(|| FormatError::Schema(format!("bad endpoint '{raw}'")))?;
            Ok((
                sid.parse()
                    .map_err(|_| FormatError::Schema(format!("bad endpoint '{raw}'")))?,
                port.parse()
                    .map_err(|_| FormatError::Schema(format!("bad endpoint '{raw}'")))?,
            ))
        };
        let (sb, sp) = endpoint("Src")?;
        let (db, dp) = endpoint("Dst")?;
        model
            .connect(lookup(sb)?, sp, lookup(db)?, dp)
            .map_err(|e| FormatError::Model(e.to_string()))?;
    }
    Ok(model)
}

#[cfg(test)]
mod tests {
    use super::*;
    use frodo_model::{BlockKind, SelectorMode, Tensor};
    use frodo_ranges::Shape;

    fn sample() -> Model {
        let mut m = Model::new("sample");
        let i = m.add(Block::new(
            "in",
            BlockKind::Inport {
                index: 0,
                shape: Shape::Vector(20),
            },
        ));
        let s = m.add(Block::new(
            "sel",
            BlockKind::Selector {
                mode: SelectorMode::StartEnd { start: 2, end: 12 },
            },
        ));
        let k = m.add(Block::new(
            "taps",
            BlockKind::FirFilter {
                coeffs: vec![0.5, 0.5],
            },
        ));
        let o = m.add(Block::new("out", BlockKind::Outport { index: 0 }));
        m.connect(i, 0, s, 0).unwrap();
        m.connect(s, 0, k, 0).unwrap();
        m.connect(k, 0, o, 0).unwrap();
        m
    }

    #[test]
    fn roundtrip_preserves_model() {
        let m = sample();
        let text = write_mdl(&m);
        let back = read_mdl(&text, &frodo_obs::Trace::noop()).unwrap();
        assert_eq!(back, m);
    }

    #[test]
    fn output_looks_like_mdl() {
        let text = write_mdl(&sample());
        assert!(text.starts_with("Model {"));
        assert!(text.contains("BlockType selector"));
        assert!(text.contains("Start 2"));
        assert!(text.contains("Line {"));
    }

    #[test]
    fn quoted_names_with_escapes_roundtrip() {
        let mut m = Model::new("weird \"quoted\" name\nwith newline");
        let a = m.add(Block::new(
            "block \\ with \" specials",
            BlockKind::Constant {
                value: Tensor::scalar(1.0),
            },
        ));
        let t = m.add(Block::new("t", BlockKind::Terminator));
        m.connect(a, 0, t, 0).unwrap();
        let back = read_mdl(&write_mdl(&m), &frodo_obs::Trace::noop()).unwrap();
        assert_eq!(back, m);
    }

    #[test]
    fn subsystem_roundtrip() {
        let mut inner = Model::new("inner");
        let i = inner.add(Block::new(
            "i",
            BlockKind::Inport {
                index: 0,
                shape: Shape::Scalar,
            },
        ));
        let o = inner.add(Block::new("o", BlockKind::Outport { index: 0 }));
        inner.connect(i, 0, o, 0).unwrap();
        let mut m = Model::new("outer");
        let c = m.add(Block::new(
            "c",
            BlockKind::Constant {
                value: Tensor::scalar(2.0),
            },
        ));
        let s = m.add(Block::new("sub", BlockKind::Subsystem(Box::new(inner))));
        let t = m.add(Block::new("t", BlockKind::Terminator));
        m.connect(c, 0, s, 0).unwrap();
        m.connect(s, 0, t, 0).unwrap();
        assert_eq!(
            read_mdl(&write_mdl(&m), &frodo_obs::Trace::noop()).unwrap(),
            m
        );
    }

    #[test]
    fn comments_and_blank_lines_are_ignored() {
        let text = "# header comment\n\nModel {\n  Name \"m\"\n  System {\n  }\n}\n";
        let m = read_mdl(text, &frodo_obs::Trace::noop()).unwrap();
        assert_eq!(m.name(), "m");
        assert!(m.is_empty());
    }

    #[test]
    fn syntax_errors_carry_line_numbers() {
        let err = read_mdl("Model {\n  Name \"m\"\n  }}\n", &frodo_obs::Trace::noop()).unwrap_err();
        match err {
            FormatError::Mdl { line, .. } => assert_eq!(line, 3),
            e => panic!("unexpected {e}"),
        }
    }

    #[test]
    fn unclosed_section_is_reported() {
        assert!(matches!(
            read_mdl("Model {\n  Name \"m\"\n", &frodo_obs::Trace::noop()),
            Err(FormatError::Mdl { .. })
        ));
    }

    #[test]
    fn duplicate_input_wire_is_rejected() {
        // two Lines into the same destination port
        let text = "Model {\n  Name \"m\"\n  System {\n    Block {\n      BlockType constant\n      Name \"c\"\n      SID 0\n      Shape scalar\n      Value [1.0]\n    }\n    Block {\n      BlockType terminator\n      Name \"t\"\n      SID 1\n    }\n    Line {\n      Src \"0#out:0\"\n      Dst \"1#in:0\"\n    }\n    Line {\n      Src \"0#out:0\"\n      Dst \"1#in:0\"\n    }\n  }\n}\n";
        let err = read_mdl(text, &frodo_obs::Trace::noop()).unwrap_err();
        assert!(err.to_string().contains("more than one"), "{err}");
    }

    #[test]
    fn unknown_sid_in_line_is_reported() {
        let text = "Model {\n  Name \"m\"\n  System {\n    Block {\n      BlockType terminator\n      Name \"t\"\n      SID 0\n    }\n    Line {\n      Src \"9#out:0\"\n      Dst \"0#in:0\"\n    }\n  }\n}\n";
        let err = read_mdl(text, &frodo_obs::Trace::noop()).unwrap_err();
        assert!(err.to_string().contains("unknown SID"));
    }
}
