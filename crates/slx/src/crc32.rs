//! CRC-32 (IEEE 802.3, polynomial `0xEDB88320`), as used by ZIP.

/// Computes the CRC-32 of a byte slice.
///
/// # Example
///
/// ```
/// // the classic check value
/// assert_eq!(frodo_slx::crc32::crc32(b"123456789"), 0xCBF4_3926);
/// ```
pub fn crc32(data: &[u8]) -> u32 {
    let mut hasher = Crc32::new();
    hasher.update(data);
    hasher.finish()
}

/// Incremental CRC-32 hasher.
#[derive(Debug, Clone)]
pub struct Crc32 {
    state: u32,
}

const fn build_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 {
                0xEDB8_8320 ^ (c >> 1)
            } else {
                c >> 1
            };
            k += 1;
        }
        table[i] = c;
        i += 1;
    }
    table
}

static TABLE: [u32; 256] = build_table();

impl Crc32 {
    /// Starts a new hash.
    pub fn new() -> Self {
        Crc32 { state: 0xFFFF_FFFF }
    }

    /// Feeds bytes into the hash.
    pub fn update(&mut self, data: &[u8]) {
        for &b in data {
            let idx = ((self.state ^ b as u32) & 0xFF) as usize;
            self.state = TABLE[idx] ^ (self.state >> 8);
        }
    }

    /// Finishes and returns the CRC value.
    pub fn finish(&self) -> u32 {
        self.state ^ 0xFFFF_FFFF
    }
}

impl Default for Crc32 {
    fn default() -> Self {
        Crc32::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vectors() {
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b"a"), 0xE8B7_BE43);
        assert_eq!(
            crc32(b"The quick brown fox jumps over the lazy dog"),
            0x414F_A339
        );
    }

    #[test]
    fn incremental_equals_oneshot() {
        let data = b"hello crc32 world";
        let mut h = Crc32::new();
        h.update(&data[..5]);
        h.update(&data[5..]);
        assert_eq!(h.finish(), crc32(data));
    }

    #[test]
    fn sensitive_to_single_bit() {
        assert_ne!(crc32(b"abc"), crc32(b"abd"));
    }
}
