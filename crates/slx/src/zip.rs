//! Minimal ZIP archive reader and writer (the `.slx` container).
//!
//! Supports what Simulink archives use: compression method 0 (*stored*) and
//! 8 (*deflate*), CRC-32 validation, and central-directory navigation. No
//! ZIP64, encryption, or data descriptors — none of which appear in `.slx`.

use crate::crc32::crc32;
use crate::inflate::{deflate_fixed, inflate};
use crate::FormatError;

const LOCAL_SIG: u32 = 0x0403_4B50;
const CENTRAL_SIG: u32 = 0x0201_4B50;
const EOCD_SIG: u32 = 0x0605_4B50;

/// How an entry's payload is encoded.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Method {
    /// Method 0: stored verbatim.
    Stored,
    /// Method 8: DEFLATE.
    Deflate,
}

/// One file inside an archive.
#[derive(Debug, Clone, PartialEq)]
pub struct Entry {
    /// Path inside the archive (forward slashes).
    pub name: String,
    /// Decompressed payload.
    pub data: Vec<u8>,
}

/// An in-memory ZIP archive.
///
/// # Example
///
/// ```
/// use frodo_slx::zip::{Archive, Method};
///
/// # fn main() -> Result<(), frodo_slx::FormatError> {
/// let mut ar = Archive::new();
/// ar.add("dir/hello.txt", b"hi".to_vec(), Method::Deflate);
/// let bytes = ar.to_bytes();
/// let back = Archive::from_bytes(&bytes)?;
/// assert_eq!(back.get("dir/hello.txt").unwrap(), b"hi");
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Archive {
    entries: Vec<Entry>,
    methods: Vec<Method>,
}

fn rd_u16(b: &[u8], at: usize) -> Result<u16, FormatError> {
    b.get(at..at + 2)
        .map(|s| u16::from_le_bytes([s[0], s[1]]))
        .ok_or_else(|| FormatError::Zip("truncated field".into()))
}

fn rd_u32(b: &[u8], at: usize) -> Result<u32, FormatError> {
    b.get(at..at + 4)
        .map(|s| u32::from_le_bytes([s[0], s[1], s[2], s[3]]))
        .ok_or_else(|| FormatError::Zip("truncated field".into()))
}

impl Archive {
    /// Creates an empty archive.
    pub fn new() -> Self {
        Archive::default()
    }

    /// Adds an entry (replacing any existing entry with the same name).
    pub fn add(&mut self, name: impl Into<String>, data: Vec<u8>, method: Method) {
        let name = name.into();
        if let Some(i) = self.entries.iter().position(|e| e.name == name) {
            self.entries[i].data = data;
            self.methods[i] = method;
        } else {
            self.entries.push(Entry { name, data });
            self.methods.push(method);
        }
    }

    /// Looks up an entry's payload by exact name.
    pub fn get(&self, name: &str) -> Option<&[u8]> {
        self.entries
            .iter()
            .find(|e| e.name == name)
            .map(|e| e.data.as_slice())
    }

    /// All entries in insertion order.
    pub fn entries(&self) -> &[Entry] {
        &self.entries
    }

    /// Entry names in insertion order.
    pub fn names(&self) -> Vec<&str> {
        self.entries.iter().map(|e| e.name.as_str()).collect()
    }

    /// Serializes the archive.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::new();
        let mut central = Vec::new();
        for (entry, &method) in self.entries.iter().zip(&self.methods) {
            let offset = out.len() as u32;
            let crc = crc32(&entry.data);
            let (payload, method_id) = match method {
                Method::Stored => (entry.data.clone(), 0u16),
                Method::Deflate => (deflate_fixed(&entry.data), 8u16),
            };
            let name = entry.name.as_bytes();
            // local header
            out.extend_from_slice(&LOCAL_SIG.to_le_bytes());
            out.extend_from_slice(&20u16.to_le_bytes()); // version needed
            out.extend_from_slice(&0u16.to_le_bytes()); // flags
            out.extend_from_slice(&method_id.to_le_bytes());
            out.extend_from_slice(&0u16.to_le_bytes()); // mod time
            out.extend_from_slice(&0u16.to_le_bytes()); // mod date
            out.extend_from_slice(&crc.to_le_bytes());
            out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
            out.extend_from_slice(&(entry.data.len() as u32).to_le_bytes());
            out.extend_from_slice(&(name.len() as u16).to_le_bytes());
            out.extend_from_slice(&0u16.to_le_bytes()); // extra len
            out.extend_from_slice(name);
            out.extend_from_slice(&payload);
            // central record
            central.extend_from_slice(&CENTRAL_SIG.to_le_bytes());
            central.extend_from_slice(&20u16.to_le_bytes()); // made by
            central.extend_from_slice(&20u16.to_le_bytes()); // needed
            central.extend_from_slice(&0u16.to_le_bytes());
            central.extend_from_slice(&method_id.to_le_bytes());
            central.extend_from_slice(&0u16.to_le_bytes());
            central.extend_from_slice(&0u16.to_le_bytes());
            central.extend_from_slice(&crc.to_le_bytes());
            central.extend_from_slice(&(payload.len() as u32).to_le_bytes());
            central.extend_from_slice(&(entry.data.len() as u32).to_le_bytes());
            central.extend_from_slice(&(name.len() as u16).to_le_bytes());
            central.extend_from_slice(&0u16.to_le_bytes()); // extra
            central.extend_from_slice(&0u16.to_le_bytes()); // comment
            central.extend_from_slice(&0u16.to_le_bytes()); // disk
            central.extend_from_slice(&0u16.to_le_bytes()); // internal attrs
            central.extend_from_slice(&0u32.to_le_bytes()); // external attrs
            central.extend_from_slice(&offset.to_le_bytes());
            central.extend_from_slice(name);
        }
        let cd_offset = out.len() as u32;
        out.extend_from_slice(&central);
        let cd_size = out.len() as u32 - cd_offset;
        // end of central directory
        out.extend_from_slice(&EOCD_SIG.to_le_bytes());
        out.extend_from_slice(&0u16.to_le_bytes()); // disk
        out.extend_from_slice(&0u16.to_le_bytes()); // cd disk
        out.extend_from_slice(&(self.entries.len() as u16).to_le_bytes());
        out.extend_from_slice(&(self.entries.len() as u16).to_le_bytes());
        out.extend_from_slice(&cd_size.to_le_bytes());
        out.extend_from_slice(&cd_offset.to_le_bytes());
        out.extend_from_slice(&0u16.to_le_bytes()); // comment len
        out
    }

    /// Parses an archive, decompressing and CRC-checking every entry.
    ///
    /// # Errors
    ///
    /// Returns [`FormatError::Zip`] for structural problems,
    /// [`FormatError::Deflate`] for bad streams, and
    /// [`FormatError::CrcMismatch`] when a checksum fails.
    pub fn from_bytes(bytes: &[u8]) -> Result<Self, FormatError> {
        // find EOCD by scanning backwards (comments make it float)
        let eocd = (0..=bytes.len().saturating_sub(22))
            .rev()
            .find(|&i| rd_u32(bytes, i).map(|s| s == EOCD_SIG).unwrap_or(false))
            .ok_or_else(|| FormatError::Zip("missing end-of-central-directory".into()))?;
        let count = rd_u16(bytes, eocd + 10)? as usize;
        let cd_offset = rd_u32(bytes, eocd + 16)? as usize;

        let mut archive = Archive::new();
        let mut pos = cd_offset;
        for _ in 0..count {
            if rd_u32(bytes, pos)? != CENTRAL_SIG {
                return Err(FormatError::Zip("bad central directory record".into()));
            }
            let method_id = rd_u16(bytes, pos + 10)?;
            let crc = rd_u32(bytes, pos + 16)?;
            let comp_len = rd_u32(bytes, pos + 20)? as usize;
            let raw_len = rd_u32(bytes, pos + 24)? as usize;
            let name_len = rd_u16(bytes, pos + 28)? as usize;
            let extra_len = rd_u16(bytes, pos + 30)? as usize;
            let comment_len = rd_u16(bytes, pos + 32)? as usize;
            let local_offset = rd_u32(bytes, pos + 42)? as usize;
            let name_bytes = bytes
                .get(pos + 46..pos + 46 + name_len)
                .ok_or_else(|| FormatError::Zip("truncated entry name".into()))?;
            let name = String::from_utf8(name_bytes.to_vec())
                .map_err(|_| FormatError::Zip("entry name is not UTF-8".into()))?;
            pos += 46 + name_len + extra_len + comment_len;

            // jump to the local header for the payload
            if rd_u32(bytes, local_offset)? != LOCAL_SIG {
                return Err(FormatError::Zip("bad local header".into()));
            }
            let l_name = rd_u16(bytes, local_offset + 26)? as usize;
            let l_extra = rd_u16(bytes, local_offset + 28)? as usize;
            let data_start = local_offset + 30 + l_name + l_extra;
            let payload = bytes
                .get(data_start..data_start + comp_len)
                .ok_or_else(|| FormatError::Zip("truncated entry payload".into()))?;

            let data = match method_id {
                0 => payload.to_vec(),
                8 => inflate(payload)?,
                m => return Err(FormatError::Zip(format!("unsupported method {m}"))),
            };
            if data.len() != raw_len {
                return Err(FormatError::Zip(format!(
                    "entry '{name}': size {} != declared {raw_len}",
                    data.len()
                )));
            }
            if crc32(&data) != crc {
                return Err(FormatError::CrcMismatch { entry: name });
            }
            let method = if method_id == 0 {
                Method::Stored
            } else {
                Method::Deflate
            };
            archive.add(name, data, method);
        }
        Ok(archive)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_stored_and_deflate() {
        let mut ar = Archive::new();
        ar.add("a.txt", b"alpha".to_vec(), Method::Stored);
        ar.add("sub/b.bin", vec![0u8, 1, 2, 255, 254], Method::Deflate);
        let bytes = ar.to_bytes();
        let back = Archive::from_bytes(&bytes).unwrap();
        assert_eq!(back.get("a.txt").unwrap(), b"alpha");
        assert_eq!(back.get("sub/b.bin").unwrap(), &[0, 1, 2, 255, 254]);
        assert_eq!(back.names(), vec!["a.txt", "sub/b.bin"]);
    }

    #[test]
    fn empty_archive_roundtrips() {
        let bytes = Archive::new().to_bytes();
        let back = Archive::from_bytes(&bytes).unwrap();
        assert!(back.entries().is_empty());
    }

    #[test]
    fn add_replaces_same_name() {
        let mut ar = Archive::new();
        ar.add("x", b"one".to_vec(), Method::Stored);
        ar.add("x", b"two".to_vec(), Method::Stored);
        assert_eq!(ar.entries().len(), 1);
        assert_eq!(ar.get("x").unwrap(), b"two");
    }

    #[test]
    fn corrupted_payload_fails_crc() {
        let mut ar = Archive::new();
        ar.add("f", b"payload-payload".to_vec(), Method::Stored);
        let mut bytes = ar.to_bytes();
        // flip one payload byte (local header is 30 + 1 name byte)
        bytes[31] ^= 0xFF;
        assert!(matches!(
            Archive::from_bytes(&bytes),
            Err(FormatError::CrcMismatch { .. })
        ));
    }

    #[test]
    fn garbage_is_rejected() {
        assert!(Archive::from_bytes(b"not a zip at all").is_err());
        assert!(Archive::from_bytes(&[]).is_err());
    }

    #[test]
    fn trailing_comment_space_is_tolerated() {
        // EOCD scan must find the signature even with bytes after it
        let mut ar = Archive::new();
        ar.add("f", b"data".to_vec(), Method::Stored);
        let mut bytes = ar.to_bytes();
        // patch comment length and append a comment
        let n = bytes.len();
        bytes[n - 2] = 5;
        bytes.extend_from_slice(b"hello");
        let back = Archive::from_bytes(&bytes).unwrap();
        assert_eq!(back.get("f").unwrap(), b"data");
    }

    #[test]
    fn truncated_central_directory_is_rejected() {
        let mut ar = Archive::new();
        ar.add("f", b"data".to_vec(), Method::Stored);
        let bytes = ar.to_bytes();
        // chop into the central directory but keep the EOCD intact by
        // rebuilding: corrupt the cd offset instead
        let mut bad = bytes.clone();
        let n = bad.len();
        bad[n - 6] = 0xFF; // cd_offset low byte scrambled
        assert!(Archive::from_bytes(&bad).is_err());
    }

    #[test]
    fn unsupported_method_is_reported() {
        let mut ar = Archive::new();
        ar.add("f", b"data".to_vec(), Method::Stored);
        let mut bytes = ar.to_bytes();
        // method field of the central record: find central sig and patch +10
        let sig = CENTRAL_SIG.to_le_bytes();
        let pos = bytes
            .windows(4)
            .position(|w| w == sig)
            .expect("central record present");
        bytes[pos + 10] = 99;
        match Archive::from_bytes(&bytes) {
            Err(FormatError::Zip(msg)) => assert!(msg.contains("99"), "{msg}"),
            other => panic!("expected unsupported-method error, got {other:?}"),
        }
    }

    /// Property tests (gated: the `proptest` crate is not vendored, so the
    /// default offline build compiles these out; re-add the dev-dependency
    /// and run `cargo test --features proptest` to enable them).
    #[cfg(feature = "proptest")]
    mod props {
        use super::*;
        use proptest::prelude::*;
        proptest! {
            #[test]
            fn prop_roundtrip(
                files in prop::collection::vec(
                    ("[a-z]{1,12}", prop::collection::vec(any::<u8>(), 0..200), any::<bool>()),
                    0..6,
                )
            ) {
                let mut ar = Archive::new();
                for (name, data, deflate) in &files {
                    let method = if *deflate { Method::Deflate } else { Method::Stored };
                    ar.add(name.clone(), data.clone(), method);
                }
                let back = Archive::from_bytes(&ar.to_bytes()).unwrap();
                for e in ar.entries() {
                    prop_assert_eq!(back.get(&e.name).unwrap(), e.data.as_slice());
                }
                prop_assert_eq!(back.entries().len(), ar.entries().len());
            }
        }
    }
}
