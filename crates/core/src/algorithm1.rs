//! Calculation range determination (the paper's Algorithm 1).
//!
//! For every block, determine which of its output elements are actually
//! consumed downstream — its **calculation range**. The paper phrases this
//! as a recursion from the root blocks: "initially determine the calculation
//! range of the child blocks, which are then employed to determine the
//! calculation range of their parent blocks".
//!
//! Semantics (per output port `B:o`):
//!
//! - If `B:o` has consumers, its range is the union over each consumer input
//!   `C:i` of the elements `C` needs from that input, which in turn is the
//!   union over `C`'s output ports `o'` of `iomap(C, o', i)` applied to
//!   `C`'s own range on `o'`.
//! - If `B:o` has no consumers (paper line 16–18: `b_c = ∅`), the full
//!   output is kept — unless [`RangeOptions::eliminate_dead_ends`] opts into
//!   the more aggressive empty range.
//! - Sinks anchor the recursion: an `Outport` needs its whole input (model
//!   outputs must be complete), a `Terminator` needs nothing (so chains
//!   feeding only terminators dissolve), and stateful blocks (`UnitDelay`)
//!   need their whole input regardless of consumption, which also breaks
//!   feedback cycles.

use crate::IoMappings;
use frodo_graph::Dfg;
use frodo_model::{BlockId, BlockKind, InPort, OutPort};
use frodo_ranges::{IndexSet, Interval, PortMap, Scratch};
use std::collections::{BTreeMap, HashMap};
use std::sync::{Barrier, OnceLock};

/// Which engine computes the ranges.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum RangeEngine {
    /// The paper's Algorithm 1: depth-first recursion from the roots with
    /// memoization for diamond sharing.
    #[default]
    Recursive,
    /// An equivalent single reverse-topological sweep.
    Iterative,
    /// A level-scheduled fan-out over the range-dependency DAG: blocks in
    /// the same level have data-independent ranges and are analyzed
    /// concurrently by [`RangeOptions::threads`] workers. Produces ranges
    /// identical to the sequential engines for any thread count.
    Parallel,
}

/// Tuning knobs for range determination.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct RangeOptions {
    /// Engine selection (all engines produce identical results).
    pub engine: RangeEngine,
    /// When `true`, output ports with no consumers get an *empty* range
    /// (dead-code elimination) instead of the paper's conservative full
    /// range. Off by default for paper fidelity.
    pub eliminate_dead_ends: bool,
    /// Worker threads for [`RangeEngine::Parallel`] (`0` = one per available
    /// core). The sequential engines ignore it.
    pub threads: usize,
}

impl RangeOptions {
    /// The worker count the parallel engine would actually use: `threads`
    /// with `0` resolved to the machine's available parallelism, and `1`
    /// for the sequential engines.
    pub fn resolved_threads(&self) -> usize {
        if self.engine != RangeEngine::Parallel {
            return 1;
        }
        if self.threads == 0 {
            std::thread::available_parallelism()
                .map(std::num::NonZeroUsize::get)
                .unwrap_or(1)
        } else {
            self.threads
        }
    }
}

/// Hot-path instrumentation from one range-determination run.
///
/// Exposed so the pipeline can attach the numbers to the `ranges` trace
/// span and the benchmarks can report cache effectiveness.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct RangeStats {
    /// I/O-mapping apply-cache hits (identical `(mapping, request)` replayed).
    pub iomap_cache_hits: u64,
    /// I/O-mapping apply-cache misses (result computed and memoized).
    pub iomap_cache_misses: u64,
    /// In-place set operations that stayed in the inline one-interval
    /// representation (no heap touched).
    pub set_ops_inline: u64,
    /// In-place set operations that spilled to the heap scratch buffer.
    pub set_ops_spilled: u64,
    /// Levels in the analysis schedule (parallel engine only).
    pub levels: u64,
    /// Widest level of the analysis schedule (parallel engine only).
    pub max_level_width: u64,
}

impl RangeStats {
    fn absorb(&mut self, other: &RangeStats) {
        self.iomap_cache_hits += other.iomap_cache_hits;
        self.iomap_cache_misses += other.iomap_cache_misses;
        self.set_ops_inline += other.set_ops_inline;
        self.set_ops_spilled += other.set_ops_spilled;
        self.levels += other.levels;
        self.max_level_width = self.max_level_width.max(other.max_level_width);
    }
}

/// Content-addressed memo of [`PortMap::apply`] results.
///
/// Data-intensive models repeat the same block parameters and shapes many
/// times, and fan-in unions re-request identical ranges, so the non-trivial
/// mappings profit from applying once and replaying. The O(1) mappings
/// (`Elementwise`, `All`, `None`, `Dynamic`) bypass the cache: hashing the
/// request would cost more than the apply itself.
#[derive(Debug, Default)]
struct ApplyCache {
    map: HashMap<PortMap, HashMap<IndexSet, IndexSet>>,
    hits: u64,
    misses: u64,
}

impl ApplyCache {
    fn cacheable(map: &PortMap) -> bool {
        !matches!(
            map,
            PortMap::Elementwise | PortMap::All { .. } | PortMap::None | PortMap::Dynamic { .. }
        )
    }

    /// [`PortMap::apply_into`] through the memo.
    fn apply_into(
        &mut self,
        map: &PortMap,
        request: &IndexSet,
        out: &mut IndexSet,
        scratch: &mut Scratch,
    ) {
        if !Self::cacheable(map) {
            map.apply_into(request, out, scratch);
            return;
        }
        if let Some(hit) = self.map.get(map).and_then(|c| c.get(request)) {
            self.hits += 1;
            out.clone_from(hit);
            return;
        }
        self.misses += 1;
        map.apply_into(request, out, scratch);
        self.map
            .entry(map.clone())
            .or_default()
            .insert(request.clone(), out.clone());
    }
}

/// Reusable per-engine (per-worker, for the parallel engine) buffers: one
/// warmed-up workspace makes Algorithm 1's inner loop allocation-free in
/// steady state.
#[derive(Debug, Default)]
pub(crate) struct EngineCtx {
    scratch: Scratch,
    need: IndexSet,
    mapped: IndexSet,
    cache: ApplyCache,
}

impl EngineCtx {
    pub(crate) fn stats(&self) -> RangeStats {
        RangeStats {
            iomap_cache_hits: self.cache.hits,
            iomap_cache_misses: self.cache.misses,
            set_ops_inline: self.scratch.stats.inline,
            set_ops_spilled: self.scratch.stats.spilled,
            ..RangeStats::default()
        }
    }
}

/// The calculation range of every output port in a graph.
#[derive(Debug, Clone, PartialEq)]
pub struct Ranges {
    map: BTreeMap<OutPort, IndexSet>,
}

impl Ranges {
    /// Assembles a range table from an already-computed map (the
    /// incremental region analysis builds the map region by region).
    pub(crate) fn from_map(map: BTreeMap<OutPort, IndexSet>) -> Ranges {
        Ranges { map }
    }

    /// The calculation range of `block`'s output `port`.
    ///
    /// # Panics
    ///
    /// Panics if the port was not analyzed (not part of the graph).
    pub fn out(&self, block: BlockId, port: usize) -> &IndexSet {
        &self.map[&OutPort::new(block, port)]
    }

    /// The calculation range, if the port exists.
    pub fn try_out(&self, block: BlockId, port: usize) -> Option<&IndexSet> {
        self.map.get(&OutPort::new(block, port))
    }

    /// Iterates over all `(port, range)` entries.
    pub fn iter(&self) -> impl Iterator<Item = (&OutPort, &IndexSet)> {
        self.map.iter()
    }

    /// Number of analyzed output ports.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Whether the table is empty.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }
}

/// Computes into `ctx.need` the elements a consumer block needs from one of
/// its input ports, given a lookup of the consumer's own output ranges.
///
/// `ranges_of` may return `None` for a range that is not final yet; that
/// only happens inside delay cycles (whose input requirement is constant
/// anyway), and the full output range is conservatively assumed.
pub(crate) fn input_need_into<'r>(
    dfg: &Dfg,
    maps: &IoMappings,
    ranges_of: &mut dyn FnMut(OutPort) -> Option<&'r IndexSet>,
    port: InPort,
    ctx: &mut EngineCtx,
) {
    let block = port.block;
    let kind = &dfg.model().block(block).kind;
    let in_len = dfg.shapes().input(block, port.port).numel();
    match kind {
        // Model outputs must be produced in full.
        BlockKind::Outport { .. } => ctx.need.set_single(Interval::new(0, in_len)),
        // Discarded data is never needed.
        BlockKind::Terminator => ctx.need.clear(),
        // State must be maintained every step, independent of consumption.
        k if k.is_stateful() => ctx.need.set_single(Interval::new(0, in_len)),
        _ => {
            ctx.need.clear();
            for o in 0..kind.num_outputs() {
                let p = OutPort::new(block, o);
                let full;
                let out_range = match ranges_of(p) {
                    Some(r) => r,
                    None => {
                        // single-interval sets are inline: no allocation
                        full = full_range_of(dfg, p);
                        &full
                    }
                };
                let m = maps.map(block, o, port.port);
                ctx.cache
                    .apply_into(m, out_range, &mut ctx.mapped, &mut ctx.scratch);
                ctx.need.union_with(&ctx.mapped, &mut ctx.scratch);
            }
        }
    }
}

pub(crate) fn full_range_of(dfg: &Dfg, port: OutPort) -> IndexSet {
    IndexSet::full(dfg.shapes().output(port.block, port.port).numel())
}

/// The calculation range of one output port, given final (or, inside delay
/// cycles, absent) consumer ranges. The shared core of all three engines:
/// Algorithm 1 lines 16–18 (no consumers ⇒ full output) and lines 20–25
/// (union of the input needs of each consumer).
pub(crate) fn port_range<'r>(
    dfg: &Dfg,
    maps: &IoMappings,
    opts: RangeOptions,
    port: OutPort,
    ranges_of: &mut dyn FnMut(OutPort) -> Option<&'r IndexSet>,
    ctx: &mut EngineCtx,
) -> IndexSet {
    let consumers = dfg.consumers_of(port);
    if consumers.is_empty() {
        if opts.eliminate_dead_ends {
            IndexSet::new()
        } else {
            full_range_of(dfg, port)
        }
    } else {
        let mut r = IndexSet::new();
        for &c in consumers {
            input_need_into(dfg, maps, ranges_of, c, ctx);
            r.union_with(&ctx.need, &mut ctx.scratch);
        }
        r
    }
}

/// Computes the calculation range of every output port.
///
/// Dispatches on [`RangeOptions::engine`]; all engines implement the same
/// semantics (see the module docs) and are tested to agree.
pub fn determine_ranges(dfg: &Dfg, maps: &IoMappings, opts: RangeOptions) -> Ranges {
    determine_ranges_with_stats(dfg, maps, opts).0
}

/// [`determine_ranges`] plus the run's hot-path instrumentation
/// ([`RangeStats`]): apply-cache effectiveness, inline-vs-spilled set
/// operations, and (for the parallel engine) the level-schedule shape.
pub fn determine_ranges_with_stats(
    dfg: &Dfg,
    maps: &IoMappings,
    opts: RangeOptions,
) -> (Ranges, RangeStats) {
    match opts.engine {
        RangeEngine::Recursive => recursive_ranges(dfg, maps, opts),
        RangeEngine::Iterative => iterative_ranges(dfg, maps, opts),
        RangeEngine::Parallel => parallel_ranges(dfg, maps, opts),
    }
}

/// The no-elimination baseline: every output port keeps its full range.
///
/// Used by the comparison generators (Simulink-style, DFSynth-style, HCG-
/// style), which the paper characterizes as lacking range optimization.
pub fn full_ranges(dfg: &Dfg) -> Ranges {
    let mut map = BTreeMap::new();
    for (id, block) in dfg.model().iter() {
        for o in 0..block.kind.num_outputs() {
            let port = OutPort::new(id, o);
            map.insert(port, full_range_of(dfg, port));
        }
    }
    Ranges { map }
}

/// Paper-faithful engine: depth-first traversal from the root blocks.
///
/// `rangeDetermine` (Algorithm 1 lines 1–13) walks the roots; `recursive`
/// (lines 14–27) computes each block's range from its children's ranges. We
/// memoize per output port so diamonds are computed once, and run the
/// depth-first walk on an explicit work stack so arbitrarily deep models
/// (thousands of chained blocks) cannot overflow the call stack.
fn recursive_ranges(dfg: &Dfg, maps: &IoMappings, opts: RangeOptions) -> (Ranges, RangeStats) {
    let mut memo: BTreeMap<OutPort, IndexSet> = BTreeMap::new();
    let mut ctx = EngineCtx::default();

    /// The output ports whose ranges a `Finish` of `port` will read:
    /// every output of every consumer whose input requirement actually
    /// depends on its own ranges (sinks and stateful blocks do not).
    fn child_ports(dfg: &Dfg, port: OutPort) -> Vec<OutPort> {
        let mut out = Vec::new();
        for c in dfg.consumers_of(port) {
            let kind = &dfg.model().block(c.block).kind;
            let independent = matches!(kind, BlockKind::Outport { .. } | BlockKind::Terminator)
                || kind.is_stateful();
            if independent {
                continue;
            }
            for o in 0..kind.num_outputs() {
                out.push(OutPort::new(c.block, o));
            }
        }
        out
    }

    enum Frame {
        Visit(OutPort),
        Finish(OutPort),
    }

    let mut stack: Vec<Frame> = Vec::new();
    // Lines 2–11: find the roots and start the depth-first walk from them;
    // a defensive sweep afterwards covers ports a root never reaches.
    for root in dfg.roots() {
        for o in 0..dfg.model().block(root).kind.num_outputs() {
            stack.push(Frame::Visit(OutPort::new(root, o)));
        }
    }
    for (id, block) in dfg.model().iter() {
        for o in 0..block.kind.num_outputs() {
            stack.push(Frame::Visit(OutPort::new(id, o)));
        }
    }

    while let Some(frame) = stack.pop() {
        match frame {
            Frame::Visit(port) => {
                if memo.contains_key(&port) {
                    continue;
                }
                stack.push(Frame::Finish(port));
                for child in child_ports(dfg, port) {
                    if !memo.contains_key(&child) {
                        stack.push(Frame::Visit(child));
                    }
                }
            }
            Frame::Finish(port) => {
                if memo.contains_key(&port) {
                    continue;
                }
                // A diamond can pop this Finish before a shared child's own
                // Finish (its frame may sit deeper in the stack); reschedule
                // until every child range is final.
                let missing: Vec<OutPort> = child_ports(dfg, port)
                    .into_iter()
                    .filter(|p| !memo.contains_key(p))
                    .collect();
                if !missing.is_empty() {
                    stack.push(Frame::Finish(port));
                    for child in missing {
                        stack.push(Frame::Visit(child));
                    }
                    continue;
                }
                let range = port_range(
                    dfg,
                    maps,
                    opts,
                    port,
                    &mut |p| Some(memo.get(&p).expect("child ranges are final before Finish")),
                    &mut ctx,
                );
                memo.insert(port, range);
            }
        }
    }
    let stats = ctx.stats();
    (Ranges { map: memo }, stats)
}

/// Iterative engine: one sweep over the reverse topological order.
///
/// Consumers are scheduled after producers, so visiting the translation
/// sequence backwards guarantees every consumer's range is final before its
/// producers are processed. Stateful blocks need no ordering care because
/// their input requirement is constant (full).
fn iterative_ranges(dfg: &Dfg, maps: &IoMappings, opts: RangeOptions) -> (Ranges, RangeStats) {
    let order = dfg.schedule().expect("a valid Dfg always has a schedule");
    let mut map: BTreeMap<OutPort, IndexSet> = BTreeMap::new();
    let mut ctx = EngineCtx::default();
    for &id in order.iter().rev() {
        let n_out = dfg.model().block(id).kind.num_outputs();
        for o in 0..n_out {
            let port = OutPort::new(id, o);
            // A consumer not yet final (`None`) can only be a delay cycle,
            // whose input need ignores the looked-up value.
            let range = port_range(dfg, maps, opts, port, &mut |p| map.get(&p), &mut ctx);
            map.insert(port, range);
        }
    }
    let stats = ctx.stats();
    (Ranges { map }, stats)
}

/// Level-scheduled parallel engine.
///
/// [`Dfg::analysis_levels`] partitions the blocks so that every range a
/// block's computation reads lives in a strictly earlier level (delay-broken
/// feedback keeps the dependency relation acyclic). Workers are spawned
/// once, split each level by block index modulo the worker count, and meet
/// at a [`Barrier`] between levels; results live in [`OnceLock`] slots
/// indexed by [`Dfg::out_port_index`], so cross-level reads are lock-free.
///
/// The per-port computation is byte-for-byte the one the sequential engines
/// run ([`port_range`]), so the result is identical for any thread count.
fn parallel_ranges(dfg: &Dfg, maps: &IoMappings, opts: RangeOptions) -> (Ranges, RangeStats) {
    let levels = dfg
        .analysis_levels()
        .expect("a valid Dfg has no delay-free cycles");
    let max_width = levels.iter().map(Vec::len).max().unwrap_or(0);
    // More workers than the widest level would only ever idle at barriers.
    let threads = opts.resolved_threads().min(max_width).max(1);

    let slots: Vec<OnceLock<IndexSet>> =
        (0..dfg.num_out_ports()).map(|_| OnceLock::new()).collect();

    let mut stats = RangeStats {
        levels: levels.len() as u64,
        max_level_width: max_width as u64,
        ..RangeStats::default()
    };

    let run_worker = |worker: usize, sync: Option<&Barrier>| -> RangeStats {
        let mut ctx = EngineCtx::default();
        for level in &levels {
            for (i, &b) in level.iter().enumerate() {
                if i % threads != worker {
                    continue;
                }
                for o in 0..dfg.model().block(b).kind.num_outputs() {
                    let port = OutPort::new(b, o);
                    let r = port_range(
                        dfg,
                        maps,
                        opts,
                        port,
                        &mut |p| {
                            Some(
                                slots[dfg.out_port_index(p)]
                                    .get()
                                    .expect("level schedule finalizes consumers first"),
                            )
                        },
                        &mut ctx,
                    );
                    slots[dfg.out_port_index(port)]
                        .set(r)
                        .expect("each port is owned by exactly one worker");
                }
            }
            if let Some(b) = sync {
                b.wait();
            }
        }
        ctx.stats()
    };

    if threads <= 1 {
        stats.absorb(&run_worker(0, None));
    } else {
        let barrier = Barrier::new(threads);
        let run_worker = &run_worker;
        let barrier = &barrier;
        let worker_stats = std::thread::scope(|s| {
            let handles: Vec<_> = (0..threads)
                .map(|w| s.spawn(move || run_worker(w, Some(barrier))))
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("range worker panicked"))
                .collect::<Vec<_>>()
        });
        for ws in &worker_stats {
            stats.absorb(ws);
        }
    }

    // Slot order equals model iteration order (out_port_index is a prefix
    // sum over blocks in id order), so draining the slots re-labels them.
    let mut map = BTreeMap::new();
    let mut drained = slots.into_iter();
    for (id, block) in dfg.model().iter() {
        for o in 0..block.kind.num_outputs() {
            let r = drained
                .next()
                .and_then(OnceLock::into_inner)
                .expect("every level was executed");
            map.insert(OutPort::new(id, o), r);
        }
    }
    (Ranges { map }, stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use frodo_model::{Block, Model, SelectorMode, Tensor};
    use frodo_ranges::Shape;

    fn analyze(m: Model, opts: RangeOptions) -> (Dfg, IoMappings, Ranges) {
        let dfg = Dfg::new(m, &frodo_obs::Trace::noop()).unwrap();
        let maps = IoMappings::derive(&dfg);
        let ranges = determine_ranges(&dfg, &maps, opts);
        (dfg, maps, ranges)
    }

    /// Figure 1 / Figure 5 model: in(50) ⊛ k(11) → selector [5,55) → out.
    fn figure1() -> Model {
        let mut m = Model::new("Convolution");
        let i = m.add(Block::new(
            "in",
            BlockKind::Inport {
                index: 0,
                shape: Shape::Vector(50),
            },
        ));
        let k = m.add(Block::new(
            "k",
            BlockKind::Constant {
                value: Tensor::vector(vec![0.1; 11]),
            },
        ));
        let c = m.add(Block::new("conv", BlockKind::Convolution));
        let s = m.add(Block::new(
            "sel",
            BlockKind::Selector {
                mode: SelectorMode::StartEnd { start: 5, end: 55 },
            },
        ));
        let o = m.add(Block::new("out", BlockKind::Outport { index: 0 }));
        m.connect(i, 0, c, 0).unwrap();
        m.connect(k, 0, c, 1).unwrap();
        m.connect(c, 0, s, 0).unwrap();
        m.connect(s, 0, o, 0).unwrap();
        m
    }

    #[test]
    fn figure5_conv_range_shrinks_to_5_55() {
        // Paper Figure 5 Step 1: the convolution's range goes [0,60) → [5,55).
        let (dfg, _, ranges) = analyze(figure1(), RangeOptions::default());
        let conv = dfg.model().find("conv").unwrap();
        assert_eq!(ranges.out(conv, 0), &IndexSet::from_range(5, 55));
        // the selector still produces its whole (already minimal) output
        let sel = dfg.model().find("sel").unwrap();
        assert_eq!(ranges.out(sel, 0), &IndexSet::full(50));
        // and the model input stays fully needed (same convolution reads all)
        let inp = dfg.model().find("in").unwrap();
        assert_eq!(ranges.out(inp, 0), &IndexSet::full(50));
    }

    #[test]
    fn both_engines_agree_on_figure1() {
        let (_, _, rec) = analyze(figure1(), RangeOptions::default());
        let (_, _, it) = analyze(
            figure1(),
            RangeOptions {
                engine: RangeEngine::Iterative,
                ..Default::default()
            },
        );
        assert_eq!(rec, it);
    }

    #[test]
    fn narrower_selector_shrinks_source_too() {
        // selecting deep in the middle lets even the Inport range shrink
        let mut m = Model::new("narrow");
        let i = m.add(Block::new(
            "in",
            BlockKind::Inport {
                index: 0,
                shape: Shape::Vector(100),
            },
        ));
        let g = m.add(Block::new("g", BlockKind::Gain { gain: 2.0 }));
        let s = m.add(Block::new(
            "sel",
            BlockKind::Selector {
                mode: SelectorMode::StartEnd { start: 40, end: 50 },
            },
        ));
        let o = m.add(Block::new("out", BlockKind::Outport { index: 0 }));
        m.connect(i, 0, g, 0).unwrap();
        m.connect(g, 0, s, 0).unwrap();
        m.connect(s, 0, o, 0).unwrap();
        let (dfg, _, ranges) = analyze(m, RangeOptions::default());
        let g = dfg.model().find("g").unwrap();
        let i = dfg.model().find("in").unwrap();
        assert_eq!(ranges.out(g, 0), &IndexSet::from_range(40, 50));
        assert_eq!(ranges.out(i, 0), &IndexSet::from_range(40, 50));
    }

    #[test]
    fn fan_out_unions_consumer_needs() {
        // two selectors on the same gain: ranges union
        let mut m = Model::new("fan");
        let i = m.add(Block::new(
            "in",
            BlockKind::Inport {
                index: 0,
                shape: Shape::Vector(100),
            },
        ));
        let g = m.add(Block::new("g", BlockKind::Gain { gain: 2.0 }));
        let s1 = m.add(Block::new(
            "s1",
            BlockKind::Selector {
                mode: SelectorMode::StartEnd { start: 0, end: 10 },
            },
        ));
        let s2 = m.add(Block::new(
            "s2",
            BlockKind::Selector {
                mode: SelectorMode::StartEnd { start: 50, end: 70 },
            },
        ));
        let o1 = m.add(Block::new("o1", BlockKind::Outport { index: 0 }));
        let o2 = m.add(Block::new("o2", BlockKind::Outport { index: 1 }));
        m.connect(i, 0, g, 0).unwrap();
        m.connect(g, 0, s1, 0).unwrap();
        m.connect(g, 0, s2, 0).unwrap();
        m.connect(s1, 0, o1, 0).unwrap();
        m.connect(s2, 0, o2, 0).unwrap();
        let (dfg, _, ranges) = analyze(m, RangeOptions::default());
        let g = dfg.model().find("g").unwrap();
        let expected = IndexSet::from_range(0, 10).union(&IndexSet::from_range(50, 70));
        assert_eq!(ranges.out(g, 0), &expected);
    }

    #[test]
    fn reduction_blocks_stop_propagation() {
        // sum-of-elements downstream forces the full upstream range even
        // though a selector follows the sum
        let mut m = Model::new("red");
        let i = m.add(Block::new(
            "in",
            BlockKind::Inport {
                index: 0,
                shape: Shape::Vector(50),
            },
        ));
        let g = m.add(Block::new("g", BlockKind::Gain { gain: 2.0 }));
        let r = m.add(Block::new("r", BlockKind::SumOfElements));
        let o = m.add(Block::new("out", BlockKind::Outport { index: 0 }));
        m.connect(i, 0, g, 0).unwrap();
        m.connect(g, 0, r, 0).unwrap();
        m.connect(r, 0, o, 0).unwrap();
        let (dfg, _, ranges) = analyze(m, RangeOptions::default());
        let g = dfg.model().find("g").unwrap();
        assert_eq!(ranges.out(g, 0), &IndexSet::full(50));
    }

    #[test]
    fn terminator_chain_dissolves() {
        // a gain feeding only a terminator computes nothing
        let mut m = Model::new("dead");
        let i = m.add(Block::new(
            "in",
            BlockKind::Inport {
                index: 0,
                shape: Shape::Vector(8),
            },
        ));
        let g = m.add(Block::new("g", BlockKind::Gain { gain: 2.0 }));
        let t = m.add(Block::new("t", BlockKind::Terminator));
        let o = m.add(Block::new("out", BlockKind::Outport { index: 0 }));
        m.connect(i, 0, g, 0).unwrap();
        m.connect(g, 0, t, 0).unwrap();
        m.connect(i, 0, o, 0).unwrap();
        let (dfg, _, ranges) = analyze(m, RangeOptions::default());
        let g = dfg.model().find("g").unwrap();
        assert!(ranges.out(g, 0).is_empty());
    }

    #[test]
    fn dead_end_default_keeps_full_range() {
        // an unconsumed output port keeps its full range (paper lines 16-18)
        let mut m = Model::new("dangling");
        let i = m.add(Block::new(
            "in",
            BlockKind::Inport {
                index: 0,
                shape: Shape::Vector(8),
            },
        ));
        let g = m.add(Block::new("g", BlockKind::Gain { gain: 2.0 }));
        let o = m.add(Block::new("out", BlockKind::Outport { index: 0 }));
        m.connect(i, 0, g, 0).unwrap();
        m.connect(i, 0, o, 0).unwrap();
        // g's output goes nowhere
        let (dfg, _, ranges) = analyze(m.clone(), RangeOptions::default());
        let gid = dfg.model().find("g").unwrap();
        assert_eq!(ranges.out(gid, 0), &IndexSet::full(8));

        // ...unless dead-end elimination is on
        let (dfg, _, ranges) = analyze(
            m,
            RangeOptions {
                eliminate_dead_ends: true,
                ..Default::default()
            },
        );
        let gid = dfg.model().find("g").unwrap();
        assert!(ranges.out(gid, 0).is_empty());
    }

    #[test]
    fn delay_feedback_is_fully_maintained() {
        // accumulator: add -> delay -> add; the delay keeps everything alive
        let mut m = Model::new("acc");
        let i = m.add(Block::new(
            "in",
            BlockKind::Inport {
                index: 0,
                shape: Shape::Vector(6),
            },
        ));
        let add = m.add(Block::new("add", BlockKind::Add));
        let z = m.add(Block::new(
            "z",
            BlockKind::UnitDelay {
                initial: Tensor::vector(vec![0.0; 6]),
            },
        ));
        let s = m.add(Block::new(
            "sel",
            BlockKind::Selector {
                mode: SelectorMode::StartEnd { start: 0, end: 2 },
            },
        ));
        let o = m.add(Block::new("out", BlockKind::Outport { index: 0 }));
        m.connect(i, 0, add, 0).unwrap();
        m.connect(z, 0, add, 1).unwrap();
        m.connect(add, 0, z, 0).unwrap();
        m.connect(add, 0, s, 0).unwrap();
        m.connect(s, 0, o, 0).unwrap();
        let (dfg, _, ranges) = analyze(m, RangeOptions::default());
        let add = dfg.model().find("add").unwrap();
        // despite the selector, the delay's state keeps the add full
        assert_eq!(ranges.out(add, 0), &IndexSet::full(6));
    }

    #[test]
    fn pad_then_selector_composes() {
        // in(10) -> pad(3,3) -> selector [0, 5) -> out
        // selector needs pad outputs [0,5); pad outputs 0..3 are padding, so
        // the source only needs elements [0, 2)
        let mut m = Model::new("padsel");
        let i = m.add(Block::new(
            "in",
            BlockKind::Inport {
                index: 0,
                shape: Shape::Vector(10),
            },
        ));
        let p = m.add(Block::new(
            "p",
            BlockKind::Pad {
                left: 3,
                right: 3,
                value: 0.0,
            },
        ));
        let s = m.add(Block::new(
            "s",
            BlockKind::Selector {
                mode: SelectorMode::StartEnd { start: 0, end: 5 },
            },
        ));
        let o = m.add(Block::new("out", BlockKind::Outport { index: 0 }));
        m.connect(i, 0, p, 0).unwrap();
        m.connect(p, 0, s, 0).unwrap();
        m.connect(s, 0, o, 0).unwrap();
        let (dfg, _, ranges) = analyze(m, RangeOptions::default());
        let i = dfg.model().find("in").unwrap();
        let p = dfg.model().find("p").unwrap();
        assert_eq!(ranges.out(p, 0), &IndexSet::from_range(0, 5));
        assert_eq!(ranges.out(i, 0), &IndexSet::from_range(0, 2));
    }

    #[test]
    fn parallel_engine_agrees_with_recursive_for_any_thread_count() {
        for threads in [1, 2, 4, 9] {
            let (_, _, rec) = analyze(figure1(), RangeOptions::default());
            let (_, _, par) = analyze(
                figure1(),
                RangeOptions {
                    engine: RangeEngine::Parallel,
                    threads,
                    ..Default::default()
                },
            );
            assert_eq!(rec, par, "threads={threads}");
        }
    }

    #[test]
    fn parallel_engine_handles_feedback_and_dead_ends() {
        // delay feedback: add -> z -> add, plus a dangling gain
        let mut m = Model::new("par-acc");
        let i = m.add(Block::new(
            "in",
            BlockKind::Inport {
                index: 0,
                shape: Shape::Vector(6),
            },
        ));
        let add = m.add(Block::new("add", BlockKind::Add));
        let z = m.add(Block::new(
            "z",
            BlockKind::UnitDelay {
                initial: Tensor::vector(vec![0.0; 6]),
            },
        ));
        let g = m.add(Block::new("g", BlockKind::Gain { gain: 2.0 }));
        let o = m.add(Block::new("out", BlockKind::Outport { index: 0 }));
        m.connect(i, 0, add, 0).unwrap();
        m.connect(z, 0, add, 1).unwrap();
        m.connect(add, 0, z, 0).unwrap();
        m.connect(add, 0, o, 0).unwrap();
        m.connect(i, 0, g, 0).unwrap(); // g's output dangles
        for eliminate_dead_ends in [false, true] {
            let (_, _, rec) = analyze(
                m.clone(),
                RangeOptions {
                    eliminate_dead_ends,
                    ..Default::default()
                },
            );
            let (_, _, par) = analyze(
                m.clone(),
                RangeOptions {
                    engine: RangeEngine::Parallel,
                    eliminate_dead_ends,
                    threads: 3,
                },
            );
            assert_eq!(rec, par, "eliminate_dead_ends={eliminate_dead_ends}");
        }
    }

    #[test]
    fn parallel_stats_record_the_level_schedule() {
        let dfg = Dfg::new(figure1(), &frodo_obs::Trace::noop()).unwrap();
        let maps = IoMappings::derive(&dfg);
        let (_, stats) = determine_ranges_with_stats(
            &dfg,
            &maps,
            RangeOptions {
                engine: RangeEngine::Parallel,
                threads: 2,
                ..Default::default()
            },
        );
        assert!(stats.levels >= 3, "chain model has a deep level schedule");
        assert!(stats.max_level_width >= 1);
    }

    #[test]
    fn apply_cache_replays_identical_requests() {
        // three identical selectors fanned out from one gain: the first
        // consumer's (map, request) pair is computed, the rest replay it
        let mut m = Model::new("cache");
        let i = m.add(Block::new(
            "in",
            BlockKind::Inport {
                index: 0,
                shape: Shape::Vector(100),
            },
        ));
        let g = m.add(Block::new("g", BlockKind::Gain { gain: 2.0 }));
        m.connect(i, 0, g, 0).unwrap();
        for k in 0..3 {
            let s = m.add(Block::new(
                format!("s{k}"),
                BlockKind::Selector {
                    mode: SelectorMode::StartEnd { start: 10, end: 30 },
                },
            ));
            let o = m.add(Block::new(format!("o{k}"), BlockKind::Outport { index: k }));
            m.connect(g, 0, s, 0).unwrap();
            m.connect(s, 0, o, 0).unwrap();
        }
        let dfg = Dfg::new(m, &frodo_obs::Trace::noop()).unwrap();
        let maps = IoMappings::derive(&dfg);
        let (_, stats) = determine_ranges_with_stats(&dfg, &maps, RangeOptions::default());
        assert!(
            stats.iomap_cache_hits >= 2,
            "identical selector requests should hit: {stats:?}"
        );
        assert!(stats.iomap_cache_misses >= 1);
    }

    #[test]
    fn full_ranges_matches_shapes() {
        let dfg = Dfg::new(figure1(), &frodo_obs::Trace::noop()).unwrap();
        let full = full_ranges(&dfg);
        let conv = dfg.model().find("conv").unwrap();
        assert_eq!(full.out(conv, 0), &IndexSet::full(60));
        assert_eq!(full.len(), 4); // in, k, conv, sel (outport has no outputs)
    }
}
